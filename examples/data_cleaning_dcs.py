"""Scenario: denial-constraint data cleaning vs a cell-repair baseline.

A registry of authors (``Author(aid, name, oid, organization)``) is polluted
with duplicate rows whose attributes were mistyped.  Four denial constraints
(DC1-DC4 from Section 6 of the paper) describe consistency; the script

1. injects a configurable number of errors into a clean table,
2. repairs the table by tuple deletion under independent semantics (the
   minimum repair) and under end semantics (the conservative repair),
3. runs the HoloClean-style probabilistic cell repairer, and
4. reports deletions / repaired cells / residual violations side by side
   (the Table 4 / Table 5 comparison of the paper).

Run with::

    python examples/data_cleaning_dcs.py [rows] [errors]
"""

from __future__ import annotations

import sys

from repro import RepairEngine, Semantics
from repro.baselines import HoloCleanStyleRepairer
from repro.utils.text import format_table
from repro.workloads import dc_constraints, dc_program, generate_author_table, inject_errors


def main() -> None:
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    errors = int(sys.argv[2]) if len(sys.argv) > 2 else 40

    clean = generate_author_table(rows, seed=11)
    dirty = inject_errors(clean, errors, seed=13)
    constraints = dc_constraints()
    program = dc_program()
    repairer = HoloCleanStyleRepairer(list(constraints.values()))

    print(f"author table: {rows} clean rows, {errors} injected duplicate errors")
    initial_violations = repairer.count_violations(dirty.db)
    print(f"violating tuples per DC before repair: {initial_violations}\n")

    engine = RepairEngine(dirty.db, program)
    independent = engine.repair(Semantics.INDEPENDENT)
    end = engine.repair(Semantics.END)
    cell_result = repairer.repair(dirty.db)

    rows_out = [
        [
            "independent semantics (min deletion)",
            independent.size,
            "-",
            sum(repairer.count_violations(independent.repaired).values()),
            f"{independent.runtime:.3f}s",
        ],
        [
            "end semantics (delete all violators)",
            end.size,
            "-",
            sum(repairer.count_violations(end.repaired).values()),
            f"{end.runtime:.3f}s",
        ],
        [
            "HoloClean-style cell repair",
            0,
            cell_result.repaired_cell_count,
            cell_result.total_residual_violations(),
            f"{cell_result.runtime:.3f}s",
        ],
    ]
    print(
        format_table(
            ["method", "deleted tuples", "repaired cells", "residual violations", "runtime"],
            rows_out,
            title="repair comparison",
        )
    )

    recovered = sum(1 for item in dirty.injected if item in independent.deleted)
    print(
        f"\nindependent semantics deleted {independent.size} tuples "
        f"({recovered} of the {errors} injected duplicates) and left zero violations;\n"
        "the cell-repair baseline keeps every row but may leave residual violations."
    )


if __name__ == "__main__":
    main()
