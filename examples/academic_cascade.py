"""Scenario: cascade deletions on a synthetic academic (MAS) database.

An organization is being purged from an academic-search database; its authors,
their authorship records, their publications, and the citations of those
publications should go with it (Table 1, program 20 of the paper).  The script
compares:

* the four delta-rule semantics,
* the same rules run as SQL-style "after delete" triggers with the PostgreSQL
  (alphabetical) and MySQL (creation-order) firing policies,

and shows that for a pure cascade every execution model agrees — while for a
DC-like variant with two triggers on the same event the trigger results depend
on the firing policy and over-delete compared to step/independent semantics.

Run with::

    python examples/academic_cascade.py [scale]
"""

from __future__ import annotations

import sys

from repro import RepairEngine, Semantics
from repro.baselines import FiringPolicy, TriggerEngine
from repro.baselines.trigger_engine import seed_deletions
from repro.workloads import generate_mas, mas_program
from repro.utils.text import format_table


def compare_program(mas, program_id: str) -> None:
    program = mas_program(mas, program_id)
    engine = RepairEngine(mas.fresh_db(), program)
    rows = []
    for semantics in Semantics:
        result = engine.repair(semantics)
        rows.append([f"{semantics.value} semantics", result.size, f"{result.runtime:.4f}s"])

    seeds = seed_deletions(mas.fresh_db(), program)
    for policy in (FiringPolicy.POSTGRESQL, FiringPolicy.MYSQL):
        run = TriggerEngine.from_program(program, policy).run(mas.fresh_db(), seeds)
        rows.append([f"{policy.value} triggers", run.size, f"{run.runtime:.4f}s"])

    print(
        format_table(
            ["execution model", "deleted tuples", "runtime"],
            rows,
            title=f"MAS program {program_id}",
        )
    )
    print()


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    mas = generate_mas(scale=scale, seed=7)
    print(f"synthetic MAS instance: {mas.total_tuples} tuples {mas.counts}")
    print(f"purging organization oid={mas.constants.target_org_id}\n")

    # Program 20: the full 5-level cascade (organization -> ... -> citations).
    compare_program(mas, "20")
    # Program 3: two rules with the same body — execution order starts to matter.
    compare_program(mas, "3")
    print(
        "For the pure cascade (program 20) every execution model deletes the same\n"
        "tuples; for program 3 the triggers and the coarse semantics over-delete,\n"
        "while step/independent semantics delete a single Author tuple."
    )


if __name__ == "__main__":
    main()
