"""Quickstart: the paper's running example (Figures 1 and 2) end to end.

Builds the academic database of Figure 1, parses the delta program of
Figure 2, computes the repair under all four semantics, and prints the
containment report — reproducing Examples 1.3, 3.4, 3.6, 3.8 and 3.11.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Database, DeltaProgram, RelationSchema, RepairEngine, Schema, Semantics

#: The schema of Figure 1.
SCHEMA = Schema.from_relations(
    [
        RelationSchema.of("Grant", "gid:int", "name:str"),
        RelationSchema.of("AuthGrant", "aid:int", "gid:int"),
        RelationSchema.of("Author", "aid:int", "name:str"),
        RelationSchema.of("Writes", "aid:int", "pid:int"),
        RelationSchema.of("Pub", "pid:int", "title:str"),
        RelationSchema.of("Cite", "citing:int", "cited:int"),
    ]
)

#: The instance of Figure 1 (tuple identifiers g1..c from the paper as comments).
DATA = {
    "Grant": [(1, "NSF"), (2, "ERC")],            # g1, g2
    "AuthGrant": [(2, 1), (4, 2), (5, 2)],         # ag1, ag2, ag3
    "Author": [(2, "Maggie"), (4, "Marge"), (5, "Homer")],  # a1, a2, a3
    "Writes": [(4, 6), (5, 7)],                    # w1, w2
    "Pub": [(6, "x"), (7, "y")],                   # p1, p2
    "Cite": [(7, 6)],                              # c
}

#: The delta program of Figure 2 (rules (0)-(4)).
PROGRAM = """
    % (0) the ERC grant was added by mistake: start the deletion there
    delta Grant(g, n) :- Grant(g, n), n = 'ERC'.
    % (1) authors funded by a deleted grant are deleted
    delta Author(a, n) :- Author(a, n), AuthGrant(a, g), delta Grant(g, gn).
    % (2)/(3) publications and authorship records of deleted authors are deleted
    delta Pub(p, t) :- Pub(p, t), Writes(a, p), delta Author(a, n).
    delta Writes(a, p) :- Pub(p, t), Writes(a, p), delta Author(a, n).
    % (4) citations of deleted publications are deleted while their authors remain
    delta Cite(c, p) :- Cite(c, p), delta Pub(p, t), Writes(a1, c), Writes(a2, p).
"""


def main() -> None:
    db = Database.from_dicts(SCHEMA, DATA)
    program = DeltaProgram.from_text(PROGRAM)
    engine = RepairEngine(db, program, verify=True)

    print(f"database: {db.summary()}")
    print(f"program:\n{program}\n")
    print("results per semantics (Example 1.3 of the paper):")
    for semantics in Semantics:
        result = engine.repair(semantics)
        deleted = ", ".join(sorted(str(item) for item in result.deleted))
        print(f"  {semantics.value:<11} |S|={result.size}  S = {{{deleted}}}")

    print("\ncontainment report (Figure 3 / Table 3 style):")
    print(engine.compare("running-example").describe())


if __name__ == "__main__":
    main()
