"""Regenerate any table or figure of the paper's evaluation from the command line.

Usage::

    python examples/paper_experiments.py                 # list available experiments
    python examples/paper_experiments.py table3          # run one experiment
    python examples/paper_experiments.py all --scale 0.5 # run everything

The same experiments are wrapped in pytest-benchmark under ``benchmarks/``;
this script is the interactive way to run them and inspect the reports.
"""

from __future__ import annotations

import argparse

from repro.experiments import (
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    table3,
    table4,
    table5,
    triggers_cmp,
)

#: Experiment name -> callable(scale, rows) returning a list of reports.
EXPERIMENTS = {
    "table3": lambda scale, rows: [table3.run(mas_scale=scale, tpch_scale=scale)],
    "figure6": lambda scale, rows: [
        figure6.run(panel=panel, scale=scale) for panel in ("6a", "6b", "6c")
    ],
    "figure7": lambda scale, rows: [figure7.run(scale=scale)],
    "figure8": lambda scale, rows: [figure8.run(scale=scale)],
    "figure9": lambda scale, rows: [figure9.run(scale=scale)],
    "table4": lambda scale, rows: [table4.run(n_rows=rows)],
    "table5": lambda scale, rows: [table5.run(n_rows=rows)],
    "figure10": lambda scale, rows: [
        figure10.run(panel="a", n_rows=rows),
        figure10.run(panel="b", row_counts=(rows // 2, rows, rows * 2)),
    ],
    "triggers": lambda scale, rows: [triggers_cmp.run(scale=scale)],
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "experiment",
        nargs="?",
        choices=[*EXPERIMENTS, "all"],
        help="which experiment to run (omit to list them)",
    )
    parser.add_argument("--scale", type=float, default=0.35, help="MAS/TPC-H scale factor")
    parser.add_argument("--rows", type=int, default=300, help="Author-table rows for the DC experiments")
    args = parser.parse_args()

    if args.experiment is None:
        print("available experiments:")
        for name in EXPERIMENTS:
            print(f"  {name}")
        print("  all")
        return

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        for report in EXPERIMENTS[name](args.scale, args.rows):
            print(report.render())
            print()


if __name__ == "__main__":
    main()
