"""Integration tests reproducing the paper's worked examples and propositions."""

import pytest

from repro import RepairEngine, Semantics, compare_results, fact
from repro.core.stability import all_minimum_stabilizing_sets, is_stabilizing_set
from repro.datalog.delta import DeltaProgram
from repro.storage.database import Database
from repro.storage.schema import Schema

from tests.conftest import PAPER_PROGRAM_TEXT, make_paper_database


@pytest.fixture
def engine() -> RepairEngine:
    return RepairEngine(
        make_paper_database(), DeltaProgram.from_text(PAPER_PROGRAM_TEXT), verify=True,
    )


class TestExample13:
    """Example 1.3: the four results on the running example."""

    def test_end_result(self, engine):
        assert engine.repair(Semantics.END).size == 8

    def test_stage_result(self, engine):
        result = engine.repair(Semantics.STAGE)
        assert result.size == 7
        assert fact("Cite", 7, 6) not in result.deleted

    def test_step_result(self, engine):
        assert engine.repair(Semantics.STEP).deleted == frozenset(
            {
                fact("Grant", 2, "ERC"),
                fact("Author", 4, "Marge"),
                fact("Author", 5, "Homer"),
                fact("Writes", 4, 6),
                fact("Writes", 5, 7),
            },
        )

    def test_independent_result(self, engine):
        assert engine.repair(Semantics.INDEPENDENT).deleted == frozenset(
            {fact("Grant", 2, "ERC"), fact("AuthGrant", 4, 2), fact("AuthGrant", 5, 2)},
        )

    def test_example_1_2_stabilizing_sets(self, engine):
        """Every set listed in Example 1.2 (plus g2) stabilizes the database."""
        db = engine.database
        program = engine.program
        g2 = fact("Grant", 2, "ERC")
        candidates = [
            {g2, fact("Author", 4, "Marge"), fact("Author", 5, "Homer"),
             fact("Writes", 4, 6), fact("Writes", 5, 7), fact("Pub", 6, "x"),
             fact("Pub", 7, "y"), fact("Cite", 7, 6)},
            {g2, fact("Author", 4, "Marge"), fact("Author", 5, "Homer"),
             fact("Writes", 4, 6), fact("Writes", 5, 7)},
            {g2, fact("AuthGrant", 4, 2), fact("AuthGrant", 5, 2)},
        ]
        for candidate in candidates:
            assert is_stabilizing_set(db, program, candidate)


class TestProposition318:
    """A stabilizing set always exists: the whole database and every result."""

    def test_entire_database_is_stabilizing(self, engine):
        db = engine.database
        assert is_stabilizing_set(db, engine.program, set(db.all_active()))

    def test_every_semantics_result_is_stabilizing(self, engine):
        for semantics in Semantics:
            result = engine.repair(semantics)
            assert engine.is_stabilizing_set(result.deleted)


class TestProposition319:
    """Independent and step semantics may have several minimum results."""

    def setup_method(self):
        schema = Schema.from_arities({"R1": 1, "R2": 1})
        self.db = Database.from_dicts(schema, {"R1": [("a",)], "R2": [("b",)]})
        self.program = DeltaProgram.from_text(
            """
            delta R1(x) :- R1(x), R2(y).
            delta R2(y) :- R1(x), R2(y).
            """,
        )

    def test_two_minimum_stabilizing_sets_exist(self):
        minimums = all_minimum_stabilizing_sets(self.db, self.program)
        assert frozenset({fact("R1", "a")}) in minimums
        assert frozenset({fact("R2", "b")}) in minimums

    def test_solvers_return_one_of_them(self):
        engine = RepairEngine(self.db, self.program)
        for semantics in (Semantics.INDEPENDENT, Semantics.STEP):
            result = engine.repair(semantics)
            assert result.size == 1
            assert result.deleted in (
                frozenset({fact("R1", "a")}),
                frozenset({fact("R2", "b")}),
            )


class TestProposition320:
    """Size and containment relationships between the four results."""

    def test_relationships_on_paper_example(self, engine):
        report = engine.compare("paper")
        assert report.invariants_hold()

    def test_item_1_strict_case(self):
        """|Ind| can be strictly smaller than |Step| and |Stage|."""
        schema = Schema.from_arities({"R1": 1, "R2": 1})
        db = Database.from_dicts(
            schema, {"R1": [(f"a{i}",) for i in range(4)], "R2": [("b",)]},
        )
        program = DeltaProgram.from_text("delta R1(x) :- R1(x), R2(y).")
        results = RepairEngine(db, program).repair_all()
        report = compare_results(results, name="prop3.20-1")
        assert results[Semantics.INDEPENDENT].size == 1
        assert results[Semantics.STEP].size == 4
        assert report.invariants_hold()
        assert not report.ind_subset_of_step  # R2(b) is not derivable

    def test_items_2_and_3_strict_case(self):
        """Stage and Step can be strict subsets of End (the R1/R2/R3 chain)."""
        schema = Schema.from_arities({"R1": 1, "R2": 1, "R3": 1})
        db = Database.from_dicts(
            schema,
            {"R1": [("a",)], "R2": [("a",)], "R3": [(f"b{i}",) for i in range(3)]},
        )
        program = DeltaProgram.from_text(
            """
            delta R1(x) :- R1(x).
            delta R2(x) :- R2(x), delta R1(x).
            delta R3(y) :- R3(y), R1(x), delta R2(x).
            """,
        )
        results = RepairEngine(db, program).repair_all()
        assert results[Semantics.STAGE].deleted < results[Semantics.END].deleted
        assert results[Semantics.STEP].deleted < results[Semantics.END].deleted

    def test_item_4_step_strict_subset_of_stage(self):
        """Part 1 of Prop 3.20-4: Step ⊊ Stage on the two-same-body-rules gadget."""
        schema = Schema.from_arities({"R1": 1, "R2": 1})
        db = Database.from_dicts(
            schema, {"R1": [("a",)], "R2": [(f"b{i}",) for i in range(3)]},
        )
        program = DeltaProgram.from_text(
            """
            delta R1(x) :- R1(x), R2(y).
            delta R2(y) :- R1(x), R2(y).
            """,
        )
        results = RepairEngine(db, program).repair_all(
            semantics=(Semantics.STEP, Semantics.STAGE),
        )
        step, stage = results[Semantics.STEP], results[Semantics.STAGE]
        assert step.deleted < stage.deleted
        assert stage.size == 4 and step.size == 1

    def test_item_4_stage_strict_subset_of_step(self):
        """Part 2 of Prop 3.20-4: Stage ⊊ Step on the four-rule gadget (exhaustive step)."""
        schema = Schema.from_arities({"R1": 1, "R2": 1, "R3": 1})
        db = Database.from_dicts(
            schema,
            {"R1": [("a",)], "R2": [("b",)], "R3": [(f"c{i}",) for i in range(3)]},
        )
        program = DeltaProgram.from_text(
            """
            delta R1(x) :- R1(x), R2(y).
            delta R2(x) :- R1(y), R2(x).
            delta R3(z) :- R3(z), delta R1(x), R2(y).
            delta R3(z) :- R3(z), R1(x), delta R2(y).
            """,
        )
        engine = RepairEngine(db, program)
        stage = engine.repair(Semantics.STAGE)
        step = engine.repair(Semantics.STEP, method="exhaustive")
        # Stage deletes R1(a) and R2(b) in round one, so rules 3/4 can never fire;
        # step semantics must cascade into R3 whichever rule it fires first.
        assert stage.deleted == frozenset({fact("R1", "a"), fact("R2", "b")})
        assert len(step.deleted) > len(stage.deleted)
        assert fact("R3", "c0") in step.deleted
