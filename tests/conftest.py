"""Shared fixtures: the paper's running example and small reusable instances."""

from __future__ import annotations

import pytest

from repro import Database, DeltaProgram, RelationSchema, Schema
from repro.workloads.mas import generate_mas
from repro.workloads.tpch import generate_tpch

#: Figure 1 of the paper, keyed by the tuple identifiers used in the text.
PAPER_DATA = {
    "Grant": [(1, "NSF"), (2, "ERC")],
    "AuthGrant": [(2, 1), (4, 2), (5, 2)],
    "Author": [(2, "Maggie"), (4, "Marge"), (5, "Homer")],
    "Writes": [(4, 6), (5, 7)],
    "Pub": [(6, "x"), (7, "y")],
    "Cite": [(7, 6)],
}

#: Figure 2 of the paper (rules (0)-(4)).
PAPER_PROGRAM_TEXT = """
    delta Grant(g, n) :- Grant(g, n), n = 'ERC'.
    delta Author(a, n) :- Author(a, n), AuthGrant(a, g), delta Grant(g, gn).
    delta Pub(p, t) :- Pub(p, t), Writes(a, p), delta Author(a, n).
    delta Writes(a, p) :- Pub(p, t), Writes(a, p), delta Author(a, n).
    delta Cite(c, p) :- Cite(c, p), delta Pub(p, t), Writes(a1, c), Writes(a2, p).
"""


def make_paper_schema() -> Schema:
    """The academic schema of Figure 1."""
    return Schema.from_relations(
        [
            RelationSchema.of("Grant", "gid:int", "name:str"),
            RelationSchema.of("AuthGrant", "aid:int", "gid:int"),
            RelationSchema.of("Author", "aid:int", "name:str"),
            RelationSchema.of("Writes", "aid:int", "pid:int"),
            RelationSchema.of("Pub", "pid:int", "title:str"),
            RelationSchema.of("Cite", "citing:int", "cited:int"),
        ],
    )


def make_paper_database() -> Database:
    """A fresh copy of the Figure-1 instance."""
    return Database.from_dicts(make_paper_schema(), PAPER_DATA)


@pytest.fixture
def paper_schema() -> Schema:
    return make_paper_schema()


@pytest.fixture
def paper_db() -> Database:
    return make_paper_database()


@pytest.fixture
def paper_program() -> DeltaProgram:
    return DeltaProgram.from_text(PAPER_PROGRAM_TEXT)


@pytest.fixture(scope="session")
def small_mas():
    """A small, deterministic synthetic MAS instance shared across tests."""
    return generate_mas(scale=0.25, seed=11)


@pytest.fixture(scope="session")
def small_tpch():
    """A small, deterministic synthetic TPC-H instance shared across tests."""
    return generate_tpch(scale=0.25, seed=11)
