"""Unit tests for the datalog AST (repro.datalog.ast)."""

import pytest

from repro.datalog.ast import (
    Comparison,
    Constant,
    Program,
    Rule,
    Variable,
    make_atom,
)
from repro.exceptions import RuleValidationError


class TestTerms:
    def test_variable_and_constant_flags(self):
        assert Variable("x").is_variable()
        assert not Constant(3).is_variable()

    def test_constant_str_quotes_strings(self):
        assert str(Constant("ERC")) == "'ERC'"
        assert str(Constant(3)) == "3"


class TestAtom:
    def test_make_atom_converts_terms(self):
        atom = make_atom("Author", "a", 4, delta=True)
        assert atom.is_delta
        assert atom.terms == (Variable("a"), Constant(4))

    def test_variables_and_constants(self):
        atom = make_atom("R", "x", 1, "x")
        assert atom.variable_names() == frozenset({"x"})
        assert len(atom.variables()) == 2
        assert atom.constants() == (Constant(1),)

    def test_as_delta_and_as_base(self):
        atom = make_atom("R", "x")
        assert atom.as_delta().is_delta
        assert atom.as_delta().as_base() == atom

    def test_substitute(self):
        atom = make_atom("R", "x", "y")
        grounded = atom.substitute({"x": 1})
        assert grounded.terms == (Constant(1), Variable("y"))

    def test_str_rendering(self):
        assert str(make_atom("R", "x", delta=True)) == "delta R(x)"


class TestComparison:
    def test_invalid_operator_rejected(self):
        with pytest.raises(RuleValidationError):
            Comparison(Variable("x"), "~", Constant(1))

    @pytest.mark.parametrize(
        "op,left,right,expected",
        [
            ("=", 1, 1, True),
            ("!=", 1, 2, True),
            ("<", 1, 2, True),
            ("<=", 2, 2, True),
            (">", 3, 2, True),
            (">=", 1, 2, False),
        ],
    )
    def test_operators(self, op, left, right, expected):
        comparison = Comparison(Variable("x"), op, Constant(right))
        assert comparison.evaluate({"x": left}) is expected

    def test_is_ground(self):
        comparison = Comparison(Variable("x"), "<", Variable("y"))
        assert not comparison.is_ground({"x": 1})
        assert comparison.is_ground({"x": 1, "y": 2})

    def test_mixed_type_comparison_is_false_not_error(self):
        comparison = Comparison(Variable("x"), "<", Constant("abc"))
        assert comparison.evaluate({"x": 1}) is False


class TestRule:
    def make_rule(self) -> Rule:
        return Rule(
            head=make_atom("R", "x", delta=True),
            body=(make_atom("R", "x"), make_atom("S", "x", "y")),
            comparisons=(Comparison(Variable("y"), ">", Constant(0)),),
            name="r1",
        )

    def test_empty_body_rejected(self):
        with pytest.raises(RuleValidationError):
            Rule(make_atom("R", "x", delta=True), ())

    def test_variables(self):
        assert self.make_rule().variables() == frozenset({"x", "y"})

    def test_body_relations_split_by_delta(self):
        rule = Rule(
            make_atom("R", "x", delta=True),
            (make_atom("R", "x"), make_atom("S", "x", delta=True)),
        )
        assert rule.body_relations() == frozenset({"R"})
        assert rule.delta_body_relations() == frozenset({"S"})
        assert rule.relations() == frozenset({"R", "S"})

    def test_safety(self):
        unsafe = Rule(make_atom("R", "x", "z", delta=True), (make_atom("R", "x", "y"),))
        assert not unsafe.is_safe()
        assert self.make_rule().is_safe()

    def test_guard_atom(self):
        assert self.make_rule().guard_atom() == make_atom("R", "x")
        no_guard = Rule(make_atom("R", "x", delta=True), (make_atom("S", "x", "y"),))
        assert no_guard.guard_atom() is None

    def test_display_name_and_rename(self):
        rule = self.make_rule()
        assert rule.display_name() == "r1"
        assert rule.rename("other").display_name() == "other"

    def test_str(self):
        assert "delta R(x) :- " in str(self.make_rule())


class TestProgram:
    def test_collection_protocol(self):
        rule = Rule(make_atom("R", "x", delta=True), (make_atom("R", "x"),))
        program = Program.of(rule)
        assert len(program) == 1
        assert program[0] is rule
        assert list(program) == [rule]

    def test_head_relations_and_rules_for_head(self):
        r1 = Rule(make_atom("R", "x", delta=True), (make_atom("R", "x"),))
        r2 = Rule(make_atom("S", "x", delta=True), (make_atom("S", "x"),))
        program = Program.of(r1, r2)
        assert program.head_relations() == frozenset({"R", "S"})
        assert program.rules_for_head("R") == (r1,)

    def test_extended_preserves_order(self):
        r1 = Rule(make_atom("R", "x", delta=True), (make_atom("R", "x"),))
        r2 = Rule(make_atom("S", "x", delta=True), (make_atom("S", "x"),))
        program = Program.of(r1).extended([r2])
        assert program.rules == (r1, r2)
