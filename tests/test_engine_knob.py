"""The ``engine=`` knob must reject unknown names uniformly, as a ValueError.

Every fixpoint consumer — ``derive_closure`` / ``run_closure``, the four
semantics, the provenance builders and ``RepairEngine`` — takes the knob; an
unknown string must raise :class:`~repro.exceptions.UnknownEngineError`
(a :class:`ValueError` subclass) whose message lists the valid choices, on
both storage backends, instead of silently falling back or failing deep inside
an evaluation round.
"""

from __future__ import annotations

import pytest

from repro.core.repair import RepairEngine
from repro.core.semantics import (
    end_semantics,
    independent_semantics,
    stage_semantics,
    step_semantics,
)
from repro.datalog.delta import DeltaProgram
from repro.datalog.evaluation import (
    ENGINE_CHOICES,
    derive_closure,
    resolve_engine,
    run_closure,
    validate_engine,
)
from repro.exceptions import EvaluationError, UnknownEngineError
from repro.provenance.boolean import build_boolean_provenance
from repro.provenance.graph import build_provenance_graph
from repro.storage.database import Database
from repro.storage.schema import RelationSchema, Schema
from repro.storage.sqlite_backend import SQLiteDatabase

BAD_ENGINES = ("bogus", "semi", "SEMI-NAIVE", "")


def small_instance():
    schema = Schema.from_relations(
        [RelationSchema.of("R", "x:int"), RelationSchema.of("S", "x:int")],
    )
    db = Database.from_dicts(schema, {"R": [(1,), (2,)], "S": [(1,)]})
    program = DeltaProgram.from_text("delta R(x) :- R(x), S(x).")
    return db, program


@pytest.fixture(params=["memory", "sqlite"])
def db_and_program(request):
    db, program = small_instance()
    if request.param == "sqlite":
        db = SQLiteDatabase.from_database(db)
    return db, program


@pytest.mark.parametrize("bad", BAD_ENGINES)
class TestUnknownEngineRejected:
    def test_validate_and_resolve(self, bad, db_and_program):
        db, _ = db_and_program
        with pytest.raises(ValueError):
            validate_engine(bad)
        with pytest.raises(ValueError):
            resolve_engine(db, bad)

    def test_closure_entry_points(self, bad, db_and_program):
        db, program = db_and_program
        with pytest.raises(ValueError):
            derive_closure(db.clone(), program, engine=bad)
        with pytest.raises(ValueError):
            run_closure(db.clone(), program, engine=bad)

    def test_all_four_semantics(self, bad, db_and_program):
        db, program = db_and_program
        for compute in (
            end_semantics,
            stage_semantics,
            step_semantics,
            independent_semantics,
        ):
            with pytest.raises(ValueError):
                compute(db, program, engine=bad)

    def test_step_exhaustive_still_validates(self, bad, db_and_program):
        # The exhaustive search ignores the engine, but the knob must be
        # checked before it is ignored.
        db, program = db_and_program
        with pytest.raises(ValueError):
            step_semantics(db, program, method="exhaustive", engine=bad)

    def test_provenance_builders(self, bad, db_and_program):
        db, program = db_and_program
        with pytest.raises(ValueError):
            build_boolean_provenance(db, program, engine=bad)
        with pytest.raises(ValueError):
            build_provenance_graph(db, program, engine=bad)

    def test_repair_engine_constructor_and_call(self, bad, db_and_program):
        db, program = db_and_program
        with pytest.raises(ValueError):
            RepairEngine(db, program, engine=bad)
        engine = RepairEngine(db, program)
        with pytest.raises(ValueError):
            engine.repair("end", engine=bad)


class TestErrorShape:
    def test_message_lists_choices_and_offender(self):
        with pytest.raises(ValueError) as excinfo:
            validate_engine("bogus")
        message = str(excinfo.value)
        assert "bogus" in message
        for choice in ENGINE_CHOICES:
            assert repr(choice) in message

    def test_error_is_both_value_and_evaluation_error(self):
        # Callers catching the library hierarchy keep working.
        with pytest.raises(EvaluationError):
            validate_engine("bogus")
        with pytest.raises(UnknownEngineError):
            validate_engine("bogus")

    def test_known_engines_accepted(self, db_and_program):
        db, program = db_and_program
        for engine in ENGINE_CHOICES:
            validate_engine(engine)
            result = end_semantics(db, program, engine=engine)
            assert result.size == 1
        validate_engine(None)
