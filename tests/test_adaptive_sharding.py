"""Adaptive sharded execution tests.

Covers the adaptive layer on top of the sharded engine
(:mod:`repro.datalog.sharded`): dynamic shard collapse (tiny frontiers run
inline — zero pool jobs, zero sharded statements), the pipelined wave/merge
on SQLite reader connections, the shard-parallel stage-semantics discovery
joins, and the opt-in process pool for the in-memory backend — each with a
determinism differential pinning closures, tids and observer streams against
the serial execution, including across processes (``PYTHONHASHSEED``).
"""

from __future__ import annotations

import pytest

from repro.datalog import sharded
from repro.datalog.context import (
    COLLAPSE_ENV,
    EvalContext,
    PROCESS_POOL_ENV,
    SHARDS_ENV,
)
from repro.datalog.delta import DeltaProgram
from repro.datalog.evaluation import run_closure
from repro.datalog.planner import COLLAPSE_MIN_FRONTIER, effective_shard_count
from repro.datalog.sql_seminaive import (
    full_assignments_sql,
    seeded_assignments_sql,
)
from repro.storage.database import Database
from repro.storage.schema import RelationSchema, Schema
from repro.storage.sqlite_backend import SQLiteDatabase


def cascade_instance():
    """A three-relation cascade deep enough for several frontier rounds."""
    schema = Schema.from_relations(
        [
            RelationSchema.of("E", "x:int", "y:int"),
            RelationSchema.of("N", "x:int"),
        ],
    )
    edges = [(i, i + 1) for i in range(12)] + [(i, i + 2) for i in range(0, 10, 2)]
    db = Database.from_dicts(
        schema, {"E": edges, "N": [(i,) for i in range(14)]},
    )
    program = DeltaProgram.from_text(
        """
        delta N(x) :- N(x), x = 0.
        delta E(x, y) :- E(x, y), delta N(x).
        delta N(y) :- N(y), E(x, y), delta E(x, y).
        """,
    )
    return db, program


def labelled_state(db):
    return sorted((item.relation, item.values, item.tid) for item in db.all_deltas())


class TestCollapsePolicy:
    """The pure sizing function behind dynamic shard collapse."""

    def test_single_shard_never_fans_out(self):
        assert effective_shard_count(10_000, 1, 8) == 1

    def test_one_worker_always_collapses(self):
        assert effective_shard_count(10_000, 4, 1) == 1

    def test_small_frontier_collapses(self):
        assert effective_shard_count(COLLAPSE_MIN_FRONTIER - 1, 4, 4) == 1

    def test_large_frontier_fans_out_proportionally(self):
        minimum = COLLAPSE_MIN_FRONTIER
        assert effective_shard_count(minimum * 2, 4, 4) == 2
        assert effective_shard_count(minimum * 3, 4, 4) == 3
        # Never beyond the configured shard count.
        assert effective_shard_count(minimum * 100, 4, 4) == 4

    def test_minimum_zero_disables_collapse(self):
        assert effective_shard_count(0, 4, 1, minimum=0) == 4

    def test_context_threshold_resolution(self, monkeypatch):
        monkeypatch.delenv(COLLAPSE_ENV, raising=False)
        assert EvalContext().collapse_threshold() == COLLAPSE_MIN_FRONTIER
        assert EvalContext(collapse_min=7).collapse_threshold() == 7
        monkeypatch.setenv(COLLAPSE_ENV, "128")
        assert EvalContext().collapse_threshold() == 128
        # The explicit knob beats the environment.
        assert EvalContext(collapse_min=5).collapse_threshold() == 5
        monkeypatch.setenv(COLLAPSE_ENV, "not-a-number")
        assert EvalContext().collapse_threshold() == COLLAPSE_MIN_FRONTIER


class TestZeroJobContract:
    """shards=1 and fully-collapsed rounds never touch the worker pool.

    Closure-side mirror of the maintenance-side single-shard test in
    test_incremental.py: the never-slower contract is enforceable because a
    collapsed round is *observably* free of pool traffic.
    """

    def _count_leases(self, monkeypatch):
        leases = {"n": 0}
        original = sharded._acquire_pool

        def counting_acquire(workers):
            leases["n"] += 1
            return original(workers)

        monkeypatch.setattr(sharded, "_acquire_pool", counting_acquire)
        return leases

    @pytest.mark.parametrize("backend", ["memory", "sqlite-file"])
    def test_single_shard_submits_zero_pool_jobs(
        self, backend, tmp_path, monkeypatch,
    ):
        base, program = cascade_instance()
        leases = self._count_leases(monkeypatch)
        db = (
            base.clone()
            if backend == "memory"
            else SQLiteDatabase.from_database(base, path=str(tmp_path / "z1.db"))
        )
        ctx = EvalContext(shards=1, workers=1)
        run_closure(db, program, engine="sharded", context=ctx)
        assert leases["n"] == 0
        if isinstance(db, SQLiteDatabase):
            db.close()

    @pytest.mark.parametrize("backend", ["memory", "sqlite-file"])
    def test_collapsed_rounds_submit_zero_pool_jobs(
        self, backend, tmp_path, monkeypatch,
    ):
        # Multiple shards AND workers configured, but every frontier of this
        # instance is far below COLLAPSE_MIN_FRONTIER: every round collapses
        # and the pool must never be leased.
        base, program = cascade_instance()
        leases = self._count_leases(monkeypatch)
        db = (
            base.clone()
            if backend == "memory"
            else SQLiteDatabase.from_database(base, path=str(tmp_path / "zc.db"))
        )
        ctx = EvalContext(shards=4, workers=2)
        result = run_closure(db, program, engine="sharded", context=ctx)
        assert leases["n"] == 0
        assert ctx.stats.collapsed_rounds == result.rounds
        assert ctx.stats.pipelined_waves == 0
        # Every variant execution collapsed to one effective shard, and no
        # shard-partitioned SELECT ever ran (collapsed observing variants
        # still install through the merge path's executemany, so
        # ``shard_installs`` may be nonzero on SQLite).
        assert ctx.stats.effective_shards > 0
        assert ctx.stats.shard_selects == 0
        if isinstance(db, SQLiteDatabase):
            db.close()

    def test_disabling_collapse_restores_pool_fanout(self, tmp_path, monkeypatch):
        base, program = cascade_instance()
        leases = self._count_leases(monkeypatch)
        db = SQLiteDatabase.from_database(base, path=str(tmp_path / "zf.db"))
        ctx = EvalContext(shards=4, workers=2, collapse_min=0)
        run_closure(db, program, engine="sharded", context=ctx)
        assert leases["n"] > 0
        assert ctx.stats.collapsed_rounds == 0
        assert ctx.stats.shard_selects > 0
        db.close()


class TestPipelinedWaves:
    """Wave k+1's SELECTs overlap wave k's merge — results invariant."""

    def _run(self, base, program, tmp_path, tag, workers):
        db = SQLiteDatabase.from_database(base, path=str(tmp_path / f"{tag}.db"))
        ctx = EvalContext(shards=4, workers=workers, collapse_min=0)
        delivered = []
        ctx.add_observer(delivered.append)
        result = run_closure(db, program, engine="sharded", context=ctx)
        state = labelled_state(db)
        db.close()
        return state, [str(a) for a in delivered], result.rounds, ctx

    def test_pipelined_streams_match_sequential(self, tmp_path):
        base, program = cascade_instance()
        reference = self._run(base, program, tmp_path, "pipe1", workers=1)
        for workers in (2, 4):
            run = self._run(base, program, tmp_path, f"pipe{workers}", workers)
            # Byte-identical closure, tids, round count and observer stream.
            assert run[:3] == reference[:3]
            assert run[3].stats.pipelined_waves > 0
        # The sequential run has readers=None and thus nothing to pipeline.
        assert reference[3].stats.pipelined_waves == 0


class TestShardedDiscovery:
    """Stage-semantics discovery joins hash-partition over readers."""

    def _discovery_streams(self, base, program, db, shards, workers):
        ctx = EvalContext(shards=shards, workers=workers, collapse_min=0)
        observed = []
        ctx.add_observer(observed.append)
        stream = []
        for rule in program:
            stream += [
                str(a)
                for a in full_assignments_sql(
                    db, rule, db.generation(), context=ctx,
                )
            ]
            stream += [
                str(a)
                for a in seeded_assignments_sql(
                    db, rule, 0, db.generation(), context=ctx,
                )
            ]
        return stream, [str(a) for a in observed], ctx

    def test_sharded_discovery_matches_serial(self, tmp_path):
        base, program = cascade_instance()
        runs = {}
        for label, (shards, workers) in (
            ("serial", (1, 1)),
            ("sharded", (4, 2)),
            ("wide", (7, 3)),
        ):
            db = SQLiteDatabase.from_database(
                base, path=str(tmp_path / f"disc_{label}.db"),
            )
            run_closure(db, program, engine="semi-naive")
            runs[label] = self._discovery_streams(base, program, db, *(
                (shards, workers)
            ))
            db.close()
        assert runs["sharded"][2].stats.shard_selects > 0
        assert runs["wide"][2].stats.shard_selects > 0
        assert runs["serial"][2].stats.shard_selects == 0
        for label in ("sharded", "wide"):
            # Byte-identical enumeration AND observer delivery order.
            assert runs[label][0] == runs["serial"][0]
            assert runs[label][1] == runs["serial"][1]
        assert runs["serial"][0]

    def test_in_memory_database_falls_back_serially(self):
        base, program = cascade_instance()
        db = SQLiteDatabase.from_database(base)
        run_closure(db, program, engine="semi-naive")
        stream, observed, ctx = self._discovery_streams(base, program, db, 4, 2)
        # No reader connections: staging ran, sharding did not.
        assert ctx.stats.shard_selects == 0
        assert ctx.stats.staged_selects > 0
        assert stream == observed
        assert stream
        db.close()

    def test_collapse_keeps_small_discoveries_serial(self, tmp_path):
        base, program = cascade_instance()
        db = SQLiteDatabase.from_database(base, path=str(tmp_path / "dcoll.db"))
        run_closure(db, program, engine="semi-naive")
        ctx = EvalContext(shards=4, workers=2)  # default collapse threshold
        observed = []
        ctx.add_observer(observed.append)
        for rule in program:
            list(full_assignments_sql(db, rule, db.generation(), context=ctx))
        # Every extent of this instance is below the threshold.
        assert ctx.stats.shard_selects == 0
        assert ctx.stats.staged_selects > 0
        assert observed
        db.close()


class TestProcessPool:
    """Opt-in multiprocessing pool for the in-memory backend."""

    def _run(self, base, program, process_pool):
        db = base.clone()
        ctx = EvalContext(
            shards=4, workers=2, process_pool=process_pool, collapse_min=0,
        )
        delivered = []
        ctx.add_observer(delivered.append)
        result = run_closure(db, program, engine="sharded", context=ctx)
        return labelled_state(db), [str(a) for a in delivered], result.rounds

    def test_env_gate(self, monkeypatch):
        monkeypatch.delenv(PROCESS_POOL_ENV, raising=False)
        assert not EvalContext().wants_process_pool()
        monkeypatch.setenv(PROCESS_POOL_ENV, "1")
        assert EvalContext().wants_process_pool()
        monkeypatch.setenv(PROCESS_POOL_ENV, "0")
        assert not EvalContext().wants_process_pool()
        # The explicit knob beats the environment.
        monkeypatch.setenv(PROCESS_POOL_ENV, "1")
        assert not EvalContext(process_pool=False).wants_process_pool()

    def test_process_pool_matches_thread_pool(self):
        base, program = cascade_instance()
        threads = self._run(base, program, process_pool=False)
        procs = self._run(base, program, process_pool=True)
        # Byte-identical closure, tids, rounds and observer stream.
        assert procs == threads

    def test_candidate_observers_fall_back_to_threads(self):
        # Candidate probes happen inside the shard jobs; a process pool
        # cannot deliver them to the parent's observer, so the driver must
        # silently run this closure on the thread pool instead.
        base, program = cascade_instance()

        def probe_counts(process_pool):
            db = base.clone()
            ctx = EvalContext(
                shards=4, workers=2, process_pool=process_pool, collapse_min=0,
            )
            seen = []
            ctx.add_candidate_observer(lambda rel, item: seen.append((rel, item)))
            run_closure(db, program, engine="sharded", context=ctx)
            return seen, labelled_state(db)

        reference, ref_state = probe_counts(False)
        observed, state = probe_counts(True)
        assert observed == reference
        assert state == ref_state
        assert len(observed) > 0

    def test_fact_pickling_round_trip(self):
        import pickle

        from repro.storage.facts import fact

        item = fact("R", 1, "x", tid="r1")
        clone = pickle.loads(pickle.dumps(item))
        assert clone == item
        assert clone.tid == "r1"
        assert clone.values == (1, "x")


class TestCrossProcessDeterminism:
    """The adaptive paths must not depend on the process (PYTHONHASHSEED)."""

    SCRIPT = """
import json

from repro.datalog.context import EvalContext
from repro.datalog.delta import DeltaProgram
from repro.datalog.evaluation import run_closure
from repro.datalog.sql_seminaive import full_assignments_sql
from repro.storage.database import Database
from repro.storage.schema import RelationSchema, Schema
from repro.storage.sqlite_backend import SQLiteDatabase

schema = Schema.from_relations(
    [
        RelationSchema.of("E", "x:str", "y:str"),
        RelationSchema.of("N", "x:str"),
        RelationSchema.of("S", "x:str"),
    ]
)
nodes = ["n%d" % i for i in range(14)]
edges = [(nodes[i], nodes[i + 1]) for i in range(12)]
edges += [(nodes[i], nodes[i + 2]) for i in range(0, 10, 2)]
base = Database.from_dicts(
    schema, {"E": edges, "N": [(n,) for n in nodes], "S": [(nodes[0],)]}
)
program = DeltaProgram.from_text(
    \"\"\"
    delta N(x) :- N(x), S(x).
    delta E(x, y) :- E(x, y), delta N(x).
    delta N(y) :- N(y), E(x, y), delta E(x, y).
    \"\"\"
)
payload = {}

# Process-pool closure on the in-memory backend.
db = base.clone()
ctx = EvalContext(shards=4, workers=2, process_pool=True, collapse_min=0)
delivered = []
ctx.add_observer(delivered.append)
result = run_closure(db, program, engine="sharded", context=ctx)
payload["process-pool"] = {
    "rounds": result.rounds,
    "closure": sorted(
        [item.relation, list(item.values), item.tid] for item in db.all_deltas()
    ),
    "stream": [str(a) for a in delivered],
}

# Pipelined closure + sharded discovery on a file-backed database.
import tempfile, os
with tempfile.TemporaryDirectory() as td:
    db = SQLiteDatabase.from_database(base, path=os.path.join(td, "x.db"))
    ctx = EvalContext(shards=4, workers=2, collapse_min=0)
    delivered = []
    ctx.add_observer(delivered.append)
    result = run_closure(db, program, engine="sharded", context=ctx)
    discovery_ctx = EvalContext(shards=4, workers=2, collapse_min=0)
    observed = []
    discovery_ctx.add_observer(observed.append)
    discovery = []
    for rule in program:
        discovery += [
            str(a)
            for a in full_assignments_sql(
                db, rule, db.generation(), context=discovery_ctx,
            )
        ]
    payload["pipelined"] = {
        "rounds": result.rounds,
        "closure": sorted(
            [item.relation, list(item.values), item.tid]
            for item in db.all_deltas()
        ),
        "stream": [str(a) for a in delivered],
        "discovery": discovery,
        "discovery_stream": [str(a) for a in observed],
        "discovery_sharded": discovery_ctx.stats.shard_selects > 0,
    }
    db.close()
print(json.dumps(payload, sort_keys=True))
"""

    def test_adaptive_paths_match_across_hash_seeds(self):
        import json
        import os
        import subprocess
        import sys
        from pathlib import Path

        import repro

        src_root = str(Path(repro.__file__).resolve().parents[1])
        outputs = []
        for seed in ("1", "2"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = seed
            env["PYTHONPATH"] = src_root
            env.pop(SHARDS_ENV, None)
            env.pop(PROCESS_POOL_ENV, None)
            env.pop(COLLAPSE_ENV, None)
            proc = subprocess.run(
                [sys.executable, "-c", self.SCRIPT],
                capture_output=True,
                text=True,
                env=env,
                timeout=180,
            )
            assert proc.returncode == 0, proc.stderr
            outputs.append(proc.stdout)
        # Byte-identical payloads across hash seeds: same closures, tids,
        # round counts, observer and discovery streams on every new path.
        assert outputs[0] == outputs[1]
        payload = json.loads(outputs[0])
        assert payload["process-pool"]["rounds"] >= 3
        assert payload["process-pool"]["stream"]
        assert payload["pipelined"]["discovery_sharded"] is True
        assert payload["pipelined"]["discovery"]
        assert (
            payload["pipelined"]["discovery"]
            == payload["pipelined"]["discovery_stream"]
        )
