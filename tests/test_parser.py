"""Unit tests for the textual rule syntax (repro.datalog.parser)."""

import pytest

from repro.datalog.ast import Constant, Variable
from repro.datalog.parser import parse_program, parse_rule
from repro.exceptions import ParseError


class TestParseRule:
    def test_simple_rule(self):
        rule = parse_rule("delta R(x) :- R(x), S(x, y).")
        assert rule.head.is_delta and rule.head.relation == "R"
        assert [atom.relation for atom in rule.body] == ["R", "S"]

    def test_delta_marker_variants(self):
        for text in ("delta R(x) :- R(x).", "ΔR(x) :- R(x).", "*R(x) :- R(x)."):
            rule = parse_rule(text)
            assert rule.head.is_delta

    def test_delta_body_atom(self):
        rule = parse_rule("delta R(x) :- R(x), delta S(x).")
        assert rule.body[1].is_delta

    def test_string_constant(self):
        rule = parse_rule("delta R(x, n) :- R(x, n), n = 'ERC'.")
        assert rule.comparisons[0].rhs == Constant("ERC")

    def test_double_quoted_string_constant(self):
        rule = parse_rule('delta R(x, n) :- R(x, n), n = "ERC".')
        assert rule.comparisons[0].rhs == Constant("ERC")

    def test_numeric_constants(self):
        rule = parse_rule("delta R(x) :- R(x), x < 10, x >= 1.5.")
        assert rule.comparisons[0].rhs == Constant(10)
        assert rule.comparisons[1].rhs == Constant(1.5)

    def test_negative_number(self):
        rule = parse_rule("delta R(x) :- R(x), x > -3.")
        assert rule.comparisons[0].rhs == Constant(-3)

    def test_constant_inside_atom(self):
        rule = parse_rule("delta R(x, 5) :- R(x, 5).")
        assert rule.head.terms[1] == Constant(5)

    def test_all_comparison_operators(self):
        rule = parse_rule(
            "delta R(a, b) :- R(a, b), a = 1, a != 2, a < 3, a <= 4, a > 0, a >= 1, b <> 9.",
        )
        operators = [comparison.op for comparison in rule.comparisons]
        assert operators == ["=", "!=", "<", "<=", ">", ">=", "!="]

    def test_named_rule(self):
        rule = parse_rule("[cascade] delta R(x) :- R(x).")
        assert rule.name == "cascade"

    def test_variable_terms(self):
        rule = parse_rule("delta R(x, y) :- R(x, y).")
        assert rule.head.terms == (Variable("x"), Variable("y"))

    def test_alternative_implication_arrow(self):
        rule = parse_rule("delta R(x) <- R(x).")
        assert rule.head.relation == "R"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("delta R(x) :- R(x). garbage")

    def test_missing_implication_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("delta R(x) R(x).")

    def test_unexpected_character_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("delta R(x) :- R(x) & S(x).")

    def test_unterminated_atom_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("delta R(x :- R(x).")

    def test_error_carries_location(self):
        with pytest.raises(ParseError) as excinfo:
            parse_rule("delta R(x) :-\n R(x) ? S(x).")
        assert "line 2" in str(excinfo.value)


class TestParseProgram:
    def test_multiple_rules_and_comments(self):
        program = parse_program(
            """
            % seed rule
            delta G(g, n) :- G(g, n), n = 'ERC'.
            # cascade
            delta A(a) :- A(a), AG(a, g), delta G(g, n).
            """,
        )
        assert len(program) == 2
        assert program[1].body[2].is_delta

    def test_empty_program(self):
        assert len(parse_program("")) == 0
        assert len(parse_program("% nothing but comments\n")) == 0

    def test_round_trip_through_str(self):
        source = "delta R(x) :- R(x), S(x, y), y > 3."
        rule = parse_rule(source)
        reparsed = parse_rule(str(rule) + ".")
        assert reparsed.head == rule.head
        assert reparsed.body == rule.body
        assert reparsed.comparisons == rule.comparisons
