"""Unit tests for delta-program validation (repro.datalog.delta)."""

import pytest

from repro.datalog.ast import Program
from repro.datalog.delta import (
    DeltaProgram,
    deletion_request_rule,
    selection_request_rule,
    validate_delta_rule,
)
from repro.datalog.parser import parse_rule
from repro.exceptions import ProgramValidationError, RuleValidationError
from repro.storage.facts import fact
from repro.storage.schema import Schema


class TestValidateDeltaRule:
    def test_valid_rule_passes(self):
        validate_delta_rule(parse_rule("delta R(x) :- R(x), S(x)."))

    def test_non_delta_head_rejected(self):
        rule = parse_rule("delta R(x) :- R(x).")
        base_head_rule = type(rule)(rule.head.as_base(), rule.body)
        with pytest.raises(RuleValidationError):
            validate_delta_rule(base_head_rule)

    def test_unsafe_rule_rejected(self):
        with pytest.raises(RuleValidationError):
            validate_delta_rule(parse_rule("delta R(x, z) :- R(x, y)."))

    def test_missing_guard_rejected(self):
        with pytest.raises(RuleValidationError):
            validate_delta_rule(parse_rule("delta R(x) :- S(x)."))

    def test_guard_check_can_be_disabled(self):
        validate_delta_rule(parse_rule("delta R(x) :- S(x)."), require_guard=False)


class TestDeltaProgram:
    def test_from_text_validates(self):
        program = DeltaProgram.from_text("delta R(x) :- R(x), S(x).")
        assert len(program) == 1

    def test_invalid_rule_rejected(self):
        with pytest.raises(RuleValidationError):
            DeltaProgram.from_text("delta R(x) :- S(x).")

    def test_duplicate_rules_rejected(self):
        with pytest.raises(ProgramValidationError):
            DeltaProgram.from_text(
                "delta R(x) :- R(x), S(x). delta R(x) :- R(x), S(x).",
            )

    def test_collection_protocol(self):
        program = DeltaProgram.from_text("delta R(x) :- R(x). delta S(x) :- S(x).")
        assert len(program) == 2
        assert program[0].head.relation == "R"
        assert [rule.head.relation for rule in program] == ["R", "S"]

    def test_head_and_all_relations(self):
        program = DeltaProgram.from_text("delta R(x) :- R(x), S(x).")
        assert program.head_relations() == frozenset({"R"})
        assert program.relations() == frozenset({"R", "S"})

    def test_validate_against_schema_accepts_matching(self):
        program = DeltaProgram.from_text("delta R(x) :- R(x), S(x).")
        program.validate_against_schema(Schema.from_arities({"R": 1, "S": 1}))

    def test_validate_against_schema_unknown_relation(self):
        program = DeltaProgram.from_text("delta R(x) :- R(x), S(x).")
        with pytest.raises(ProgramValidationError):
            program.validate_against_schema(Schema.from_arities({"R": 1}))

    def test_validate_against_schema_arity_mismatch(self):
        program = DeltaProgram.from_text("delta R(x) :- R(x), S(x).")
        with pytest.raises(ProgramValidationError):
            program.validate_against_schema(Schema.from_arities({"R": 2, "S": 1}))

    def test_with_rules_extends(self):
        program = DeltaProgram.from_text("delta R(x) :- R(x).")
        extended = program.with_rules([parse_rule("delta S(x) :- S(x).")])
        assert len(extended) == 2
        assert len(program) == 1

    def test_empty_program_allowed(self):
        assert len(DeltaProgram(Program())) == 0


class TestRequestRules:
    def test_deletion_request_rule_shape(self):
        rule = deletion_request_rule(fact("Grant", 2, "ERC"))
        assert rule.head.is_delta
        assert str(rule) == "delta Grant(2, 'ERC') :- Grant(2, 'ERC')"

    def test_with_deletion_requests(self):
        program = DeltaProgram.from_text("delta R(x) :- R(x), delta Grant(g, n).")
        extended = program.with_deletion_requests([fact("Grant", 2, "ERC")])
        assert len(extended) == 2
        assert extended[1].name == "request_0"

    def test_selection_request_rule(self):
        rule = selection_request_rule("Writes", 2, 0, "=", 4)
        assert rule.head.relation == "Writes"
        assert rule.comparisons[0].op == "="
        validate_delta_rule(rule)
