"""Unit tests for the CNF container (repro.solver.cnf)."""

import pytest

from repro.exceptions import SolverError
from repro.solver.cnf import (
    CNF,
    FactVariableMap,
    literal_is_positive,
    literal_variable,
)


class TestLiterals:
    def test_variable_and_sign(self):
        assert literal_variable(-3) == 3
        assert literal_variable(3) == 3
        assert literal_is_positive(3)
        assert not literal_is_positive(-3)


class TestCNF:
    def test_add_clause_and_counts(self):
        cnf = CNF.from_clauses([[1, 2], [-1, 3]])
        assert cnf.clause_count == 2
        assert cnf.variable_count == 3
        assert cnf.variables() == frozenset({1, 2, 3})

    def test_empty_clause_rejected(self):
        with pytest.raises(SolverError):
            CNF().add_clause([])

    def test_zero_literal_rejected(self):
        with pytest.raises(SolverError):
            CNF().add_clause([0])

    def test_satisfaction_with_default_false(self):
        cnf = CNF.from_clauses([[1, 2], [-3]])
        assert cnf.is_satisfied_by({1: True})
        assert not cnf.is_satisfied_by({})  # clause [1,2] needs a True
        assert cnf.is_satisfied_by({2: True, 3: False})
        assert not cnf.is_satisfied_by({2: True, 3: True})

    def test_unsatisfied_clauses(self):
        cnf = CNF.from_clauses([[1], [2]])
        failing = cnf.unsatisfied_clauses({1: True})
        assert failing == [frozenset({2})]

    def test_simplified_removes_tautologies(self):
        cnf = CNF.from_clauses([[1, -1], [2]])
        assert cnf.simplified().clause_count == 1

    def test_simplified_removes_subsumed_clauses(self):
        cnf = CNF.from_clauses([[1], [1, 2], [2, 3]])
        simplified = cnf.simplified()
        assert frozenset({1, 2}) not in simplified.clauses
        assert simplified.clause_count == 2

    def test_components_split_on_shared_variables(self):
        cnf = CNF.from_clauses([[1, 2], [2, 3], [4, 5]])
        components = cnf.components()
        sizes = sorted(component.variable_count for component in components)
        assert len(components) == 2
        assert sizes == [2, 3]

    def test_components_of_empty_formula(self):
        assert CNF().components() == []

    def test_str_rendering(self):
        text = str(CNF.from_clauses([[1, -2]]))
        assert "x1" in text and "¬x2" in text
        assert str(CNF()) == "⊤"


class TestFactVariableMap:
    def test_round_trip(self):
        mapping = FactVariableMap.from_keys(["a", "b", "c"])
        assert mapping.key_to_var == {"a": 1, "b": 2, "c": 3}
        assert mapping.var_to_key[2] == "b"
        assert len(mapping) == 3
