"""Unit tests for the in-memory storage engine (repro.storage.database)."""

import pytest

from repro.exceptions import ArityMismatchError, StorageError, UnknownRelationError
from repro.storage.database import Database, stabilized_copy
from repro.storage.facts import Fact, fact
from repro.storage.schema import Schema


@pytest.fixture
def schema() -> Schema:
    return Schema.from_arities({"R": 2, "S": 1})


@pytest.fixture
def db(schema: Schema) -> Database:
    return Database.from_dicts(schema, {"R": [(1, "a"), (2, "b")], "S": [(1,)]})


class TestConstruction:
    def test_from_dicts_counts(self, db: Database):
        assert db.count_active("R") == 2
        assert db.count_active("S") == 1
        assert db.count_active() == 3
        assert db.count_delta() == 0

    def test_from_facts(self, schema: Schema):
        built = Database.from_facts(schema, [fact("R", 1, "a"), fact("S", 2)])
        assert built.count_active() == 2

    def test_insert_assigns_tid(self, schema: Schema):
        built = Database(schema)
        built.insert(fact("R", 1, "a"))
        stored = next(iter(built.active_facts("R")))
        assert stored.tid is not None

    def test_insert_preserves_existing_tid(self, schema: Schema):
        built = Database(schema)
        built.insert(fact("R", 1, "a", tid="g2"))
        assert next(iter(built.active_facts("R"))).tid == "g2"


class TestValidation:
    def test_unknown_relation_rejected(self, db: Database):
        with pytest.raises(UnknownRelationError):
            db.insert(fact("T", 1))
        with pytest.raises(UnknownRelationError):
            db.active_facts("T")

    def test_arity_mismatch_rejected(self, db: Database):
        with pytest.raises(ArityMismatchError):
            db.insert(fact("R", 1))


class TestMutation:
    def test_delete_moves_to_delta(self, db: Database):
        assert db.delete(fact("R", 1, "a"))
        assert not db.has_active(fact("R", 1, "a"))
        assert db.has_delta(fact("R", 1, "a"))
        assert db.count_active("R") == 1
        assert db.count_delta("R") == 1

    def test_delete_is_idempotent_on_delta(self, db: Database):
        db.delete(fact("R", 1, "a"))
        assert not db.delete(fact("R", 1, "a"))

    def test_mark_deleted_keeps_active(self, db: Database):
        db.mark_deleted(fact("R", 1, "a"))
        assert db.has_active(fact("R", 1, "a"))
        assert db.has_delta(fact("R", 1, "a"))

    def test_drop_active_only(self, db: Database):
        assert db.drop_active(fact("R", 1, "a"))
        assert not db.has_active(fact("R", 1, "a"))
        assert not db.has_delta(fact("R", 1, "a"))

    def test_insert_all_and_delete_all(self, schema: Schema):
        built = Database(schema)
        assert built.insert_all([fact("S", 1), fact("S", 2), fact("S", 1)]) == 2
        assert built.delete_all([fact("S", 1), fact("S", 2)]) == 2
        assert built.count_delta("S") == 2

    def test_reset_deltas(self, db: Database):
        db.delete(fact("R", 1, "a"))
        db.reset_deltas()
        assert db.count_delta() == 0
        assert db.count_active("R") == 1


class TestQueries:
    def test_candidates_active_and_delta(self, db: Database):
        db.delete(fact("R", 2, "b"))
        active = set(db.candidates("R", {0: 1}))
        deltas = set(db.candidates("R", {0: 2}, delta=True))
        assert active == {fact("R", 1, "a")}
        assert deltas == {fact("R", 2, "b")}

    def test_all_active_and_all_deltas(self, db: Database):
        db.delete(fact("S", 1))
        assert set(db.all_active()) == {fact("R", 1, "a"), fact("R", 2, "b")}
        assert set(db.all_deltas()) == {fact("S", 1)}

    def test_state_and_equality(self, db: Database):
        other = db.clone()
        assert db.same_state_as(other)
        assert db == other
        other.delete(fact("R", 1, "a"))
        assert db != other

    def test_summary_mentions_counts(self, db: Database):
        text = db.summary()
        assert "active=3" in text and "delta=0" in text

    def test_not_hashable(self, db: Database):
        with pytest.raises(TypeError):
            hash(db)


class TestClone:
    def test_clone_is_deep(self, db: Database):
        copy = db.clone()
        copy.delete(fact("R", 1, "a"))
        assert db.has_active(fact("R", 1, "a"))
        assert not db.has_delta(fact("R", 1, "a"))

    def test_clone_preserves_deltas(self, db: Database):
        db.delete(fact("S", 1))
        copy = db.clone()
        assert copy.has_delta(fact("S", 1))


class TestStabilizedCopy:
    def test_builds_d_minus_s_union_delta_s(self, db: Database):
        repaired = stabilized_copy(db, [fact("R", 1, "a")])
        assert not repaired.has_active(fact("R", 1, "a"))
        assert repaired.has_delta(fact("R", 1, "a"))
        assert db.has_active(fact("R", 1, "a"))  # the original is untouched

    def test_rejects_foreign_tuples(self, db: Database):
        with pytest.raises(StorageError):
            stabilized_copy(db, [Fact("R", (99, "zz"))])
