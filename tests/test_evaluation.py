"""Unit tests for assignment enumeration and closures (repro.datalog.evaluation)."""

import pytest

from repro.datalog.delta import DeltaProgram
from repro.datalog.evaluation import (
    Assignment,
    derive_closure,
    find_all_assignments,
    find_assignments,
    ground_head,
    is_rule_satisfied,
)
from repro.datalog.parser import parse_rule
from repro.exceptions import EvaluationError
from repro.storage.database import Database
from repro.storage.facts import fact
from repro.storage.schema import Schema


@pytest.fixture
def schema() -> Schema:
    return Schema.from_arities({"R": 2, "S": 2, "T": 1})


@pytest.fixture
def db(schema: Schema) -> Database:
    return Database.from_dicts(
        schema,
        {"R": [(1, "a"), (2, "b")], "S": [(1, 10), (1, 20), (3, 30)], "T": [(1,)]},
    )


class TestFindAssignments:
    def test_simple_join(self, db):
        rule = parse_rule("delta R(x, y) :- R(x, y), S(x, z).")
        assignments = find_assignments(db, rule)
        assert len(assignments) == 2  # R(1,a) joins with two S tuples
        assert {a.derived for a in assignments} == {fact("R", 1, "a")}

    def test_constants_in_atoms(self, db):
        rule = parse_rule("delta R(x, 'b') :- R(x, 'b').")
        assignments = find_assignments(db, rule)
        assert [a.derived for a in assignments] == [fact("R", 2, "b")]

    def test_comparison_filters(self, db):
        rule = parse_rule("delta S(x, z) :- S(x, z), z > 15.")
        derived = {a.derived for a in find_assignments(db, rule)}
        assert derived == {fact("S", 1, 20), fact("S", 3, 30)}

    def test_repeated_variable_within_atom(self, schema):
        db = Database.from_dicts(schema, {"R": [(1, 1), (1, 2)]})
        rule = parse_rule("delta R(x, x) :- R(x, x).")
        derived = {a.derived for a in find_assignments(db, rule)}
        assert derived == {fact("R", 1, 1)}

    def test_delta_atom_matches_only_recorded_deletions(self, db):
        rule = parse_rule("delta R(x, y) :- R(x, y), delta T(x).")
        assert find_assignments(db, rule) == []
        db.delete(fact("T", 1))
        derived = {a.derived for a in find_assignments(db, rule)}
        assert derived == {fact("R", 1, "a")}

    def test_hypothetical_deltas_match_active_tuples(self, db):
        rule = parse_rule("delta R(x, y) :- R(x, y), delta T(x).")
        derived = {
            a.derived for a in find_assignments(db, rule, hypothetical_deltas=True)
        }
        assert derived == {fact("R", 1, "a")}

    def test_unbound_comparison_variable_raises(self, db):
        rule = parse_rule("delta R(x, y) :- R(x, y), w > 3.")
        with pytest.raises(EvaluationError):
            find_assignments(db, rule)

    def test_assignment_exposes_used_facts_in_body_order(self, db):
        rule = parse_rule("delta R(x, y) :- R(x, y), S(x, z).")
        assignment = find_assignments(db, rule)[0]
        assert assignment.used[0][0].relation == "R"
        assert assignment.used[1][0].relation == "S"
        assert assignment.base_facts()[0] == fact("R", 1, "a")
        assert assignment.delta_facts() == ()

    def test_assignment_bindings(self, db):
        rule = parse_rule("delta T(x) :- T(x), R(x, y).")
        assignment = find_assignments(db, rule)[0]
        assert assignment.binding_map == {"x": 1, "y": "a"}

    def test_signature_distinguishes_used_facts(self, db):
        rule = parse_rule("delta R(x, y) :- R(x, y), S(x, z).")
        signatures = {a.signature() for a in find_assignments(db, rule)}
        assert len(signatures) == 2

    def test_no_assignment_when_join_fails(self, db):
        rule = parse_rule("delta R(x, y) :- R(x, y), S(x, z), z > 1000.")
        assert not is_rule_satisfied(db, rule)


class TestGroundHead:
    def test_grounds_variables_and_constants(self):
        rule = parse_rule("delta R(x, 'k') :- R(x, 'k').")
        assert ground_head(rule, {"x": 7}) == fact("R", 7, "k")

    def test_missing_binding_raises(self):
        rule = parse_rule("delta R(x, y) :- R(x, y).")
        with pytest.raises(EvaluationError):
            ground_head(rule, {"x": 7})


class TestClosure:
    def test_find_all_assignments_covers_all_rules(self, db):
        program = DeltaProgram.from_text(
            "delta T(x) :- T(x). delta R(x, y) :- R(x, y), S(x, z).",
        )
        assignments = find_all_assignments(db, program)
        assert {a.rule.head.relation for a in assignments} == {"T", "R"}

    def test_derive_closure_marks_without_deleting(self, schema):
        db = Database.from_dicts(schema, {"T": [(1,)], "R": [(1, "a")], "S": []})
        program = DeltaProgram.from_text(
            "delta T(x) :- T(x). delta R(x, y) :- R(x, y), delta T(x).",
        )
        assignments = derive_closure(db, program)
        assert db.count_active() == 2  # active extents untouched
        assert set(db.all_deltas()) == {fact("T", 1), fact("R", 1, "a")}
        assert len(assignments) == 2

    def test_derive_closure_callback_sees_new_assignments_once(self, schema):
        db = Database.from_dicts(schema, {"T": [(1,)], "R": [(1, "a")], "S": []})
        program = DeltaProgram.from_text(
            "delta T(x) :- T(x). delta R(x, y) :- R(x, y), delta T(x).",
        )
        seen = []
        derive_closure(db, program, on_assignment=seen.append)
        assert len(seen) == 2
        assert all(isinstance(item, Assignment) for item in seen)

    def test_derive_closure_round_limit(self, schema):
        db = Database.from_dicts(schema, {"T": [(1,)], "R": [], "S": []})
        program = DeltaProgram.from_text("delta T(x) :- T(x).")
        with pytest.raises(EvaluationError):
            derive_closure(db, program, max_rounds=0)
