"""Differential tests: the semi-naive engine against the naive oracle.

The semi-naive, delta-driven fixpoint engine must be observationally
equivalent to the naive re-evaluate-everything engine it replaces:

* the closure derives the same delta facts and the same set of assignments
  (by used-fact signature), and ``on_assignment`` fires exactly once per
  assignment — the provenance algorithms depend on this;
* every repair semantics returns the same stabilizing set (for independent
  semantics, the same *size* — the Min-Ones solver may break ties between
  equal minima differently depending on clause order);
* reported round counts are internally consistent.

The instances are randomized: schemas, contents and delta programs are drawn
from the seeded generators shared with the cross-backend suite
(:mod:`tests.generators`), so every run exercises a fresh family of join
shapes, cascade depths and comparison mixes.  ``PYTEST_SEED`` rebases the
instance seeds (parity with the property torture suite: instance ``i`` uses
``PYTEST_SEED * 100003 + i``, default 0 → the historical seeds ``0..11``) and
every failure message carries the concrete seed, so a CI failure is
reproducible from the log alone.
"""

from __future__ import annotations

import pytest

from repro.core.semantics import (
    end_semantics,
    independent_semantics,
    stage_semantics,
    step_semantics,
)
from repro.core.stability import is_stabilizing_set
from repro.datalog.ast import Atom, Constant, Rule, Variable
from repro.datalog.evaluation import run_closure
from repro.provenance.boolean import build_boolean_provenance
from repro.storage.database import Database
from repro.storage.facts import Fact
from repro.storage.schema import Schema

from tests.generators import (
    differential_seeds,
    paper_instance,
    random_instance,
    seed_note,
)

#: Seeds for the randomized instances (rebased on ``PYTEST_SEED``); each seed
#: builds one (db, program) pair.
SEEDS = differential_seeds(12)


@pytest.mark.parametrize("seed", SEEDS)
class TestClosureEquivalence:
    def test_same_assignments_and_deltas(self, seed):
        db, program = random_instance(seed)
        naive_db, semi_db = db.clone(), db.clone()
        naive_seen: list = []
        semi_seen: list = []
        naive = run_closure(
            naive_db, program, on_assignment=naive_seen.append, engine="naive",
        )
        semi = run_closure(
            semi_db, program, on_assignment=semi_seen.append, engine="semi-naive",
        )
        assert naive.engine == "naive" and semi.engine == "semi-naive", seed_note(seed)
        # Same delta fixpoint.
        assert set(naive_db.all_deltas()) == set(semi_db.all_deltas()), seed_note(seed)
        # Same assignments, as multisets of signatures (each engine must also
        # be duplicate-free, so multiset equality reduces to set equality).
        naive_signatures = [a.signature() for a in naive.assignments]
        semi_signatures = [a.signature() for a in semi.assignments]
        assert len(set(naive_signatures)) == len(naive_signatures), seed_note(seed)
        assert len(set(semi_signatures)) == len(semi_signatures), seed_note(seed)
        assert set(naive_signatures) == set(semi_signatures), seed_note(seed)
        # The on_assignment hook fired exactly once per assignment.
        assert [a.signature() for a in naive_seen] == naive_signatures, seed_note(seed)
        assert [a.signature() for a in semi_seen] == semi_signatures, seed_note(seed)

    def test_round_counts_consistent(self, seed):
        db, program = random_instance(seed)
        naive = run_closure(db.clone(), program, engine="naive")
        semi = run_closure(db.clone(), program, engine="semi-naive")
        assert naive.rounds >= 1, seed_note(seed)
        assert semi.rounds >= 1, seed_note(seed)
        # Stage-style rounds can only refine (never undercut by more than the
        # free quiescent round) the naive count: marking at round end defers
        # intra-round cascades, while an empty frontier needs no extra round.
        assert semi.rounds >= naive.rounds - 1, seed_note(seed)


@pytest.mark.parametrize("seed", SEEDS)
class TestSemanticsEquivalence:
    def test_end_semantics(self, seed):
        db, program = random_instance(seed)
        naive = end_semantics(db, program, engine="naive")
        semi = end_semantics(db, program, engine="semi-naive")
        assert naive.deleted == semi.deleted, seed_note(seed)
        assert naive.metadata["engine"] == "naive", seed_note(seed)
        assert semi.metadata["engine"] == "semi-naive", seed_note(seed)
        assert naive.repaired.same_state_as(semi.repaired), seed_note(seed)
        assert semi.rounds >= 1, seed_note(seed)

    def test_stage_semantics(self, seed):
        db, program = random_instance(seed)
        naive = stage_semantics(db, program, engine="naive")
        semi = stage_semantics(db, program, engine="semi-naive")
        assert naive.deleted == semi.deleted, seed_note(seed)
        assert naive.repaired.same_state_as(semi.repaired), seed_note(seed)
        # Stage counts are defined by the unique fixpoint iteration, so the
        # incremental engine must report exactly the oracle's rounds.
        assert naive.rounds == semi.rounds, seed_note(seed)

    def test_step_semantics(self, seed):
        db, program = random_instance(seed)
        naive = step_semantics(db, program, engine="naive")
        semi = step_semantics(db, program, engine="semi-naive")
        # The greedy traversal is deterministic in the provenance *content*,
        # which both engines build identically.
        assert naive.deleted == semi.deleted, seed_note(seed)
        assert naive.metadata["provenance_assignments"] == (
            semi.metadata["provenance_assignments"]
        ), seed_note(seed)

    def test_independent_semantics(self, seed):
        db, program = random_instance(seed)
        naive = independent_semantics(db, program, engine="naive")
        semi = independent_semantics(db, program, engine="semi-naive")
        # Min-Ones may break ties between equal-size minima differently, so
        # compare sizes and validity rather than the exact sets.
        assert naive.size == semi.size, seed_note(seed)
        assert is_stabilizing_set(db, program, naive.deleted), seed_note(seed)
        assert is_stabilizing_set(db, program, semi.deleted), seed_note(seed)

    def test_boolean_provenance_clause_multisets(self, seed):
        db, program = random_instance(seed)
        naive = build_boolean_provenance(db, program, engine="naive")
        semi = build_boolean_provenance(db, program, engine="semi-naive")

        def clause_multiset(provenance):
            counted: dict = {}
            for clause in provenance.clauses:
                key = (clause.positives, clause.negatives, clause.rule_name)
                counted[key] = counted.get(key, 0) + 1
            return counted

        assert clause_multiset(naive) == clause_multiset(semi), seed_note(seed)
        assert naive.variables == semi.variables, seed_note(seed)


class TestUnnamedRuleCollisions:
    def test_distinct_unnamed_rules_same_head_are_kept_apart(self):
        # Minimized regression: both rules display as "rule[R]" and match the
        # same body fact S(0, 1), but derive different tuples.  Deduping
        # assignments by display name dropped one of them in the incremental
        # engines, diverging from the naive stage oracle.
        schema = Schema.from_arities({"R": 2, "S": 2})
        db = Database.from_dicts(schema, {"S": [(0, 1)], "R": [(0, 0), (1, 1)]})
        # Both assignments match exactly the body fact S(0, 1): the first rule
        # binds x = 1 and derives ΔR(1, 1), the second binds y = 0 and derives
        # ΔR(0, 0).  Identical used facts + identical display names.
        program = [
            Rule(
                head=Atom("R", (Variable("x"), Variable("x")), is_delta=True),
                body=(Atom("S", (Variable("z"), Variable("x"))),),
            ),
            Rule(
                head=Atom("R", (Variable("y"), Variable("y")), is_delta=True),
                body=(Atom("S", (Variable("y"), Constant(1))),),
            ),
        ]
        naive = stage_semantics(db, program, engine="naive")
        semi = stage_semantics(db, program, engine="semi-naive")
        assert naive.deleted == semi.deleted == frozenset(
            {Fact("R", (0, 0)), Fact("R", (1, 1))},
        )
        closure_naive = run_closure(db.clone(), program, engine="naive")
        closure_semi = run_closure(db.clone(), program, engine="semi-naive")
        assert {a.signature() for a in closure_naive.assignments} == {
            a.signature() for a in closure_semi.assignments
        }
        assert len(closure_semi.assignments) == 2


class TestPaperInstance:
    def test_paper_program_all_semantics(self):
        db, program = paper_instance()
        for compute, kwargs in (
            (end_semantics, {}),
            (stage_semantics, {}),
            (step_semantics, {}),
            (independent_semantics, {}),
        ):
            naive = compute(db, program, engine="naive", **kwargs)
            semi = compute(db, program, engine="semi-naive", **kwargs)
            assert naive.deleted == semi.deleted, compute.__name__

    def test_closure_on_pre_marked_deltas(self):
        # Initial delta facts (a deletion already recorded) must seed round 1,
        # not the frontier, in both engines.
        db, program = paper_instance()
        db.mark_deleted(Fact("Grant", (1, "NSF")))
        naive_db, semi_db = db.clone(), db.clone()
        naive = run_closure(naive_db, program, engine="naive")
        semi = run_closure(semi_db, program, engine="semi-naive")
        assert set(naive_db.all_deltas()) == set(semi_db.all_deltas())
        assert {a.signature() for a in naive.assignments} == {
            a.signature() for a in semi.assignments
        }


class TestFrontierTokens:
    def test_added_since_tracks_only_new_facts(self):
        schema = Schema.from_arities({"R": 1})
        db = Database.from_dicts(schema, {"R": [(1,)]})
        db.mark_deleted(Fact("R", (1,)))
        token = db.delta_token("R")
        assert db.delta_added_since("R", token) == []
        db.mark_deleted(Fact("R", (2,)))
        db.mark_deleted(Fact("R", (2,)))  # duplicate: must not re-log
        assert db.delta_added_since("R", token) == [Fact("R", (2,))]
        assert db.delta_added_since("R", db.delta_token("R")) == []

    def test_tokens_survive_interleaved_reads(self):
        schema = Schema.from_arities({"R": 1})
        db = Database(schema)
        token = db.delta_token("R")
        db.mark_deleted(Fact("R", (1,)))
        assert db.delta_facts("R") == frozenset({Fact("R", (1,))})
        db.mark_deleted(Fact("R", (2,)))
        assert set(db.delta_added_since("R", token)) == {
            Fact("R", (1,)),
            Fact("R", (2,)),
        }
