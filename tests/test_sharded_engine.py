"""Sharded parallel fixpoint engine tests.

Covers the tentpole machinery of the sharded engine
(:mod:`repro.datalog.sharded`): the ``shards=`` / ``workers=`` knobs and the
``REPRO_SHARDS`` override, the ``engine="auto"`` opt-in heuristic, oracle
equivalence on every backend at several shard counts, the deterministic merge
(same closure, same tids, same exactly-once observer stream regardless of
shard/worker interleaving), the WAL reader connections, the merged
``QueryStats`` accounting, and the bounded-chunk observer replay of the
staged paths.
"""

from __future__ import annotations

import pytest

from repro.datalog import sql_seminaive
from repro.datalog.context import DEFAULT_SHARDS, EvalContext, SHARDS_ENV
from repro.datalog.delta import DeltaProgram
from repro.datalog.evaluation import (
    ENGINE_SEMI_NAIVE,
    ENGINE_SHARDED,
    resolve_engine,
    run_closure,
)
from repro.datalog.sharded import fact_shard, worker_pool
from repro.storage.database import Database
from repro.storage.facts import fact
from repro.storage.schema import RelationSchema, Schema
from repro.storage.sqlite_backend import SQLiteDatabase


def cascade_instance():
    """A three-relation cascade deep enough for several frontier rounds."""
    schema = Schema.from_relations(
        [
            RelationSchema.of("E", "x:int", "y:int"),
            RelationSchema.of("N", "x:int"),
        ],
    )
    edges = [(i, i + 1) for i in range(12)] + [(i, i + 2) for i in range(0, 10, 2)]
    db = Database.from_dicts(
        schema, {"E": edges, "N": [(i,) for i in range(14)]},
    )
    program = DeltaProgram.from_text(
        """
        delta N(x) :- N(x), x = 0.
        delta E(x, y) :- E(x, y), delta N(x).
        delta N(y) :- N(y), E(x, y), delta E(x, y).
        """,
    )
    return db, program


def oracle_state(db, program):
    working = db.clone()
    closure = run_closure(working, program, engine="naive")
    return (
        set(working.all_deltas()),
        {a.signature() for a in closure.assignments},
    )


def make_backend(db, backend, tmp_path, tag=""):
    if backend == "memory":
        return db.clone()
    if backend == "sqlite":
        return SQLiteDatabase.from_database(db)
    return SQLiteDatabase.from_database(
        db, path=str(tmp_path / f"sharded_{tag}.db"),
    )


class TestKnobs:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv(SHARDS_ENV, raising=False)
        monkeypatch.setattr("os.cpu_count", lambda: 1)
        ctx = EvalContext()
        assert ctx.shard_count() == DEFAULT_SHARDS
        assert 1 <= ctx.worker_count() <= ctx.shard_count()
        assert not ctx.wants_sharding()

    def test_explicit_knobs(self, monkeypatch):
        monkeypatch.delenv(SHARDS_ENV, raising=False)
        ctx = EvalContext(shards=8, workers=2)
        assert ctx.shard_count() == 8
        assert ctx.worker_count() == 2
        assert ctx.wants_sharding()
        # Workers alone imply one shard per worker.
        ctx = EvalContext(workers=3)
        assert ctx.shard_count() == 3
        assert ctx.wants_sharding()
        # Workers never exceed shards.
        assert EvalContext(shards=2, workers=16).worker_count() == 2

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(SHARDS_ENV, "6")
        ctx = EvalContext()
        assert ctx.shard_count() == 6
        assert ctx.wants_sharding()
        # The explicit knob beats the environment.
        assert EvalContext(shards=2).shard_count() == 2
        monkeypatch.setenv(SHARDS_ENV, "not-a-number")
        assert EvalContext().shard_count() == DEFAULT_SHARDS

    def test_auto_heuristic(self, monkeypatch):
        monkeypatch.delenv(SHARDS_ENV, raising=False)
        monkeypatch.setattr("os.cpu_count", lambda: 1)
        db, _ = cascade_instance()
        # One CPU, no knobs: sharding has nothing to win — stay semi-naive.
        assert resolve_engine(db, "auto") == ENGINE_SEMI_NAIVE
        assert resolve_engine(db, "auto", EvalContext()) == ENGINE_SEMI_NAIVE
        assert (resolve_engine(db, "auto", EvalContext(shards=4)) == ENGINE_SHARDED)
        assert (resolve_engine(db, "auto", EvalContext(workers=2)) == ENGINE_SHARDED)
        # The environment flips auto even without a context (CI uses this),
        # including on a single-CPU host.
        monkeypatch.setenv(SHARDS_ENV, "4")
        assert resolve_engine(db, "auto") == ENGINE_SHARDED
        assert resolve_engine(db, "auto", EvalContext()) == ENGINE_SHARDED
        # Explicit engines are never overridden.
        assert resolve_engine(db, "semi-naive") == ENGINE_SEMI_NAIVE

    def test_auto_heuristic_multicore(self, monkeypatch):
        monkeypatch.delenv(SHARDS_ENV, raising=False)
        monkeypatch.setattr("os.cpu_count", lambda: 4)
        db, _ = cascade_instance()
        # Multiple CPUs: auto routes sharded even with no knobs set — the
        # collapse heuristic keeps small rounds on the inline path anyway.
        assert EvalContext().wants_sharding()
        assert resolve_engine(db, "auto") == ENGINE_SHARDED
        assert resolve_engine(db, "auto", EvalContext()) == ENGINE_SHARDED
        # Explicit engines are never overridden by the CPU count.
        assert resolve_engine(db, "semi-naive") == ENGINE_SEMI_NAIVE
        assert resolve_engine(db, "naive") == "naive"

    def test_fact_shard_partitions(self):
        facts = [fact("R", i, i + 1) for i in range(100)]
        for nshards in (1, 3, 4):
            assignments = [fact_shard(item, nshards) for item in facts]
            assert set(assignments) <= set(range(nshards))
            # A partition: re-hashing is stable.
            assert assignments == [fact_shard(item, nshards) for item in facts]

    def test_worker_pool_is_persistent_and_grows(self):
        small = worker_pool(1)
        assert worker_pool(1) is small
        grown = worker_pool(2)
        assert worker_pool(2) is grown


@pytest.mark.parametrize("backend", ["memory", "sqlite", "sqlite-file"])
@pytest.mark.parametrize("shards", [1, 4])
class TestOracleEquivalence:
    def test_closure_matches_naive_oracle(self, backend, shards, tmp_path):
        base, program = cascade_instance()
        oracle_deltas, oracle_sigs = oracle_state(base, program)
        db = make_backend(base, backend, tmp_path, f"{backend}{shards}")
        seen = []
        ctx = EvalContext(shards=shards, workers=1)
        result = run_closure(
            db, program, engine="sharded", context=ctx, on_assignment=seen.append,
        )
        assert result.engine == ENGINE_SHARDED
        assert set(db.all_deltas()) == oracle_deltas
        signatures = [a.signature() for a in result.assignments]
        assert set(signatures) == oracle_sigs
        # Exactly-once: no duplicates, hook stream == result list.
        assert len(set(signatures)) == len(signatures)
        assert [a.signature() for a in seen] == signatures
        if isinstance(db, SQLiteDatabase):
            db.close()

    def test_rounds_match_semi_naive(self, backend, shards, tmp_path):
        base, program = cascade_instance()
        semi_db = make_backend(base, backend, tmp_path, f"semi{backend}{shards}")
        semi = run_closure(semi_db, program, engine="semi-naive")
        db = make_backend(base, backend, tmp_path, f"rounds{backend}{shards}")
        sharded = run_closure(
            db, program, engine="sharded", context=EvalContext(shards=shards),
        )
        assert sharded.rounds == semi.rounds >= 3
        for handle in (semi_db, db):
            if isinstance(handle, SQLiteDatabase):
                handle.close()

    def test_fast_path_matches_oracle(self, backend, shards, tmp_path):
        base, program = cascade_instance()
        oracle_deltas, _ = oracle_state(base, program)
        db = make_backend(base, backend, tmp_path, f"fast{backend}{shards}")
        result = run_closure(
            db,
            program,
            engine="sharded",
            context=EvalContext(shards=shards, workers=1),
            collect_assignments=False,
        )
        assert result.assignments == []
        assert set(db.all_deltas()) == oracle_deltas
        if isinstance(db, SQLiteDatabase):
            db.close()


class TestDeterministicMerge:
    """Same closure, same tids, regardless of shard/worker interleaving."""

    CONFIGS = ((1, 1), (2, 1), (4, 1), (4, 2), (4, 4), (7, 3))

    def _labelled_state(self, db):
        return {(item.relation, item.values, item.tid) for item in db.all_deltas()}

    @pytest.mark.parametrize("backend", ["memory", "sqlite", "sqlite-file"])
    def test_closure_and_tids_invariant(self, backend, tmp_path):
        base, program = cascade_instance()
        states = []
        signature_sets = []
        for shards, workers in self.CONFIGS:
            db = make_backend(base, backend, tmp_path, f"det{shards}_{workers}")
            result = run_closure(
                db,
                program,
                engine="sharded",
                context=EvalContext(shards=shards, workers=workers),
            )
            states.append(self._labelled_state(db))
            signature_sets.append({a.signature() for a in result.assignments})
            if isinstance(db, SQLiteDatabase):
                db.close()
        assert all(state == states[0] for state in states[1:])
        assert all(sigs == signature_sets[0] for sigs in signature_sets[1:])

    def test_repeated_parallel_runs_are_stable(self, tmp_path):
        base, program = cascade_instance()
        reference = None
        for attempt in range(3):
            db = make_backend(base, "sqlite-file", tmp_path, f"rep{attempt}")
            run_closure(
                db,
                program,
                engine="sharded",
                context=EvalContext(shards=4, workers=4),
            )
            state = self._labelled_state(db)
            db.close()
            if reference is None:
                reference = state
            assert state == reference

    def test_candidate_observer_counts_match_single_threaded_engine(self):
        # Round 1 pre-partitions the first planned atom's candidates on the
        # merge thread, so candidate observers see each probed fact exactly
        # as often as the semi-naive engine delivers it — not once per shard.
        base, program = cascade_instance()

        def probe_counts(engine, shards=None):
            db = base.clone()
            ctx = (EvalContext(shards=shards, workers=1) if shards else EvalContext())
            seen = []
            ctx.add_candidate_observer(lambda rel, item: seen.append((rel, item)))
            run_closure(db, program, engine=engine, context=ctx)
            return seen

        reference = probe_counts("semi-naive")
        assert len(reference) > 0
        for shards in (1, 4):
            sharded = probe_counts("sharded", shards=shards)
            assert len(sharded) == len(reference)
            assert set(sharded) == set(reference)

    def test_worker_cap_enforced_after_pool_growth(self):
        # Growing the shared pool must not let a later small-workers run
        # exceed its own cap: jobs are sliced to at most `workers` at a time.
        import threading

        from repro.datalog.sharded import _run_wave, worker_pool

        worker_pool(4)  # grow the shared pool past the run's cap
        active = 0
        peak = 0
        lock = threading.Lock()

        def job():
            nonlocal active, peak
            with lock:
                active += 1
                peak = max(peak, active)
            for _ in range(10_000):
                pass
            with lock:
                active -= 1
            return 1

        results = _run_wave([job] * 16, workers=2)
        assert results == [1] * 16
        assert peak <= 2

    def test_observer_stream_exactly_once_under_parallel_merge(self, tmp_path):
        base, program = cascade_instance()
        db = make_backend(base, "sqlite-file", tmp_path, "obs")
        ctx = EvalContext(shards=4, workers=2)
        delivered = []
        ctx.add_observer(delivered.append)
        result = run_closure(db, program, engine="sharded", context=ctx)
        stream = [a.signature() for a in delivered]
        assert stream == [a.signature() for a in result.assignments]
        assert len(set(stream)) == len(stream)
        db.close()


class TestShardedSQLAccounting:
    def test_sequential_fast_path_collapses_to_single_installs(self):
        # One worker: every variant collapses to one unsharded install join —
        # the never-slower-on-one-core contract.
        base, program = cascade_instance()
        db = SQLiteDatabase.from_database(base)
        ctx = EvalContext(shards=4, workers=1)
        run_closure(
            db, program, engine="sharded", context=ctx, collect_assignments=False,
        )
        # Collapsed installs run the semi-naive fast path's own statement and
        # are counted as such; nothing shard-partitioned ever ran.
        assert ctx.stats.direct_installs > 0
        assert ctx.stats.shard_selects == 0
        assert ctx.stats.shard_installs == 0
        assert ctx.stats.collapsed_rounds > 0
        # Every variant execution collapsed to one effective shard.
        assert ctx.stats.effective_shards == ctx.stats.direct_installs
        # The fast path never staged, never streamed assignment rows.
        assert ctx.stats.staged_selects == 0
        assert ctx.stats.assignment_selects == 0
        db.close()

    def test_sequential_fast_path_counts_partitioned_installs(self):
        # Collapse disabled (collapse_min=0): the historical full fan-out —
        # every variant execution runs as nshards partitioned install joins.
        base, program = cascade_instance()
        db = SQLiteDatabase.from_database(base)
        ctx = EvalContext(shards=4, workers=1, collapse_min=0)
        run_closure(
            db, program, engine="sharded", context=ctx, collect_assignments=False,
        )
        assert ctx.stats.shard_installs > 0
        assert ctx.stats.shard_selects == 4 * ctx.stats.shard_installs
        assert ctx.stats.collapsed_rounds == 0
        assert ctx.stats.effective_shards == 4 * ctx.stats.shard_installs
        # The fast path never staged, never streamed assignment rows.
        assert ctx.stats.staged_selects == 0
        assert ctx.stats.assignment_selects == 0
        db.close()

    def test_parallel_wave_uses_reader_connections(self, tmp_path):
        base, program = cascade_instance()
        db = make_backend(base, "sqlite-file", tmp_path, "wave")
        assert db.supports_readers()
        # collapse_min=0 disables dynamic collapse: this test pins the full
        # fan-out over the reader connections on a small instance.
        ctx = EvalContext(shards=4, workers=2, collapse_min=0)
        run_closure(db, program, engine="sharded", context=ctx)
        # Readers were opened lazily for the wave and survive for reuse.
        readers = db.reader_connections(2)
        assert len(readers) == 2
        assert ctx.stats.shard_selects > 0
        assert ctx.stats.shard_installs > 0
        db.close()

    def test_statement_hooks_replayed_from_merge_thread(self, tmp_path):
        from repro.datalog.sql_compiler import TAG_SHARD_INSTALL, TAG_SHARD_SELECT

        base, program = cascade_instance()
        db = make_backend(base, "sqlite-file", tmp_path, "hooks")
        seen = {"select": 0, "install": 0}

        def hook(sql: str) -> None:
            if TAG_SHARD_SELECT in sql:
                seen["select"] += 1
            if TAG_SHARD_INSTALL in sql:
                seen["install"] += 1

        db.add_statement_hook(hook)
        ctx = EvalContext(shards=4, workers=2, collapse_min=0)
        run_closure(db, program, engine="sharded", context=ctx)
        assert ctx.stats.shard_selects > 0
        assert seen["select"] == ctx.stats.shard_selects
        assert seen["install"] == ctx.stats.shard_installs
        db.close()

    def test_parallel_fast_path_installs_merged_heads(self, tmp_path):
        # Readers + no observers: the wave fetches only DISTINCT head rows
        # per shard and the merge thread installs them via executemany on
        # the primary connection.
        base, program = cascade_instance()
        oracle_deltas, _ = oracle_state(base, program)
        db = make_backend(base, "sqlite-file", tmp_path, "pfast")
        ctx = EvalContext(shards=4, workers=2, collapse_min=0)
        result = run_closure(
            db, program, engine="sharded", context=ctx, collect_assignments=False,
        )
        assert result.assignments == []
        assert set(db.all_deltas()) == oracle_deltas
        assert ctx.stats.shard_selects > 0
        assert ctx.stats.shard_installs > 0
        # Nothing staged, nothing streamed: heads were the only rows fetched.
        assert ctx.stats.staged_selects == 0
        assert ctx.stats.assignment_selects == 0
        db.close()

    def test_in_memory_sqlite_falls_back_without_readers(self):
        base, program = cascade_instance()
        oracle_deltas, _ = oracle_state(base, program)
        db = SQLiteDatabase.from_database(base)
        assert db.reader_connections(2) is None
        run_closure(
            db, program, engine="sharded", context=EvalContext(shards=4, workers=4),
        )
        assert set(db.all_deltas()) == oracle_deltas
        db.close()


class TestShardedSemantics:
    """The engine knob reaches the semantics / repair layers."""

    def test_all_four_semantics_match_oracle(self):
        from repro.core.repair import RepairEngine
        from repro.core.semantics import Semantics

        base, program = cascade_instance()
        ctx = EvalContext(shards=4, workers=1)
        sharded_engine = RepairEngine(
            base, program, engine="sharded", context=ctx,
        )
        oracle_engine = RepairEngine(base, program, engine="naive")
        for member in Semantics:
            sharded = sharded_engine.repair(member)
            oracle = oracle_engine.repair(member)
            if member is Semantics.INDEPENDENT:
                assert sharded.size == oracle.size
            else:
                assert sharded.deleted == oracle.deleted

    def test_auto_with_sharded_context_reports_sharded(self):
        from repro.core.semantics import end_semantics, stage_semantics

        base, program = cascade_instance()
        ctx = EvalContext(shards=2, workers=1)
        result = end_semantics(base, program, engine="auto", context=ctx)
        assert result.metadata["engine"] == ENGINE_SHARDED
        staged = stage_semantics(base, program, engine="auto", context=ctx)
        assert staged.metadata["engine"] == ENGINE_SHARDED


class TestBatchedObserverReplay:
    """Staged rows reach observers in bounded chunks, order preserved."""

    def _wide_instance(self):
        # One variant staging 20 rows in a single round, so a small chunk
        # size forces several batches for one staged install.
        schema = Schema.from_arities({"R": 2, "S": 1})
        db = Database.from_dicts(
            schema,
            {"R": [(i, i % 5) for i in range(20)], "S": [(i,) for i in range(5)]},
        )
        program = DeltaProgram.from_text("delta R(x, y) :- R(x, y), S(y).")
        return db, program

    def _staged_stream(self, base, program):
        db = SQLiteDatabase.from_database(base)
        ctx = EvalContext()
        delivered = []
        ctx.add_observer(delivered.append)
        result = run_closure(db, program, engine="semi-naive", context=ctx)
        db.close()
        return delivered, result, ctx

    def test_chunked_replay_preserves_order_and_multiset(self, monkeypatch):
        base, program = self._wide_instance()
        reference, ref_result, ref_ctx = self._staged_stream(base, program)
        assert len(reference) == 20
        monkeypatch.setattr(sql_seminaive, "STAGE_REPLAY_CHUNK", 3)
        chunked, result, ctx = self._staged_stream(base, program)
        # 20 rows in chunks of 3 → 7 batches where the default chunk took 1.
        assert ctx.stats.replay_batches > ref_ctx.stats.replay_batches > 0
        assert [a.signature() for a in chunked] == [a.signature() for a in reference]
        assert [a.signature() for a in result.assignments] == [
            a.signature() for a in ref_result.assignments
        ]

    def test_chunked_replay_in_deep_cascade(self, monkeypatch):
        base, program = cascade_instance()
        reference, _, _ = self._staged_stream(base, program)
        monkeypatch.setattr(sql_seminaive, "STAGE_REPLAY_CHUNK", 2)
        chunked, _, ctx = self._staged_stream(base, program)
        assert ctx.stats.replay_batches > 0
        assert [a.signature() for a in chunked] == [a.signature() for a in reference]


class TestShardedFileResume:
    """Interrupting a sharded closure leaves a WAL file the next session resumes."""

    def test_interrupted_sharded_closure_resumes(self, tmp_path):
        from repro.exceptions import EvaluationError

        base, program = cascade_instance()
        path = str(tmp_path / "sharded_resume.db")
        db = SQLiteDatabase.from_database(base, path=path)
        with pytest.raises(EvaluationError):
            run_closure(
                db,
                program,
                engine="sharded",
                context=EvalContext(shards=4, workers=2),
                max_rounds=1,
            )
        db.close()

        oracle_deltas, _ = oracle_state(base, program)
        reopened = SQLiteDatabase(base.schema, path=path)
        run_closure(
            reopened,
            program,
            engine="sharded",
            context=EvalContext(shards=4, workers=2),
        )
        assert set(reopened.all_deltas()) == oracle_deltas
        reopened.close()


class TestPoolLeases:
    """The shared pool must outlive in-flight waves when a concurrent run grows it."""

    def test_retired_pool_survives_until_lease_released(self):
        from repro.datalog import sharded
        from repro.datalog.sharded import _acquire_pool, _release_pool

        leased = _acquire_pool(max(2, sharded._pool_size))
        grown = worker_pool(sharded._pool_size + 2)  # forces a swap
        assert grown is not leased
        # The leased pool must still accept work: the old implementation shut
        # it down on the swap, making this raise "cannot schedule new futures
        # after shutdown".
        assert leased.submit(lambda: 41 + 1).result() == 42
        _release_pool(leased)
        # Last lease returned on a retired pool: now it is shut down.
        with pytest.raises(RuntimeError):
            leased.submit(lambda: None)
        # The current pool is unaffected.
        assert grown.submit(lambda: 2).result() == 2

    def test_concurrent_closures_at_different_worker_counts(self):
        import threading

        from repro.datalog import sharded

        base, program = cascade_instance()
        oracle_deltas, oracle_sigs = oracle_state(base, program)
        errors = []
        barrier = threading.Barrier(2)

        def run_small():
            try:
                barrier.wait()
                for _ in range(6):
                    db = base.clone()
                    result = run_closure(
                        db,
                        program,
                        engine="sharded",
                        context=EvalContext(shards=4, workers=2),
                    )
                    assert set(db.all_deltas()) == oracle_deltas
                    assert {a.signature() for a in result.assignments} == oracle_sigs
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        def run_growing():
            try:
                barrier.wait()
                for _ in range(6):
                    # Each closure requests more workers than the pool has,
                    # forcing a swap while the other thread's waves fly.
                    workers = sharded._pool_size + 1
                    db = base.clone()
                    result = run_closure(
                        db,
                        program,
                        engine="sharded",
                        context=EvalContext(shards=workers, workers=workers),
                    )
                    assert set(db.all_deltas()) == oracle_deltas
                    assert {a.signature() for a in result.assignments} == oracle_sigs
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=run_small),
            threading.Thread(target=run_growing),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []


class TestWaveFailureDraining:
    """A failing slice must drain its siblings before the wave re-raises.

    Regression (ISSUE 8): ``_run_wave`` used to propagate the first failing
    slice's exception while sibling slices were still executing — the memory
    driver's ``finally`` block then detached candidate observers under live
    workers, and the released pool lease could retire the executor beneath
    them.
    """

    def test_failing_job_waits_for_sibling_slices(self):
        import threading
        import time

        from repro.datalog.sharded import _run_wave

        finished = threading.Event()

        def failing_job():
            raise ValueError("shard job exploded")

        def slow_job():
            time.sleep(0.2)
            finished.set()
            return "slow"

        # Two workers deal the jobs into two one-job slices: the failing
        # slice completes (and used to raise) long before the slow one.
        with pytest.raises(ValueError, match="shard job exploded"):
            _run_wave([failing_job, slow_job], workers=2)
        # The wave only returned after every sibling slice drained.
        assert finished.is_set()

    def test_pool_stays_usable_for_the_next_wave(self):
        from repro.datalog.sharded import _run_wave

        def failing_job():
            raise ValueError("boom")

        with pytest.raises(ValueError):
            _run_wave([failing_job, lambda: 1, lambda: 2], workers=2)
        # The shared pool serves the next wave normally.
        assert _run_wave([lambda: 10, lambda: 20, lambda: 30], workers=2) == [
            10,
            20,
            30,
        ]

    def test_failing_shard_closure_leaves_pool_usable(self, tmp_path):
        # End-to-end: a rule whose evaluation raises mid-wave must not wedge
        # the pool or the observer bookkeeping for the next closure.
        base, program = cascade_instance()
        context = EvalContext(shards=4, workers=2)

        calls = {"n": 0}

        def exploding_observer(assignment):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("observer exploded")

        bad_context = EvalContext(shards=4, workers=2)
        bad_context.add_observer(exploding_observer)
        with pytest.raises(RuntimeError, match="observer exploded"):
            run_closure(
                base.clone(), program, engine="sharded", context=bad_context,
            )

        # The pool (and the candidate-observer machinery) still works.
        oracle_deltas, oracle_sigs = oracle_state(base, program)
        db = base.clone()
        result = run_closure(db, program, engine="sharded", context=context)
        assert set(db.all_deltas()) == oracle_deltas
        assert {a.signature() for a in result.assignments} == oracle_sigs


class TestCrossProcessDeterminism:
    """Shard routing must not depend on the process (PYTHONHASHSEED)."""

    SCRIPT = """
import json

from repro.datalog.context import EvalContext
from repro.datalog.delta import DeltaProgram
from repro.datalog.evaluation import run_closure
from repro.storage.database import Database
from repro.storage.schema import RelationSchema, Schema
from repro.storage.sqlite_backend import SQLiteDatabase

schema = Schema.from_relations(
    [
        RelationSchema.of("E", "x:str", "y:str"),
        RelationSchema.of("N", "x:str"),
        RelationSchema.of("S", "x:str"),
    ]
)
nodes = ["n%d" % i for i in range(14)]
edges = [(nodes[i], nodes[i + 1]) for i in range(12)]
edges += [(nodes[i], nodes[i + 2]) for i in range(0, 10, 2)]
base = Database.from_dicts(
    schema, {"E": edges, "N": [(n,) for n in nodes], "S": [(nodes[0],)]}
)
program = DeltaProgram.from_text(
    \"\"\"
    delta N(x) :- N(x), S(x).
    delta E(x, y) :- E(x, y), delta N(x).
    delta N(y) :- N(y), E(x, y), delta E(x, y).
    \"\"\"
)
payload = {}
for backend in ("memory", "sqlite"):
    if backend == "memory":
        db = base.clone()
    else:
        db = SQLiteDatabase.from_database(base)
    ctx = EvalContext(shards=4, workers=2)
    delivered = []
    ctx.add_observer(delivered.append)
    result = run_closure(db, program, engine="sharded", context=ctx)
    payload[backend] = {
        "rounds": result.rounds,
        "closure": sorted(
            [item.relation, list(item.values), item.tid]
            for item in db.all_deltas()
        ),
        "stream": [str(a) for a in delivered],
    }
    if backend == "sqlite":
        db.close()
print(json.dumps(payload, sort_keys=True))
"""

    def test_closure_tids_and_observer_stream_match_across_hash_seeds(self):
        import json
        import os
        import subprocess
        import sys
        from pathlib import Path

        import repro

        src_root = str(Path(repro.__file__).resolve().parents[1])
        outputs = []
        for seed in ("1", "2"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = seed
            env["PYTHONPATH"] = src_root
            env.pop(SHARDS_ENV, None)
            proc = subprocess.run(
                [sys.executable, "-c", self.SCRIPT],
                capture_output=True,
                text=True,
                env=env,
                timeout=120,
            )
            assert proc.returncode == 0, proc.stderr
            outputs.append(proc.stdout)
        # Byte-identical payloads: same closures, tids, round counts, and
        # observer streams (including delivery order) on both backends.
        assert outputs[0] == outputs[1]
        payload = json.loads(outputs[0])
        for backend in ("memory", "sqlite"):
            assert payload[backend]["rounds"] >= 3
            assert payload[backend]["stream"]
            assert payload[backend]["closure"]
