"""Cross-backend differential tests: in-memory vs SQLite storage engines.

The SQLite backend must be observationally equivalent to the in-memory one
under *every* evaluation engine:

* closures derive the same delta facts and the same assignment sets (by
  used-fact signature), with the stage-style semi-naive round counts agreeing
  exactly across backends;
* end, stage and step semantics return identical stabilizing sets and
  repaired states;
* independent semantics returns minima of the same size (the Min-Ones solver
  may break ties between equal minima differently depending on clause order,
  which legitimately differs between backends), and each backend's set must
  actually stabilize the instance;
* the hypothetical assignment enumeration feeding Algorithm 1 produces the
  same Boolean provenance content.

Instances come from the seeded generators shared with the engine differential
suite (:mod:`tests.generators`); 50+ randomized instances are checked per
semantics, each under both the semi-naive engine and the naive oracle.
``PYTEST_SEED`` rebases the instance seeds (instance ``i`` uses
``PYTEST_SEED * 100003 + i``, default 0 → the historical seeds ``0..49``) and
every failure message carries the concrete seed, so a CI failure is
reproducible from the log alone — parity with the property torture suite.
"""

from __future__ import annotations

import pytest

from repro.core.semantics import (
    end_semantics,
    independent_semantics,
    stage_semantics,
    step_semantics,
)
from repro.core.stability import is_stabilizing_set
from repro.datalog.evaluation import find_all_assignments, run_closure
from repro.provenance.boolean import build_boolean_provenance
from repro.storage.sqlite_backend import SQLiteDatabase

from tests.generators import (
    differential_seeds,
    paper_instance,
    random_instance,
    seed_note,
)

#: One randomized instance per seed (rebased on ``PYTEST_SEED``); ≥ 50
#: instances per semantics.
SEEDS = differential_seeds(50)
ENGINES = ("naive", "semi-naive")

#: Shard counts the sharded-engine equivalence class runs at: the degenerate
#: single partition and a genuine 4-way hash partition.
SHARD_COUNTS = (1, 4)


def instance_pair(seed: int):
    """One random instance materialised on both backends."""
    memory, program = random_instance(seed, max_facts=25)
    return memory, SQLiteDatabase.from_database(memory), program


@pytest.mark.parametrize("seed", SEEDS)
class TestClosureEquivalence:
    def test_same_assignments_deltas_and_hooks(self, seed):
        memory, sqlite, program = instance_pair(seed)
        for engine in ENGINES:
            mem_db, sql_db = memory.clone(), sqlite.clone()
            mem_seen: list = []
            sql_seen: list = []
            mem = run_closure(
                mem_db, program, on_assignment=mem_seen.append, engine=engine,
            )
            sql = run_closure(
                sql_db, program, on_assignment=sql_seen.append, engine=engine,
            )
            assert mem.engine == sql.engine == engine, seed_note(seed, engine)
            # Same delta fixpoint.
            assert set(mem_db.all_deltas()) == set(sql_db.all_deltas()), (
                seed_note(seed, engine)
            )
            # Same assignments; both backends duplicate-free and firing the
            # on_assignment hook exactly once per assignment.
            mem_signatures = [a.signature() for a in mem.assignments]
            sql_signatures = [a.signature() for a in sql.assignments]
            assert len(set(sql_signatures)) == len(sql_signatures), (
                seed_note(seed, engine)
            )
            assert set(mem_signatures) == set(sql_signatures), seed_note(seed, engine)
            assert [a.signature() for a in mem_seen] == mem_signatures, (
                seed_note(seed, engine)
            )
            assert [a.signature() for a in sql_seen] == sql_signatures, (
                seed_note(seed, engine)
            )

    def test_semi_naive_round_counts_agree(self, seed):
        # Both semi-naive engines count stage-style rounds (frontier of round
        # k+1 = facts derived in round k), so the counts must match exactly.
        memory, sqlite, program = instance_pair(seed)
        mem = run_closure(memory.clone(), program, engine="semi-naive")
        sql = run_closure(sqlite.clone(), program, engine="semi-naive")
        assert mem.rounds == sql.rounds >= 1, seed_note(seed)

    def test_hypothetical_assignments_agree(self, seed):
        memory, sqlite, program = instance_pair(seed)
        mem = {
            a.signature()
            for a in find_all_assignments(memory, program, hypothetical_deltas=True)
        }
        sql = {
            a.signature()
            for a in find_all_assignments(sqlite, program, hypothetical_deltas=True)
        }
        assert mem == sql, seed_note(seed)


@pytest.mark.parametrize("seed", SEEDS)
class TestShardedEquivalence:
    """``engine="sharded"`` against the naive in-memory oracle, both backends.

    Hash-partitioning the frontier must be invisible: identical delta
    fixpoints, identical assignment-signature sets, duplicate-free results
    and the stage-style round count of the semi-naive engines — at the
    degenerate shard count 1 and a real 4-way partition alike.
    """

    def test_sharded_closure_matches_naive_oracle(self, seed):
        from repro.datalog.context import EvalContext

        memory, sqlite, program = instance_pair(seed)
        oracle_db = memory.clone()
        oracle = run_closure(oracle_db, program, engine="naive")
        oracle_deltas = set(oracle_db.all_deltas())
        oracle_signatures = {a.signature() for a in oracle.assignments}
        semi_rounds = run_closure(
            memory.clone(), program, engine="semi-naive",
        ).rounds
        for shards in SHARD_COUNTS:
            for backend, db in (
                ("memory", memory.clone()),
                ("sqlite", sqlite.clone()),
            ):
                note = seed_note(seed, f"sharded/{shards}/{backend}")
                hook_seen: list = []
                result = run_closure(
                    db,
                    program,
                    engine="sharded",
                    context=EvalContext(shards=shards, workers=1),
                    on_assignment=hook_seen.append,
                )
                assert result.engine == "sharded", note
                assert result.rounds == semi_rounds, note
                assert set(db.all_deltas()) == oracle_deltas, note
                signatures = [a.signature() for a in result.assignments]
                assert len(set(signatures)) == len(signatures), note
                assert set(signatures) == oracle_signatures, note
                assert [a.signature() for a in hook_seen] == signatures, note

    def test_sharded_end_semantics_matches_oracle(self, seed):
        from repro.datalog.context import EvalContext

        memory, sqlite, program = instance_pair(seed)
        oracle = end_semantics(memory, program, engine="naive")
        for shards in SHARD_COUNTS:
            for backend, db in (("memory", memory), ("sqlite", sqlite)):
                note = seed_note(seed, f"sharded/{shards}/{backend}")
                result = end_semantics(
                    db,
                    program,
                    engine="sharded",
                    context=EvalContext(shards=shards, workers=1),
                )
                assert result.deleted == oracle.deleted, note


@pytest.mark.parametrize("seed", SEEDS)
class TestSemanticsEquivalence:
    def test_end_semantics(self, seed):
        memory, sqlite, program = instance_pair(seed)
        for engine in ENGINES:
            mem = end_semantics(memory, program, engine=engine)
            sql = end_semantics(sqlite, program, engine=engine)
            assert mem.deleted == sql.deleted, seed_note(seed, engine)
            assert mem.repaired.same_state_as(sql.repaired), seed_note(seed, engine)
            assert mem.rounds == sql.rounds or engine == "naive", (
                seed_note(seed, engine)
            )

    def test_stage_semantics(self, seed):
        memory, sqlite, program = instance_pair(seed)
        for engine in ENGINES:
            mem = stage_semantics(memory, program, engine=engine)
            sql = stage_semantics(sqlite, program, engine=engine)
            assert mem.deleted == sql.deleted, seed_note(seed, engine)
            assert mem.repaired.same_state_as(sql.repaired), seed_note(seed, engine)
            # Stage counts the unique fixpoint iteration: backend-independent.
            assert mem.rounds == sql.rounds, seed_note(seed, engine)

    def test_step_semantics(self, seed):
        memory, sqlite, program = instance_pair(seed)
        for engine in ENGINES:
            mem = step_semantics(memory, program, engine=engine)
            sql = step_semantics(sqlite, program, engine=engine)
            # The greedy traversal is deterministic in the provenance content,
            # which both backends build identically.
            assert mem.deleted == sql.deleted, seed_note(seed, engine)
            assert mem.metadata["provenance_assignments"] == (
                sql.metadata["provenance_assignments"]
            ), seed_note(seed, engine)

    def test_independent_semantics(self, seed):
        memory, sqlite, program = instance_pair(seed)
        for engine in ENGINES:
            mem = independent_semantics(memory, program, engine=engine)
            sql = independent_semantics(sqlite, program, engine=engine)
            # Min-Ones may break ties between equal-size minima differently,
            # so compare sizes and validity rather than the exact sets.
            assert mem.size == sql.size, seed_note(seed, engine)
            assert is_stabilizing_set(memory, program, mem.deleted), (
                seed_note(seed, engine)
            )
            assert is_stabilizing_set(sqlite, program, sql.deleted), (
                seed_note(seed, engine)
            )

    def test_boolean_provenance_content(self, seed):
        memory, sqlite, program = instance_pair(seed)
        mem = build_boolean_provenance(memory, program)
        sql = build_boolean_provenance(sqlite, program)

        def clause_multiset(provenance):
            counted: dict = {}
            for clause in provenance.clauses:
                key = (clause.positives, clause.negatives, clause.rule_name)
                counted[key] = counted.get(key, 0) + 1
            return counted

        assert clause_multiset(mem) == clause_multiset(sql), seed_note(seed)
        assert mem.variables == sql.variables, seed_note(seed)


class TestPaperInstance:
    def test_paper_program_all_semantics_both_engines(self):
        memory, program = paper_instance()
        sqlite = SQLiteDatabase.from_database(memory)
        for compute in (
            end_semantics,
            stage_semantics,
            step_semantics,
            independent_semantics,
        ):
            for engine in ENGINES:
                mem = compute(memory, program, engine=engine)
                sql = compute(sqlite, program, engine=engine)
                assert mem.deleted == sql.deleted, (compute.__name__, engine)

    def test_closure_on_pre_marked_deltas(self):
        # Initial delta facts (a deletion already recorded) must seed round 1,
        # not the frontier, on both backends.
        from repro.storage.facts import Fact

        memory, program = paper_instance()
        memory.mark_deleted(Fact("Grant", (1, "NSF")))
        sqlite = SQLiteDatabase.from_database(memory)
        mem = run_closure(memory.clone(), program, engine="semi-naive")
        sql = run_closure(sqlite, program, engine="semi-naive")
        assert {a.signature() for a in mem.assignments} == {
            a.signature() for a in sql.assignments
        }
