"""Incremental maintenance tests: RepairService under insert/delete streams.

The central contract (ISSUE 7 / ROADMAP open item 2): after **any** sequence
of insert/delete batches, the maintained state — active extents, delta
closure with tids, satisfying assignments, repair outcome — equals a
from-scratch fixpoint on the resulting base instance, on both backends.
Alongside the randomized differential, targeted tests pin the DRed
over-delete / re-derive behaviour (cascade retraction, rescue through an
alternate derivation, re-insertion through a fresh frontier entry), the
maintenance counters, the point queries, and the exactly-once observer
stream across load + batches.

The CI matrix also drives this file under ``REPRO_SHARDS=4``: the initial
load then resolves to the sharded engine while maintenance runs the
incremental drivers — the differential must hold regardless.
"""

from __future__ import annotations

import random

import pytest

from repro.datalog.context import EvalContext
from repro.datalog.delta import DeltaProgram
from repro.datalog.evaluation import run_closure
from repro.exceptions import EvaluationError
from repro.service import MaintenanceResult, RepairService
from repro.storage.database import Database
from repro.storage.facts import Fact, fact
from repro.storage.schema import RelationSchema, Schema
from repro.storage.sqlite_backend import SQLiteDatabase

BACKENDS = ["memory", "sqlite", "sqlite-file"]


def cascade_schema():
    return Schema.from_relations(
        [
            RelationSchema.of("E", "x:int", "y:int"),
            RelationSchema.of("N", "x:int"),
            RelationSchema.of("S", "x:int"),
        ],
    )


def cascade_program():
    """A guarded recursive cascade: S seeds N, deletions flow along E."""
    return DeltaProgram.from_text(
        """
        delta N(x) :- N(x), S(x).
        delta E(x, y) :- E(x, y), delta N(x).
        delta N(y) :- N(y), E(x, y), delta E(x, y).
        """,
    )


def cascade_facts():
    edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 2), (5, 6), (6, 5), (2, 6), (7, 8)]
    return (
        [fact("E", a, b) for a, b in edges]
        + [fact("N", i) for i in range(9)]
        + [fact("S", 0)]
    )


def make_db(backend, schema, facts, tmp_path=None, tag=""):
    if backend == "memory":
        return Database.from_facts(schema, facts)
    path = ":memory:" if backend == "sqlite" else str(tmp_path / f"inc_{tag}.db")
    db = SQLiteDatabase(schema, path=path)
    db.insert_all(facts)
    return db


def labelled_active(db, schema):
    return {
        (item.relation, item.values, item.tid)
        for relation in schema.relations
        for item in db.candidates(relation, {})
    }


def labelled_deltas(db):
    return {(item.relation, item.values, item.tid) for item in db.all_deltas()}


def assert_matches_scratch(service, schema, program, backend, tmp_path, tag):
    """The maintained state must equal a from-scratch fixpoint on the same
    backend over the current base instance — closures, tids, assignments,
    and repair outcomes."""
    db = service.db
    active = sorted(
        (
            item
            for relation in schema.relations
            for item in db.candidates(relation, {})
        ),
        key=Fact.sort_key,
    )
    scratch = make_db(backend, schema, active, tmp_path, tag)
    result = run_closure(scratch, program, engine="naive")

    assert labelled_active(db, schema) == labelled_active(scratch, schema)
    assert labelled_deltas(db) == labelled_deltas(scratch)
    maintained_sigs = {a.signature() for a in service.assignments()}
    scratch_sigs = {a.signature() for a in result.assignments}
    assert maintained_sigs == scratch_sigs
    scratch_repair = {item for item in scratch.all_deltas() if scratch.has_active(item)}
    assert service.repair_deleted() == frozenset(scratch_repair)
    if isinstance(scratch, SQLiteDatabase):
        scratch.close()


@pytest.mark.parametrize("backend", BACKENDS)
class TestRandomizedDifferential:
    def test_random_batches_match_scratch_fixpoint(self, backend, tmp_path):
        schema, program = cascade_schema(), cascade_program()
        db = make_db(backend, schema, cascade_facts(), tmp_path, "rand")
        service = RepairService(db, program)
        assert_matches_scratch(service, schema, program, backend, tmp_path, "r0")

        rng = random.Random(7)
        for batch in range(12):
            inserts, deletes = [], []
            for _ in range(rng.randint(0, 3)):
                deletes.append(fact("E", rng.randint(0, 8), rng.randint(0, 8)))
                if rng.random() < 0.4:
                    deletes.append(fact("N", rng.randint(0, 8)))
            for _ in range(rng.randint(0, 3)):
                inserts.append(fact("E", rng.randint(0, 8), rng.randint(0, 8)))
                if rng.random() < 0.4:
                    inserts.append(fact("N", rng.randint(0, 8)))
            if rng.random() < 0.2:
                deletes.append(fact("S", 0))
            if rng.random() < 0.3:
                inserts.append(fact("S", 0))
            service.apply(inserts=inserts, deletes=deletes)
            assert_matches_scratch(
                service, schema, program, backend, tmp_path, f"r{batch + 1}",
            )
        assert service.stats.maintained_batches == 12
        if isinstance(db, SQLiteDatabase):
            db.close()


@pytest.mark.parametrize("backend", ["memory", "sqlite"])
class TestMaintenanceBehaviour:
    def make_service(self, backend, tmp_path, facts=None, context=None):
        schema, program = cascade_schema(), cascade_program()
        db = make_db(
            backend, schema, cascade_facts() if facts is None else facts, tmp_path, "svc",
        )
        return RepairService(db, program, context=context), schema, program

    def test_load_requires_empty_delta(self, backend, tmp_path):
        schema, program = cascade_schema(), cascade_program()
        db = make_db(backend, schema, cascade_facts(), tmp_path, "dirty")
        db.mark_deleted(fact("N", 0))
        with pytest.raises(EvaluationError):
            RepairService(db, program)

    def test_point_queries(self, backend, tmp_path):
        service, _, _ = self.make_service(backend, tmp_path)
        # 0 seeds the cascade: the whole 0->1->2->... chain is derivable.
        assert service.is_derivable(fact("N", 0))
        assert service.is_derivable(fact("N", 4))
        assert not service.in_repair(fact("N", 4))
        # 7 -> 8 is disconnected from the seed: never derived, survives.
        assert not service.is_derivable(fact("N", 7))
        assert service.in_repair(fact("N", 7))
        # Facts outside the base instance are neither derivable nor repaired.
        assert not service.is_derivable(fact("N", 99))
        assert not service.in_repair(fact("N", 99))

    def test_cascade_retraction(self, backend, tmp_path):
        service, _, _ = self.make_service(backend, tmp_path)
        assert service.is_derivable(fact("N", 3))
        # Cutting 2 -> 3 severs the only path to 3 and 4 (4 -> 2 is a back
        # edge), so both leave the closure and re-enter the repair.
        result = service.apply(deletes=[fact("E", 2, 3)])
        assert result.deleted and result.overdeleted > 0
        for node in (3, 4):
            assert not service.is_derivable(fact("N", node))
            assert service.in_repair(fact("N", node))
        # The strongly-connected 5/6 pair hangs off node 2, not 3: untouched.
        assert service.is_derivable(fact("N", 5))

    def test_rescue_through_alternate_derivation(self, backend, tmp_path):
        # Diamond: 0 -> 1 -> 3 and 0 -> 2 -> 3.  Deleting edge 1 -> 3
        # over-deletes N(3) but the 2 -> 3 derivation rescues it.
        facts = (
            [fact("E", 0, 1), fact("E", 0, 2), fact("E", 1, 3), fact("E", 2, 3)]
            + [fact("N", i) for i in range(4)]
            + [fact("S", 0)]
        )
        service, _, _ = self.make_service(backend, tmp_path, facts=facts)
        stats = service.stats
        result = service.apply(deletes=[fact("E", 1, 3)])
        assert result.overdeleted == 2  # delta E(1,3) and delta N(3)
        assert result.rederived == 1  # delta N(3) survives via 2 -> 3
        assert {(f.relation, f.values) for f in result.retracted} == {("E", (1, 3))}
        assert service.is_derivable(fact("N", 3))
        assert not service.is_derivable(fact("E", 1, 3))
        assert stats.overdeleted >= 2 and stats.rederived >= 1

    def test_reinsertion_rederives_through_fresh_frontier(self, backend, tmp_path):
        # Retract a chain, then re-insert the cut edge in a later batch: the
        # retracted facts must re-enter the frontier (the SQLite path must
        # re-stamp f_R) and the closure must be fully restored.
        service, schema, program = self.make_service(backend, tmp_path)
        before = labelled_deltas(service.db)
        service.apply(deletes=[fact("E", 0, 1)])
        assert not service.is_derivable(fact("N", 1))
        restored = service.apply(inserts=[fact("E", 0, 1)])
        assert restored.rounds >= 1
        assert {(r, v) for r, v, _ in labelled_deltas(service.db)} == {
            (r, v) for r, v, _ in before
        }
        assert service.is_derivable(fact("N", 4))

    def test_batches_are_idempotent_and_empty_batches_noop(self, backend, tmp_path):
        service, schema, program = self.make_service(backend, tmp_path)
        snapshot = labelled_deltas(service.db)
        result = service.apply()
        assert result == MaintenanceResult()
        # Inserting present facts / deleting absent ones changes nothing.
        result = service.apply(
            inserts=[fact("N", 0), fact("E", 0, 1)], deletes=[fact("E", 42, 43)],
        )
        assert result.inserted == () and result.deleted == ()
        assert result.overdeleted == 0 and result.rounds == 0
        assert labelled_deltas(service.db) == snapshot
        assert service.stats.maintained_batches == 2

    def test_insert_wins_when_batch_deletes_and_inserts_same_fact(
        self, backend, tmp_path,
    ):
        service, _, _ = self.make_service(backend, tmp_path)
        service.apply(deletes=[fact("E", 0, 1)], inserts=[fact("E", 0, 1)])
        assert service.db.has_active(fact("E", 0, 1))
        assert service.is_derivable(fact("N", 1))

    def test_observers_see_every_assignment_exactly_once(self, backend, tmp_path):
        context = EvalContext()
        delivered = []
        context.add_observer(delivered.append)
        service, _, _ = self.make_service(backend, tmp_path, context=context)
        load_count = len(delivered)
        assert load_count == len(service.assignments())
        load_sigs = [a.signature() for a in delivered]
        assert len(set(load_sigs)) == len(load_sigs)
        service.apply(deletes=[fact("E", 0, 1)])
        assert len(delivered) == load_count  # deletions never deliver
        service.apply(inserts=[fact("E", 0, 1)])
        # Re-derived assignments left the store on deletion, so the
        # re-insertion batch delivers each of them exactly once more.
        batch_sigs = [a.signature() for a in delivered[load_count:]]
        assert batch_sigs and len(set(batch_sigs)) == len(batch_sigs)
        assert set(batch_sigs) <= set(load_sigs)
        # The closure is restored: live assignments equal the original load.
        live = {a.signature() for a in service.assignments()}
        assert live == set(load_sigs)


# ---------------------------------------------------------------------------
# Sharded maintenance determinism
# ---------------------------------------------------------------------------

SHARD_CONFIGS = [
    {"shards": 2, "workers": 2},
    {"shards": 3, "workers": 2},
    {"shards": 5, "workers": 3},
]


def scripted_batches():
    """A fixed insert/delete script exercising discovery, propagation and
    DRed (cascades, rescues, re-insertions) — shared by every determinism
    run so traces are comparable byte for byte."""
    rng = random.Random(23)
    batches = []
    for step in range(8):
        inserts, deletes = [], []
        for _ in range(rng.randint(1, 3)):
            deletes.append(fact("E", rng.randint(0, 8), rng.randint(0, 8)))
        for _ in range(rng.randint(1, 3)):
            inserts.append(fact("E", rng.randint(0, 8), rng.randint(0, 8)))
            if rng.random() < 0.5:
                inserts.append(fact("N", rng.randint(0, 8)))
        if step == 3:
            deletes.append(fact("S", 0))
        if step == 5:
            inserts.append(fact("S", 0))
        batches.append((inserts, deletes))
    return batches


def run_maintenance_trace(backend, tmp_path, tag, **context_kwargs):
    """Load + scripted batches under one context config; return every
    observable the byte-identical contract covers."""
    schema, program = cascade_schema(), cascade_program()
    db = make_db(backend, schema, cascade_facts(), tmp_path, tag)
    context = EvalContext(**context_kwargs)
    stream = []
    context.add_observer(stream.append)
    # Pin the load engine: ``shards=`` would otherwise switch the *load* to
    # the sharded closure, whose record order legitimately differs from the
    # serial engines.  The contract under test is maintenance-only.
    service = RepairService(db, program, engine="semi-naive", context=context)
    load_count = len(stream)
    for inserts, deletes in scripted_batches():
        service.apply(inserts=inserts, deletes=deletes)
    trace = {
        "active": labelled_active(db, schema),
        "deltas": labelled_deltas(db),
        "stream": [a.signature() for a in stream[load_count:]],
        "store": [a.signature() for a in service.assignments()],
    }
    if backend == "sqlite-file":
        trace["persisted"] = [
            db.execute(
                f"SELECT * FROM {table} ORDER BY 1, 2"
            ).fetchall()
            for table in (
                "_repro_assign",
                "_repro_assign_base",
                "_repro_assign_delta",
                "_repro_assign_support",
            )
        ]
    stats = context.stats
    shard_jobs = (
        stats.maint_discovery_shards
        + stats.maint_propagate_shards
        + stats.maint_dred_shards
    )
    if isinstance(db, SQLiteDatabase):
        db.close()
    return trace, shard_jobs


@pytest.mark.parametrize("backend", BACKENDS)
class TestShardedMaintenanceDeterminism:
    def test_sharded_runs_byte_identical_to_serial(self, backend, tmp_path):
        serial, serial_jobs = run_maintenance_trace(
            backend, tmp_path, "det_serial", shard_maintenance=False,
        )
        assert serial_jobs == 0
        # shards=1 opts in but collapses to the serial drivers.
        one, one_jobs = run_maintenance_trace(
            backend, tmp_path, "det_one", shards=1, shard_maintenance=True,
        )
        assert one_jobs == 0
        assert one == serial
        for config in SHARD_CONFIGS:
            tag = "det_s{shards}w{workers}".format(**config)
            sharded, jobs = run_maintenance_trace(
                backend, tmp_path, tag, shard_maintenance=True, **config,
            )
            assert jobs > 0, config
            for key in serial:
                assert sharded[key] == serial[key], (config, key)

    def test_env_knob_opts_maintenance_in(self, backend, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "3")
        monkeypatch.setenv("REPRO_SHARD_MAINTENANCE", "1")
        env_trace, env_jobs = run_maintenance_trace(backend, tmp_path, "det_env")
        assert env_jobs > 0
        monkeypatch.delenv("REPRO_SHARDS")
        monkeypatch.delenv("REPRO_SHARD_MAINTENANCE")
        serial, _ = run_maintenance_trace(
            backend, tmp_path, "det_env_serial", shard_maintenance=False,
        )
        assert env_trace == serial
