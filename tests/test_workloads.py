"""Tests for the synthetic workload generators and the paper's programs."""

import pytest

from repro import RepairEngine, Semantics
from repro.core.stability import is_stabilizing_set
from repro.exceptions import ExperimentError
from repro.workloads import (
    dc_constraints,
    dc_program,
    generate_author_table,
    generate_mas,
    generate_tpch,
    inject_errors,
    mas_program,
    mas_programs,
    tpch_program,
    tpch_programs,
)
from repro.workloads.errors import AUTHOR_EXT_RELATION
from repro.workloads.programs_mas import MAS_PROGRAM_IDS
from repro.workloads.programs_tpch import TPCH_PROGRAM_IDS


class TestMASGenerator:
    def test_deterministic_for_same_seed(self):
        first = generate_mas(scale=0.2, seed=3)
        second = generate_mas(scale=0.2, seed=3)
        assert first.db.same_state_as(second.db)
        assert first.constants == second.constants

    def test_different_seeds_differ(self):
        assert not generate_mas(scale=0.2, seed=3).db.same_state_as(
            generate_mas(scale=0.2, seed=4).db,
        )

    def test_scale_grows_the_instance(self):
        small = generate_mas(scale=0.2, seed=1)
        large = generate_mas(scale=0.6, seed=1)
        assert large.total_tuples > small.total_tuples

    def test_referential_integrity(self, small_mas):
        db = small_mas.db
        author_ids = {item.values[0] for item in db.active_facts("Author")}
        org_ids = {item.values[0] for item in db.active_facts("Organization")}
        pub_ids = {item.values[0] for item in db.active_facts("Publication")}
        for item in db.active_facts("Writes"):
            assert item.values[0] in author_ids and item.values[1] in pub_ids
        for item in db.active_facts("Author"):
            assert item.values[2] in org_ids
        for item in db.active_facts("Cite"):
            assert item.values[0] in pub_ids and item.values[1] in pub_ids

    def test_constants_refer_to_existing_tuples(self, small_mas):
        constants = small_mas.constants
        author_ids = {item.values[0] for item in small_mas.db.active_facts("Author")}
        assert constants.target_author_id in author_ids
        names = {item.values[1] for item in small_mas.db.active_facts("Author")}
        assert constants.target_author_name in names

    def test_fresh_db_is_a_copy(self, small_mas):
        copy = small_mas.fresh_db()
        copy.delete(next(iter(copy.active_facts("Author"))))
        assert small_mas.db.count_delta() == 0


class TestTPCHGenerator:
    def test_deterministic(self):
        assert generate_tpch(scale=0.2, seed=5).db.same_state_as(
            generate_tpch(scale=0.2, seed=5).db,
        )

    def test_counts_cover_all_eight_tables(self, small_tpch):
        assert set(small_tpch.counts) == {
            "Region", "Nation", "Supplier", "Customer", "Part",
            "PartSupp", "Orders", "LineItem",
        }
        assert small_tpch.total_tuples == sum(small_tpch.counts.values())

    def test_referential_integrity(self, small_tpch):
        db = small_tpch.db
        supplier_keys = {item.values[0] for item in db.active_facts("Supplier")}
        part_keys = {item.values[0] for item in db.active_facts("Part")}
        order_keys = {item.values[0] for item in db.active_facts("Orders")}
        for item in db.active_facts("PartSupp"):
            assert item.values[0] in supplier_keys and item.values[1] in part_keys
        for item in db.active_facts("LineItem"):
            assert item.values[0] in order_keys


class TestMASPrograms:
    def test_all_twenty_programs_validate(self, small_mas):
        programs = mas_programs(small_mas)
        assert set(programs) == set(MAS_PROGRAM_IDS)

    def test_unknown_program_rejected(self, small_mas):
        with pytest.raises(ExperimentError):
            mas_program(small_mas, "99")

    def test_program_2_independent_result_is_single_author(self, small_mas):
        program = mas_program(small_mas, "2")
        engine = RepairEngine(small_mas.fresh_db(), program)
        result = engine.repair(Semantics.INDEPENDENT)
        assert result.size == 1
        assert next(iter(result.deleted)).relation == "Author"

    def test_cascade_program_20_same_for_all_semantics(self, small_mas):
        program = mas_program(small_mas, "20")
        results = RepairEngine(small_mas.fresh_db(), program).repair_all()
        sizes = {result.size for result in results.values()}
        assert len(sizes) == 1

    def test_results_are_stabilizing_for_a_sample(self, small_mas):
        for program_id in ("1", "6", "15"):
            program = mas_program(small_mas, program_id)
            db = small_mas.fresh_db()
            for semantics in (Semantics.STAGE, Semantics.STEP, Semantics.INDEPENDENT):
                result = RepairEngine(db, program).repair(semantics)
                assert is_stabilizing_set(db, program, result.deleted)


class TestTPCHPrograms:
    def test_all_six_programs_validate(self, small_tpch):
        assert set(tpch_programs(small_tpch)) == set(TPCH_PROGRAM_IDS)

    def test_unknown_program_rejected(self, small_tpch):
        with pytest.raises(ExperimentError):
            tpch_program(small_tpch, "T-9")

    def test_t2_cascade_results_contained_in_end(self, small_tpch):
        program = tpch_program(small_tpch, "T-2")
        results = RepairEngine(small_tpch.fresh_db(), program).repair_all()
        assert results[Semantics.STAGE].deleted <= results[Semantics.END].deleted
        assert results[Semantics.STEP].deleted <= results[Semantics.END].deleted


class TestErrorInjection:
    def test_clean_table_is_stable_under_dcs(self):
        clean = generate_author_table(80, seed=1)
        assert RepairEngine(clean, dc_program()).is_stable()

    def test_injection_creates_violations(self):
        clean = generate_author_table(80, seed=1)
        dirty = inject_errors(clean, 8, seed=2)
        assert dirty.error_count == 8
        assert dirty.db.count_active(AUTHOR_EXT_RELATION) == 88
        assert not RepairEngine(dirty.db, dc_program()).is_stable()

    def test_injected_rows_are_a_stabilizing_set(self):
        clean = generate_author_table(80, seed=1)
        dirty = inject_errors(clean, 8, seed=2)
        assert is_stabilizing_set(dirty.db, dc_program(), dirty.injected)

    def test_ground_truth_bookkeeping(self):
        clean = generate_author_table(50, seed=3)
        dirty = inject_errors(clean, 6, seed=4)
        for bad in dirty.injected:
            clean_row = dirty.clean_counterpart[bad]
            position = dirty.perturbed_attribute[bad]
            assert bad.values[0] == clean_row.values[0]  # same aid
            assert bad.values[position] != clean_row.values[position]

    def test_too_many_errors_rejected(self):
        clean = generate_author_table(10, seed=1)
        with pytest.raises(ExperimentError):
            inject_errors(clean, 11)

    def test_dc_constraints_cover_the_four_papers_constraints(self):
        constraints = dc_constraints()
        assert set(constraints) == {"DC1", "DC2", "DC3", "DC4"}
        assert len(dc_program()) == 4
        assert len(dc_program(per_atom=True)) == 8
