"""Unit tests for the provenance graph (repro.provenance.graph)."""

from repro.datalog.delta import DeltaProgram
from repro.provenance.graph import build_provenance_graph
from repro.storage.database import Database
from repro.storage.facts import fact
from repro.storage.schema import Schema

from tests.conftest import PAPER_PROGRAM_TEXT, make_paper_database


def paper_graph():
    db = make_paper_database()
    program = DeltaProgram.from_text(PAPER_PROGRAM_TEXT)
    return build_provenance_graph(db, program)


class TestPaperExampleGraph:
    """Figure 5 of the paper: the provenance graph of the running example."""

    def test_layers_match_figure_5(self):
        graph = paper_graph()
        assert graph.layer_count == 4
        assert graph.tuples_in_layer(1) == {fact("Grant", 2, "ERC")}
        assert graph.tuples_in_layer(2) == {
            fact("Author", 4, "Marge"),
            fact("Author", 5, "Homer"),
        }
        assert graph.tuples_in_layer(3) == {
            fact("Writes", 4, 6),
            fact("Writes", 5, 7),
            fact("Pub", 6, "x"),
            fact("Pub", 7, "y"),
        }
        assert graph.tuples_in_layer(4) == {fact("Cite", 7, 6)}

    def test_benefits_match_figure_5(self):
        graph = paper_graph()
        assert graph.benefit(fact("Grant", 2, "ERC")) == -1
        assert graph.benefit(fact("Author", 4, "Marge")) == -1
        assert graph.benefit(fact("Author", 5, "Homer")) == -1
        assert graph.benefit(fact("Writes", 4, 6)) == 3
        assert graph.benefit(fact("Writes", 5, 7)) == 3
        # Tuples that never participate have benefit 0.
        assert graph.benefit(fact("Grant", 1, "NSF")) == 0

    def test_derived_set_is_end_result(self):
        graph = paper_graph()
        assert len(graph.derived) == 8

    def test_assignment_queries(self):
        graph = paper_graph()
        assert len(graph.assignments_deriving(fact("Author", 4, "Marge"))) == 1
        assert len(graph.assignments_using_delta(fact("Grant", 2, "ERC"))) == 2
        assert len(graph.assignments_using_base(fact("Writes", 4, 6))) == 3

    def test_graph_counts(self):
        graph = paper_graph()
        assert graph.node_count() >= len(graph.derived)
        assert graph.edge_count() > 0

    def test_describe_lists_layers(self):
        text = paper_graph().describe()
        assert "layer 1" in text and "layer 4" in text

    def test_original_database_not_modified(self):
        db = make_paper_database()
        program = DeltaProgram.from_text(PAPER_PROGRAM_TEXT)
        build_provenance_graph(db, program)
        assert db.count_delta() == 0
        assert db.count_active() == 13


class TestEdgeCases:
    def test_empty_graph_for_stable_database(self):
        schema = Schema.from_arities({"R": 1, "S": 1})
        db = Database.from_dicts(schema, {"R": [(1,)], "S": []})
        program = DeltaProgram.from_text("delta R(x) :- R(x), S(x).")
        graph = build_provenance_graph(db, program)
        assert graph.layer_count == 0
        assert graph.derived == set()
        assert graph.assignments == []

    def test_multiple_derivations_keep_min_layer(self):
        schema = Schema.from_arities({"A": 1, "B": 1, "C": 1})
        db = Database.from_dicts(schema, {"A": [(1,)], "B": [(1,)], "C": [(1,)]})
        program = DeltaProgram.from_text(
            """
            delta A(x) :- A(x).
            delta B(x) :- B(x), delta A(x).
            delta C(x) :- C(x), delta B(x).
            delta C(x) :- C(x), delta A(x).
            """,
        )
        graph = build_provenance_graph(db, program)
        # C(1) is derivable both at depth 2 (via A) and 3 (via B); the layer is the minimum.
        assert graph.layers[fact("C", 1)] == 2
        assert len(graph.assignments_deriving(fact("C", 1))) == 2
