"""Tests for repair explanations (repro.core.explain)."""

import pytest

from repro import RepairEngine, Semantics, fact
from repro.core.explain import explain_deletion, explain_repair
from repro.datalog.delta import DeltaProgram

from tests.conftest import PAPER_PROGRAM_TEXT, make_paper_database


@pytest.fixture
def setup():
    db = make_paper_database()
    program = DeltaProgram.from_text(PAPER_PROGRAM_TEXT)
    return db, program, RepairEngine(db, program)


class TestExplainDeletion:
    def test_cascade_deletion_has_a_derivation_chain(self, setup):
        db, program, engine = setup
        result = engine.repair(Semantics.STEP)
        explanation = explain_deletion(db, program, result, fact("Writes", 4, 6))
        assert explanation.semantics == "step"
        assert len(explanation.derivation) >= 3  # grant -> author -> writes
        assert explanation.derivation[0].derived == "Grant(2, ERC)"
        assert explanation.derivation[-1].derived == "Writes(4, 6)"
        assert not explanation.is_seed()

    def test_seed_deletion_has_single_step(self, setup):
        db, program, engine = setup
        result = engine.repair(Semantics.STAGE)
        explanation = explain_deletion(db, program, result, fact("Grant", 2, "ERC"))
        assert len(explanation.derivation) == 1
        assert "Grant" in explanation.derivation[0].derived

    def test_independent_deletion_lists_conflicts(self, setup):
        db, program, engine = setup
        result = engine.repair(Semantics.INDEPENDENT)
        explanation = explain_deletion(db, program, result, fact("AuthGrant", 4, 2))
        assert explanation.conflicts  # deleting ag2 resolves the Marge cascade
        assert any("AuthGrant(4, 2)" in conflict for conflict in explanation.conflicts)

    def test_non_deleted_tuple_rejected(self, setup):
        db, program, engine = setup
        result = engine.repair(Semantics.STEP)
        with pytest.raises(ValueError):
            explain_deletion(db, program, result, fact("Grant", 1, "NSF"))

    def test_render_is_readable(self, setup):
        db, program, engine = setup
        result = engine.repair(Semantics.STEP)
        text = explain_deletion(db, program, result, fact("Author", 4, "Marge")).render()
        assert "derivation chain" in text
        assert "Grant(2, ERC)" in text


class TestExplainRepair:
    def test_one_explanation_per_deleted_tuple(self, setup):
        db, program, engine = setup
        result = engine.repair(Semantics.STEP)
        explanations = explain_repair(db, program, result)
        assert len(explanations) == result.size
        targets = {explanation.target for explanation in explanations}
        assert targets == set(result.deleted)

    def test_limit(self, setup):
        db, program, engine = setup
        result = engine.repair(Semantics.END)
        assert len(explain_repair(db, program, result, limit=3)) == 3
