"""Unit tests for end and stage semantics (the PTIME semantics)."""

import pytest

from repro.core.semantics import Semantics, end_semantics, stage_semantics
from repro.core.stability import is_stabilizing_set
from repro.datalog.delta import DeltaProgram
from repro.storage.database import Database
from repro.storage.facts import fact
from repro.storage.schema import Schema


@pytest.fixture
def chain_setup():
    """The Proposition 3.20-2 counterexample separating stage from end semantics."""
    schema = Schema.from_arities({"R1": 1, "R2": 1, "R3": 1})
    db = Database.from_dicts(
        schema, {"R1": [("a",)], "R2": [("a",)], "R3": [(f"b{i}",) for i in range(4)]},
    )
    program = DeltaProgram.from_text(
        """
        delta R1(x) :- R1(x).
        delta R2(x) :- R2(x), delta R1(x).
        delta R3(y) :- R3(y), R1(x), delta R2(x).
        """,
    )
    return db, program


class TestEndSemantics:
    def test_stable_database_deletes_nothing(self):
        schema = Schema.from_arities({"R": 1, "S": 1})
        db = Database.from_dicts(schema, {"R": [(1,)], "S": []})
        result = end_semantics(db, DeltaProgram.from_text("delta R(x) :- R(x), S(x)."))
        assert result.size == 0
        assert result.semantics is Semantics.END

    def test_derives_against_original_relations(self, chain_setup):
        db, program = chain_setup
        result = end_semantics(db, program)
        # End semantics keeps R1(a) visible while deriving, so rule 3 fires and
        # all R3 tuples are deleted (6 deletions in total).
        assert result.size == 6
        assert fact("R3", "b0") in result.deleted

    def test_result_is_stabilizing(self, chain_setup):
        db, program = chain_setup
        result = end_semantics(db, program)
        assert is_stabilizing_set(db, program, result.deleted)

    def test_original_database_untouched(self, chain_setup):
        db, program = chain_setup
        end_semantics(db, program)
        assert db.count_delta() == 0
        assert db.count_active() == 6

    def test_repaired_database_state(self, chain_setup):
        db, program = chain_setup
        result = end_semantics(db, program)
        assert result.repaired.count_active() == 0
        assert result.repaired.count_delta() == 6

    def test_rounds_reported(self, chain_setup):
        db, program = chain_setup
        result = end_semantics(db, program)
        assert result.rounds is not None and result.rounds >= 2

    def test_timer_records_eval_phase(self, chain_setup):
        db, program = chain_setup
        result = end_semantics(db, program)
        assert result.timer.get("eval") >= 0.0
        assert result.runtime >= 0.0


class TestStageSemantics:
    def test_stops_cascade_when_support_is_deleted(self, chain_setup):
        db, program = chain_setup
        result = stage_semantics(db, program)
        # Stage semantics deletes R1(a) in stage 1, so rule 3's positive R1 atom
        # can no longer be matched: only R1(a) and R2(a) are deleted.
        assert result.deleted == frozenset({fact("R1", "a"), fact("R2", "a")})

    def test_stage_result_subset_of_end(self, chain_setup):
        db, program = chain_setup
        stage = stage_semantics(db, program)
        end = end_semantics(db, program)
        assert stage.deleted <= end.deleted
        assert stage.deleted != end.deleted  # strict on this counterexample

    def test_stage_is_stabilizing(self, chain_setup):
        db, program = chain_setup
        result = stage_semantics(db, program)
        assert is_stabilizing_set(db, program, result.deleted)

    def test_unique_fixpoint_independent_of_rule_order(self, chain_setup):
        """Proposition 3.9: stage semantics converges to a unique fixpoint."""
        db, program = chain_setup
        reversed_program = DeltaProgram.from_rules(tuple(reversed(program.rules)))
        assert (
            stage_semantics(db, program).deleted
            == stage_semantics(db, reversed_program).deleted
        )

    def test_rounds_counted(self, chain_setup):
        db, program = chain_setup
        result = stage_semantics(db, program)
        assert result.rounds >= 2

    def test_stable_database_single_round(self):
        schema = Schema.from_arities({"R": 1, "S": 1})
        db = Database.from_dicts(schema, {"R": [(1,)], "S": []})
        result = stage_semantics(db, DeltaProgram.from_text("delta R(x) :- R(x), S(x)."))
        assert result.size == 0
        assert result.rounds == 1

    def test_original_database_untouched(self, chain_setup):
        db, program = chain_setup
        stage_semantics(db, program)
        assert db.count_delta() == 0
