"""Observer-path regression tests for the single-pass staged SQLite rounds.

The semi-naive SQL driver evaluates every rule variant's join exactly once per
round.  With observers it stages the join's rows into a temp table and feeds
both the observers and the install from the staged rows; without observers it
runs the install directly (the fast path).  These tests pin down:

* staged rows vs the legacy re-SELECT double-pass: identical assignment
  multisets **including tid labels**, identical delta fixpoints;
* the no-observer fast path: same fixpoint, zero assignment rows, zero
  ``assign-select``/``stage`` statements (verified by tag-counting hooks);
* empty-frontier rounds behave identically on both paths;
* the :class:`~repro.datalog.context.QueryStats` single-pass accounting.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List

import pytest

from repro.datalog import DeltaProgram, EvalContext, run_closure
from repro.datalog.sql_compiler import (
    TAG_ASSIGN_SELECT,
    TAG_INSTALL_DIRECT,
    TAG_INSTALL_STAGED,
    TAG_STAGE,
    assignments_from_rows,
    compile_frontier_rule,
    delta_copy_sql,
)
from repro.storage.facts import fact
from repro.storage.schema import RelationSchema, Schema
from repro.storage.sqlite_backend import SQLiteDatabase

from tests.generators import paper_instance, random_instance

#: Seeds for the randomized staged-vs-reselect comparison.
SEEDS = tuple(range(12))


def tag_counter(db: SQLiteDatabase) -> Counter:
    """Install a statement hook counting the compiler's statement tags."""
    counts: Counter = Counter()

    def hook(sql: str) -> None:
        staging_tags = (
            TAG_ASSIGN_SELECT,
            TAG_STAGE,
            TAG_INSTALL_DIRECT,
            TAG_INSTALL_STAGED,
        )
        for tag in staging_tags:
            if tag in sql:
                counts[tag] += 1

    db.add_statement_hook(hook)
    return counts


def assignment_key(assignment) -> tuple:
    """Identity of one assignment *including* the tid labels of its rows."""
    return (
        assignment.signature(),
        tuple(item.tid for item in assignment.all_facts()),
    )


def reselect_closure(db: SQLiteDatabase, program: DeltaProgram):
    """The legacy double-pass driver: assignment SELECT + separate install.

    Re-implements the pre-staging loop from the same compiled variants
    (``variant.sql`` then ``variant.install_sql``, both running the body
    join), serving as the oracle the staged rows must match row-for-row.
    """
    rules = list(program)
    delta_rules = [r for r in rules if any(a.is_delta for a in r.body)]
    watched = {a.relation for r in delta_rules for a in r.body if a.is_delta}
    copy_statements = {
        r.head.relation: delta_copy_sql(r.head.relation, r.head.arity) for r in rules
    }
    assignments: List = []
    seen: set = set()

    def record(assignment) -> None:
        signature = assignment.signature()
        if signature not in seen:
            seen.add(signature)
            assignments.append(assignment)

    def install(rule, variant, window, gen, new_by_relation) -> None:
        cursor = db.execute(variant.install_sql, variant.bind(gen=gen, **window))
        if cursor.rowcount > 0:
            relation = rule.head.relation
            seen = new_by_relation.get(relation, 0)
            new_by_relation[relation] = seen + cursor.rowcount

    rounds = 0
    hi = db.generation()
    gen = db.next_generation()
    new_by_relation: Dict[str, int] = {}
    rounds += 1
    for rule in rules:
        full, _ = compile_frontier_rule(rule)
        cursor = db.execute(full.sql, full.bind(hi=hi))
        for assignment in assignments_from_rows(rule, full.atom_arities, cursor):
            record(assignment)
        install(rule, full, {"hi": hi}, gen, new_by_relation)
    for relation in new_by_relation:
        db.execute(copy_statements[relation], {"gen": gen})
    while any(new_by_relation.get(relation) for relation in watched):
        rounds += 1
        lo, hi = hi, gen
        gen = db.next_generation()
        frontier, new_by_relation = new_by_relation, {}
        for rule in delta_rules:
            _, seeded = compile_frontier_rule(rule)
            for variant in seeded:
                if not frontier.get(variant.seed_relation):
                    continue
                cursor = db.execute(variant.sql, variant.bind(lo=lo, hi=hi))
                for assignment in assignments_from_rows(
                    rule, variant.atom_arities, cursor,
                ):
                    record(assignment)
                install(rule, variant, {"lo": lo, "hi": hi}, gen, new_by_relation)
        for relation in new_by_relation:
            db.execute(copy_statements[relation], {"gen": gen})
    return assignments, rounds


def cascade_fixture():
    """The empty-frontier-round cascade from the backend edge-case tests."""
    schema = Schema.from_relations(
        [RelationSchema.of("R", "x:int", "y:str"), RelationSchema.of("S", "x:int")],
    )
    db = SQLiteDatabase(schema)
    db.insert_all(
        [fact("R", 1, "a", tid="r1"), fact("R", 2, "b", tid="r2"), fact("S", 1, tid="s1")],
    )
    program = DeltaProgram.from_text(
        """
        delta R(x, y) :- R(x, y), S(x).
        delta S(x) :- S(x), delta R(x, y).
        delta R(x, y) :- R(x, y), delta S(x).
        """,
    )
    return db, program


class TestStagedMatchesReselect:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_instances_same_assignments_and_tids(self, seed):
        memory, program = random_instance(seed, max_facts=25)
        base = SQLiteDatabase.from_database(memory)

        staged_db = base.clone()
        staged = run_closure(staged_db, program, engine="semi-naive")
        reselect_db = base.clone()
        legacy, legacy_rounds = reselect_closure(reselect_db, program)

        assert Counter(assignment_key(a) for a in staged.assignments) == Counter(
            assignment_key(a) for a in legacy
        )
        assert staged.rounds == legacy_rounds
        assert set(staged_db.all_deltas()) == set(reselect_db.all_deltas())

    def test_paper_instance_tids_flow_through_stage(self):
        memory, program = paper_instance()
        base = SQLiteDatabase.from_database(memory)
        staged = run_closure(base.clone(), program, engine="semi-naive")
        legacy, _ = reselect_closure(base.clone(), program)
        assert Counter(assignment_key(a) for a in staged.assignments) == Counter(
            assignment_key(a) for a in legacy
        )
        # The paper instance carries human-readable tids; they must survive
        # the temp-table round trip.
        tids = {
            item.tid
            for assignment in staged.assignments
            for item in assignment.all_facts()
        }
        assert tids - {None}

    def test_empty_frontier_rounds_identical(self):
        db, program = cascade_fixture()
        staged_db = db.clone()
        staged = run_closure(staged_db, program, engine="semi-naive")
        legacy_db = db.clone()
        legacy, legacy_rounds = reselect_closure(legacy_db, program)
        # Round 3 re-derives only known facts (empty frontier afterwards).
        assert staged.rounds == legacy_rounds == 3
        assert Counter(assignment_key(a) for a in staged.assignments) == Counter(
            assignment_key(a) for a in legacy
        )
        assert set(staged_db.all_deltas()) == set(legacy_db.all_deltas())


class TestFastPath:
    def test_no_observer_skips_staging_and_selects(self):
        db, program = cascade_fixture()
        fast_db = db.clone()
        counts = tag_counter(fast_db)
        ctx = EvalContext()
        result = run_closure(
            fast_db, program, engine="semi-naive",
            collect_assignments=False, context=ctx,
        )
        assert result.assignments == []
        assert counts[TAG_ASSIGN_SELECT] == 0
        assert counts[TAG_STAGE] == 0
        assert counts[TAG_INSTALL_STAGED] == 0
        assert counts[TAG_INSTALL_DIRECT] > 0
        assert ctx.stats.direct_installs == counts[TAG_INSTALL_DIRECT]
        assert ctx.stats.staged_selects == 0
        # Same fixpoint and round count as the observed run.
        observed_db = db.clone()
        observed = run_closure(observed_db, program, engine="semi-naive")
        assert result.rounds == observed.rounds == 3
        assert set(fast_db.all_deltas()) == set(observed_db.all_deltas())

    def test_on_assignment_hook_forces_staging(self):
        db, program = cascade_fixture()
        working = db.clone()
        counts = tag_counter(working)
        seen: List = []
        run_closure(
            working, program, engine="semi-naive",
            on_assignment=seen.append, collect_assignments=False,
        )
        assert seen
        assert counts[TAG_STAGE] > 0
        assert counts[TAG_ASSIGN_SELECT] == 0
        assert counts[TAG_INSTALL_DIRECT] == 0

    def test_context_observer_forces_staging_and_receives_assignments(self):
        db, program = cascade_fixture()
        reference = run_closure(db.clone(), program, engine="semi-naive")
        working = db.clone()
        ctx = EvalContext()
        seen: List = []
        ctx.add_observer(seen.append)
        result = run_closure(
            working, program, engine="semi-naive",
            collect_assignments=False, context=ctx,
        )
        assert result.assignments == []
        assert Counter(assignment_key(a) for a in seen) == Counter(
            assignment_key(a) for a in reference.assignments
        )
        assert ctx.stats.staged_selects > 0
        # Removing the observer re-enables the fast path.
        ctx.remove_observer(seen.append)
        assert not ctx.has_observers

    def test_empty_frontier_rounds_on_fast_path(self):
        # A closure whose final round installs nothing must terminate with
        # the same round count on both paths (the install change counts are
        # the only emptiness signal on the fast path).
        db, program = cascade_fixture()
        fast_db = db.clone()
        fast = run_closure(
            fast_db, program, engine="semi-naive", collect_assignments=False,
        )
        assert fast.rounds == 3
        assert set(fast_db.all_deltas()) == {fact("R", 1, "a"), fact("S", 1)}


class TestSinglePassAccounting:
    def test_staged_run_never_reruns_the_join(self):
        db, program = cascade_fixture()
        working = db.clone()
        counts = tag_counter(working)
        ctx = EvalContext()
        run_closure(working, program, engine="semi-naive", context=ctx)
        # One staged CREATE per executed variant, one staged install each,
        # and not a single assignment re-SELECT or direct install.
        assert counts[TAG_STAGE] == counts[TAG_INSTALL_STAGED] > 0
        assert counts[TAG_ASSIGN_SELECT] == 0
        assert counts[TAG_INSTALL_DIRECT] == 0
        assert ctx.stats.staged_selects == counts[TAG_STAGE]
        assert ctx.stats.staged_installs == counts[TAG_INSTALL_STAGED]

    def test_fast_and_staged_paths_run_equally_many_joins(self):
        db, program = cascade_fixture()
        staged_ctx, fast_ctx = EvalContext(), EvalContext()
        run_closure(db.clone(), program, engine="semi-naive", context=staged_ctx)
        run_closure(
            db.clone(), program, engine="semi-naive",
            collect_assignments=False, context=fast_ctx,
        )
        assert staged_ctx.stats.joins() == fast_ctx.stats.joins() > 0

    def test_context_shares_compiled_variants_across_runs(self):
        db, program = cascade_fixture()
        ctx = EvalContext()
        run_closure(db.clone(), program, engine="semi-naive", context=ctx)
        compiles_after_first = ctx.stats.variant_compiles
        assert compiles_after_first == len(list(program))
        run_closure(db.clone(), program, engine="semi-naive", context=ctx)
        assert ctx.stats.variant_compiles == compiles_after_first

    def test_stage_discovery_stages_when_context_has_observers(self):
        from repro.core.semantics import stage_semantics

        db, program = cascade_fixture()
        # Observer-less shared context: discovery keeps streaming plain
        # single-pass SELECTs (staging would be overhead with one consumer),
        # counted per join.
        plain_ctx = EvalContext()
        plain = stage_semantics(db, program, context=plain_ctx)
        assert plain.deleted
        assert plain_ctx.stats.assignment_selects > 0
        assert plain_ctx.stats.staged_selects == 0
        # With an assignment observer the same joins stage through the keyed
        # tables and feed the observer once per discovered assignment: one
        # staged insert per join, no plain SELECTs, no staged installs
        # (discovery only enumerates), at most one DDL batch per width.
        ctx = EvalContext()
        observed: List = []
        ctx.add_observer(observed.append)
        result = stage_semantics(db, program, context=ctx)
        assert result.deleted
        assert observed
        assert ctx.stats.staged_selects > 0
        assert ctx.stats.assignment_selects == 0
        assert ctx.stats.staged_installs == 0
        assert 0 < ctx.stats.stage_ddl < ctx.stats.staged_selects
        # Both modes must agree with the naive oracle.
        oracle = stage_semantics(db, program, engine="naive")
        assert plain.deleted == result.deleted == oracle.deleted
        assert plain.rounds == result.rounds == oracle.rounds

    def test_stage_discovery_observer_delivery_is_backend_symmetric(self):
        from repro.core.semantics import stage_semantics

        memory, program = random_instance(3, max_facts=20)
        sqlite = SQLiteDatabase.from_database(memory)
        streams = {}
        for backend, db in (("memory", memory), ("sqlite", sqlite)):
            ctx = EvalContext()
            seen: List = []
            ctx.add_observer(seen.append)
            stage_semantics(db, program, context=ctx)
            streams[backend] = Counter(a.signature() for a in seen)
        assert streams["memory"] == streams["sqlite"]
        # Exactly-once per enumeration: no duplicates in either stream.
        assert all(count == 1 for count in streams["memory"].values())

    def test_discovery_without_context_stays_plain_selects(self):
        from repro.datalog.sql_seminaive import (
            full_assignments_sql,
            seeded_assignments_sql,
        )

        db, program = cascade_fixture()
        run_closure(db, program, engine="semi-naive", collect_assignments=False)
        counts = tag_counter(db)
        rules = list(program)
        plain = [
            a
            for rule in rules
            for a in full_assignments_sql(db, rule, db.generation())
        ]
        plain += [
            a
            for rule in rules
            for a in seeded_assignments_sql(db, rule, 0, db.generation())
        ]
        assert plain
        assert counts[TAG_ASSIGN_SELECT] > 0
        assert counts[TAG_STAGE] == 0
        # The same joins, staged through a shared context, enumerate the same
        # assignment multiset without a single further plain SELECT — and the
        # staged rows feed the context's assignment observers as they stream.
        plain_selects = counts[TAG_ASSIGN_SELECT]
        ctx = EvalContext()
        observed: List = []
        ctx.add_observer(observed.append)
        staged = [
            a
            for rule in rules
            for a in full_assignments_sql(db, rule, db.generation(), context=ctx)
        ]
        staged += [
            a
            for rule in rules
            for a in seeded_assignments_sql(db, rule, 0, db.generation(), context=ctx)
        ]
        assert Counter(assignment_key(a) for a in staged) == Counter(
            assignment_key(a) for a in plain
        )
        assert ctx.stats.staged_selects > 0
        assert counts[TAG_ASSIGN_SELECT] == plain_selects
        assert counts[TAG_STAGE] == ctx.stats.staged_selects
        assert Counter(assignment_key(a) for a in observed) == Counter(
            assignment_key(a) for a in staged
        )
