"""Tests for the trigger simulator and the HoloClean-style cell-repair baseline."""

import pytest

from repro import Database, RepairEngine, Schema, Semantics, fact
from repro.baselines import FiringPolicy, HoloCleanStyleRepairer, TriggerEngine
from repro.baselines.trigger_engine import seed_deletions
from repro.constraints.triggers import DeleteTrigger
from repro.datalog.ast import make_atom
from repro.datalog.delta import DeltaProgram
from repro.exceptions import ExperimentError
from repro.workloads.errors import generate_author_table, inject_errors
from repro.workloads.programs_dc import dc_constraints


@pytest.fixture
def academic_db() -> Database:
    schema = Schema.from_arities({"Author": 2, "Writes": 2, "Publication": 2})
    return Database.from_dicts(
        schema,
        {
            "Author": [(1, "Ada"), (2, "Alan")],
            "Writes": [(1, 10), (1, 11), (2, 11)],
            "Publication": [(10, "p10"), (11, "p11")],
        },
    )


def cascade_program() -> DeltaProgram:
    return DeltaProgram.from_text(
        """
        delta Author(a, n) :- Author(a, n), a = 1.
        delta Writes(a, p) :- Writes(a, p), delta Author(a, n).
        delta Publication(p, t) :- Publication(p, t), delta Writes(a, p).
        """,
    )


class TestTriggerEngine:
    def test_seed_deletions_come_from_selection_rules(self, academic_db):
        seeds = seed_deletions(academic_db, cascade_program())
        assert seeds == [fact("Author", 1, "Ada")]

    def test_cascade_matches_stage_semantics_on_chain(self, academic_db):
        program = cascade_program()
        engine = TriggerEngine.from_program(program)
        run = engine.run(academic_db, seed_deletions(academic_db, program))
        stage = RepairEngine(academic_db, program).repair(Semantics.STAGE)
        assert run.deleted == stage.deleted

    def test_deletion_order_starts_with_seed(self, academic_db):
        program = cascade_program()
        run = TriggerEngine.from_program(program).run(
            academic_db, seed_deletions(academic_db, program),
        )
        assert run.deletion_order[0] == fact("Author", 1, "Ada")
        assert run.fired  # cascading triggers actually fired

    def test_original_database_untouched(self, academic_db):
        program = cascade_program()
        TriggerEngine.from_program(program).run(
            academic_db, seed_deletions(academic_db, program),
        )
        assert academic_db.count_delta() == 0

    def test_policies_order_same_event_triggers_differently(self):
        """Two triggers watch the same event; PostgreSQL picks by name, MySQL by creation."""
        schema = Schema.from_arities({"A": 1, "B": 1, "C": 1})
        db = Database.from_dicts(schema, {"A": [(1,)], "B": [(1,)], "C": [(1,)]})
        # Creation order: z_delete_B first; alphabetical order: a_delete_C first.
        triggers = [
            DeleteTrigger("z_delete_B", make_atom("A", "x"), make_atom("B", "x"),
                          condition=(make_atom("C", "x"),)),
            DeleteTrigger("a_delete_C", make_atom("A", "x"), make_atom("C", "x"),
                          condition=(make_atom("B", "x"),)),
        ]
        seeds = [fact("A", 1)]
        postgres = TriggerEngine(triggers, FiringPolicy.POSTGRESQL).run(db, seeds)
        mysql = TriggerEngine(triggers, FiringPolicy.MYSQL).run(db, seeds)
        # Each policy fires one of the two triggers first, which disables the other.
        assert postgres.deleted == frozenset({fact("A", 1), fact("C", 1)})
        assert mysql.deleted == frozenset({fact("A", 1), fact("B", 1)})

    def test_event_budget_guard(self, academic_db):
        program = cascade_program()
        engine = TriggerEngine.from_program(program, max_events=1)
        with pytest.raises(ExperimentError):
            engine.run(academic_db, seed_deletions(academic_db, program))

    def test_run_reports_runtime_and_size(self, academic_db):
        program = cascade_program()
        run = TriggerEngine.from_program(program).run(
            academic_db, seed_deletions(academic_db, program),
        )
        assert run.size == len(run.deleted)
        assert run.runtime >= 0.0


class TestHoloCleanStyleRepairer:
    def make_dirty(self, rows: int = 120, errors: int = 12):
        clean = generate_author_table(rows, seed=5)
        return inject_errors(clean, errors, seed=6)

    def test_detects_noisy_cells_only_when_dirty(self):
        repairer = HoloCleanStyleRepairer(list(dc_constraints().values()))
        clean = generate_author_table(60, seed=5)
        assert repairer.repair(clean).noisy_cells == set()
        dirty = self.make_dirty()
        assert repairer.repair(dirty.db).noisy_cells

    def test_repairs_cells_not_tuples(self):
        repairer = HoloCleanStyleRepairer(list(dc_constraints().values()))
        dirty = self.make_dirty()
        result = repairer.repair(dirty.db)
        # Cell repairs never add rows; they may merge a repaired duplicate into
        # its clean counterpart (set semantics), so the count can only shrink.
        assert result.repaired_db.count_active() <= dirty.db.count_active()
        assert result.repaired_db.count_active() >= (
            dirty.db.count_active() - result.repaired_tuple_count
        )
        assert 0 < result.repaired_tuple_count <= result.repaired_cell_count

    def test_under_repairs_relative_to_ground_truth(self):
        repairer = HoloCleanStyleRepairer(list(dc_constraints().values()))
        dirty = self.make_dirty()
        result = repairer.repair(dirty.db)
        assert result.repaired_tuple_count <= dirty.error_count

    def test_reduces_but_may_not_eliminate_violations(self):
        repairer = HoloCleanStyleRepairer(list(dc_constraints().values()))
        dirty = self.make_dirty()
        result = repairer.repair(dirty.db)
        assert result.total_residual_violations() <= result.total_initial_violations()
        assert result.total_initial_violations() > 0

    def test_violation_counts_per_constraint(self):
        repairer = HoloCleanStyleRepairer(list(dc_constraints().values()))
        dirty = self.make_dirty()
        counts = repairer.count_violations(dirty.db)
        assert set(counts) == {"DC1", "DC2", "DC3", "DC4"}
        assert sum(counts.values()) > 0

    def test_confidence_margin_makes_it_more_conservative(self):
        dirty = self.make_dirty()
        eager = HoloCleanStyleRepairer(
            list(dc_constraints().values()), confidence_margin=1.0
        )
        cautious = HoloCleanStyleRepairer(
            list(dc_constraints().values()), confidence_margin=50.0,
        )
        assert (
            cautious.repair(dirty.db).repaired_cell_count
            <= eager.repair(dirty.db).repaired_cell_count
        )

    def test_semantics_always_reach_zero_violations(self):
        """The Table-5 contrast: our repairs always stabilize, the baseline may not."""
        from repro.workloads.programs_dc import dc_program

        repairer = HoloCleanStyleRepairer(list(dc_constraints().values()))
        dirty = self.make_dirty(rows=80, errors=8)
        engine = RepairEngine(dirty.db, dc_program())
        repaired = engine.repair(Semantics.INDEPENDENT).repaired
        assert sum(repairer.count_violations(repaired).values()) == 0
