"""Unit tests for repro.storage.indexes."""

from repro.storage.facts import fact
from repro.storage.indexes import RelationIndex


class TestRelationIndex:
    def test_add_and_contains(self):
        index = RelationIndex()
        assert index.add(fact("R", 1, 2))
        assert fact("R", 1, 2) in index
        assert len(index) == 1

    def test_add_duplicate_returns_false(self):
        index = RelationIndex([fact("R", 1, 2)])
        assert not index.add(fact("R", 1, 2))
        assert len(index) == 1

    def test_discard(self):
        index = RelationIndex([fact("R", 1, 2)])
        assert index.discard(fact("R", 1, 2))
        assert not index.discard(fact("R", 1, 2))
        assert len(index) == 0

    def test_lookup_by_position(self):
        index = RelationIndex([fact("R", 1, "a"), fact("R", 2, "a"), fact("R", 1, "b")])
        assert len(index.lookup(0, 1)) == 2
        assert len(index.lookup(1, "a")) == 2
        assert index.lookup(0, 99) == frozenset()

    def test_lookup_stays_consistent_after_mutation(self):
        index = RelationIndex([fact("R", 1, "a")])
        assert len(index.lookup(0, 1)) == 1  # builds the position-0 index
        index.add(fact("R", 1, "b"))
        index.discard(fact("R", 1, "a"))
        assert index.lookup(0, 1) == frozenset({fact("R", 1, "b")})

    def test_candidates_with_empty_bindings_scans_all(self):
        facts = {fact("R", i) for i in range(5)}
        index = RelationIndex(facts)
        assert set(index.candidates({})) == facts

    def test_candidates_with_multiple_bindings(self):
        index = RelationIndex(
            [fact("R", 1, "a", 10), fact("R", 1, "b", 10), fact("R", 2, "a", 10)],
        )
        matches = set(index.candidates({0: 1, 1: "a"}))
        assert matches == {fact("R", 1, "a", 10)}

    def test_candidates_miss_returns_nothing(self):
        index = RelationIndex([fact("R", 1)])
        assert list(index.candidates({0: 7})) == []

    def test_copy_is_independent(self):
        index = RelationIndex([fact("R", 1)])
        copy = index.copy()
        copy.add(fact("R", 2))
        assert len(index) == 1
        assert len(copy) == 2

    def test_clear(self):
        index = RelationIndex([fact("R", 1)])
        index.lookup(0, 1)
        index.clear()
        assert len(index) == 0
        assert index.lookup(0, 1) == frozenset()

    def test_facts_snapshot_is_frozen(self):
        index = RelationIndex([fact("R", 1)])
        snapshot = index.facts()
        index.add(fact("R", 2))
        assert len(snapshot) == 1
