"""Unit tests for program analysis (repro.datalog.analysis)."""

from repro.datalog.analysis import (
    analyze_program,
    delta_dependency_graph,
    dependency_graph,
    is_syntactically_recursive,
    relation_strata,
)
from repro.datalog.parser import parse_program

CASCADE = """
    delta O(o) :- O(o), o = 1.
    delta A(a, o) :- A(a, o), delta O(o).
    delta W(a, p) :- W(a, p), delta A(a, o).
"""

RECURSIVE = """
    delta E(x, y) :- E(x, y), delta E(y, z).
"""


class TestDependencyGraphs:
    def test_dependency_graph_nodes_and_edges(self):
        graph = dependency_graph(parse_program(CASCADE))
        assert set(graph.nodes) == {"O", "A", "W"}
        assert graph.has_edge("O", "A")
        assert graph.has_edge("A", "W")

    def test_base_edges_marked(self):
        graph = dependency_graph(parse_program("delta R(x) :- R(x), S(x)."))
        assert graph.edges["S", "R"]["base"] is True

    def test_delta_dependency_graph_drops_base_edges(self):
        graph = delta_dependency_graph(parse_program(CASCADE))
        assert graph.has_edge("O", "A")
        assert not graph.has_edge("O", "O")
        # The guard R(x) base edge is gone.
        assert all(not data.get("base", False) for _, _, data in graph.edges(data=True))


class TestRecursion:
    def test_cascade_is_not_recursive(self):
        assert not is_syntactically_recursive(parse_program(CASCADE))

    def test_self_loop_is_recursive(self):
        assert is_syntactically_recursive(parse_program(RECURSIVE))

    def test_mutual_recursion_detected(self):
        program = parse_program(
            "delta R(x) :- R(x), delta S(x). delta S(x) :- S(x), delta R(x).",
        )
        assert is_syntactically_recursive(program)


class TestStrata:
    def test_cascade_strata_increase_along_chain(self):
        strata = relation_strata(parse_program(CASCADE))
        assert strata["O"] < strata["A"] < strata["W"]

    def test_non_head_relations_get_stratum_zero(self):
        strata = relation_strata(parse_program("delta R(x) :- R(x), S(x)."))
        assert strata["S"] == 0

    def test_recursive_relations_share_a_stratum(self):
        strata = relation_strata(
            parse_program(
                "delta R(x) :- R(x), delta S(x). delta S(x) :- S(x), delta R(x)."
            ),
        )
        assert strata["R"] == strata["S"]


class TestAnalyzeProgram:
    def test_report_fields(self):
        report = analyze_program(parse_program(CASCADE))
        assert report.rule_count == 3
        assert report.head_relations == ("A", "O", "W")
        assert report.max_body_atoms == 2
        assert not report.recursive
        assert dict(report.strata)["W"] == 2

    def test_describe_mentions_everything(self):
        text = analyze_program(parse_program(CASCADE)).describe()
        assert "rules: 3" in text
        assert "recursive: no" in text

    def test_empty_program(self):
        report = analyze_program([])
        assert report.rule_count == 0
        assert not report.recursive
