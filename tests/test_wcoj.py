"""Worst-case-optimal join path: classifier, tries, driver, SQL lowering.

Covers the four layers the wcoj feature spans:

* plan-kind classification (GYO cyclic core, AGM-vs-binary costing, the
  ``REPRO_FORCE_PLAN`` override, and the guarantee that the paper's acyclic
  MAS / TPC-H programs never leave the binary path);
* the per-position tries of :class:`repro.storage.indexes.RelationIndex`
  (lazy build, incremental maintenance, interior-node pruning);
* the in-memory generic-join driver against the naive oracle (full and
  seeded enumeration, stats counters, sharded determinism);
* the SQLite lowering (``CROSS JOIN``-pinned ordered joins, the
  ``/* repro:wcoj */`` statement tag, covering-index DDL idempotence) and
  the benchmark's baseline gate (loud missing-column warning, absolute
  wcoj-speedup floor).

Every test neutralises an inherited ``REPRO_FORCE_PLAN`` first (the CI
differential passes export it), then sets it explicitly where forcing is the
behaviour under test.
"""

from __future__ import annotations

import random
import sys
from pathlib import Path

import pytest

from repro.datalog.context import EvalContext
from repro.datalog.evaluation import find_assignments, run_closure
from repro.datalog.parser import parse_rule
from repro.datalog.planner import (
    PLAN_BINARY,
    PLAN_ENV,
    PLAN_WCOJ,
    JoinPlanner,
    cyclic_core,
)
from repro.datalog.sql_compiler import (
    TAG_WCOJ,
    compile_frontier_rule,
    resolve_plan_kind,
)
from repro.storage.facts import Fact
from repro.storage.indexes import RelationIndex
from repro.storage.sqlite_backend import SQLiteDatabase
from repro.workloads.cyclic import (
    generate_cyclic,
    mutual_recursion_program,
    triangle_program,
)
from repro.workloads.mas import generate_mas
from repro.workloads.programs_mas import mas_programs
from repro.workloads.programs_tpch import tpch_programs
from repro.workloads.tpch import generate_tpch

from tests.generators import random_torture_spec

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))
from bench_fixpoint import (  # noqa: E402
    WCOJ_GATE_SPEEDUP,
    check_against_baseline,
)

TRIANGLE = "delta Edge(x, y) :- Edge(x, y), Edge(y, z), Edge(z, x)."


@pytest.fixture(autouse=True)
def _no_inherited_forced_plan(monkeypatch):
    """The CI differential passes export REPRO_FORCE_PLAN; this suite tests
    both kinds explicitly, so an inherited knob must not leak in."""
    monkeypatch.delenv(PLAN_ENV, raising=False)


@pytest.fixture
def cyclic():
    return generate_cyclic(scale=1.0, seed=3)


# ---------------------------------------------------------------------------
# Plan-kind classification
# ---------------------------------------------------------------------------


class TestCyclicCore:
    def test_triangle_core_is_the_whole_body(self):
        rule = parse_rule(TRIANGLE)
        assert cyclic_core(rule) == (0, 1, 2)

    def test_guarded_chain_is_acyclic(self):
        rule = parse_rule("delta Edge(x, y) :- Edge(x, y), Edge(y, z), A(z, w).")
        assert cyclic_core(rule) == ()

    def test_four_clique_core_survives(self):
        rule = parse_rule(
            "delta Edge(x, y) :- Edge(x, y), Edge(y, z), Edge(z, w), "
            "Edge(w, x), Edge(x, z), Edge(y, w).",
        )
        assert len(cyclic_core(rule)) == 6


class TestClassifier:
    def test_triangle_classifies_wcoj(self, cyclic):
        plan = JoinPlanner(cyclic.db).plan(parse_rule(TRIANGLE))
        assert plan.kind == PLAN_WCOJ
        assert plan.width == pytest.approx(1.5)
        assert set(plan.var_order) == {"x", "y", "z"}

    def test_single_atom_rule_stays_binary(self, cyclic):
        plan = JoinPlanner(cyclic.db).plan(parse_rule("delta Edge(x, y) :- Edge(x, y)."))
        assert plan.kind == PLAN_BINARY

    def test_hypothetical_plans_stay_binary_even_forced(self, cyclic, monkeypatch):
        monkeypatch.setenv(PLAN_ENV, PLAN_WCOJ)
        plan = JoinPlanner(cyclic.db).plan(parse_rule(TRIANGLE), hypothetical=True)
        assert plan.kind == PLAN_BINARY

    def test_forced_binary_overrides_cyclic_core(self, cyclic, monkeypatch):
        monkeypatch.setenv(PLAN_ENV, PLAN_BINARY)
        plan = JoinPlanner(cyclic.db).plan(parse_rule(TRIANGLE))
        assert plan.kind == PLAN_BINARY

    def test_forced_wcoj_overrides_acyclic_body(self, cyclic, monkeypatch):
        monkeypatch.setenv(PLAN_ENV, PLAN_WCOJ)
        rule = parse_rule("delta Edge(x, y) :- Edge(x, y), A(y, z).")
        plan = JoinPlanner(cyclic.db).plan(rule)
        assert plan.kind == PLAN_WCOJ

    def test_mas_programs_stay_binary(self):
        dataset = generate_mas(scale=0.5)
        planner = JoinPlanner(dataset.db)
        for name, program in mas_programs(dataset).items():
            for rule in program.rules:
                assert planner.plan(rule).kind == PLAN_BINARY, (name, rule)

    def test_tpch_programs_stay_binary(self):
        dataset = generate_tpch(scale=0.5)
        planner = JoinPlanner(dataset.db)
        for name, program in tpch_programs(dataset).items():
            for rule in program.rules:
                assert planner.plan(rule).kind == PLAN_BINARY, (name, rule)


# ---------------------------------------------------------------------------
# Per-position tries
# ---------------------------------------------------------------------------


class TestRelationTries:
    def facts(self):
        return [
            Fact("R", (1, 10), tid="t0"),
            Fact("R", (1, 20), tid="t1"),
            Fact("R", (2, 10), tid="t2"),
        ]

    def test_trie_nests_positions_in_requested_order(self):
        index = RelationIndex(self.facts())
        trie = index.trie((0, 1))
        assert set(trie) == {1, 2}
        assert set(trie[1]) == {10, 20}
        assert trie[2][10] == Fact("R", (2, 10))
        reversed_trie = index.trie((1, 0))
        assert set(reversed_trie) == {10, 20}
        assert set(reversed_trie[10]) == {1, 2}

    def test_built_tries_are_maintained_incrementally(self):
        index = RelationIndex(self.facts())
        trie = index.trie((0, 1))
        index.add(Fact("R", (3, 30), tid="t3"))
        assert trie[3][30] == Fact("R", (3, 30))
        index.discard(Fact("R", (3, 30)))
        assert 3 not in trie  # empty interior nodes are pruned

    def test_discard_keeps_sibling_entries(self):
        index = RelationIndex(self.facts())
        trie = index.trie((0, 1))
        index.discard(Fact("R", (1, 10)))
        assert set(trie[1]) == {20}

    def test_clear_drops_tries(self):
        index = RelationIndex(self.facts())
        index.trie((0, 1))
        index.clear()
        assert index.trie((0, 1)) == {}

    def test_copy_rebuilds_tries_from_scratch(self):
        index = RelationIndex(self.facts())
        original = index.trie((0, 1))
        duplicate = index.copy()
        rebuilt = duplicate.trie((0, 1))
        assert rebuilt is not original
        duplicate.add(Fact("R", (9, 90), tid="t9"))
        assert 9 not in original


# ---------------------------------------------------------------------------
# Generic-join driver vs the oracle
# ---------------------------------------------------------------------------


class TestDriverOracle:
    def test_full_enumeration_matches_unplanned_search(self, cyclic, monkeypatch):
        rule = parse_rule(TRIANGLE)
        oracle = {a.signature() for a in find_assignments(cyclic.db, rule)}
        monkeypatch.setenv(PLAN_ENV, PLAN_WCOJ)
        planner = JoinPlanner(cyclic.db)
        assert planner.plan(rule).kind == PLAN_WCOJ
        wcoj = find_assignments(cyclic.db, rule, planner=planner)
        signatures = [a.signature() for a in wcoj]
        assert set(signatures) == oracle
        assert len(set(signatures)) == len(signatures)

    @pytest.mark.parametrize("program_name", ["triangle", "mutual"])
    def test_closure_matches_naive_oracle_both_kinds(
        self, cyclic, monkeypatch, program_name,
    ):
        program = (
            triangle_program()
            if program_name == "triangle"
            else mutual_recursion_program(cyclic.hub)
        )
        oracle_db = cyclic.fresh_db()
        oracle = run_closure(oracle_db, program, engine="naive")
        oracle_deltas = set(oracle_db.all_deltas())
        oracle_sigs = {a.signature() for a in oracle.assignments}
        for kind in (PLAN_BINARY, PLAN_WCOJ):
            monkeypatch.setenv(PLAN_ENV, kind)
            db = cyclic.fresh_db()
            closure = run_closure(db, program, engine="semi-naive")
            assert set(db.all_deltas()) == oracle_deltas, kind
            assert {a.signature() for a in closure.assignments} == oracle_sigs, kind

    @pytest.mark.parametrize("seed", range(6))
    def test_random_cyclic_specs_agree_across_kinds(self, monkeypatch, seed):
        spec = random_torture_spec(random.Random(seed), cyclic_rate=1.0)
        memory, program = spec.build()
        oracle_db = memory.clone()
        run_closure(oracle_db, program, engine="naive", max_rounds=200)
        oracle_deltas = set(oracle_db.all_deltas())
        for kind in (PLAN_BINARY, PLAN_WCOJ):
            monkeypatch.setenv(PLAN_ENV, kind)
            db = memory.clone()
            run_closure(db, program, engine="semi-naive", max_rounds=200)
            assert set(db.all_deltas()) == oracle_deltas, (seed, kind)

    def test_stats_counters_surface_through_context(self, cyclic):
        ctx = EvalContext()
        run_closure(cyclic.fresh_db(), triangle_program(), engine="semi-naive", context=ctx)
        assert ctx.stats.width_estimates > 0
        assert ctx.stats.wcoj_rules > 0
        assert ctx.stats.wcoj_intersections > 0

    def test_binary_run_counts_no_wcoj_rules(self, cyclic, monkeypatch):
        monkeypatch.setenv(PLAN_ENV, PLAN_BINARY)
        ctx = EvalContext()
        run_closure(cyclic.fresh_db(), triangle_program(), engine="semi-naive", context=ctx)
        assert ctx.stats.wcoj_rules == 0
        assert ctx.stats.wcoj_intersections == 0
        assert ctx.stats.width_estimates > 0

    @pytest.mark.parametrize("shards", [1, 4])
    def test_sharded_wcoj_is_deterministic(self, cyclic, monkeypatch, shards):
        monkeypatch.setenv(PLAN_ENV, PLAN_WCOJ)
        program = mutual_recursion_program(cyclic.hub)
        oracle_db = cyclic.fresh_db()
        run_closure(oracle_db, program, engine="naive")
        oracle_deltas = set(oracle_db.all_deltas())
        streams = []
        for _ in range(2):
            db = cyclic.fresh_db()
            result = run_closure(
                db,
                program,
                engine="sharded",
                context=EvalContext(shards=shards, workers=1),
            )
            assert set(db.all_deltas()) == oracle_deltas
            streams.append([a.signature() for a in result.assignments])
        assert streams[0] == streams[1]


# ---------------------------------------------------------------------------
# SQLite lowering
# ---------------------------------------------------------------------------


class TestSQLLowering:
    def test_resolve_plan_kind_structural(self, monkeypatch):
        triangle = parse_rule(TRIANGLE)
        acyclic = parse_rule("delta Edge(x, y) :- Edge(x, y), A(y, z).")
        single = parse_rule("delta Edge(x, y) :- Edge(x, y).")
        assert resolve_plan_kind(triangle) == PLAN_WCOJ
        assert resolve_plan_kind(acyclic) == PLAN_BINARY
        assert resolve_plan_kind(single) == PLAN_BINARY
        monkeypatch.setenv(PLAN_ENV, PLAN_WCOJ)
        assert resolve_plan_kind(acyclic) == PLAN_WCOJ
        assert resolve_plan_kind(single) == PLAN_BINARY  # too short to force
        monkeypatch.setenv(PLAN_ENV, PLAN_BINARY)
        assert resolve_plan_kind(triangle) == PLAN_BINARY

    def test_wcoj_variant_pins_join_order(self):
        rule = parse_rule(TRIANGLE)
        full, seeded = compile_frontier_rule(rule, plan_kind=PLAN_WCOJ)
        assert full.plan_kind == PLAN_WCOJ
        assert "CROSS JOIN" in full.sql
        assert TAG_WCOJ in full.sql
        assert full.wcoj_index_sql
        for statement in full.wcoj_index_sql:
            assert statement.startswith(TAG_WCOJ)
            assert "CREATE INDEX IF NOT EXISTS" in statement
        assert seeded == ()  # no delta body atoms in the non-recursive rule

    def test_seeded_wcoj_variant_starts_at_the_frontier(self):
        rule = parse_rule(
            "delta Edge(x, y) :- Edge(x, y), delta Edge(y, z), Edge(z, x).",
        )
        _full, seeded = compile_frontier_rule(rule, plan_kind=PLAN_WCOJ)
        assert len(seeded) == 1
        assert "FROM f_Edge" in seeded[0].sql
        assert "CROSS JOIN" in seeded[0].sql

    def test_binary_variant_carries_no_wcoj_artifacts(self):
        rule = parse_rule(TRIANGLE)
        full, _seeded = compile_frontier_rule(rule, plan_kind=PLAN_BINARY)
        assert full.plan_kind == PLAN_BINARY
        assert "CROSS JOIN" not in full.sql
        assert TAG_WCOJ not in full.sql
        assert full.wcoj_index_sql == ()

    def test_ensure_wcoj_indexes_runs_ddl_once_per_connection(self, cyclic):
        db = SQLiteDatabase.from_database(cyclic.db)
        full, _seeded = compile_frontier_rule(
            parse_rule(TRIANGLE), plan_kind=PLAN_WCOJ,
        )
        assert db.ensure_wcoj_indexes(full.wcoj_index_sql) == len(full.wcoj_index_sql)
        assert db.ensure_wcoj_indexes(full.wcoj_index_sql) == 0

    @pytest.mark.parametrize(
        "kind,expect_tagged", [(PLAN_WCOJ, True), (PLAN_BINARY, False)],
    )
    def test_statement_tag_accounting(self, cyclic, monkeypatch, kind, expect_tagged):
        monkeypatch.setenv(PLAN_ENV, kind)
        db = SQLiteDatabase.from_database(cyclic.db)
        tagged = []
        db.add_statement_hook(
            lambda sql: tagged.append(sql) if TAG_WCOJ in sql else None,
        )
        run_closure(db, triangle_program(), engine="semi-naive")
        assert bool(tagged) is expect_tagged

    def test_sqlite_wcoj_matches_memory_oracle(self, cyclic, monkeypatch):
        program = mutual_recursion_program(cyclic.hub)
        oracle_db = cyclic.fresh_db()
        run_closure(oracle_db, program, engine="naive")
        oracle_deltas = set(oracle_db.all_deltas())
        monkeypatch.setenv(PLAN_ENV, PLAN_WCOJ)
        db = SQLiteDatabase.from_database(cyclic.db)
        run_closure(db, program, engine="semi-naive")
        assert set(db.all_deltas()) == oracle_deltas


# ---------------------------------------------------------------------------
# Benchmark baseline gate
# ---------------------------------------------------------------------------


def _wcoj_row(speedup: float, program: str = "triangle", scale: float = 3.0) -> dict:
    return {
        "backend": "memory",
        "workload": "cyclic",
        "program": program,
        "scale": scale,
        "wcoj_speedup": speedup,
    }


class TestBaselineGate:
    def test_missing_baseline_column_warns_loudly(self, capsys):
        baseline_row = _wcoj_row(5.0)
        del baseline_row["wcoj_speedup"]
        report = {"meta": {"cpus": 1}, "wcoj": [_wcoj_row(5.0)]}
        baseline = {"meta": {"cpus": 1}, "wcoj": [baseline_row]}
        problems = check_against_baseline(report, baseline)
        assert problems == []
        err = capsys.readouterr().err
        assert "missing from the committed baseline" in err
        assert "wcoj_speedup" in err

    def test_missing_run_column_warns_and_fails_the_absolute_gate(self, capsys):
        run_row = _wcoj_row(WCOJ_GATE_SPEEDUP + 1)
        del run_row["wcoj_speedup"]
        report = {
            "meta": {"cpus": 1},
            "wcoj": [run_row, _wcoj_row(WCOJ_GATE_SPEEDUP + 1, program="clique4")],
        }
        baseline = {
            "meta": {"cpus": 1},
            "wcoj": [_wcoj_row(5.0), _wcoj_row(5.0, program="clique4")],
        }
        problems = check_against_baseline(report, baseline)
        # The drift comparison warns; the absolute floor fails outright — a
        # gate program without the ratio is unverifiable, not skippable.
        assert "missing from the run" in capsys.readouterr().err
        assert any("cannot be verified" in p for p in problems)
        assert len(problems) == 1

    def test_absolute_wcoj_floor_fails_even_with_matching_baseline(self):
        slow = WCOJ_GATE_SPEEDUP / 2
        report = {"meta": {"cpus": 1}, "wcoj": [_wcoj_row(slow)]}
        baseline = {"meta": {"cpus": 1}, "wcoj": [_wcoj_row(slow)]}
        problems = check_against_baseline(report, baseline)
        assert any("absolute worst-case-optimal floor" in p for p in problems)

    def test_gate_only_binds_the_largest_scale(self):
        report = {
            "meta": {"cpus": 1},
            "wcoj": [
                _wcoj_row(1.0, scale=1.0),  # small scale may be under the floor
                _wcoj_row(WCOJ_GATE_SPEEDUP + 1, scale=3.0),
            ],
        }
        baseline = {"meta": {"cpus": 1}, "wcoj": [_wcoj_row(1.0, scale=1.0)]}
        assert check_against_baseline(report, baseline) == []

    def test_relative_drift_band_still_applies(self):
        report = {"meta": {"cpus": 1}, "wcoj": [_wcoj_row(WCOJ_GATE_SPEEDUP, scale=1.0)]}
        baseline = {"meta": {"cpus": 1}, "wcoj": [_wcoj_row(100.0, scale=1.0)]}
        problems = check_against_baseline(report, baseline)
        assert any("wcoj_speedup" in p and "committed" in p for p in problems)
