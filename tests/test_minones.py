"""Unit tests for the Min-Ones SAT solver (repro.solver.minones)."""

import pytest

from repro.exceptions import SolverError, UnsatisfiableError
from repro.solver.bruteforce import solve_min_ones_bruteforce
from repro.solver.cnf import CNF
from repro.solver.minones import solve_min_ones


class TestBasicSolving:
    def test_empty_formula_costs_zero(self):
        result = solve_min_ones(CNF())
        assert result.cost == 0
        assert result.optimal

    def test_single_positive_unit_clause(self):
        result = solve_min_ones(CNF.from_clauses([[1]]))
        assert result.true_variables == frozenset({1})
        assert result.cost == 1

    def test_negative_clauses_cost_nothing(self):
        result = solve_min_ones(CNF.from_clauses([[-1], [-2, -3]]))
        assert result.cost == 0

    def test_prefers_shared_variable(self):
        # x2 hits both clauses; the minimum is 1, not 2.
        result = solve_min_ones(CNF.from_clauses([[1, 2], [2, 3]]))
        assert result.true_variables == frozenset({2})

    def test_vertex_cover_of_a_triangle_costs_two(self):
        cnf = CNF.from_clauses([[1, 2], [2, 3], [1, 3]])
        assert solve_min_ones(cnf).cost == 2

    def test_mixed_literals(self):
        # Setting 1 True violates [-1, 2] unless 2 is True; optimal is {3} or {2}? ->
        # clause [1,3] needs 1 or 3; choosing 3 alone satisfies everything (cost 1).
        cnf = CNF.from_clauses([[1, 3], [-1, 2]])
        result = solve_min_ones(cnf)
        assert result.cost == 1
        assert cnf.is_satisfied_by(result.assignment)

    def test_forced_chain_through_negatives(self):
        # [1] forces x1; [-1, 2] then forces x2; [-2, 3] forces x3 -> cost 3.
        cnf = CNF.from_clauses([[1], [-1, 2], [-2, 3]])
        result = solve_min_ones(cnf)
        assert result.cost == 3
        assert result.true_variables == frozenset({1, 2, 3})

    def test_components_add_up(self):
        cnf = CNF.from_clauses([[1, 2], [3, 4], [5]])
        result = solve_min_ones(cnf)
        assert result.cost == 3
        assert result.stats.components == 3

    def test_result_is_always_a_model(self):
        cnf = CNF.from_clauses([[1, 2], [-2, 3], [-1, -3], [2, 4]])
        result = solve_min_ones(cnf)
        assert cnf.is_satisfied_by(result.assignment)

    def test_unsatisfiable_detected(self):
        with pytest.raises(UnsatisfiableError):
            solve_min_ones(CNF.from_clauses([[1], [-1]]))


class TestAgainstBruteForce:
    @pytest.mark.parametrize(
        "clauses",
        [
            [[1, 2], [2, 3], [3, 1]],
            [[1, 2, 3], [-1, 4], [-2, 4], [2, 5], [5, -4]],
            [[1], [-1, 2], [-2, 3], [3, 4], [-4, 5, 6]],
            [[1, 2], [3, 4], [5, 6], [1, 3, 5]],
            [[-1, -2], [1, 3], [2, 3], [-3, 4]],
        ],
    )
    def test_matches_bruteforce_cost(self, clauses):
        cnf = CNF.from_clauses(clauses)
        exact = solve_min_ones_bruteforce(cnf)
        ours = solve_min_ones(cnf)
        assert ours.cost == exact.cost
        assert cnf.is_satisfied_by(ours.assignment)


class TestFallbacks:
    def test_greedy_fallback_when_component_too_big(self):
        cnf = CNF.from_clauses([[1, 2], [2, 3], [3, 4]])
        result = solve_min_ones(cnf, exact_variable_limit=2)
        assert not result.optimal
        assert cnf.is_satisfied_by(result.assignment)
        assert result.stats.greedy_components >= 1

    def test_node_limit_degrades_gracefully(self):
        clauses = [[i, i + 1] for i in range(1, 20)]
        cnf = CNF.from_clauses(clauses)
        result = solve_min_ones(cnf, node_limit=1)
        assert cnf.is_satisfied_by(result.assignment)

    def test_bruteforce_guard(self):
        cnf = CNF.from_clauses([[i] for i in range(1, 30)])
        with pytest.raises(SolverError):
            solve_min_ones_bruteforce(cnf)

    def test_bruteforce_unsat(self):
        with pytest.raises(UnsatisfiableError):
            solve_min_ones_bruteforce(CNF.from_clauses([[1], [-1]]))
