"""Tests for the adaptive evaluation layer (PR 4).

Four behaviours introduced together:

* **keyed stage tables** — the SQLite staged path persists one temp table per
  variant width (``_repro_stage_wN`` with a ``variant_id`` key) instead of
  dropping and recreating ``_repro_stage`` per variant execution, so
  steady-state rounds issue zero DDL (no ``DROP TABLE``/``CREATE TEMP
  TABLE``);
* **staged stage-discovery** — with a shared context, stage-semantics
  discovery joins stage through the same keyed tables (covered in
  ``tests/test_sql_staging.py``; the matrix check here exercises it through
  :class:`~repro.core.repair.RepairEngine`);
* **round-boundary plan re-costing** — the in-memory planner rebuilds a
  cached join plan when the extents drift past the
  :data:`~repro.datalog.planner.DRIFT_FACTOR` band around the plan's cost
  snapshot, recording each rebuild in ``QueryStats.replans``;
* **candidate observers** — the :class:`~repro.datalog.context.EvalContext`
  observer API reaches the in-memory candidate iterators, so trigger probes
  deliver mid-cascade instead of post-run.
"""

from __future__ import annotations

from typing import List

from repro.baselines.trigger_engine import TriggerEngine, seed_deletions
from repro.core.repair import RepairEngine
from repro.core.semantics import Semantics
from repro.datalog import DeltaProgram, EvalContext, run_closure
from repro.datalog.parser import parse_rule
from repro.datalog.sql_compiler import compile_frontier_rule
from repro.storage.database import Database
from repro.storage.facts import Fact, fact
from repro.storage.indexes import RelationIndex
from repro.storage.schema import RelationSchema, Schema
from repro.storage.sqlite_backend import SQLiteDatabase, stage_table_name

from tests.generators import random_instance


def ddl_counter(db: SQLiteDatabase) -> dict:
    """Hook counting stage DDL and (forbidden) drop/create-per-round statements."""
    counts = {"drop": 0, "create_temp": 0}

    def hook(sql: str) -> None:
        if "DROP TABLE" in sql:
            counts["drop"] += 1
        if "CREATE TEMP TABLE" in sql:
            counts["create_temp"] += 1

    db.add_statement_hook(hook)
    return counts


def cascade_fixture():
    schema = Schema.from_relations(
        [RelationSchema.of("R", "x:int", "y:str"), RelationSchema.of("S", "x:int")],
    )
    db = SQLiteDatabase(schema)
    db.insert_all(
        [fact("R", 1, "a", tid="r1"), fact("R", 2, "b", tid="r2"), fact("S", 1, tid="s1")],
    )
    program = DeltaProgram.from_text(
        """
        delta R(x, y) :- R(x, y), S(x).
        delta S(x) :- S(x), delta R(x, y).
        delta R(x, y) :- R(x, y), delta S(x).
        """,
    )
    return db, program


class TestKeyedStageTables:
    def test_staged_run_issues_ddl_once_then_steady_state_zero(self):
        db, program = cascade_fixture()
        counts = ddl_counter(db)
        ctx = EvalContext()
        result = run_closure(db, program, engine="semi-naive", context=ctx)
        assert result.rounds == 3
        # The multi-round staged run created each width's table exactly once
        # (no DROP ever) while staging many more joins than DDL batches.
        assert counts["drop"] == 0
        assert counts["create_temp"] == ctx.stats.stage_ddl > 0
        assert ctx.stats.staged_selects > ctx.stats.stage_ddl
        # Steady state: a second closure on the same connection reuses the
        # tables — staging happens, DDL does not.
        steady = ddl_counter(db)
        again = run_closure(db, program, engine="semi-naive", context=ctx)
        assert again.rounds >= 1
        assert steady["drop"] == steady["create_temp"] == 0
        assert ctx.stats.staged_selects > 0

    def test_one_table_per_distinct_width(self):
        schema = Schema.from_arities({"A": 1, "B": 2, "C": 3})
        db = SQLiteDatabase(schema)
        db.insert_all([fact("A", 1), fact("B", 1, 2), fact("C", 1, 2, 3)])
        program = DeltaProgram.from_text(
            """
            delta A(x) :- A(x).
            delta B(x, y) :- B(x, y), delta A(x).
            delta C(x, y, z) :- C(x, y, z), delta A(x).
            """,
        )
        widths = set()
        for rule in program:
            full, seeded = compile_frontier_rule(rule)
            for variant in (full, *seeded):
                widths.add(variant.stage_width)
                assert variant.stage_table == stage_table_name(variant.stage_width)
        assert len(widths) > 1
        counts = ddl_counter(db)
        ctx = EvalContext()
        run_closure(db, program, engine="semi-naive", context=ctx)
        assert counts["drop"] == 0
        # One CREATE TEMP TABLE per distinct width actually staged, at most.
        assert 0 < counts["create_temp"] <= len(widths)
        assert ctx.stats.stage_ddl == counts["create_temp"]

    def test_variant_ids_are_unique_and_prebound(self):
        program = DeltaProgram.from_text(
            """
            delta R(x) :- R(x), S(x).
            delta S(x) :- S(x), delta R(x).
            """,
        )
        seen_ids = set()
        for rule in program:
            full, seeded = compile_frontier_rule(rule)
            for variant in (full, *seeded):
                assert variant.variant_id not in seen_ids
                seen_ids.add(variant.variant_id)
                assert variant.bind()["variant"] == variant.variant_id
                assert "variant_id = :variant" in variant.staged_install_sql

    def test_stage_tables_left_empty_after_runs(self):
        # A finished run must not leave rows behind in the persistent tables
        # (they live for the whole connection, in memory).
        db, program = cascade_fixture()
        ctx = EvalContext()
        run_closure(db, program, engine="semi-naive", context=ctx)
        widths = set()
        for rule in program:
            full, seeded = ctx.frontier_variants(rule)
            for variant in (full, *seeded):
                widths.add(variant.stage_width)
        for width in widths:
            rows = db.execute(
                f"SELECT COUNT(*) FROM {stage_table_name(width)}",
            ).fetchone()
            assert rows[0] == 0, width
        # Staged discovery (observer-bearing context) cleans up after itself
        # too; it runs on the clone stage semantics returns as the repaired
        # database.
        from repro.core.semantics import stage_semantics

        ctx.add_observer(lambda assignment: None)
        result = stage_semantics(db, program, context=ctx)
        assert result.deleted
        repaired = result.repaired
        staged_tables = 0
        for width in widths:
            exists = repaired.execute(
                "SELECT name FROM sqlite_temp_master WHERE name = ?",
                (stage_table_name(width),),
            ).fetchone()
            if exists is None:
                continue
            staged_tables += 1
            rows = repaired.execute(
                f"SELECT COUNT(*) FROM {stage_table_name(width)}",
            ).fetchone()
            assert rows[0] == 0, width
        assert staged_tables > 0

    def test_keyed_staging_matches_fast_path_fixpoint(self):
        db, program = cascade_fixture()
        staged_db, fast_db = db.clone(), db.clone()
        staged = run_closure(staged_db, program, engine="semi-naive")
        fast = run_closure(
            fast_db, program, engine="semi-naive", collect_assignments=False,
        )
        assert staged.rounds == fast.rounds
        assert set(staged_db.all_deltas()) == set(fast_db.all_deltas())


class TestPlanRecosting:
    def _rule(self):
        return parse_rule("delta R(x) :- R(x), S(x).")

    def _db(self, r_count: int, s_count: int) -> Database:
        schema = Schema.from_arities({"R": 1, "S": 1})
        return Database.from_dicts(
            schema,
            {"R": [(i,) for i in range(r_count)], "S": [(i,) for i in range(s_count)]},
        )

    def test_drift_triggers_replan_and_changes_order(self):
        db = self._db(2, 30)
        ctx = EvalContext()
        planner = ctx.planner(db)
        rule = self._rule()
        first = planner.plan(rule)
        assert first.order == (0, 1)  # R (2 facts) before S (30)
        assert ctx.stats.replans == 0
        # Grow R well past the drift band, then cross a round boundary.
        for value in range(100, 600):
            db.insert(Fact("R", (value,)))
        planner.begin_round()
        second = planner.plan(rule)
        assert ctx.stats.replans == 1
        assert second.order == (1, 0)  # S is now the smaller extent
        # Stable extents: the re-costed plan is reused, not rebuilt again.
        planner.begin_round()
        assert planner.plan(rule) is second
        assert ctx.stats.replans == 1

    def test_without_round_boundary_plans_are_permanent(self):
        db = self._db(2, 30)
        ctx = EvalContext()
        planner = ctx.planner(db)
        rule = self._rule()
        first = planner.plan(rule)
        for value in range(100, 600):
            db.insert(Fact("R", (value,)))
        # No begin_round: the cardinality cache is warm, no drift is seen.
        assert planner.plan(rule) is first
        assert ctx.stats.replans == 0

    def test_replans_recorded_in_shared_cache_during_closure(self):
        # A growing-delta cascade: delta A doubles as both the seed and a
        # non-seed atom, so its extent (1, 2, 3, ... facts over the rounds)
        # drifts past the band and forces a replan mid-closure.
        schema = Schema.from_arities({"A": 2, "P": 2})
        chain = Database.from_dicts(
            schema,
            {
                "A": [(i, i + 1) for i in range(30)],
                "P": [(i, j) for i in range(31) for j in range(31)],
            },
        )
        program = DeltaProgram.from_text(
            """
            delta A(x, y) :- A(x, y), x = 0.
            delta A(y, z) :- A(y, z), delta A(x, y).
            delta P(x, z) :- P(x, z), delta A(x, y), delta A(y, z).
            """,
        )
        ctx = EvalContext()
        semi_db = chain.clone()
        semi = run_closure(semi_db, program, engine="semi-naive", context=ctx)
        assert semi.rounds > 8
        assert ctx.stats.replans >= 1
        # Re-costing must not change the fixpoint or the assignment set.
        naive_db = chain.clone()
        naive = run_closure(naive_db, program, engine="naive")
        assert set(semi_db.all_deltas()) == set(naive_db.all_deltas())
        assert {a.signature() for a in semi.assignments} == {
            a.signature() for a in naive.assignments
        }


class TestAdaptiveDriftBand:
    """The re-costing band widens on no-op replans, resets on effective ones."""

    def _rule(self):
        return parse_rule("delta R(x) :- R(x), S(x).")

    def _db(self, r_count: int, s_count: int) -> Database:
        schema = Schema.from_arities({"R": 1, "S": 1})
        return Database.from_dicts(
            schema,
            {"R": [(i,) for i in range(r_count)], "S": [(i,) for i in range(s_count)]},
        )

    def test_consecutive_noop_replans_widen_band(self):
        from repro.datalog.planner import DRIFT_FACTOR

        # S stays far larger than R, so growing R past the band re-costs the
        # plan but never changes the order: pure no-op replans.
        db = self._db(2, 100_000)
        ctx = EvalContext()
        planner = ctx.planner(db)
        rule = self._rule()
        assert planner.plan(rule).order == (0, 1)
        assert planner.drift_factor == DRIFT_FACTOR
        sizes = [10, 50, 250, 1250]
        widened = []
        for size in sizes:
            for value in range(size * 10, size * 11):
                db.insert(Fact("R", (value,)))
            planner.begin_round()
            planner.plan(rule)
            widened.append(planner.drift_factor)
        assert ctx.stats.noop_replans >= 2
        assert ctx.stats.replans >= ctx.stats.noop_replans
        # The second consecutive no-op doubles the band, and the observed
        # band is exposed through the context's stats.
        assert planner.drift_factor > DRIFT_FACTOR
        assert ctx.stats.drift_factor == planner.drift_factor
        assert widened == sorted(widened)

    def test_widened_band_suppresses_borderline_replans(self):
        db = self._db(2, 100_000)
        ctx = EvalContext()
        planner = ctx.planner(db)
        rule = self._rule()
        planner.plan(rule)
        # Two forced no-op replans widen the band to 8x.
        for size in (30, 400):
            for value in range(size * 100, size * 100 + size):
                db.insert(Fact("R", (value,)))
            planner.begin_round()
            planner.plan(rule)
        assert ctx.stats.noop_replans == 2
        assert planner.drift_factor == 8.0
        replans_before = ctx.stats.replans
        # A 5x drift (inside the widened band, outside the base 4x band)
        # no longer triggers a rebuild.
        for value in range(1_000_000, 1_001_300):
            db.insert(Fact("R", (value,)))
        planner.begin_round()
        planner.plan(rule)
        assert ctx.stats.replans == replans_before

    def test_effective_replan_resets_band(self):
        from repro.datalog.planner import DRIFT_FACTOR

        db = self._db(2, 3_000)
        ctx = EvalContext()
        planner = ctx.planner(db)
        rule = self._rule()
        assert planner.plan(rule).order == (0, 1)
        # Two no-op replans widen the band...
        for size in (20, 150):
            for value in range(size * 1000, size * 1000 + size):
                db.insert(Fact("R", (value,)))
            planner.begin_round()
            planner.plan(rule)
        assert planner.drift_factor > DRIFT_FACTOR
        # ...then R overtakes S and the rebuild flips the order: reset.
        for value in range(5_000_000, 5_060_000):
            db.insert(Fact("R", (value,)))
        planner.begin_round()
        assert planner.plan(rule).order == (1, 0)
        assert planner.drift_factor == DRIFT_FACTOR
        assert ctx.stats.drift_factor == DRIFT_FACTOR
        assert ctx.stats.replans == ctx.stats.noop_replans + 1

    def test_band_capped_at_maximum(self):
        from repro.datalog.planner import MAX_DRIFT_FACTOR

        db = self._db(1, 1)
        ctx = EvalContext()
        planner = ctx.planner(db)
        planner.drift_factor = MAX_DRIFT_FACTOR
        planner._noop_streak = 5
        planner._record_replan_outcome(changed_order=False)
        assert planner.drift_factor == MAX_DRIFT_FACTOR
        assert ctx.stats.drift_factor == MAX_DRIFT_FACTOR


class TestCandidateObservers:
    def test_relation_index_notifies_and_copy_drops_observers(self):
        index = RelationIndex([Fact("R", (1,)), Fact("R", (2,))])
        seen: List[Fact] = []
        index.add_observer(seen.append)
        assert set(index.candidates({})) == {Fact("R", (1,)), Fact("R", (2,))}
        assert sorted(f.values[0] for f in seen) == [1, 2]
        # Indexed lookups notify too.
        seen.clear()
        list(index.candidates({0: 1}))
        assert seen == [Fact("R", (1,))]
        # copy() starts clean; remove_observer silences the original.
        clone = index.copy()
        seen.clear()
        list(clone.candidates({}))
        assert seen == []
        index.remove_observer(seen.append)
        list(index.candidates({}))
        assert seen == []

    def test_closure_candidate_observer_sees_probes_and_detaches(self):
        schema = Schema.from_arities({"R": 1, "S": 1})
        db = Database.from_dicts(schema, {"R": [(1,), (2,)], "S": [(1,)]})
        program = DeltaProgram.from_text(
            """
            delta R(x) :- R(x), S(x).
            delta S(x) :- S(x), delta R(x).
            """,
        )
        ctx = EvalContext()
        probes: List[tuple] = []
        ctx.add_candidate_observer(
            lambda relation, item: probes.append((relation, item))
        )
        result = run_closure(db, program, engine="semi-naive", context=ctx)
        assert result.assignments
        assert probes
        assert {relation for relation, _ in probes} <= {"R", "S"}
        # The bridge detaches at closure end: later iteration is silent.
        probes.clear()
        list(db.candidates("R", {}))
        assert probes == []

    def test_trigger_probes_deliver_mid_cascade(self):
        schema = Schema.from_arities({"Author": 2, "Writes": 2, "Publication": 2})
        db = Database.from_dicts(
            schema,
            {
                "Author": [(1, 10), (2, 20)],
                "Writes": [(1, 10), (1, 11), (2, 11)],
                "Publication": [(10, 100), (11, 110)],
            },
        )
        program = DeltaProgram.from_text(
            """
            delta Author(a, n) :- Author(a, n), a = 1.
            delta Writes(a, p) :- Writes(a, p), delta Author(a, n).
            delta Publication(p, t) :- Publication(p, t), delta Writes(a, p).
            """,
        )
        ctx = EvalContext()
        assignments: List = []
        probes: List[tuple] = []
        ctx.add_observer(assignments.append)
        ctx.add_candidate_observer(lambda relation, item: probes.append(relation))
        engine = TriggerEngine.from_program(program)
        run = engine.run(db, seed_deletions(db, program), context=ctx)
        # Every cascaded deletion (everything after the seed) was announced
        # through the assignment observers, in cascade order.
        assert [a.derived for a in assignments] == list(run.deletion_order[1:])
        # Candidate observers saw the probe joins iterate over the condition
        # relations of *later* cascade stages, i.e. they fired mid-cascade.
        assert "Publication" in probes and "Writes" in probes
        # The original database never had observers attached (run() clones).
        probes.clear()
        list(db.candidates("Writes", {}))
        assert probes == []


class TestAdaptiveMatrixStaysGreen:
    def test_repair_engine_shared_context_matches_naive_oracle(self):
        for seed in range(6):
            memory, program = random_instance(seed, max_facts=20)
            sqlite = SQLiteDatabase.from_database(memory)
            oracle = RepairEngine(memory, program, engine="naive").repair_all()
            for backend_db in (memory, sqlite):
                engine = RepairEngine(backend_db, program)
                # Two passes over one shared context: the second exercises the
                # steady-state keyed stage tables and the re-costed plans.
                for _ in range(2):
                    results = engine.repair_all()
                    for member in Semantics:
                        if member is Semantics.INDEPENDENT:
                            # Min-Ones tie-breaking is legitimately unstable;
                            # sizes must still agree.
                            assert results[member].size == oracle[member].size, seed
                        else:
                            assert (
                                results[member].deleted == oracle[member].deleted
                            ), (seed, member)
