"""Unit tests for independent semantics (Algorithm 1)."""

from repro.core.semantics import Semantics, independent_semantics
from repro.core.stability import (
    is_stabilizing_set,
    minimum_stabilizing_set_bruteforce,
)
from repro.datalog.delta import DeltaProgram
from repro.storage.database import Database
from repro.storage.facts import fact
from repro.storage.schema import Schema

from tests.conftest import PAPER_PROGRAM_TEXT, make_paper_database


class TestPaperExample:
    def test_matches_example_3_4(self):
        db = make_paper_database()
        program = DeltaProgram.from_text(PAPER_PROGRAM_TEXT)
        result = independent_semantics(db, program)
        assert result.deleted == frozenset(
            {fact("Grant", 2, "ERC"), fact("AuthGrant", 4, 2), fact("AuthGrant", 5, 2)},
        )
        assert result.metadata["optimal"]
        assert result.semantics is Semantics.INDEPENDENT

    def test_result_is_stabilizing(self):
        db = make_paper_database()
        program = DeltaProgram.from_text(PAPER_PROGRAM_TEXT)
        result = independent_semantics(db, program)
        assert is_stabilizing_set(db, program, result.deleted)

    def test_matches_bruteforce_minimum_size(self):
        db = make_paper_database()
        program = DeltaProgram.from_text(PAPER_PROGRAM_TEXT)
        exact = minimum_stabilizing_set_bruteforce(db, program)
        result = independent_semantics(db, program)
        assert result.size == len(exact)

    def test_timer_has_three_phases(self):
        db = make_paper_database()
        program = DeltaProgram.from_text(PAPER_PROGRAM_TEXT)
        phases = independent_semantics(db, program).timer.phases
        assert set(phases) == {"eval", "process_prov", "solve"}

    def test_metadata_counts(self):
        db = make_paper_database()
        program = DeltaProgram.from_text(PAPER_PROGRAM_TEXT)
        metadata = independent_semantics(db, program).metadata
        assert metadata["clauses"] == 9
        assert metadata["provenance_variables"] >= 6
        assert metadata["solver_components"] >= 1

    def test_original_database_untouched(self):
        db = make_paper_database()
        independent_semantics(db, DeltaProgram.from_text(PAPER_PROGRAM_TEXT))
        assert db.count_delta() == 0


class TestSmallInstances:
    def test_stable_database_deletes_nothing(self):
        schema = Schema.from_arities({"R": 1, "S": 1})
        db = Database.from_dicts(schema, {"R": [(1,)], "S": []})
        program = DeltaProgram.from_text("delta R(x) :- R(x), S(x).")
        assert independent_semantics(db, program).size == 0

    def test_prefers_the_cheaper_side(self):
        """Proposition 3.20-1: Ind deletes the single shared tuple, not the n others."""
        schema = Schema.from_arities({"R1": 1, "R2": 1})
        db = Database.from_dicts(
            schema, {"R1": [(f"a{i}",) for i in range(5)], "R2": [("b",)]},
        )
        program = DeltaProgram.from_text("delta R1(x) :- R1(x), R2(y).")
        result = independent_semantics(db, program)
        assert result.deleted == frozenset({fact("R2", "b")})

    def test_may_delete_underivable_tuples(self):
        """The Ind result need not be contained in the derivable delta tuples."""
        schema = Schema.from_arities({"W": 2, "A": 1})
        db = Database.from_dicts(schema, {"W": [(1, 10), (1, 20)], "A": [(1,)]})
        program = DeltaProgram.from_text("delta W(a, p) :- W(a, p), A(a).")
        result = independent_semantics(db, program)
        assert result.deleted == frozenset({fact("A", 1)})

    def test_cascade_rules_make_cheap_deletions_unattractive(self):
        """Deleting the guard of a cascade rule triggers the cascade, so Ind avoids it
        when a smaller cut exists upstream."""
        schema = Schema.from_arities({"R": 1, "S": 1, "T": 1})
        db = Database.from_dicts(
            schema,
            {"R": [(1,)], "S": [(1,)], "T": [(i,) for i in range(4)]},
        )
        program = DeltaProgram.from_text(
            """
            delta R(x) :- R(x), S(x).
            delta T(y) :- T(y), delta R(x).
            """,
        )
        result = independent_semantics(db, program)
        # Deleting S(1) stabilizes at cost 1; deleting R(1) would force all T tuples too.
        assert result.deleted == frozenset({fact("S", 1)})

    def test_matches_bruteforce_on_random_small_instances(self):
        schema = Schema.from_arities({"R": 2, "S": 1})
        db = Database.from_dicts(
            schema, {"R": [(1, 2), (2, 3), (3, 1), (2, 2)], "S": [(1,), (2,), (3,)]},
        )
        program = DeltaProgram.from_text(
            """
            delta S(x) :- S(x), S(y), R(x, y).
            delta R(x, y) :- R(x, y), delta S(x).
            """,
        )
        exact = minimum_stabilizing_set_bruteforce(db, program, max_tuples=16)
        result = independent_semantics(db, program)
        assert result.size == len(exact)
        assert is_stabilizing_set(db, program, result.deleted)

    def test_greedy_limit_still_returns_stabilizing_set(self):
        db = make_paper_database()
        program = DeltaProgram.from_text(PAPER_PROGRAM_TEXT)
        result = independent_semantics(db, program, exact_variable_limit=1)
        assert not result.metadata["optimal"]
        assert is_stabilizing_set(db, program, result.deleted)
