"""Unit tests for repro.storage.facts."""

import pytest

from repro.storage.facts import Fact, fact, facts_by_relation


class TestFactIdentity:
    def test_equality_ignores_tid(self):
        assert Fact("R", (1, 2), tid="a") == Fact("R", (1, 2), tid="b")

    def test_equality_requires_same_relation(self):
        assert Fact("R", (1,)) != Fact("S", (1,))

    def test_equality_requires_same_values(self):
        assert Fact("R", (1, 2)) != Fact("R", (2, 1))

    def test_hash_consistent_with_equality(self):
        assert hash(Fact("R", (1, 2), tid="x")) == hash(Fact("R", (1, 2)))

    def test_usable_in_sets(self):
        items = {Fact("R", (1,)), Fact("R", (1,), tid="dup"), Fact("R", (2,))}
        assert len(items) == 2

    def test_not_equal_to_non_fact(self):
        assert Fact("R", (1,)) != (1,)


class TestFactBehaviour:
    def test_immutable(self):
        item = Fact("R", (1,))
        with pytest.raises(AttributeError):
            item.relation = "S"
        with pytest.raises(AttributeError):
            del item.values

    def test_values_are_tuple(self):
        item = Fact("R", [1, 2])
        assert item.values == (1, 2)
        assert item.arity == 2
        assert item.value(1) == 2

    def test_with_tid(self):
        renamed = Fact("R", (1,)).with_tid("g2")
        assert renamed.tid == "g2"
        assert renamed == Fact("R", (1,))

    def test_label_prefers_tid(self):
        assert Fact("R", (1,), tid="g2").label() == "g2"
        assert Fact("R", (1,)).label() == "R(1)"

    def test_repr_and_str(self):
        item = Fact("Author", (4, "Marge"), tid="a2")
        assert str(item) == "Author(4, Marge)"
        assert repr(item) == "Author(4, 'Marge')#a2"

    def test_sort_key_orders_deterministically(self):
        items = [Fact("B", (2,)), Fact("A", (10,)), Fact("A", (2,))]
        ordered = sorted(items)
        assert ordered[0].relation == "A"
        assert ordered[-1].relation == "B"

    def test_fact_helper(self):
        item = fact("R", 1, "x", tid="t")
        assert item.relation == "R"
        assert item.values == (1, "x")
        assert item.tid == "t"


def test_facts_by_relation_groups():
    grouped = facts_by_relation([fact("R", 1), fact("R", 2), fact("S", 1)])
    assert set(grouped) == {"R", "S"}
    assert len(grouped["R"]) == 2
    assert len(grouped["S"]) == 1
