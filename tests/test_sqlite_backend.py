"""Unit tests for the SQLite storage engine and its equivalence with the in-memory one."""

import pytest

from repro.datalog import DeltaProgram, find_assignments
from repro.exceptions import ArityMismatchError, StorageError, UnknownRelationError
from repro.storage.database import Database
from repro.storage.facts import fact
from repro.storage.schema import RelationSchema, Schema
from repro.storage.sqlite_backend import SQLiteDatabase, active_table, delta_table


@pytest.fixture
def schema() -> Schema:
    return Schema.from_relations(
        [RelationSchema.of("R", "x:int", "y:str"), RelationSchema.of("S", "x:int")]
    )


@pytest.fixture
def db(schema: Schema) -> SQLiteDatabase:
    built = SQLiteDatabase(schema)
    built.insert_all([fact("R", 1, "a"), fact("R", 2, "b"), fact("S", 1)])
    return built


class TestBasics:
    def test_table_names(self):
        assert active_table("R") == "r_R"
        assert delta_table("R") == "d_R"

    def test_insert_and_count(self, db: SQLiteDatabase):
        assert db.count_active("R") == 2
        assert db.count_active() == 3

    def test_insert_duplicate_ignored(self, db: SQLiteDatabase):
        assert not db.insert(fact("R", 1, "a"))
        assert db.count_active("R") == 2

    def test_unknown_relation_rejected(self, db: SQLiteDatabase):
        with pytest.raises(UnknownRelationError):
            db.insert(fact("T", 1))
        with pytest.raises(UnknownRelationError):
            db.active_facts("T")

    def test_arity_mismatch_rejected(self, db: SQLiteDatabase):
        with pytest.raises(ArityMismatchError):
            db.insert(fact("R", 1))

    def test_delete_and_delta(self, db: SQLiteDatabase):
        db.delete(fact("R", 1, "a"))
        assert not db.has_active(fact("R", 1, "a"))
        assert db.has_delta(fact("R", 1, "a"))
        assert db.count_delta("R") == 1

    def test_mark_deleted_and_drop_active(self, db: SQLiteDatabase):
        db.mark_deleted(fact("R", 2, "b"))
        assert db.has_active(fact("R", 2, "b"))
        db.drop_active(fact("R", 2, "b"))
        assert not db.has_active(fact("R", 2, "b"))

    def test_candidates_filters_by_bindings(self, db: SQLiteDatabase):
        assert set(db.candidates("R", {0: 2})) == {fact("R", 2, "b")}
        assert set(db.candidates("R", {})) == {fact("R", 1, "a"), fact("R", 2, "b")}

    def test_tid_round_trips(self, schema: Schema):
        built = SQLiteDatabase(schema)
        built.insert(fact("R", 5, "z", tid="special"))
        stored = next(iter(built.active_facts("R")))
        assert stored.tid == "special"

    def test_execute_rejects_bad_sql(self, db: SQLiteDatabase):
        with pytest.raises(StorageError):
            db.execute("SELECT * FROM missing_table")

    def test_clone_and_equality(self, db: SQLiteDatabase):
        db.delete(fact("S", 1))
        copy = db.clone()
        assert copy.same_state_as(db)
        copy.delete(fact("R", 1, "a"))
        assert not copy.same_state_as(db)

    def test_not_hashable(self, db: SQLiteDatabase):
        with pytest.raises(TypeError):
            hash(db)


class TestCrossBackendEquivalence:
    def test_from_database_copies_state(self, schema: Schema):
        memory = Database.from_dicts(schema, {"R": [(1, "a")], "S": [(2,)]})
        memory.delete(fact("S", 2))
        sqlite = SQLiteDatabase.from_database(memory)
        assert sqlite.same_state_as(memory)

    def test_rule_evaluation_matches_memory_backend(self, schema: Schema):
        program = DeltaProgram.from_text("delta R(x, y) :- R(x, y), S(x).")
        memory = Database.from_dicts(schema, {"R": [(1, "a"), (2, "b")], "S": [(1,)]})
        sqlite = SQLiteDatabase.from_database(memory)
        mem_derived = {a.derived for a in find_assignments(memory, program[0])}
        sql_derived = {a.derived for a in find_assignments(sqlite, program[0])}
        assert mem_derived == sql_derived == {fact("R", 1, "a")}

    def test_repair_matches_memory_backend(self, schema: Schema):
        from repro import RepairEngine, Semantics

        program = DeltaProgram.from_text("delta R(x, y) :- R(x, y), S(x).")
        memory = Database.from_dicts(schema, {"R": [(1, "a"), (2, "b")], "S": [(1,)]})
        sqlite = SQLiteDatabase.from_database(memory)
        for semantics in Semantics:
            mem = RepairEngine(memory, program).repair(semantics).deleted
            sql = RepairEngine(sqlite, program).repair(semantics).deleted
            assert mem == sql
