"""Unit tests for the SQLite storage engine and its equivalence with the in-memory one."""

import pytest

from repro.datalog import DeltaProgram, find_assignments, run_closure
from repro.exceptions import ArityMismatchError, StorageError, UnknownRelationError
from repro.storage.database import Database
from repro.storage.facts import Fact, fact
from repro.storage.schema import RelationSchema, Schema
from repro.storage.sqlite_backend import (
    SQLiteDatabase,
    active_table,
    delta_table,
    frontier_table,
)


@pytest.fixture
def schema() -> Schema:
    return Schema.from_relations(
        [RelationSchema.of("R", "x:int", "y:str"), RelationSchema.of("S", "x:int")]
    )


@pytest.fixture
def db(schema: Schema) -> SQLiteDatabase:
    built = SQLiteDatabase(schema)
    built.insert_all([fact("R", 1, "a"), fact("R", 2, "b"), fact("S", 1)])
    return built


class TestBasics:
    def test_table_names(self):
        assert active_table("R") == "r_R"
        assert delta_table("R") == "d_R"

    def test_insert_and_count(self, db: SQLiteDatabase):
        assert db.count_active("R") == 2
        assert db.count_active() == 3

    def test_insert_duplicate_ignored(self, db: SQLiteDatabase):
        assert not db.insert(fact("R", 1, "a"))
        assert db.count_active("R") == 2

    def test_unknown_relation_rejected(self, db: SQLiteDatabase):
        with pytest.raises(UnknownRelationError):
            db.insert(fact("T", 1))
        with pytest.raises(UnknownRelationError):
            db.active_facts("T")

    def test_arity_mismatch_rejected(self, db: SQLiteDatabase):
        with pytest.raises(ArityMismatchError):
            db.insert(fact("R", 1))

    def test_delete_and_delta(self, db: SQLiteDatabase):
        db.delete(fact("R", 1, "a"))
        assert not db.has_active(fact("R", 1, "a"))
        assert db.has_delta(fact("R", 1, "a"))
        assert db.count_delta("R") == 1

    def test_mark_deleted_and_drop_active(self, db: SQLiteDatabase):
        db.mark_deleted(fact("R", 2, "b"))
        assert db.has_active(fact("R", 2, "b"))
        db.drop_active(fact("R", 2, "b"))
        assert not db.has_active(fact("R", 2, "b"))

    def test_candidates_filters_by_bindings(self, db: SQLiteDatabase):
        assert set(db.candidates("R", {0: 2})) == {fact("R", 2, "b")}
        assert set(db.candidates("R", {})) == {fact("R", 1, "a"), fact("R", 2, "b")}

    def test_tid_round_trips(self, schema: Schema):
        built = SQLiteDatabase(schema)
        built.insert(fact("R", 5, "z", tid="special"))
        stored = next(iter(built.active_facts("R")))
        assert stored.tid == "special"

    def test_execute_rejects_bad_sql(self, db: SQLiteDatabase):
        with pytest.raises(StorageError):
            db.execute("SELECT * FROM missing_table")

    def test_clone_and_equality(self, db: SQLiteDatabase):
        db.delete(fact("S", 1))
        copy = db.clone()
        assert copy.same_state_as(db)
        copy.delete(fact("R", 1, "a"))
        assert not copy.same_state_as(db)

    def test_not_hashable(self, db: SQLiteDatabase):
        with pytest.raises(TypeError):
            hash(db)


class TestCrossBackendEquivalence:
    def test_from_database_copies_state(self, schema: Schema):
        memory = Database.from_dicts(schema, {"R": [(1, "a")], "S": [(2,)]})
        memory.delete(fact("S", 2))
        sqlite = SQLiteDatabase.from_database(memory)
        assert sqlite.same_state_as(memory)

    def test_rule_evaluation_matches_memory_backend(self, schema: Schema):
        program = DeltaProgram.from_text("delta R(x, y) :- R(x, y), S(x).")
        memory = Database.from_dicts(schema, {"R": [(1, "a"), (2, "b")], "S": [(1,)]})
        sqlite = SQLiteDatabase.from_database(memory)
        mem_derived = {a.derived for a in find_assignments(memory, program[0])}
        sql_derived = {a.derived for a in find_assignments(sqlite, program[0])}
        assert mem_derived == sql_derived == {fact("R", 1, "a")}

    def test_repair_matches_memory_backend(self, schema: Schema):
        from repro import RepairEngine, Semantics

        program = DeltaProgram.from_text("delta R(x, y) :- R(x, y), S(x).")
        memory = Database.from_dicts(schema, {"R": [(1, "a"), (2, "b")], "S": [(1,)]})
        sqlite = SQLiteDatabase.from_database(memory)
        for semantics in Semantics:
            mem = RepairEngine(memory, program).repair(semantics).deleted
            sql = RepairEngine(sqlite, program).repair(semantics).deleted
            assert mem == sql


class TestFrontierTables:
    def test_table_name(self):
        assert frontier_table("R") == "f_R"

    def test_tokens_and_added_since(self, db: SQLiteDatabase):
        token = db.delta_token("R")
        assert db.delta_added_since("R", token) == []
        db.mark_deleted(fact("R", 1, "a"))
        db.mark_deleted(fact("R", 1, "a"))  # duplicate: must not re-log
        assert db.delta_added_since("R", token) == [fact("R", 1, "a")]
        assert db.delta_added_since("R", db.delta_token("R")) == []

    def test_generations_are_monotone_and_clone_preserves_them(
        self, db: SQLiteDatabase
    ):
        db.delete(fact("R", 1, "a"))
        before = db.generation()
        copy = db.clone()
        assert copy.generation() == before
        assert copy.same_state_as(db)
        # New deletions on the clone land after the copied generations.
        copy.delete(fact("R", 2, "b"))
        assert copy.delta_added_since("R", before) == [fact("R", 2, "b")]
        # The original is untouched.
        assert db.delta_added_since("R", before) == []

    def test_reopened_file_database_resumes_generations(self, schema, tmp_path):
        # Regression: a reopened file-backed database must resume the counter
        # after the persisted stamps, so pre-recorded deltas stay inside the
        # semi-naive round-1 window and new deltas don't collide with them.
        path = str(tmp_path / "frontier.db")
        first = SQLiteDatabase(schema, path=path)
        first.insert(fact("S", 1))
        first.insert(fact("R", 1, "a"))
        first.mark_deleted(fact("R", 1, "a"))
        persisted = first.generation()
        first.close()

        reopened = SQLiteDatabase(schema, path=path)
        assert reopened.generation() == persisted
        token = reopened.delta_token("S")
        reopened.mark_deleted(fact("S", 1))
        assert reopened.delta_added_since("S", token) == [fact("S", 1)]
        program = DeltaProgram.from_text("delta S(x) :- S(x), delta R(x, y).")
        semi = run_closure(reopened.clone(), program, engine="semi-naive")
        naive = run_closure(reopened.clone(), program, engine="naive")
        assert {a.signature() for a in semi.assignments} == {
            a.signature() for a in naive.assignments
        }
        assert len(semi.assignments) == 1
        reopened.close()

    def test_frontier_mirrors_delta_extent(self, db: SQLiteDatabase):
        db.delete(fact("R", 1, "a"))
        db.mark_deleted(fact("S", 1))
        for relation in ("R", "S"):
            rows = db.execute(
                f"SELECT COUNT(*) FROM {frontier_table(relation)}"
            ).fetchone()
            assert rows[0] == db.count_delta(relation)


class SQLiteSemiNaiveCase:
    """Shared scaffolding: one schema, closures run on both engines."""

    def closure_pair(self, db: SQLiteDatabase, program: DeltaProgram):
        naive_db, semi_db = db.clone(), db.clone()
        naive = run_closure(naive_db, program, engine="naive")
        semi = run_closure(semi_db, program, engine="semi-naive")
        assert set(naive_db.all_deltas()) == set(semi_db.all_deltas())
        assert {a.signature() for a in naive.assignments} == {
            a.signature() for a in semi.assignments
        }
        return semi, semi_db


class TestSQLiteSemiNaiveEdgeCases(SQLiteSemiNaiveCase):
    def test_empty_frontier_round_terminates(self, schema: Schema):
        # The cascade re-derives only already-recorded facts after round 2:
        # the install statements insert nothing new, the frontier window is
        # empty and the closure must stop without an extra round.
        db = SQLiteDatabase(schema)
        db.insert_all([fact("R", 1, "a"), fact("S", 1)])
        program = DeltaProgram.from_text(
            """
            delta R(x, y) :- R(x, y), S(x).
            delta S(x) :- S(x), delta R(x, y).
            delta R(x, y) :- R(x, y), delta S(x).
            """
        )
        semi, semi_db = self.closure_pair(db, program)
        assert set(semi_db.all_deltas()) == {fact("R", 1, "a"), fact("S", 1)}
        # Round 1 derives ΔR, round 2 ΔS, round 3 re-derives only ΔR(1, a)
        # (already recorded — an assignment, but no frontier), then stop.
        assert semi.rounds == 3

    def test_self_join_hits_frontier_table_twice(self):
        # Two delta atoms over the same relation: the seeded variants must
        # join f_E twice with different generation windows, and the rank
        # stratification must not double-count the symmetric assignments.
        schema = Schema.from_relations([RelationSchema.of("E", "x:int", "y:int")])
        memory = Database.from_dicts(
            schema, {"E": [(1, 2), (2, 1), (2, 2), (3, 4)]}
        )
        program = DeltaProgram.from_text(
            """
            delta E(x, y) :- E(x, y), x = 1.
            delta E(y, z) :- E(y, z), delta E(x, y), delta E(z, w).
            """
        )
        db = SQLiteDatabase.from_database(memory)
        semi, semi_db = self.closure_pair(db, program)
        mem_db = memory.clone()
        mem = run_closure(mem_db, program, engine="semi-naive")
        assert set(semi_db.all_deltas()) == set(mem_db.all_deltas())
        assert {a.signature() for a in semi.assignments} == {
            a.signature() for a in mem.assignments
        }
        assert semi.rounds == mem.rounds

    def test_tid_labels_preserved_through_sql_insert_path(self, schema: Schema):
        db = SQLiteDatabase(schema)
        db.insert(fact("R", 1, "a", tid="r1"))
        db.insert(fact("S", 1, tid="s1"))
        program = DeltaProgram.from_text(
            "delta R(x, y) :- R(x, y), S(x). delta S(x) :- S(x), delta R(x, y)."
        )
        semi, semi_db = self.closure_pair(db, program)
        # Body facts keep their labels through SELECT reconstruction.
        used = {
            (item.relation, item.values, item.tid)
            for assignment in semi.assignments
            for item in assignment.all_facts()
        }
        assert ("R", (1, "a"), "r1") in used
        assert ("S", (1,), "s1") in used
        # Facts installed by INSERT ... SELECT carry no label, and the
        # installed delta row for R(1, a) did not clobber anything.
        delta_r = {(item.values, item.tid) for item in semi_db.delta_facts("R")}
        assert delta_r == {((1, "a"), None)}

    def test_pre_recorded_delta_tid_not_clobbered_by_install(self, schema: Schema):
        # A fact already in the delta extent with a label must keep it even
        # when the closure re-derives (and re-installs) the same fact.
        db = SQLiteDatabase(schema)
        db.insert(fact("S", 1))
        db.insert(fact("R", 1, "a"))
        db.mark_deleted(fact("R", 1, "a", tid="kept"))
        program = DeltaProgram.from_text("delta R(x, y) :- R(x, y), S(x).")
        _, semi_db = self.closure_pair(db, program)
        delta_r = {(item.values, item.tid) for item in semi_db.delta_facts("R")}
        assert delta_r == {((1, "a"), "kept")}
