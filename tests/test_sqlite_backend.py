"""Unit tests for the SQLite storage engine and its equivalence with the in-memory one."""

import pytest

from repro.datalog import DeltaProgram, find_assignments, run_closure
from repro.exceptions import ArityMismatchError, StorageError, UnknownRelationError
from repro.storage.database import Database
from repro.storage.facts import fact
from repro.storage.schema import RelationSchema, Schema
from repro.storage.sqlite_backend import (
    SQLiteDatabase,
    active_table,
    delta_table,
    frontier_table,
)


@pytest.fixture
def schema() -> Schema:
    return Schema.from_relations(
        [RelationSchema.of("R", "x:int", "y:str"), RelationSchema.of("S", "x:int")],
    )


@pytest.fixture
def db(schema: Schema) -> SQLiteDatabase:
    built = SQLiteDatabase(schema)
    built.insert_all([fact("R", 1, "a"), fact("R", 2, "b"), fact("S", 1)])
    return built


class TestBasics:
    def test_table_names(self):
        assert active_table("R") == "r_R"
        assert delta_table("R") == "d_R"

    def test_insert_and_count(self, db: SQLiteDatabase):
        assert db.count_active("R") == 2
        assert db.count_active() == 3

    def test_insert_duplicate_ignored(self, db: SQLiteDatabase):
        assert not db.insert(fact("R", 1, "a"))
        assert db.count_active("R") == 2

    def test_unknown_relation_rejected(self, db: SQLiteDatabase):
        with pytest.raises(UnknownRelationError):
            db.insert(fact("T", 1))
        with pytest.raises(UnknownRelationError):
            db.active_facts("T")

    def test_arity_mismatch_rejected(self, db: SQLiteDatabase):
        with pytest.raises(ArityMismatchError):
            db.insert(fact("R", 1))

    def test_delete_and_delta(self, db: SQLiteDatabase):
        db.delete(fact("R", 1, "a"))
        assert not db.has_active(fact("R", 1, "a"))
        assert db.has_delta(fact("R", 1, "a"))
        assert db.count_delta("R") == 1

    def test_mark_deleted_and_drop_active(self, db: SQLiteDatabase):
        db.mark_deleted(fact("R", 2, "b"))
        assert db.has_active(fact("R", 2, "b"))
        db.drop_active(fact("R", 2, "b"))
        assert not db.has_active(fact("R", 2, "b"))

    def test_candidates_filters_by_bindings(self, db: SQLiteDatabase):
        assert set(db.candidates("R", {0: 2})) == {fact("R", 2, "b")}
        assert set(db.candidates("R", {})) == {fact("R", 1, "a"), fact("R", 2, "b")}

    def test_tid_round_trips(self, schema: Schema):
        built = SQLiteDatabase(schema)
        built.insert(fact("R", 5, "z", tid="special"))
        stored = next(iter(built.active_facts("R")))
        assert stored.tid == "special"

    def test_execute_rejects_bad_sql(self, db: SQLiteDatabase):
        with pytest.raises(StorageError):
            db.execute("SELECT * FROM missing_table")

    def test_clone_and_equality(self, db: SQLiteDatabase):
        db.delete(fact("S", 1))
        copy = db.clone()
        assert copy.same_state_as(db)
        copy.delete(fact("R", 1, "a"))
        assert not copy.same_state_as(db)

    def test_not_hashable(self, db: SQLiteDatabase):
        with pytest.raises(TypeError):
            hash(db)


class TestCrossBackendEquivalence:
    def test_from_database_copies_state(self, schema: Schema):
        memory = Database.from_dicts(schema, {"R": [(1, "a")], "S": [(2,)]})
        memory.delete(fact("S", 2))
        sqlite = SQLiteDatabase.from_database(memory)
        assert sqlite.same_state_as(memory)

    def test_rule_evaluation_matches_memory_backend(self, schema: Schema):
        program = DeltaProgram.from_text("delta R(x, y) :- R(x, y), S(x).")
        memory = Database.from_dicts(schema, {"R": [(1, "a"), (2, "b")], "S": [(1,)]})
        sqlite = SQLiteDatabase.from_database(memory)
        mem_derived = {a.derived for a in find_assignments(memory, program[0])}
        sql_derived = {a.derived for a in find_assignments(sqlite, program[0])}
        assert mem_derived == sql_derived == {fact("R", 1, "a")}

    def test_repair_matches_memory_backend(self, schema: Schema):
        from repro import RepairEngine, Semantics

        program = DeltaProgram.from_text("delta R(x, y) :- R(x, y), S(x).")
        memory = Database.from_dicts(schema, {"R": [(1, "a"), (2, "b")], "S": [(1,)]})
        sqlite = SQLiteDatabase.from_database(memory)
        for semantics in Semantics:
            mem = RepairEngine(memory, program).repair(semantics).deleted
            sql = RepairEngine(sqlite, program).repair(semantics).deleted
            assert mem == sql


class TestFrontierTables:
    def test_table_name(self):
        assert frontier_table("R") == "f_R"

    def test_tokens_and_added_since(self, db: SQLiteDatabase):
        token = db.delta_token("R")
        assert db.delta_added_since("R", token) == []
        db.mark_deleted(fact("R", 1, "a"))
        db.mark_deleted(fact("R", 1, "a"))  # duplicate: must not re-log
        assert db.delta_added_since("R", token) == [fact("R", 1, "a")]
        assert db.delta_added_since("R", db.delta_token("R")) == []

    def test_generations_are_monotone_and_clone_preserves_them(
        self, db: SQLiteDatabase,
    ):
        db.delete(fact("R", 1, "a"))
        before = db.generation()
        copy = db.clone()
        assert copy.generation() == before
        assert copy.same_state_as(db)
        # New deletions on the clone land after the copied generations.
        copy.delete(fact("R", 2, "b"))
        assert copy.delta_added_since("R", before) == [fact("R", 2, "b")]
        # The original is untouched.
        assert db.delta_added_since("R", before) == []

    def test_reopened_file_database_resumes_generations(self, schema, tmp_path):
        # Regression: a reopened file-backed database must resume the counter
        # after the persisted stamps, so pre-recorded deltas stay inside the
        # semi-naive round-1 window and new deltas don't collide with them.
        path = str(tmp_path / "frontier.db")
        first = SQLiteDatabase(schema, path=path)
        first.insert(fact("S", 1))
        first.insert(fact("R", 1, "a"))
        first.mark_deleted(fact("R", 1, "a"))
        persisted = first.generation()
        first.close()

        reopened = SQLiteDatabase(schema, path=path)
        assert reopened.generation() == persisted
        token = reopened.delta_token("S")
        reopened.mark_deleted(fact("S", 1))
        assert reopened.delta_added_since("S", token) == [fact("S", 1)]
        program = DeltaProgram.from_text("delta S(x) :- S(x), delta R(x, y).")
        semi = run_closure(reopened.clone(), program, engine="semi-naive")
        naive = run_closure(reopened.clone(), program, engine="naive")
        assert {a.signature() for a in semi.assignments} == {
            a.signature() for a in naive.assignments
        }
        assert len(semi.assignments) == 1
        reopened.close()

    def test_frontier_mirrors_delta_extent(self, db: SQLiteDatabase):
        db.delete(fact("R", 1, "a"))
        db.mark_deleted(fact("S", 1))
        for relation in ("R", "S"):
            rows = db.execute(
                f"SELECT COUNT(*) FROM {frontier_table(relation)}",
            ).fetchone()
            assert rows[0] == db.count_delta(relation)


class TestWALMode:
    """File-backed databases run in WAL; in-memory ones keep a MEMORY journal.

    A MEMORY rollback journal is unsafe for concurrent readers and can
    corrupt the file on a crash mid-write; WAL is both crash-safe and the
    prerequisite for the sharded engine's read-only sibling connections.
    """

    def _journal_mode(self, db: SQLiteDatabase) -> str:
        return db.execute("PRAGMA journal_mode").fetchone()[0].lower()

    def test_memory_database_keeps_memory_journal(self, schema):
        db = SQLiteDatabase(schema)
        assert self._journal_mode(db) == "memory"
        assert not db.supports_readers()
        assert db.reader_connections(2) is None

    def test_file_database_uses_wal(self, schema, tmp_path):
        db = SQLiteDatabase(schema, path=str(tmp_path / "wal.db"))
        assert self._journal_mode(db) == "wal"
        assert db.supports_readers()
        db.close()

    def test_wal_survives_reopen_and_resumes_fixpoint(self, schema, tmp_path):
        # The reopen/resume path under WAL: generations persist, the journal
        # mode sticks (WAL is recorded in the database header), and a closure
        # started before the reopen settles to the oracle state after it.
        path = str(tmp_path / "wal_resume.db")
        first = SQLiteDatabase(schema, path=path)
        first.insert_all([fact("R", 1, "a"), fact("S", 1)])
        first.mark_deleted(fact("R", 1, "a"))
        persisted = first.generation()
        first.close()

        reopened = SQLiteDatabase(schema, path=path)
        assert self._journal_mode(reopened) == "wal"
        assert reopened.generation() == persisted
        program = DeltaProgram.from_text("delta S(x) :- S(x), delta R(x, y).")
        run_closure(reopened, program, engine="semi-naive")
        assert reopened.has_delta(fact("S", 1))
        reopened.close()

    def test_reader_connections_are_read_only_and_see_commits(
        self, schema, tmp_path,
    ):
        import sqlite3

        db = SQLiteDatabase(schema, path=str(tmp_path / "readers.db"))
        db.insert(fact("R", 1, "a"))
        readers = db.reader_connections(2)
        assert len(readers) == 2
        # Lazily cached: asking again returns the same connections.
        assert db.reader_connections(2) == readers
        for reader in readers:
            rows = reader.execute("SELECT COUNT(*) FROM r_R").fetchone()
            assert rows[0] == 1
            with pytest.raises(sqlite3.OperationalError):
                reader.execute("INSERT INTO r_R VALUES (9, 'z', NULL)")
        # Writes committed by the primary are visible to later reader reads.
        db.insert(fact("R", 2, "b"))
        assert readers[0].execute("SELECT COUNT(*) FROM r_R").fetchone()[0] == 2
        db.close()

    def test_close_closes_readers(self, schema, tmp_path):
        import sqlite3

        db = SQLiteDatabase(schema, path=str(tmp_path / "close.db"))
        reader = db.reader_connections(1)[0]
        db.close()
        with pytest.raises(sqlite3.ProgrammingError):
            reader.execute("SELECT 1")

    def test_clone_of_file_database_is_in_memory(self, schema, tmp_path):
        # clone() backs up into a fresh in-memory engine regardless of the
        # source's journal mode.
        db = SQLiteDatabase(schema, path=str(tmp_path / "clone_src.db"))
        db.insert(fact("S", 1))
        copy = db.clone()
        assert self._journal_mode(copy) == "memory"
        assert copy.same_state_as(db)
        db.close()


class TestFileBackedResume:
    """Reopening a file-backed database mid-fixpoint must lose nothing.

    The delta and frontier tables are written by consecutive autocommit
    statements, so an interrupted session can leave them torn in either
    direction; ``SQLiteDatabase.__init__`` reconciles on reopen.  These tests
    simulate the torn states directly and assert the resumed generation
    counter neither re-derives nor skips frontier facts.
    """

    def _cascade(self, tmp_path, name: str):
        schema = Schema.from_relations(
            [RelationSchema.of("R", "x:int", "y:str"), RelationSchema.of("S", "x:int")],
        )
        path = str(tmp_path / f"{name}.db")
        db = SQLiteDatabase(schema, path=path)
        db.insert_all(
            [fact("R", 1, "a"), fact("R", 2, "b"), fact("S", 1), fact("S", 2)],
        )
        program = DeltaProgram.from_text(
            """
            delta R(x, y) :- R(x, y), S(x), x < 2.
            delta S(x) :- S(x), delta R(x, y).
            delta R(x, y) :- R(x, y), delta S(x).
            """,
        )
        return schema, path, db, program

    def _oracle_state(self, schema, program):
        oracle = SQLiteDatabase(schema)
        oracle.insert_all(
            [fact("R", 1, "a"), fact("R", 2, "b"), fact("S", 1), fact("S", 2)],
        )
        run_closure(oracle, program, engine="naive")
        return set(oracle.all_deltas())

    def test_interrupted_closure_resumes_to_same_fixpoint(self, tmp_path):
        from repro.exceptions import EvaluationError

        schema, path, db, program = self._cascade(tmp_path, "interrupted")
        # Abort the closure mid-fixpoint: round 1 commits its installs and
        # delta copies, then the round-2 guard raises.
        with pytest.raises(EvaluationError):
            run_closure(db, program, engine="semi-naive", max_rounds=1)
        interrupted_generation = db.generation()
        db.close()

        reopened = SQLiteDatabase(schema, path=path)
        assert reopened.generation() >= interrupted_generation - 1
        resumed = run_closure(reopened, program, engine="semi-naive")
        assert resumed.rounds >= 1
        assert set(reopened.all_deltas()) == self._oracle_state(schema, program)
        reopened.close()

    def test_torn_install_is_reconciled_on_reopen(self, tmp_path):
        # Simulate a kill between an INSERT..SELECT install into f_R and the
        # delta-copy promotion into d_R: the frontier row exists, the delta
        # row does not.
        schema, path, db, program = self._cascade(tmp_path, "torn_install")
        orphan_gen = db.next_generation()
        db.execute(
            f"INSERT OR IGNORE INTO {frontier_table('R')} (c0, c1, tid, gen) "
            "VALUES (1, 'a', NULL, ?)",
            (orphan_gen,),
        )
        assert not db.has_delta(fact("R", 1, "a"))  # torn state on disk
        db.close()

        reopened = SQLiteDatabase(schema, path=path)
        # Reconciliation restored the mirror: the orphaned frontier fact is a
        # delta fact again, and is never re-stamped (no duplicate frontier row).
        assert reopened.has_delta(fact("R", 1, "a"))
        rows = reopened.execute(
            f"SELECT COUNT(*) FROM {frontier_table('R')} WHERE c0 = 1",
        ).fetchone()
        assert rows[0] == 1
        run_closure(reopened, program, engine="semi-naive")
        assert set(reopened.all_deltas()) == self._oracle_state(schema, program)
        reopened.close()

    def test_torn_mark_deleted_is_reconciled_on_reopen(self, tmp_path):
        # Simulate a kill between the d_R insert and the f_R stamp of
        # mark_deleted(): the delta row exists but carries no generation, so
        # without reconciliation no frontier window would ever join it.
        schema, path, db, program = self._cascade(tmp_path, "torn_mark")
        db.execute(
            f"INSERT OR IGNORE INTO {delta_table('S')} (c0, tid) VALUES (2, NULL)",
        )
        stale_generation = db.generation()
        db.close()

        reopened = SQLiteDatabase(schema, path=path)
        # The unstamped delta fact received a fresh generation...
        assert reopened.generation() == stale_generation + 1
        assert reopened.delta_added_since("S", stale_generation) == [fact("S", 2)]
        # ...and the cascade through it fires: ΔS(2) deletes R-facts with x=2
        # that the seed rule (x < 2) alone would never reach.
        run_closure(reopened, program, engine="semi-naive")
        deltas = set(reopened.all_deltas())
        assert fact("R", 2, "b") in deltas
        # Equivalent to a naive oracle run from the same reconciled state.
        oracle = SQLiteDatabase(schema)
        oracle.insert_all(
            [fact("R", 1, "a"), fact("R", 2, "b"), fact("S", 1), fact("S", 2)],
        )
        oracle.mark_deleted(fact("S", 2))
        run_closure(oracle, program, engine="naive")
        assert deltas == set(oracle.all_deltas())
        reopened.close()

    def test_resumed_counter_never_rederives_frontier_facts(self, tmp_path):
        schema, path, db, program = self._cascade(tmp_path, "rederive")
        first = run_closure(db, program, engine="semi-naive")
        assert first.rounds >= 2
        settled = set(db.all_deltas())
        db.close()

        reopened = SQLiteDatabase(schema, path=path)
        token = reopened.generation()
        again = run_closure(reopened, program, engine="semi-naive")
        # Round 1 re-enumerates (full window) but derives nothing new: no
        # fact re-enters the frontier, so the closure stops after one round
        # and the pre-reopen token still sees an empty frontier.
        assert again.rounds == 1
        assert set(reopened.all_deltas()) == settled
        for relation in ("R", "S"):
            assert reopened.delta_added_since(relation, token) == []
        reopened.close()


class SQLiteSemiNaiveCase:
    """Shared scaffolding: one schema, closures run on both engines."""

    def closure_pair(self, db: SQLiteDatabase, program: DeltaProgram):
        naive_db, semi_db = db.clone(), db.clone()
        naive = run_closure(naive_db, program, engine="naive")
        semi = run_closure(semi_db, program, engine="semi-naive")
        assert set(naive_db.all_deltas()) == set(semi_db.all_deltas())
        assert {a.signature() for a in naive.assignments} == {
            a.signature() for a in semi.assignments
        }
        return semi, semi_db


class TestSQLiteSemiNaiveEdgeCases(SQLiteSemiNaiveCase):
    def test_empty_frontier_round_terminates(self, schema: Schema):
        # The cascade re-derives only already-recorded facts after round 2:
        # the install statements insert nothing new, the frontier window is
        # empty and the closure must stop without an extra round.
        db = SQLiteDatabase(schema)
        db.insert_all([fact("R", 1, "a"), fact("S", 1)])
        program = DeltaProgram.from_text(
            """
            delta R(x, y) :- R(x, y), S(x).
            delta S(x) :- S(x), delta R(x, y).
            delta R(x, y) :- R(x, y), delta S(x).
            """,
        )
        semi, semi_db = self.closure_pair(db, program)
        assert set(semi_db.all_deltas()) == {fact("R", 1, "a"), fact("S", 1)}
        # Round 1 derives ΔR, round 2 ΔS, round 3 re-derives only ΔR(1, a)
        # (already recorded — an assignment, but no frontier), then stop.
        assert semi.rounds == 3

    def test_self_join_hits_frontier_table_twice(self):
        # Two delta atoms over the same relation: the seeded variants must
        # join f_E twice with different generation windows, and the rank
        # stratification must not double-count the symmetric assignments.
        schema = Schema.from_relations([RelationSchema.of("E", "x:int", "y:int")])
        memory = Database.from_dicts(
            schema, {"E": [(1, 2), (2, 1), (2, 2), (3, 4)]},
        )
        program = DeltaProgram.from_text(
            """
            delta E(x, y) :- E(x, y), x = 1.
            delta E(y, z) :- E(y, z), delta E(x, y), delta E(z, w).
            """,
        )
        db = SQLiteDatabase.from_database(memory)
        semi, semi_db = self.closure_pair(db, program)
        mem_db = memory.clone()
        mem = run_closure(mem_db, program, engine="semi-naive")
        assert set(semi_db.all_deltas()) == set(mem_db.all_deltas())
        assert {a.signature() for a in semi.assignments} == {
            a.signature() for a in mem.assignments
        }
        assert semi.rounds == mem.rounds

    def test_tid_labels_preserved_through_sql_insert_path(self, schema: Schema):
        db = SQLiteDatabase(schema)
        db.insert(fact("R", 1, "a", tid="r1"))
        db.insert(fact("S", 1, tid="s1"))
        program = DeltaProgram.from_text(
            "delta R(x, y) :- R(x, y), S(x). delta S(x) :- S(x), delta R(x, y).",
        )
        semi, semi_db = self.closure_pair(db, program)
        # Body facts keep their labels through SELECT reconstruction.
        used = {
            (item.relation, item.values, item.tid)
            for assignment in semi.assignments
            for item in assignment.all_facts()
        }
        assert ("R", (1, "a"), "r1") in used
        assert ("S", (1,), "s1") in used
        # Facts installed by INSERT ... SELECT carry no label, and the
        # installed delta row for R(1, a) did not clobber anything.
        delta_r = {(item.values, item.tid) for item in semi_db.delta_facts("R")}
        assert delta_r == {((1, "a"), None)}

    def test_pre_recorded_delta_tid_not_clobbered_by_install(self, schema: Schema):
        # A fact already in the delta extent with a label must keep it even
        # when the closure re-derives (and re-installs) the same fact.
        db = SQLiteDatabase(schema)
        db.insert(fact("S", 1))
        db.insert(fact("R", 1, "a"))
        db.mark_deleted(fact("R", 1, "a", tid="kept"))
        program = DeltaProgram.from_text("delta R(x, y) :- R(x, y), S(x).")
        _, semi_db = self.closure_pair(db, program)
        delta_r = {(item.values, item.tid) for item in semi_db.delta_facts("R")}
        assert delta_r == {((1, "a"), "kept")}
