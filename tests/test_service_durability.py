"""Durability & correctness tests for the incremental maintenance layer.

ISSUE 8: the persistent ``AssignmentStore`` (warm restart of a file-backed
``RepairService`` from the ``_repro_assign*`` tables), the counting-based
deletion fast path (base-only support counts deciding delete batches without
the DRed detour), multi-tenant batch coalescing (``apply_many``), the
``max_rounds`` threading through the maintenance drivers, and the poisoned
service contract after a failed batch.
"""

from __future__ import annotations

import random

import pytest

from repro.datalog.context import EvalContext
from repro.datalog.delta import DeltaProgram
from repro.datalog.evaluation import run_closure
from repro.datalog.incremental import (
    AssignmentStore,
    PersistentAssignmentStore,
    make_assignment_store,
    program_fingerprint,
)
from repro.exceptions import EvaluationError, ServicePoisonedError
from repro.service import ENGINE_WARM, RepairService
from repro.storage.database import Database
from repro.storage.facts import Fact, fact
from repro.storage.schema import RelationSchema, Schema
from repro.storage.sqlite_backend import SQLiteDatabase

BACKENDS = ["memory", "sqlite", "sqlite-file"]


def cascade_schema():
    return Schema.from_relations(
        [
            RelationSchema.of("E", "x:int", "y:int"),
            RelationSchema.of("N", "x:int"),
            RelationSchema.of("S", "x:int"),
        ],
    )


def cascade_program():
    return DeltaProgram.from_text(
        """
        delta N(x) :- N(x), S(x).
        delta E(x, y) :- E(x, y), delta N(x).
        delta N(y) :- N(y), E(x, y), delta E(x, y).
        """,
    )


def cascade_facts():
    edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 2), (5, 6), (6, 5), (2, 6), (7, 8)]
    return (
        [fact("E", a, b) for a, b in edges]
        + [fact("N", i) for i in range(9)]
        + [fact("S", 0)]
    )


def redundant_schema():
    """Schema for the counting workload: two independent seed relations."""
    return Schema.from_relations(
        [
            RelationSchema.of("E", "x:int", "y:int"),
            RelationSchema.of("N", "x:int"),
            RelationSchema.of("S", "x:int"),
            RelationSchema.of("T", "x:int"),
        ],
    )


def redundant_program():
    """Two base-only derivations per seed: deleting one leaves a live count."""
    return DeltaProgram.from_text(
        """
        delta N(x) :- N(x), S(x).
        delta N(x) :- N(x), T(x).
        delta N(y) :- N(y), E(x, y), delta N(x).
        """,
    )


def redundant_facts(chain=4):
    return (
        [fact("E", i, i + 1) for i in range(chain)]
        + [fact("N", i) for i in range(chain + 1)]
        + [fact("S", 0), fact("T", 0)]
    )


def make_db(backend, schema, facts, tmp_path=None, tag=""):
    if backend == "memory":
        return Database.from_facts(schema, facts)
    path = ":memory:" if backend == "sqlite" else str(tmp_path / f"dur_{tag}.db")
    db = SQLiteDatabase(schema, path=path)
    db.insert_all(facts)
    return db


def labelled_active(db, schema):
    return {
        (item.relation, item.values, item.tid)
        for relation in schema.relations
        for item in db.candidates(relation, {})
    }


def labelled_deltas(db):
    return {(item.relation, item.values, item.tid) for item in db.all_deltas()}


def assert_matches_scratch(service, schema, program, backend, tmp_path, tag):
    """Maintained state == from-scratch fixpoint on the current base instance."""
    db = service.db
    active = sorted(
        (
            item
            for relation in schema.relations
            for item in db.candidates(relation, {})
        ),
        key=Fact.sort_key,
    )
    scratch = make_db(backend, schema, active, tmp_path, tag)
    result = run_closure(scratch, program, engine="naive")

    assert labelled_active(db, schema) == labelled_active(scratch, schema)
    assert labelled_deltas(db) == labelled_deltas(scratch)
    maintained_sigs = {a.signature() for a in service.assignments()}
    scratch_sigs = {a.signature() for a in result.assignments}
    assert maintained_sigs == scratch_sigs
    scratch_repair = {item for item in scratch.all_deltas() if scratch.has_active(item)}
    assert service.repair_deleted() == frozenset(scratch_repair)
    if isinstance(scratch, SQLiteDatabase):
        scratch.close()


# ---------------------------------------------------------------------------
# Warm restart (persistent AssignmentStore)
# ---------------------------------------------------------------------------


class TestWarmRestart:
    def reopen(self, path, schema, program, context=None, **kwargs):
        db = SQLiteDatabase(schema, path=path)
        return db, RepairService(db, program, context=context, **kwargs)

    def test_store_backend_selection(self, tmp_path):
        schema = cascade_schema()
        assert isinstance(
            make_assignment_store(Database(schema), []), AssignmentStore,
        )
        assert not isinstance(
            make_assignment_store(Database(schema), []), PersistentAssignmentStore,
        )
        db = SQLiteDatabase(schema)
        assert isinstance(
            make_assignment_store(db, []), PersistentAssignmentStore,
        )
        db.close()

    def test_warm_restart_differential(self, tmp_path):
        """File-backed service -> batches -> reopen -> more batches == scratch."""
        schema, program = cascade_schema(), cascade_program()
        path = str(tmp_path / "warm.db")
        db = SQLiteDatabase(schema, path=path)
        db.insert_all(cascade_facts())
        service = RepairService(db, program)
        service.apply(deletes=[fact("E", 2, 3)])
        service.apply(inserts=[fact("E", 8, 2), fact("N", 8)], deletes=[fact("E", 7, 8)])
        live_before = {a.signature() for a in service.assignments()}
        deltas_before = labelled_deltas(db)
        db.close()

        db2, warmed = self.reopen(path, schema, program)
        # The load fixpoint did not run: no closure engine, zero rounds.
        assert warmed.load_engine == ENGINE_WARM
        assert warmed.load_rounds == 0
        assert {a.signature() for a in warmed.assignments()} == live_before
        assert labelled_deltas(db2) == deltas_before
        # Point queries answer straight off the reloaded state.
        assert warmed.is_derivable(fact("N", 0))
        assert not warmed.is_derivable(fact("N", 3))
        assert_matches_scratch(warmed, schema, program, "sqlite-file", tmp_path, "w0")

        # Further batches maintain the reloaded store correctly.
        warmed.apply(inserts=[fact("E", 2, 3)])
        assert_matches_scratch(warmed, schema, program, "sqlite-file", tmp_path, "w1")
        warmed.apply(deletes=[fact("S", 0)])
        assert_matches_scratch(warmed, schema, program, "sqlite-file", tmp_path, "w2")
        db2.close()

    def test_warm_restart_replays_observers_in_record_order(self, tmp_path):
        schema, program = cascade_schema(), cascade_program()
        path = str(tmp_path / "replay.db")
        db = SQLiteDatabase(schema, path=path)
        db.insert_all(cascade_facts())
        context = EvalContext()
        first_stream = []
        context.add_observer(first_stream.append)
        service = RepairService(db, program, context=context)
        service.apply(deletes=[fact("E", 0, 1)])
        service.apply(inserts=[fact("E", 0, 1)])
        live = [a.signature() for a in service.assignments()]
        db.close()

        replay_context = EvalContext()
        replayed = []
        replay_context.add_observer(replayed.append)
        db2, warmed = self.reopen(path, schema, program, context=replay_context)
        replay_sigs = [a.signature() for a in replayed]
        # Exactly the live assignments, once each, in original record order
        # (persisted aids are monotone in record order).
        assert replay_sigs == live
        assert len(set(replay_sigs)) == len(replay_sigs)
        # New batches keep delivering exactly-once on top of the replay.
        warmed.apply(deletes=[fact("E", 0, 1)])
        warmed.apply(inserts=[fact("E", 0, 1)])
        later = [a.signature() for a in replayed[len(replay_sigs):]]
        assert later and len(set(later)) == len(later)
        db2.close()

    def test_dirty_store_refuses_warm_restart(self, tmp_path):
        schema, program = cascade_schema(), cascade_program()
        path = str(tmp_path / "dirty.db")
        db = SQLiteDatabase(schema, path=path)
        db.insert_all(cascade_facts())
        RepairService(db, program)
        # Simulate a torn batch: the dirty flag never got cleared.
        db.set_assignment_meta("dirty", "1")
        db.close()

        db2 = SQLiteDatabase(schema, path=path)
        with pytest.raises(EvaluationError, match="warm-restart"):
            RepairService(db2, program)
        db2.close()

    def test_program_mismatch_refuses_warm_restart(self, tmp_path):
        schema, program = cascade_schema(), cascade_program()
        path = str(tmp_path / "prog.db")
        db = SQLiteDatabase(schema, path=path)
        db.insert_all(cascade_facts())
        RepairService(db, program)
        db.close()

        other = DeltaProgram.from_text("delta N(x) :- N(x), S(x).")
        assert program_fingerprint(list(other)) != program_fingerprint(list(program))
        db2 = SQLiteDatabase(schema, path=path)
        with pytest.raises(EvaluationError, match="warm-restart"):
            RepairService(db2, other)
        db2.close()

    def test_cold_load_resets_stale_persisted_store(self, tmp_path):
        """An empty-delta database with leftover assign tables reloads cleanly."""
        schema, program = cascade_schema(), cascade_program()
        path = str(tmp_path / "stale.db")
        db = SQLiteDatabase(schema, path=path)
        db.insert_all(cascade_facts())
        service = RepairService(db, program)
        # Wipe the maintained closure but leave the assign tables behind.
        for item in list(db.all_deltas()):
            db.retract_delta(item)
        db.close()

        db2 = SQLiteDatabase(schema, path=path)
        reloaded = RepairService(db2, program)
        assert reloaded.load_engine != ENGINE_WARM
        assert len(reloaded.assignments()) == len(service.assignments())
        row = db2.execute("SELECT COUNT(*) FROM _repro_assign").fetchone()
        assert row[0] == len(reloaded.assignments())
        db2.close()


# ---------------------------------------------------------------------------
# Counting-based deletion
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", ["memory", "sqlite"])
class TestCountingDeletion:
    def test_fast_path_skips_dred(self, backend, tmp_path):
        schema, program = redundant_schema(), redundant_program()
        db = make_db(backend, schema, redundant_facts(), tmp_path, "cnt")
        service = RepairService(db, program)
        stats = service.stats
        # N(0) is seeded by both S(0) and T(0): deleting T(0) kills the
        # T-derivation but the S-derivation keeps a base-only support alive,
        # so the whole batch is decided by counts — no over-delete at all.
        result = service.apply(deletes=[fact("T", 0)])
        assert stats.counted_deletes == 1
        assert stats.dred_fallbacks == 0
        assert result.overdeleted == 0 and result.retracted == frozenset()
        assert service.is_derivable(fact("N", 4))
        assert_matches_scratch(service, schema, program, backend, tmp_path, "c0")
        # Deleting the last seed cannot be decided by counts: exact DRed runs
        # and retracts the whole cascade.
        service.apply(deletes=[fact("S", 0)])
        assert stats.dred_fallbacks == 1
        assert not service.is_derivable(fact("N", 0))
        assert_matches_scratch(service, schema, program, backend, tmp_path, "c1")
        if isinstance(db, SQLiteDatabase):
            db.close()

    def test_counting_disabled_forces_exact_dred(self, backend, tmp_path):
        schema, program = redundant_schema(), redundant_program()
        db = make_db(backend, schema, redundant_facts(), tmp_path, "nocnt")
        service = RepairService(db, program, counting=False)
        result = service.apply(deletes=[fact("T", 0)])
        assert service.stats.counted_deletes == 0
        assert service.stats.dred_fallbacks == 0
        # Exact DRed over-deletes and re-derives instead of skipping.
        assert result.overdeleted > 0 and result.rederived == result.overdeleted
        assert_matches_scratch(service, schema, program, backend, tmp_path, "n0")
        if isinstance(db, SQLiteDatabase):
            db.close()

    def test_randomized_counting_equivalence(self, backend, tmp_path):
        """counting=True and counting=False stay state-identical batch by batch."""
        schema, program = redundant_schema(), redundant_program()
        counted = RepairService(
            make_db(backend, schema, redundant_facts(6), tmp_path, "eqA"),
            program,
        )
        exact = RepairService(
            make_db(backend, schema, redundant_facts(6), tmp_path, "eqB"),
            program,
            counting=False,
        )
        rng = random.Random(11)
        for batch in range(14):
            inserts, deletes = [], []
            for _ in range(rng.randint(1, 3)):
                roll = rng.random()
                if roll < 0.4:
                    deletes.append(fact("T", rng.randint(0, 2)))
                elif roll < 0.6:
                    deletes.append(fact("E", rng.randint(0, 5), rng.randint(0, 6)))
                else:
                    deletes.append(fact("S", rng.randint(0, 2)))
            for _ in range(rng.randint(0, 2)):
                roll = rng.random()
                if roll < 0.5:
                    inserts.append(fact("T", rng.randint(0, 2)))
                else:
                    inserts.append(fact("S", rng.randint(0, 2)))
            counted.apply(inserts=inserts, deletes=deletes)
            exact.apply(inserts=inserts, deletes=deletes)
            assert labelled_deltas(counted.db) == labelled_deltas(exact.db)
            assert {a.signature() for a in counted.assignments()} == {
                a.signature() for a in exact.assignments()
            }
            assert counted.repair_deleted() == exact.repair_deleted()
            assert_matches_scratch(
                counted, schema, program, backend, tmp_path, f"eq{batch}",
            )
        # The redundant seeds make some batches decidable by counts alone.
        assert counted.stats.counted_deletes > 0
        assert exact.stats.counted_deletes == 0
        for service in (counted, exact):
            if isinstance(service.db, SQLiteDatabase):
                service.db.close()


# ---------------------------------------------------------------------------
# Multi-tenant batch coalescing
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", ["memory", "sqlite"])
class TestApplyMany:
    def make_service(self, backend, tmp_path, tag="many"):
        schema, program = cascade_schema(), cascade_program()
        db = make_db(backend, schema, cascade_facts(), tmp_path, tag)
        return RepairService(db, program), schema, program

    def test_coalesced_batches_match_scratch(self, backend, tmp_path):
        service, schema, program = self.make_service(backend, tmp_path)
        result = service.apply_many(
            [
                ([fact("E", 8, 2)], [fact("E", 2, 3)]),
                ([fact("N", 9), fact("E", 3, 9)], []),
                ([], [fact("E", 7, 8), fact("N", 7)]),
            ],
        )
        # One maintenance pass for all three tenants.
        assert service.stats.maintained_batches == 1
        assert {(f.relation, f.values) for f in result.inserted} == {
            ("E", (8, 2)),
            ("N", (9,)),
            ("E", (3, 9)),
        }
        assert {(f.relation, f.values) for f in result.deleted} == {
            ("E", (2, 3)),
            ("E", (7, 8)),
            ("N", (7,)),
        }
        assert_matches_scratch(service, schema, program, backend, tmp_path, "m0")
        if isinstance(service.db, SQLiteDatabase):
            service.db.close()

    def test_insert_wins_within_tenant_later_tenant_overrides(
        self, backend, tmp_path,
    ):
        service, schema, program = self.make_service(backend, tmp_path, "wins")
        # Tenant 1 deletes and inserts E(0,1): insert wins -> stays present.
        # Tenant 1 inserts E(1,2); tenant 2 deletes it: later tenant wins.
        service.apply_many(
            [
                ([fact("E", 0, 1)], [fact("E", 0, 1), fact("E", 1, 2)]),
                ([], [fact("E", 1, 2)]),
            ],
        )
        assert service.db.has_active(fact("E", 0, 1))
        assert not service.db.has_active(fact("E", 1, 2))
        assert_matches_scratch(service, schema, program, backend, tmp_path, "m1")
        if isinstance(service.db, SQLiteDatabase):
            service.db.close()

    def test_apply_many_equals_sequential_value_level(self, backend, tmp_path):
        coalesced, schema, program = self.make_service(backend, tmp_path, "seqA")
        sequential, _, _ = self.make_service(backend, tmp_path, "seqB")
        tenants = [
            ([fact("E", 8, 2)], [fact("E", 2, 3)]),
            ([], [fact("S", 0)]),
            ([fact("S", 0), fact("E", 2, 3)], []),
        ]
        coalesced.apply_many(tenants)
        for inserts, deletes in tenants:
            sequential.apply(inserts=inserts, deletes=deletes)
        assert {(r, v) for r, v, _ in labelled_deltas(coalesced.db)} == {
            (r, v) for r, v, _ in labelled_deltas(sequential.db)
        }
        assert coalesced.repair_deleted() == sequential.repair_deleted()
        for service in (coalesced, sequential):
            if isinstance(service.db, SQLiteDatabase):
                service.db.close()


# ---------------------------------------------------------------------------
# max_rounds threading + poisoned service
# ---------------------------------------------------------------------------


def chain_batch(length):
    """An insert batch whose propagation walks one chain hop per round."""
    inserts = [fact("E", i, i + 1) for i in range(length)]
    inserts += [fact("N", i) for i in range(1, length + 1)]
    return inserts


@pytest.mark.parametrize("backend", ["memory", "sqlite"])
class TestMaxRoundsAndPoisoning:
    def make_service(self, backend, tmp_path, **kwargs):
        schema, program = cascade_schema(), cascade_program()
        facts = [fact("N", 0), fact("S", 0)]
        db = make_db(backend, schema, facts, tmp_path, "cap")
        return RepairService(db, program, **kwargs), schema, program

    def test_max_rounds_caps_maintenance_batches(self, backend, tmp_path):
        service, _, _ = self.make_service(backend, tmp_path, max_rounds=3)
        with pytest.raises(EvaluationError, match="did not converge within 3"):
            service.apply(inserts=chain_batch(10))

    def test_uncapped_service_absorbs_the_same_batch(self, backend, tmp_path):
        service, schema, program = self.make_service(backend, tmp_path)
        result = service.apply(inserts=chain_batch(10))
        assert result.rounds > 3
        assert service.is_derivable(fact("N", 10))

    def test_failed_batch_poisons_the_service(self, backend, tmp_path):
        service, _, _ = self.make_service(backend, tmp_path, max_rounds=3)
        assert not service.poisoned
        with pytest.raises(EvaluationError):
            service.apply(inserts=chain_batch(10))
        assert service.poisoned
        # Every later entry point raises the dedicated error, which names
        # both recovery routes.
        for call in (
            lambda: service.apply(inserts=[fact("N", 50)]),
            lambda: service.apply_many([([fact("N", 50)], [])]),
            lambda: service.is_derivable(fact("N", 0)),
            lambda: service.in_repair(fact("N", 0)),
            lambda: service.repair_deleted(),
        ):
            with pytest.raises(ServicePoisonedError, match="re-derive"):
                call()


def test_poisoned_file_store_refuses_warm_restart(tmp_path):
    schema, program = cascade_schema(), cascade_program()
    path = str(tmp_path / "poison.db")
    db = SQLiteDatabase(schema, path=path)
    db.insert_all([fact("N", 0), fact("S", 0)])
    service = RepairService(db, program, max_rounds=3)
    with pytest.raises(EvaluationError):
        service.apply(inserts=chain_batch(10))
    assert service.poisoned
    db.close()
    # The dirty flag persisted: the torn on-disk state is not trusted.
    db2 = SQLiteDatabase(schema, path=path)
    with pytest.raises(EvaluationError, match="warm-restart"):
        RepairService(db2, program)
    db2.close()


def test_concurrent_services_share_pool_without_corruption(tmp_path):
    """Two sharded-maintenance services at *different* ``workers=`` counts
    run batches concurrently: the shared worker pool's lease accounting must
    survive the mid-run pool growth, and each service's maintained state must
    still equal a from-scratch fixpoint."""
    from repro.datalog import sharded

    def drive(backend, shards, workers, tag, errors, barrier):
        try:
            schema, program = cascade_schema(), cascade_program()
            # SQLite primary connections are thread-bound: build the database
            # inside the thread that maintains and checks it.
            db = make_db(backend, schema, cascade_facts(), tmp_path, tag)
            context = EvalContext(
                shards=shards, workers=workers, shard_maintenance=True,
            )
            service = RepairService(
                db, program, engine="semi-naive", context=context,
            )
            rng = random.Random(41 + shards)
            barrier.wait(timeout=30)
            for step in range(6):
                inserts = [
                    fact("E", rng.randint(0, 8), rng.randint(0, 8))
                    for _ in range(rng.randint(1, 3))
                ]
                deletes = [
                    fact("E", rng.randint(0, 8), rng.randint(0, 8))
                    for _ in range(rng.randint(1, 3))
                ]
                service.apply(inserts=inserts, deletes=deletes)
                assert_matches_scratch(
                    service, schema, program, backend, tmp_path, f"{tag}{step}",
                )
            if isinstance(db, SQLiteDatabase):
                db.close()
        except BaseException as error:  # noqa: BLE001 - surfaced in main thread
            errors.append((tag, error))

    import threading

    errors = []
    barrier = threading.Barrier(2)
    threads = [
        threading.Thread(
            target=drive, args=("memory", 3, 2, "conc_a", errors, barrier)
        ),
        threading.Thread(
            target=drive, args=("sqlite-file", 5, 3, "conc_b", errors, barrier)
        ),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
        assert not thread.is_alive()
    assert not errors, errors
    # Every wave returned its lease: no pool is left leased once both
    # services are idle, and the live pool grew to the larger workers count.
    with sharded._pool_lock:
        assert not sharded._pool_leases
