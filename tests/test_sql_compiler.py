"""Unit tests for the SQL rule compiler (repro.datalog.sql_compiler)."""

import pytest

from repro.datalog.delta import DeltaProgram
from repro.datalog.evaluation import find_assignments
from repro.datalog.parser import parse_rule
from repro.datalog.sql_compiler import compile_rule, find_assignments_sql
from repro.exceptions import EvaluationError
from repro.storage.database import Database
from repro.storage.facts import fact
from repro.storage.schema import RelationSchema, Schema
from repro.storage.sqlite_backend import SQLiteDatabase


@pytest.fixture
def schema() -> Schema:
    return Schema.from_relations(
        [
            RelationSchema.of("R", "x:int", "y:str"),
            RelationSchema.of("S", "x:int", "z:int"),
        ],
    )


@pytest.fixture
def db(schema: Schema) -> SQLiteDatabase:
    built = SQLiteDatabase(schema)
    built.insert_all(
        [fact("R", 1, "a"), fact("R", 2, "b"), fact("S", 1, 10), fact("S", 1, 20)],
    )
    return built


class TestCompileRule:
    def test_single_query_in_normal_mode(self):
        rule = parse_rule("delta R(x, y) :- R(x, y), delta S(x, z).")
        compiled = compile_rule(rule)
        assert len(compiled) == 1
        assert "r_R" in compiled[0].sql and "d_S" in compiled[0].sql

    def test_hypothetical_mode_enumerates_sources(self):
        rule = parse_rule("delta R(x, y) :- R(x, y), delta S(x, z), delta R(x, y).")
        compiled = compile_rule(rule, hypothetical_deltas=True)
        assert len(compiled) == 4  # two delta atoms, two sources each

    def test_join_condition_emitted_for_shared_variable(self):
        rule = parse_rule("delta R(x, y) :- R(x, y), S(x, z).")
        sql = compile_rule(rule)[0].sql
        assert "a0.c0 = " not in sql.split("WHERE")[0]
        assert "a1.c0 = a0.c0" in sql or "a0.c0 = a1.c0" in sql

    def test_constants_become_parameters(self):
        rule = parse_rule("delta R(x, 'b') :- R(x, 'b'), x < 5.")
        compiled = compile_rule(rule)[0]
        assert compiled.params == ("b", 5)
        assert "?" in compiled.sql

    def test_comparison_with_unknown_variable_raises(self):
        rule = parse_rule("delta R(x, y) :- R(x, y), w > 3.")
        with pytest.raises(EvaluationError):
            compile_rule(rule)


class TestFindAssignmentsSQL:
    def test_matches_in_memory_evaluator(self, schema, db):
        rule = parse_rule("delta R(x, y) :- R(x, y), S(x, z), z > 15.")
        memory = Database.from_dicts(
            schema, {"R": [(1, "a"), (2, "b")], "S": [(1, 10), (1, 20)]},
        )
        sql_results = {a.signature() for a in find_assignments_sql(db, rule)}
        mem_results = {a.signature() for a in find_assignments(memory, rule)}
        assert sql_results == mem_results
        assert len(sql_results) == 1

    def test_delta_atoms_read_delta_tables(self, db):
        rule = parse_rule("delta R(x, y) :- R(x, y), delta S(x, z).")
        assert find_assignments_sql(db, rule) == []
        db.delete(fact("S", 1, 10))
        derived = {a.derived for a in find_assignments_sql(db, rule)}
        assert derived == {fact("R", 1, "a")}

    def test_hypothetical_mode_unions_active_and_delta(self, db):
        rule = parse_rule("delta R(x, y) :- R(x, y), delta S(x, z).")
        derived = {
            a.derived
            for a in find_assignments_sql(db, rule, hypothetical_deltas=True)
        }
        assert derived == {fact("R", 1, "a")}

    def test_dispatch_through_find_assignments(self, db):
        rule = parse_rule("delta R(x, y) :- R(x, y), S(x, z).")
        via_dispatch = {a.signature() for a in find_assignments(db, rule)}
        direct = {a.signature() for a in find_assignments_sql(db, rule)}
        assert via_dispatch == direct

    def test_repeated_variable_filtered(self, schema):
        db = SQLiteDatabase(schema)
        db.insert_all([fact("S", 1, 1), fact("S", 1, 2)])
        rule = parse_rule("delta S(x, x) :- S(x, x).")
        derived = {a.derived for a in find_assignments_sql(db, rule)}
        assert derived == {fact("S", 1, 1)}

    def test_full_program_closure_matches_memory(self, schema):
        program = DeltaProgram.from_text(
            "delta S(x, z) :- S(x, z), z > 15. delta R(x, y) :- R(x, y), delta S(x, z).",
        )
        memory = Database.from_dicts(
            schema, {"R": [(1, "a"), (2, "b")], "S": [(1, 10), (1, 20)]},
        )
        sqlite = SQLiteDatabase.from_database(memory)
        from repro import RepairEngine, Semantics

        for semantics in (Semantics.END, Semantics.STAGE):
            assert (
                RepairEngine(memory, program).repair(semantics).deleted
                == RepairEngine(sqlite, program).repair(semantics).deleted
            )
