"""Unit tests for the shared utilities (timing, rng, text tables)."""

import time

from repro.utils.rng import make_rng, stable_hash
from repro.utils.text import format_percentages, format_table
from repro.utils.timing import PhaseTimer, Stopwatch


class TestStopwatch:
    def test_accumulates_elapsed_time(self):
        watch = Stopwatch()
        watch.start()
        time.sleep(0.01)
        first = watch.stop()
        assert first > 0.0
        watch.start()
        assert watch.stop() >= first

    def test_reset(self):
        watch = Stopwatch()
        watch.start()
        watch.stop()
        watch.reset()
        assert watch.elapsed == 0.0

    def test_elapsed_while_running(self):
        watch = Stopwatch()
        watch.start()
        assert watch.elapsed >= 0.0


class TestPhaseTimer:
    def test_phase_context_manager(self):
        timer = PhaseTimer()
        with timer.phase("eval"):
            time.sleep(0.005)
        assert timer.get("eval") > 0.0
        assert timer.total == timer.get("eval")

    def test_add_and_merge(self):
        first = PhaseTimer()
        first.add("solve", 1.0)
        second = PhaseTimer()
        second.add("solve", 0.5)
        second.add("eval", 2.0)
        first.merge(second)
        assert first.get("solve") == 1.5
        assert first.get("eval") == 2.0

    def test_fractions_sum_to_one(self):
        timer = PhaseTimer()
        timer.add("a", 1.0)
        timer.add("b", 3.0)
        fractions = timer.fractions()
        assert abs(sum(fractions.values()) - 1.0) < 1e-9
        assert fractions["b"] == 0.75

    def test_fractions_of_empty_timer(self):
        assert PhaseTimer().fractions() == {}
        assert PhaseTimer().get("missing") == 0.0


class TestRng:
    def test_same_seed_same_stream(self):
        assert make_rng(7, "x").random() == make_rng(7, "x").random()

    def test_namespaces_decorrelate_streams(self):
        assert make_rng(7, "x").random() != make_rng(7, "y").random()

    def test_none_seed_gives_unseeded_rng(self):
        assert isinstance(make_rng(None).random(), float)

    def test_stable_hash_is_deterministic_and_nonnegative(self):
        assert stable_hash("a", 1) == stable_hash("a", 1)
        assert stable_hash("a", 1) != stable_hash("a", 2)
        assert stable_hash("anything") >= 0


class TestTextTables:
    def test_format_table_alignment_and_title(self):
        text = format_table(["name", "count"], [["alpha", 1], ["b", 22]], title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "count" in lines[1]
        assert lines[2].count("-") > 5
        assert "alpha" in lines[3]

    def test_format_table_stringifies_floats_and_bools(self):
        text = format_table(["a", "b"], [[1.23456, True]])
        assert "1.235" in text and "yes" in text

    def test_format_percentages(self):
        text = format_percentages({"eval": 0.5, "solve": 0.25})
        assert "eval=50.0%" in text and "solve=25.0%" in text
