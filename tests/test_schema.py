"""Unit tests for repro.storage.schema."""

import pytest

from repro.exceptions import SchemaError, UnknownRelationError
from repro.storage.schema import Attribute, RelationSchema, Schema


class TestAttribute:
    def test_default_type_is_str(self):
        assert Attribute("name").dtype == "str"

    def test_invalid_type_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("name", "blob")

    def test_invalid_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("bad name", "str")

    def test_int_validation(self):
        attribute = Attribute("aid", "int")
        assert attribute.validate(3)
        assert not attribute.validate("3")
        assert not attribute.validate(True)

    def test_float_validation_accepts_int(self):
        attribute = Attribute("score", "float")
        assert attribute.validate(1.5)
        assert attribute.validate(2)

    def test_str_validation(self):
        attribute = Attribute("name", "str")
        assert attribute.validate("abc")
        assert not attribute.validate(5)


class TestRelationSchema:
    def test_of_parses_typed_specs(self):
        relation = RelationSchema.of("Author", "aid:int", "name")
        assert relation.arity == 2
        assert relation.attribute_names == ("aid", "name")
        assert relation.attributes[0].dtype == "int"
        assert relation.attributes[1].dtype == "str"

    def test_duplicate_attribute_names_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema.of("R", "x", "x")

    def test_empty_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ())

    def test_position_of(self):
        relation = RelationSchema.of("Author", "aid:int", "name", "oid:int")
        assert relation.position_of("oid") == 2
        with pytest.raises(SchemaError):
            relation.position_of("missing")

    def test_validate_values_arity(self):
        relation = RelationSchema.of("R", "x:int", "y:str")
        relation.validate_values((1, "a"))
        with pytest.raises(SchemaError):
            relation.validate_values((1,))

    def test_validate_values_typed(self):
        relation = RelationSchema.of("R", "x:int", "y:str")
        with pytest.raises(SchemaError):
            relation.validate_values(("1", "a"), typed=True)


class TestSchema:
    def test_from_arities(self):
        schema = Schema.from_arities({"R": 2, "S": 3})
        assert schema.arity("R") == 2
        assert schema.arity("S") == 3
        assert set(schema.names()) == {"R", "S"}

    def test_unknown_relation_raises(self):
        schema = Schema.from_arities({"R": 1})
        with pytest.raises(UnknownRelationError):
            schema.relation("T")

    def test_duplicate_relation_rejected(self):
        schema = Schema.from_arities({"R": 1})
        with pytest.raises(SchemaError):
            schema.add(RelationSchema.of("R", "x"))

    def test_contains_iter_len(self):
        schema = Schema.from_arities({"R": 1, "S": 2})
        assert "R" in schema and "T" not in schema
        assert len(schema) == 2
        assert {relation.name for relation in schema} == {"R", "S"}

    def test_copy_is_independent(self):
        schema = Schema.from_arities({"R": 1})
        copy = schema.copy()
        copy.add(RelationSchema.of("S", "x"))
        assert "S" not in schema

    def test_mismatched_key_rejected(self):
        with pytest.raises(SchemaError):
            Schema({"X": RelationSchema.of("Y", "a")})
