"""Unit tests for step semantics (greedy Algorithm 2 and the exhaustive search)."""

import pytest

from repro.core.semantics import Semantics, stage_semantics, step_semantics
from repro.core.stability import is_stabilizing_set
from repro.datalog.delta import DeltaProgram
from repro.exceptions import SemanticsError
from repro.storage.database import Database
from repro.storage.facts import fact
from repro.storage.schema import Schema

from tests.conftest import PAPER_PROGRAM_TEXT, make_paper_database


def small_choice_instance():
    """Proposition 3.20-4 part 1: step can fire one rule and block the other."""
    schema = Schema.from_arities({"R1": 1, "R2": 1})
    db = Database.from_dicts(
        schema, {"R1": [("a",)], "R2": [(f"b{i}",) for i in range(3)]},
    )
    program = DeltaProgram.from_text(
        """
        delta R1(x) :- R1(x), R2(y).
        delta R2(y) :- R1(x), R2(y).
        """,
    )
    return db, program


class TestGreedyStep:
    def test_paper_example_matches_example_5_2(self):
        db = make_paper_database()
        program = DeltaProgram.from_text(PAPER_PROGRAM_TEXT)
        result = step_semantics(db, program)
        assert result.deleted == frozenset(
            {
                fact("Grant", 2, "ERC"),
                fact("Author", 4, "Marge"),
                fact("Author", 5, "Homer"),
                fact("Writes", 4, 6),
                fact("Writes", 5, 7),
            },
        )
        assert result.metadata["method"] == "greedy"

    def test_result_is_stabilizing(self):
        db = make_paper_database()
        program = DeltaProgram.from_text(PAPER_PROGRAM_TEXT)
        result = step_semantics(db, program)
        assert is_stabilizing_set(db, program, result.deleted)

    def test_metadata_reports_provenance_size(self):
        db = make_paper_database()
        program = DeltaProgram.from_text(PAPER_PROGRAM_TEXT)
        result = step_semantics(db, program)
        assert result.metadata["provenance_assignments"] == 8
        assert result.metadata["pruned_delta_tuples"] == 3  # p1, p2 and c

    def test_timer_has_three_phases(self):
        db = make_paper_database()
        program = DeltaProgram.from_text(PAPER_PROGRAM_TEXT)
        timer_phases = step_semantics(db, program).timer.phases
        assert set(timer_phases) == {"eval", "process_prov", "traverse"}

    def test_greedy_beats_stage_on_same_body_rules(self):
        db, program = small_choice_instance()
        step = step_semantics(db, program)
        stage = stage_semantics(db, program)
        assert step.size < stage.size
        assert step.size == 1

    def test_stable_database_returns_empty(self):
        schema = Schema.from_arities({"R": 1, "S": 1})
        db = Database.from_dicts(schema, {"R": [(1,)], "S": []})
        program = DeltaProgram.from_text("delta R(x) :- R(x), S(x).")
        assert step_semantics(db, program).size == 0

    def test_unknown_method_rejected(self):
        db, program = small_choice_instance()
        with pytest.raises(SemanticsError):
            step_semantics(db, program, method="magic")

    def test_original_database_untouched(self):
        db = make_paper_database()
        program = DeltaProgram.from_text(PAPER_PROGRAM_TEXT)
        step_semantics(db, program)
        assert db.count_delta() == 0


class TestExhaustiveStep:
    def test_finds_minimum_firing_sequence(self):
        db, program = small_choice_instance()
        result = step_semantics(db, program, method="exhaustive")
        assert result.size == 1
        assert result.metadata["method"] == "exhaustive"

    def test_matches_greedy_on_paper_example(self):
        db = make_paper_database()
        program = DeltaProgram.from_text(PAPER_PROGRAM_TEXT)
        exact = step_semantics(db, program, method="exhaustive")
        greedy = step_semantics(db, program, method="greedy")
        assert exact.size == 5
        assert greedy.size == exact.size

    def test_greedy_never_beats_exhaustive(self):
        """The exhaustive search is the ground truth; greedy is an upper bound."""
        schema = Schema.from_arities({"A": 1, "B": 1, "C": 1})
        db = Database.from_dicts(
            schema, {"A": [(1,), (2,)], "B": [(1,), (2,)], "C": [(1,)]},
        )
        program = DeltaProgram.from_text(
            """
            delta A(x) :- A(x), B(x).
            delta B(x) :- A(x), B(x).
            delta C(x) :- C(x), delta A(x).
            """,
        )
        exact = step_semantics(db, program, method="exhaustive")
        greedy = step_semantics(db, program, method="greedy")
        assert exact.size <= greedy.size
        assert is_stabilizing_set(db, program, greedy.deleted)

    def test_state_budget_guard(self):
        db = make_paper_database()
        program = DeltaProgram.from_text(PAPER_PROGRAM_TEXT)
        with pytest.raises(SemanticsError):
            step_semantics(db, program, method="exhaustive", max_states=2)

    def test_step_subset_of_end_on_paper_example(self):
        from repro.core.semantics import end_semantics

        db = make_paper_database()
        program = DeltaProgram.from_text(PAPER_PROGRAM_TEXT)
        step = step_semantics(db, program)
        end = end_semantics(db, program)
        assert step.deleted <= end.deleted

    def test_semantics_tag(self):
        db, program = small_choice_instance()
        assert step_semantics(db, program).semantics is Semantics.STEP
