"""Unit tests for Boolean provenance (repro.provenance.boolean)."""

import pytest

from repro.datalog.delta import DeltaProgram
from repro.provenance.boolean import Clause, build_boolean_provenance
from repro.storage.database import Database
from repro.storage.facts import fact
from repro.storage.schema import Schema

from tests.conftest import PAPER_PROGRAM_TEXT, make_paper_database


class TestClause:
    def test_satisfied_by_deleting_a_positive(self):
        clause = Clause(positives=frozenset({fact("R", 1)}), negatives=frozenset())
        assert clause.satisfied_by([fact("R", 1)])
        assert not clause.satisfied_by([])

    def test_satisfied_by_keeping_a_negative(self):
        clause = Clause(
            positives=frozenset({fact("R", 1)}), negatives=frozenset({fact("S", 2)}),
        )
        assert clause.satisfied_by([])  # S(2) is kept
        assert not clause.satisfied_by([fact("S", 2)])
        assert clause.satisfied_by([fact("S", 2), fact("R", 1)])

    def test_variables_and_len(self):
        clause = Clause(
            positives=frozenset({fact("R", 1)}), negatives=frozenset({fact("S", 2)}),
        )
        assert clause.variables() == {fact("R", 1), fact("S", 2)}
        assert len(clause) == 2
        assert not clause.is_empty()

    def test_str_rendering(self):
        clause = Clause(positives=frozenset({fact("R", 1, tid="r1")}), negatives=frozenset())
        assert "del(" in str(clause)


class TestBuildBooleanProvenance:
    def test_simple_dc_like_program(self):
        schema = Schema.from_arities({"R": 1, "S": 1})
        db = Database.from_dicts(schema, {"R": [(1,), (2,)], "S": [(1,)]})
        program = DeltaProgram.from_text("delta R(x) :- R(x), S(x).")
        provenance = build_boolean_provenance(db, program)
        assert provenance.clause_count() == 1
        clause = provenance.clauses[0]
        assert clause.positives == {fact("R", 1), fact("S", 1)}
        assert clause.negatives == frozenset()

    def test_delta_body_atoms_become_negatives(self):
        schema = Schema.from_arities({"R": 1, "S": 1})
        db = Database.from_dicts(schema, {"R": [(1,)], "S": [(1,)]})
        program = DeltaProgram.from_text("delta R(x) :- R(x), delta S(x).")
        provenance = build_boolean_provenance(db, program)
        clause = provenance.clauses[0]
        assert clause.positives == {fact("R", 1)}
        assert clause.negatives == {fact("S", 1)}

    def test_already_deleted_delta_facts_drop_out(self):
        schema = Schema.from_arities({"R": 1, "S": 1})
        db = Database.from_dicts(schema, {"R": [(1,)], "S": [(1,)]})
        db.delete(fact("S", 1))
        program = DeltaProgram.from_text("delta R(x) :- R(x), delta S(x).")
        provenance = build_boolean_provenance(db, program)
        clause = provenance.clauses[0]
        assert clause.negatives == frozenset()
        assert clause.positives == {fact("R", 1)}

    def test_paper_example_formula(self, paper_program):
        """Example 5.1 on the running example.

        The paper's rendered formula has six clauses because it merges the
        identical bodies of rules (2)/(3) and omits assignments through
        non-derivable delta tuples (the NSF grant); our construction encodes
        Definition 3.3 exactly and therefore keeps all nine hypothetical
        assignments.  The minimum model is the same either way.
        """
        db = make_paper_database()
        provenance = build_boolean_provenance(db, paper_program)
        assert provenance.clause_count() == 9
        # The minimum model of the paper deletes {g2, ag2, ag3}.
        deleted = [fact("Grant", 2, "ERC"), fact("AuthGrant", 4, 2), fact("AuthGrant", 5, 2)]
        assert provenance.is_voided_by(deleted)
        assert not provenance.is_voided_by([])
        assert provenance.violated_clauses([])  # something is violated initially

    def test_derivable_tuples_cover_all_heads(self, paper_program):
        provenance = build_boolean_provenance(make_paper_database(), paper_program)
        relations = {item.relation for item in provenance.derivable_tuples()}
        assert relations == {"Grant", "Author", "Pub", "Writes", "Cite"}

    def test_describe_is_textual(self, paper_program):
        provenance = build_boolean_provenance(make_paper_database(), paper_program)
        text = provenance.describe()
        assert "clauses" in text
        assert "Δ" in text


@pytest.fixture
def paper_program():
    return DeltaProgram.from_text(PAPER_PROGRAM_TEXT)
