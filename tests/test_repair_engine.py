"""Unit tests for the public RepairEngine API, stability helpers, and containment."""

import pytest

from repro import (
    Database,
    DeltaProgram,
    RepairEngine,
    Schema,
    Semantics,
    compare_results,
    fact,
    is_stable,
    verify_repair,
)
from repro.core.containment import ContainmentReport
from repro.core.semantics import compute_repair
from repro.core.stability import violating_assignments
from repro.exceptions import ProgramValidationError
from repro.utils.timing import PhaseTimer

from tests.conftest import PAPER_PROGRAM_TEXT, make_paper_database


@pytest.fixture
def simple_setup():
    schema = Schema.from_arities({"R": 1, "S": 1})
    db = Database.from_dicts(schema, {"R": [(1,), (2,)], "S": [(1,)]})
    program = DeltaProgram.from_text("delta R(x) :- R(x), S(x).")
    return db, program


class TestRepairEngine:
    def test_repair_accepts_string_semantics(self, simple_setup):
        db, program = simple_setup
        engine = RepairEngine(db, program)
        assert engine.repair("end").size == 1
        assert engine.repair("ind").semantics is Semantics.INDEPENDENT

    def test_unknown_semantics_string_rejected(self, simple_setup):
        db, program = simple_setup
        with pytest.raises(ValueError):
            RepairEngine(db, program).repair("magic")

    def test_schema_validation_on_construction(self, simple_setup):
        db, _ = simple_setup
        bad_program = DeltaProgram.from_text("delta T(x) :- T(x).")
        with pytest.raises(ProgramValidationError):
            RepairEngine(db, bad_program)
        RepairEngine(db, bad_program, validate_schema=False)

    def test_accepts_plain_rule_iterables(self, simple_setup):
        db, program = simple_setup
        engine = RepairEngine(db, list(program.rules))
        assert engine.repair(Semantics.STAGE).size == 1

    def test_repair_all_returns_all_four(self, simple_setup):
        db, program = simple_setup
        results = RepairEngine(db, program).repair_all()
        assert set(results) == set(Semantics)

    def test_repair_all_subset(self, simple_setup):
        db, program = simple_setup
        results = RepairEngine(db, program).repair_all(semantics=["end", "stage"])
        assert set(results) == {Semantics.END, Semantics.STAGE}

    def test_compare_produces_report(self, simple_setup):
        db, program = simple_setup
        report = RepairEngine(db, program).compare("simple")
        assert isinstance(report, ContainmentReport)
        assert report.invariants_hold()
        assert report.name == "simple"

    def test_is_stable_and_stabilizing(self, simple_setup):
        db, program = simple_setup
        engine = RepairEngine(db, program)
        assert not engine.is_stable()
        assert engine.is_stabilizing_set({fact("S", 1)})
        assert not engine.is_stabilizing_set(set())

    def test_with_deletion_requests(self):
        """Seeding repairs on a stable database (Section 3.6's second mode)."""
        db = make_paper_database()
        cascade_only = DeltaProgram.from_text(
            """
            delta Author(a, n) :- Author(a, n), AuthGrant(a, g), delta Grant(g, gn).
            delta Writes(a, p) :- Pub(p, t), Writes(a, p), delta Author(a, n).
            """,
        )
        engine = RepairEngine(db, cascade_only)
        assert engine.is_stable()
        seeded = engine.with_deletion_requests([fact("Grant", 2, "ERC")])
        result = seeded.repair(Semantics.STAGE)
        assert fact("Grant", 2, "ERC") in result.deleted
        assert result.size == 5

    def test_verify_flag_checks_results(self, simple_setup):
        db, program = simple_setup
        result = RepairEngine(db, program, verify=True).repair(Semantics.STEP)
        assert verify_repair(db, program, result)

    def test_engine_repr(self, simple_setup):
        db, program = simple_setup
        assert "rules=1" in repr(RepairEngine(db, program))

    def test_compute_repair_dispatch(self, simple_setup):
        db, program = simple_setup
        result = compute_repair(db, program, "step", method="exhaustive")
        assert result.metadata["method"] == "exhaustive"


class TestRepairResult:
    def test_result_reporting_helpers(self):
        engine = RepairEngine(
            make_paper_database(), DeltaProgram.from_text(PAPER_PROGRAM_TEXT),
        )
        result = engine.repair(Semantics.STAGE)
        by_relation = result.deleted_by_relation()
        assert by_relation["Author"] == {
            fact("Author", 4, "Marge"),
            fact("Author", 5, "Homer"),
        }
        assert "stage" in result.summary()
        assert result.runtime >= 0.0

    def test_contains_helper(self, simple_setup):
        db, program = simple_setup
        results = RepairEngine(db, program).repair_all()
        assert results[Semantics.END].contains(results[Semantics.STAGE])


class TestStabilityHelpers:
    def test_violating_assignments_lists_each_violation(self, simple_setup):
        db, program = simple_setup
        found = violating_assignments(db, program)
        assert len(found) == 1
        assert found[0].derived == fact("R", 1)

    def test_is_stable_after_repair(self, simple_setup):
        db, program = simple_setup
        result = RepairEngine(db, program).repair(Semantics.END)
        assert is_stable(result.repaired, program)

    def test_verify_repair_detects_tampering(self, simple_setup):
        db, program = simple_setup
        result = RepairEngine(db, program).repair(Semantics.END)
        tampered = type(result)(
            semantics=result.semantics,
            deleted=frozenset(),
            repaired=db.clone(),
            timer=PhaseTimer(),
        )
        assert not verify_repair(db, program, tampered)


class TestContainmentReport:
    def test_missing_semantics_rejected(self, simple_setup):
        db, program = simple_setup
        partial = RepairEngine(db, program).repair_all(semantics=["end"])
        with pytest.raises(ValueError):
            compare_results(partial)

    def test_table3_row_and_describe(self, simple_setup):
        db, program = simple_setup
        report = RepairEngine(db, program).compare("p")
        name, step_eq, ind_stage, ind_step = report.table3_row()
        assert name == "p"
        assert isinstance(step_eq, bool)
        assert "|End|" in report.describe()
        assert report.size_map["end"] == 1
