"""Tests for the vertex-cover reduction of Proposition 4.2."""

import networkx as nx
import pytest

from repro import RepairEngine, Semantics
from repro.complexity import (
    cover_from_result,
    independent_instance_from_graph,
    minimum_vertex_cover_bruteforce,
    random_graph,
    step_instance_from_graph,
)
from repro.complexity.vertex_cover import is_vertex_cover


def triangle() -> "nx.Graph":
    graph = nx.Graph()
    graph.add_edges_from([(1, 2), (2, 3), (1, 3)])
    return graph


def star(leaves: int = 4) -> "nx.Graph":
    graph = nx.Graph()
    graph.add_edges_from([(0, leaf) for leaf in range(1, leaves + 1)])
    return graph


class TestReductionConstruction:
    def test_database_shape(self):
        db, program = independent_instance_from_graph(triangle())
        assert db.count_active("VC") == 3
        assert db.count_active("E") == 6  # both directions per edge
        assert len(program) == 3

    def test_step_instance_has_single_rule(self):
        _db, program = step_instance_from_graph(triangle())
        assert len(program) == 1

    def test_random_graph_is_seeded(self):
        first = random_graph(8, 0.4, seed=3)
        second = random_graph(8, 0.4, seed=3)
        assert set(first.edges) == set(second.edges)


class TestBruteForceCover:
    def test_triangle_needs_two(self):
        cover = minimum_vertex_cover_bruteforce(triangle())
        assert len(cover) == 2
        assert is_vertex_cover(triangle(), cover)

    def test_star_needs_one(self):
        cover = minimum_vertex_cover_bruteforce(star())
        assert cover == frozenset({0})

    def test_size_guard(self):
        with pytest.raises(ValueError):
            minimum_vertex_cover_bruteforce(random_graph(30, 0.5, seed=1), max_nodes=10)


class TestReductionCorrectness:
    @pytest.mark.parametrize("builder", [triangle, star])
    def test_independent_semantics_finds_minimum_cover(self, builder):
        graph = builder()
        db, program = independent_instance_from_graph(graph)
        result = RepairEngine(db, program).repair(Semantics.INDEPENDENT)
        cover = cover_from_result(result)
        assert is_vertex_cover(graph, cover)
        assert len(cover) == len(minimum_vertex_cover_bruteforce(graph))
        # Rules (2)/(3) make edge deletions pointless: only VC tuples are deleted.
        assert all(item.relation == "VC" for item in result.deleted)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_independent_matches_bruteforce_on_random_graphs(self, seed):
        graph = random_graph(7, 0.35, seed=seed)
        db, program = independent_instance_from_graph(graph)
        result = RepairEngine(db, program).repair(Semantics.INDEPENDENT)
        assert len(cover_from_result(result)) == len(
            minimum_vertex_cover_bruteforce(graph),
        )

    def test_exhaustive_step_finds_minimum_cover_on_triangle(self):
        graph = triangle()
        db, program = step_instance_from_graph(graph)
        result = RepairEngine(db, program).repair(Semantics.STEP, method="exhaustive")
        cover = cover_from_result(result)
        assert is_vertex_cover(graph, cover)
        assert len(cover) == 2

    def test_greedy_step_returns_a_cover(self):
        graph = random_graph(8, 0.3, seed=5)
        db, program = step_instance_from_graph(graph)
        result = RepairEngine(db, program).repair(Semantics.STEP)
        assert is_vertex_cover(graph, cover_from_result(result))
