"""Shared randomized program/instance generators for the differential suites.

Both differential suites draw from this module so they exercise the same
family of join shapes, cascade depths and comparison mixes:

* ``tests/test_seminaive_differential.py`` — semi-naive engine vs the naive
  oracle on the in-memory backend;
* ``tests/test_backend_differential.py`` — in-memory vs SQLite backend under
  every engine.

Schemas are *typed* (every attribute is ``int``, matching the generated
values) so instances survive the SQLite round trip unchanged: SQLite column
affinity would silently coerce integers stored in untyped (TEXT) columns into
strings, making the backends diverge for reasons that have nothing to do with
the evaluation engines.
"""

from __future__ import annotations

import random

from repro.datalog.ast import Atom, Comparison, Constant, Rule, Variable
from repro.datalog.delta import DeltaProgram
from repro.storage.database import Database
from repro.storage.schema import RelationSchema, Schema

from tests.conftest import PAPER_PROGRAM_TEXT, make_paper_database


def random_instance(
    seed: int,
    max_relations: int = 4,
    max_facts: int = 40,
) -> tuple[Database, DeltaProgram]:
    """A small random database plus a random (terminating) delta program.

    ``max_relations`` / ``max_facts`` bound the instance size; the defaults
    reproduce the family the semi-naive differential suite has always used,
    while the backend suite passes smaller bounds to keep 50+ instances per
    semantics affordable.
    """
    rng = random.Random(seed)
    relation_count = rng.randint(2, max_relations)
    arities = {
        f"R{index}": rng.randint(1, 3) for index in range(relation_count)
    }
    schema = Schema.from_relations(
        [
            RelationSchema.of(name, *(f"a{i}:int" for i in range(arity)))
            for name, arity in arities.items()
        ]
    )
    domain = rng.randint(3, 8)
    contents = {
        name: {
            tuple(rng.randrange(domain) for _ in range(arity))
            for _ in range(rng.randint(5, max_facts))
        }
        for name, arity in arities.items()
    }
    db = Database.from_dicts(schema, contents)

    names = sorted(arities)
    rules = []
    seen_rules = set()
    for rule_index in range(rng.randint(2, 5)):
        head_relation = rng.choice(names)
        head_arity = arities[head_relation]
        head_vars = tuple(Variable(f"x{i}") for i in range(head_arity))
        guard = Atom(head_relation, head_vars, is_delta=False)
        body = [guard]
        # Extra atoms share a variable with the guard when possible so the
        # joins are not all cross products.
        for _ in range(rng.randint(0, 2)):
            other = rng.choice(names)
            other_arity = arities[other]
            terms = []
            for position in range(other_arity):
                if rng.random() < 0.5:
                    terms.append(rng.choice(head_vars))
                elif rng.random() < 0.3:
                    terms.append(Constant(rng.randrange(domain)))
                else:
                    terms.append(Variable(f"y{rule_index}_{position}"))
            body.append(
                Atom(other, tuple(terms), is_delta=rng.random() < 0.5)
            )
        comparisons = ()
        if rng.random() < 0.5:
            comparisons = (
                Comparison(
                    rng.choice(head_vars),
                    rng.choice(("<", "<=", ">", ">=", "!=")),
                    Constant(rng.randrange(domain)),
                ),
            )
        rule = Rule(
            head=Atom(head_relation, head_vars, is_delta=True),
            body=tuple(body),
            comparisons=comparisons,
            # Leave some rules unnamed: real programs parsed from text have
            # several unnamed rules per head relation, and assignment
            # signatures must keep them apart (they once collided through
            # the shared auto display name).
            name=f"r{rule_index}" if rng.random() < 0.5 else None,
        )
        key = (rule.head, rule.body, rule.comparisons)
        if key not in seen_rules:
            seen_rules.add(key)
            rules.append(rule)
    return db, DeltaProgram.from_rules(rules)


def paper_instance() -> tuple[Database, DeltaProgram]:
    """The paper's Figure-1 database with its Figure-2 delta program."""
    return make_paper_database(), DeltaProgram.from_text(PAPER_PROGRAM_TEXT)
