"""Shared randomized program/instance generators for the differential suites.

The differential suites draw from this module so they exercise the same
family of join shapes, cascade depths and comparison mixes:

* ``tests/test_seminaive_differential.py`` — semi-naive engine vs the naive
  oracle on the in-memory backend;
* ``tests/test_backend_differential.py`` — in-memory vs SQLite backend under
  every engine;
* ``tests/test_property_differential.py`` — the property-based torture suite
  built on the *spec* layer below.

Schemas are *typed* (every attribute is ``int``, matching the generated
values) so instances survive the SQLite round trip unchanged: SQLite column
affinity would silently coerce integers stored in untyped (TEXT) columns into
strings, making the backends diverge for reasons that have nothing to do with
the evaluation engines.

Spec layer (shrinking generator)
--------------------------------

:class:`InstanceSpec` / :class:`RuleSpec` describe a random instance as plain
data (tuples of relation names, int values and term markers).  The spec can

* :meth:`~InstanceSpec.build` itself into a ``(Database, DeltaProgram)`` pair,
* enumerate structurally smaller variants (:meth:`~InstanceSpec.shrink_candidates`
  drops one fact / rule / non-guard body atom / comparison at a time), and
* round-trip through ``repr`` — a failing spec printed by the torture suite
  can be pasted back into ``eval`` (or a test) verbatim to replay the repro.

:func:`random_torture_spec` draws negation-free delta programs biased toward
the historically bug-prone shapes: self-joins (two body atoms over one
relation), constants inside atoms, mutual recursion between rule heads,
empty relations, repeated variables and comparison predicates.
:func:`shrink_spec` greedily minimises a failing spec while a caller-supplied
predicate keeps failing.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.datalog.ast import Atom, Comparison, Constant, Rule, Variable
from repro.datalog.delta import DeltaProgram
from repro.storage.database import Database
from repro.storage.schema import RelationSchema, Schema

from tests.conftest import PAPER_PROGRAM_TEXT, make_paper_database


def random_instance(
    seed: int,
    max_relations: int = 4,
    max_facts: int = 40,
) -> tuple[Database, DeltaProgram]:
    """A small random database plus a random (terminating) delta program.

    ``max_relations`` / ``max_facts`` bound the instance size; the defaults
    reproduce the family the semi-naive differential suite has always used,
    while the backend suite passes smaller bounds to keep 50+ instances per
    semantics affordable.
    """
    rng = random.Random(seed)
    relation_count = rng.randint(2, max_relations)
    arities = {f"R{index}": rng.randint(1, 3) for index in range(relation_count)}
    schema = Schema.from_relations(
        [
            RelationSchema.of(name, *(f"a{i}:int" for i in range(arity)))
            for name, arity in arities.items()
        ],
    )
    domain = rng.randint(3, 8)
    contents = {
        name: {
            tuple(rng.randrange(domain) for _ in range(arity))
            for _ in range(rng.randint(5, max_facts))
        }
        for name, arity in arities.items()
    }
    db = Database.from_dicts(schema, contents)

    names = sorted(arities)
    rules = []
    seen_rules = set()
    for rule_index in range(rng.randint(2, 5)):
        head_relation = rng.choice(names)
        head_arity = arities[head_relation]
        head_vars = tuple(Variable(f"x{i}") for i in range(head_arity))
        guard = Atom(head_relation, head_vars, is_delta=False)
        body = [guard]
        # Extra atoms share a variable with the guard when possible so the
        # joins are not all cross products.
        for _ in range(rng.randint(0, 2)):
            other = rng.choice(names)
            other_arity = arities[other]
            terms = []
            for position in range(other_arity):
                if rng.random() < 0.5:
                    terms.append(rng.choice(head_vars))
                elif rng.random() < 0.3:
                    terms.append(Constant(rng.randrange(domain)))
                else:
                    terms.append(Variable(f"y{rule_index}_{position}"))
            body.append(
                Atom(other, tuple(terms), is_delta=rng.random() < 0.5),
            )
        comparisons = ()
        if rng.random() < 0.5:
            comparisons = (
                Comparison(
                    rng.choice(head_vars),
                    rng.choice(("<", "<=", ">", ">=", "!=")),
                    Constant(rng.randrange(domain)),
                ),
            )
        rule = Rule(
            head=Atom(head_relation, head_vars, is_delta=True),
            body=tuple(body),
            comparisons=comparisons,
            # Leave some rules unnamed: real programs parsed from text have
            # several unnamed rules per head relation, and assignment
            # signatures must keep them apart (they once collided through
            # the shared auto display name).
            name=f"r{rule_index}" if rng.random() < 0.5 else None,
        )
        key = (rule.head, rule.body, rule.comparisons)
        if key not in seen_rules:
            seen_rules.add(key)
            rules.append(rule)
    return db, DeltaProgram.from_rules(rules)


def paper_instance() -> tuple[Database, DeltaProgram]:
    """The paper's Figure-1 database with its Figure-2 delta program."""
    return make_paper_database(), DeltaProgram.from_text(PAPER_PROGRAM_TEXT)


# ---------------------------------------------------------------------------
# PYTEST_SEED rebasing, shared by the differential suites
# ---------------------------------------------------------------------------

#: Base seed for the differential suites, overridable for CI replay.  The
#: property torture suite reads the same knob (with its own default); the
#: stride below matches its instance-seed derivation.
PYTEST_SEED = int(os.environ.get("PYTEST_SEED", "0"))

#: Stride between rebased runs (same scheme as the property suite: instance
#: ``i`` of a run uses ``PYTEST_SEED * SEED_STRIDE + i``).
SEED_STRIDE = 100003


def differential_seeds(count: int) -> tuple[int, ...]:
    """``count`` instance seeds rebased on ``PYTEST_SEED``.

    The default ``PYTEST_SEED=0`` yields ``0..count-1`` — the historical
    seeds — so unpinned runs stay reproducible across PRs.
    """
    return tuple(PYTEST_SEED * SEED_STRIDE + index for index in range(count))


def seed_note(seed: int, *extra) -> str:
    """Failure-message context: the exact seed (and knob) to replay a failure."""
    detail = f"seed={seed} (PYTEST_SEED={PYTEST_SEED})"
    return " ".join([detail, *map(str, extra)])


# ---------------------------------------------------------------------------
# Spec layer: plain-data instances with shrinking (see module docstring)
# ---------------------------------------------------------------------------

#: Term markers used in specs: ``("var", "x0")`` or ``("const", 3)``.
VAR = "var"
CONST = "const"


def _term(spec: tuple):
    kind, value = spec
    if kind == VAR:
        return Variable(value)
    assert kind == CONST
    return Constant(value)


@dataclass(frozen=True)
class RuleSpec:
    """One delta rule as plain data.

    ``head`` is ``(relation, terms)``; every body atom is
    ``(relation, is_delta, terms)``; every comparison is
    ``(lhs_term, op, rhs_term)`` — with terms in the ``("var", name)`` /
    ``("const", value)`` marker form.  The first body atom must be the guard
    (same relation and terms as the head, non-delta); shrinking never drops
    it, so every shrunk rule stays a well-formed Definition-3.1 delta rule.
    """

    head: tuple
    body: tuple
    comparisons: tuple = ()
    name: str | None = None

    def to_rule(self) -> Rule:
        relation, head_terms = self.head
        return Rule(
            head=Atom(relation, tuple(_term(t) for t in head_terms), is_delta=True),
            body=tuple(
                Atom(rel, tuple(_term(t) for t in terms), is_delta=is_delta)
                for rel, is_delta, terms in self.body
            ),
            comparisons=tuple(
                Comparison(_term(lhs), op, _term(rhs))
                for lhs, op, rhs in self.comparisons
            ),
            name=self.name,
        )


@dataclass(frozen=True)
class InstanceSpec:
    """A random database + delta program as shrinkable plain data."""

    arities: tuple  # ((relation, arity), ...)
    facts: tuple    # ((relation, values), ...)
    rules: tuple    # (RuleSpec, ...)

    def build(self) -> tuple[Database, DeltaProgram]:
        """Materialise the spec (raises for invalid shrink candidates)."""
        schema = Schema.from_relations(
            [
                RelationSchema.of(name, *(f"a{i}:int" for i in range(arity)))
                for name, arity in self.arities
            ],
        )
        contents: dict = {name: set() for name, _ in self.arities}
        for relation, values in self.facts:
            contents[relation].add(tuple(values))
        db = Database.from_dicts(schema, contents)
        program = DeltaProgram.from_rules(
            rule_spec.to_rule() for rule_spec in self.rules
        )
        return db, program

    def size(self) -> int:
        """A rough structural size, monotone under every shrink step."""
        return (
            len(self.facts)
            + sum(len(rule.body) + len(rule.comparisons) + 1 for rule in self.rules)
        )

    def shrink_candidates(self) -> Iterator["InstanceSpec"]:
        """Structurally smaller specs, one removal at a time.

        Ordered most-aggressive first (drop a rule, then a fact, then a
        non-guard atom, then a comparison) so the greedy shrinker converges
        in few replays.  Candidates may be invalid (e.g. two rules collapsing
        into duplicates) — :meth:`build` raises and the shrinker skips them.
        """
        for index in range(len(self.rules)):
            if len(self.rules) > 1:
                yield InstanceSpec(
                    self.arities,
                    self.facts,
                    self.rules[:index] + self.rules[index + 1 :],
                )
        for index in range(len(self.facts)):
            yield InstanceSpec(
                self.arities,
                self.facts[:index] + self.facts[index + 1 :],
                self.rules,
            )
        for rule_index, rule in enumerate(self.rules):
            # The guard atom (index 0) must survive.
            for atom_index in range(1, len(rule.body)):
                smaller = RuleSpec(
                    rule.head,
                    rule.body[:atom_index] + rule.body[atom_index + 1 :],
                    rule.comparisons,
                    rule.name,
                )
                yield InstanceSpec(
                    self.arities,
                    self.facts,
                    self.rules[:rule_index] + (smaller,) + self.rules[rule_index + 1 :],
                )
            for cmp_index in range(len(rule.comparisons)):
                smaller = RuleSpec(
                    rule.head,
                    rule.body,
                    rule.comparisons[:cmp_index] + rule.comparisons[cmp_index + 1 :],
                    rule.name,
                )
                yield InstanceSpec(
                    self.arities,
                    self.facts,
                    self.rules[:rule_index] + (smaller,) + self.rules[rule_index + 1 :],
                )


def random_torture_spec(
    rng: random.Random,
    max_relations: int = 4,
    max_facts_per_relation: int = 12,
    cyclic_rate: float = 0.25,
) -> InstanceSpec:
    """A random negation-free delta-program instance as a shrinkable spec.

    Deliberately biased toward the shapes that have historically broken
    engines: self-joins, in-atom constants, mutual recursion between rule
    heads, empty relations, repeated variables and comparisons.

    ``cyclic_rate`` is the per-rule probability of appending a three-atom
    cyclic triple over fresh variables (a triangle through arity >= 2
    relations), so the torture suites exercise the planner's cyclic-core
    classification and the generic-join path — bodies built from the other
    biases alone almost always GYO-reduce to acyclic.
    """
    relation_count = rng.randint(2, max_relations)
    arities = tuple((f"R{index}", rng.randint(1, 3)) for index in range(relation_count))
    arity_of = dict(arities)
    names = [name for name, _ in arities]
    domain = rng.randint(2, 6)

    empty: set[str] = set()
    if rng.random() < 0.35:
        empty.add(rng.choice(names))
    facts = []
    for name, arity in arities:
        if name in empty:
            continue
        for _ in range(rng.randint(3, max_facts_per_relation)):
            facts.append((name, tuple(rng.randrange(domain) for _ in range(arity))))
    # Set semantics: duplicates are redundant, drop them for cleaner shrinks.
    facts = tuple(dict.fromkeys(facts))

    rules: list[RuleSpec] = []
    rule_count = rng.randint(2, 5)
    for rule_index in range(rule_count):
        head_relation = rng.choice(names)
        head_arity = arity_of[head_relation]
        head_vars = tuple((VAR, f"x{i}") for i in range(head_arity))
        body = [(head_relation, False, head_vars)]

        def random_terms(relation: str, tag: str) -> tuple:
            terms = []
            for position in range(arity_of[relation]):
                roll = rng.random()
                if roll < 0.45:
                    terms.append(rng.choice(head_vars))
                elif roll < 0.60:
                    terms.append((CONST, rng.randrange(domain)))
                else:
                    terms.append((VAR, f"y{tag}_{position}"))
            return tuple(terms)

        extra = rng.randint(0, 2)
        for atom_index in range(extra):
            other = rng.choice(names)
            body.append(
                (other, rng.random() < 0.5, random_terms(other, f"{rule_index}_{atom_index}")),
            )
        # Self-join bias: a second atom over the head relation.
        if rng.random() < 0.25:
            body.append(
                (
                    head_relation,
                    rng.random() < 0.5,
                    random_terms(head_relation, f"{rule_index}_s"),
                ),
            )
        # Mutual-recursion bias: re-enter through the previous rule's head.
        if rules and rng.random() < 0.4:
            previous = rules[-1].head[0]
            body.append(
                (previous, True, random_terms(previous, f"{rule_index}_m")),
            )
        # Cyclic-core bias: a triangle over fresh variables through arity>=2
        # relations, so the join hypergraph does not GYO-reduce and the
        # planner routes the rule through the generic-join path.
        wide = [name for name in names if arity_of[name] >= 2]
        if wide and rng.random() < cyclic_rate:
            cycle_vars = tuple((VAR, f"c{rule_index}_{i}") for i in range(3))
            for leg in range(3):
                relation = rng.choice(wide)
                terms = [cycle_vars[leg], cycle_vars[(leg + 1) % 3]]
                terms.extend(
                    (VAR, f"c{rule_index}_{leg}_{position}")
                    for position in range(2, arity_of[relation])
                )
                body.append((relation, rng.random() < 0.3, tuple(terms)))

        comparisons = ()
        if rng.random() < 0.4:
            comparisons = (
                (
                    rng.choice(head_vars),
                    rng.choice(("<", "<=", ">", ">=", "!=", "=")),
                    (CONST, rng.randrange(domain)),
                ),
            )
        rules.append(
            RuleSpec(
                head=(head_relation, head_vars),
                body=tuple(body),
                comparisons=comparisons,
                name=f"r{rule_index}" if rng.random() < 0.5 else None,
            ),
        )

    # Drop exact-duplicate rules (DeltaProgram rejects them).
    unique: dict = {}
    for rule in rules:
        unique.setdefault((rule.head, rule.body, rule.comparisons), rule)
    return InstanceSpec(arities, facts, tuple(unique.values()))


def shrink_spec(
    spec: InstanceSpec,
    still_fails: Callable[[InstanceSpec], bool],
    max_replays: int = 400,
) -> InstanceSpec:
    """Greedily minimise ``spec`` while ``still_fails`` keeps returning True.

    ``still_fails`` must treat *invalid* candidates (whose :meth:`build`
    raises) as non-failing; the canonical wrapper simply catches the
    exception and returns False.  The loop restarts from the first shrinking
    candidate after every success, so the result is 1-minimal up to the
    replay budget: no single removal still fails.
    """
    replays = 0
    improved = True
    while improved and replays < max_replays:
        improved = False
        for candidate in spec.shrink_candidates():
            replays += 1
            if replays > max_replays:
                break
            failed = False
            try:
                failed = still_fails(candidate)
            except Exception:
                # A candidate that crashes the checker itself still
                # demonstrates the bug: keep it.
                failed = True
            if failed:
                spec = candidate
                improved = True
                break
    return spec
