"""Unit tests for the constraint front-ends (DCs, triggers, causal, domain)."""

import pytest

from repro import Database, RepairEngine, Schema, Semantics, fact
from repro.constraints import (
    CausalRule,
    DeleteTrigger,
    DenialConstraint,
    DomainConstraint,
)
from repro.constraints.causal import program_from_causal_rules
from repro.constraints.denial import program_from_denial_constraints, violating_sets
from repro.constraints.triggers import program_from_triggers, triggers_from_program
from repro.datalog.ast import Comparison, Variable, make_atom
from repro.datalog.delta import DeltaProgram
from repro.exceptions import RuleValidationError
from repro.storage.schema import RelationSchema


class TestDenialConstraint:
    def make_dc(self) -> DenialConstraint:
        return DenialConstraint(
            atoms=(make_atom("R", "x", "y"), make_atom("R", "x2", "y2")),
            comparisons=(
                Comparison(Variable("x"), "=", Variable("x2")),
                Comparison(Variable("y"), "!=", Variable("y2")),
            ),
            name="fd",
        )

    def test_single_head_translation(self):
        rule = self.make_dc().to_delta_rule()
        assert rule.head.is_delta and rule.head.relation == "R"
        assert len(rule.body) == 2
        assert rule.guard_atom() is not None

    def test_per_atom_translation(self):
        rules = self.make_dc().to_delta_rules_per_atom()
        assert len(rules) == 2
        assert rules[1].head.terms == (Variable("x2"), Variable("y2"))

    def test_head_index_out_of_range(self):
        with pytest.raises(RuleValidationError):
            self.make_dc().to_delta_rule(head_index=5)

    def test_delta_atoms_rejected(self):
        with pytest.raises(RuleValidationError):
            DenialConstraint(atoms=(make_atom("R", "x", delta=True),))

    def test_empty_atoms_rejected(self):
        with pytest.raises(RuleValidationError):
            DenialConstraint(atoms=())

    def test_independent_repair_is_minimum_fd_repair(self):
        schema = Schema.from_arities({"R": 2})
        db = Database.from_dicts(schema, {"R": [(1, "a"), (1, "b"), (2, "c")]})
        program = self.make_dc().to_program()
        result = RepairEngine(db, program).repair(Semantics.INDEPENDENT)
        assert result.size == 1
        assert result.deleted <= {fact("R", 1, "a"), fact("R", 1, "b")}

    def test_violating_sets(self):
        schema = Schema.from_arities({"R": 2})
        db = Database.from_dicts(schema, {"R": [(1, "a"), (1, "b"), (2, "c")]})
        sets = violating_sets(db, self.make_dc())
        assert len(sets) == 2  # the violating pair in both orientations

    def test_program_from_constraints(self):
        program = program_from_denial_constraints([self.make_dc()], per_atom=True)
        assert len(program) == 2
        assert isinstance(program, DeltaProgram)

    def test_str_rendering(self):
        assert "¬(" in str(self.make_dc())


class TestDeleteTrigger:
    def make_trigger(self) -> DeleteTrigger:
        return DeleteTrigger(
            name="trg_writes",
            watched=make_atom("Author", "a", "n"),
            target=make_atom("Writes", "a", "p"),
        )

    def test_to_delta_rule(self):
        rule = self.make_trigger().to_delta_rule()
        assert rule.head.relation == "Writes" and rule.head.is_delta
        assert rule.body[-1].is_delta and rule.body[-1].relation == "Author"

    def test_delta_atoms_rejected(self):
        with pytest.raises(RuleValidationError):
            DeleteTrigger("t", make_atom("A", "x", delta=True), make_atom("B", "x"))

    def test_round_trip_through_program(self):
        program = program_from_triggers([self.make_trigger()])
        recovered = triggers_from_program(program)
        assert len(recovered) == 1
        assert recovered[0].watched.relation == "Author"
        assert recovered[0].target.relation == "Writes"

    def test_seed_rules_are_not_triggers(self):
        program = DeltaProgram.from_text(
            "delta A(x) :- A(x), x = 1. delta B(x) :- B(x), delta A(x).",
        )
        recovered = triggers_from_program(program)
        assert len(recovered) == 1
        assert recovered[0].watched.relation == "A"

    def test_str_mentions_sql(self):
        assert "AFTER DELETE ON Author" in str(self.make_trigger())


class TestCausalRule:
    def test_to_delta_rule(self):
        causal = CausalRule(
            cause=make_atom("Author", "a", "n"),
            effect=make_atom("Writes", "a", "p"),
            name="fk",
        )
        rule = causal.to_delta_rule()
        assert rule.head.relation == "Writes"
        assert rule.guard_atom() is not None

    def test_program_with_interventions(self):
        causal = CausalRule(
            cause=make_atom("Author", "a", "n"), effect=make_atom("Writes", "a", "p"),
        )
        program = program_from_causal_rules([causal], interventions=[fact("Author", 1, "x")])
        assert len(program) == 2
        schema = Schema.from_arities({"Author": 2, "Writes": 2})
        db = Database.from_dicts(
            schema, {"Author": [(1, "x"), (2, "y")], "Writes": [(1, 10), (2, 20)]},
        )
        result = RepairEngine(db, program).repair(Semantics.STAGE)
        assert result.deleted == frozenset({fact("Author", 1, "x"), fact("Writes", 1, 10)})

    def test_delta_atoms_rejected(self):
        with pytest.raises(RuleValidationError):
            CausalRule(cause=make_atom("A", "x", delta=True), effect=make_atom("B", "x"))


class TestDomainConstraint:
    def relation(self) -> RelationSchema:
        return RelationSchema.of("Reading", "sensor:int", "value:int")

    def test_range_constraint_rules(self):
        constraint = DomainConstraint(
            self.relation(), "value", minimum=0, maximum=100, name="range",
        )
        rules = constraint.to_delta_rules()
        assert len(rules) == 2
        assert constraint.admits(50)
        assert not constraint.admits(-1)
        assert not constraint.admits(101)

    def test_allowed_values_constraint(self):
        constraint = DomainConstraint(
            self.relation(), "sensor", allowed_values=(1, 2), name="sensors",
        )
        rules = constraint.to_delta_rules()
        assert len(rules) == 1
        assert constraint.admits(1) and not constraint.admits(3)

    def test_repair_deletes_out_of_domain_tuples(self):
        schema = Schema.from_relations([self.relation()])
        db = Database.from_dicts(
            schema, {"Reading": [(1, 50), (1, 150), (2, -5), (2, 99)]},
        )
        constraint = DomainConstraint(self.relation(), "value", minimum=0, maximum=100)
        result = RepairEngine(db, constraint.to_program()).repair(Semantics.END)
        assert result.deleted == frozenset({fact("Reading", 1, 150), fact("Reading", 2, -5)})

    def test_requires_exactly_one_mode(self):
        with pytest.raises(RuleValidationError):
            DomainConstraint(self.relation(), "value")
        with pytest.raises(RuleValidationError):
            DomainConstraint(
                self.relation(), "value", allowed_values=(1,), minimum=0,
            )

    def test_unknown_attribute_rejected(self):
        with pytest.raises(Exception):
            DomainConstraint(self.relation(), "missing", minimum=0)
