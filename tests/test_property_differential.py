"""Property-based differential torture suite.

Every instance drawn from :func:`tests.generators.random_torture_spec` is
checked across the full evaluation matrix

    {in-memory, SQLite} × {naive, semi-naive, sharded@{1,4}} ×
    {end, stage, step, independent}

against a single oracle: the **naive engine on the in-memory backend** (the
sharded engine runs at shard counts 1 and 4 in the closure layer and at 4 in
the semantics layer).  The
closure layer is checked too (delta fixpoints, assignment-signature sets and
exactly-once ``on_assignment`` delivery).  Any divergence is shrunk to a
1-minimal repro (:func:`tests.generators.shrink_spec`) before failing, and the
failure message contains the spec ``repr`` plus the seed, so the repro can be
replayed verbatim:

    from tests.generators import InstanceSpec, RuleSpec
    from tests.test_property_differential import divergences
    spec = <paste the InstanceSpec(...) from the failure message>
    print(divergences(spec))

Reproducibility and scale knobs (read once at import):

* ``PYTEST_SEED`` — base seed for the whole run (default 20260730); instance
  ``i`` uses ``PYTEST_SEED * 100003 + i``.
* ``PROPERTY_SCALE`` — multiplies the instance count (default 1 → 100
  instances; the nightly CI job runs ``PROPERTY_SCALE=10``).
"""

from __future__ import annotations

import os
import random
from typing import List

import pytest

from repro.core.semantics import (
    end_semantics,
    independent_semantics,
    stage_semantics,
    step_semantics,
)
from repro.core.stability import is_stabilizing_set
from repro.datalog.context import EvalContext
from repro.datalog.evaluation import run_closure
from repro.storage.sqlite_backend import SQLiteDatabase

from tests.generators import InstanceSpec, random_torture_spec, shrink_spec

SEED = int(os.environ.get("PYTEST_SEED", "20260730"))
SCALE = int(os.environ.get("PROPERTY_SCALE", "1"))
INSTANCE_COUNT = 100 * SCALE

ENGINES = ("naive", "semi-naive")
MAX_ROUNDS = 200

#: Closure-layer engine runs: ``(label, engine, shards)``.  The sharded
#: engine is checked at the degenerate single partition and a 4-way hash
#: partition; ``shards=None`` means no context knob (plain engines).
CLOSURE_RUNS = (
    ("naive", "naive", None),
    ("semi-naive", "semi-naive", None),
    ("sharded/1", "sharded", 1),
    ("sharded/4", "sharded", 4),
)


def _run_context(shards):
    return None if shards is None else EvalContext(shards=shards, workers=1)


def _spec_for(index: int) -> InstanceSpec:
    rng = random.Random(SEED * 100003 + index)
    return random_torture_spec(rng)


def divergences(spec: InstanceSpec) -> List[str]:
    """Every way ``spec`` diverges from the naive in-memory oracle (none = ok)."""
    memory, program = spec.build()
    problems: List[str] = []

    # -- closure layer ------------------------------------------------------
    oracle_db = memory.clone()
    oracle_closure = run_closure(oracle_db, program, engine="naive")
    oracle_deltas = set(oracle_db.all_deltas())
    oracle_signatures = {a.signature() for a in oracle_closure.assignments}
    for backend in ("memory", "sqlite"):
        for run_label, engine, shards in CLOSURE_RUNS:
            if backend == "memory" and engine == "naive":
                continue  # that is the oracle itself
            db = (
                SQLiteDatabase.from_database(memory)
                if backend == "sqlite"
                else memory.clone()
            )
            hook_seen: List = []
            closure = run_closure(
                db,
                program,
                on_assignment=hook_seen.append,
                engine=engine,
                max_rounds=MAX_ROUNDS,
                context=_run_context(shards),
            )
            label = f"closure[{backend}/{run_label}]"
            if set(db.all_deltas()) != oracle_deltas:
                problems.append(f"{label}: delta fixpoint differs from oracle")
            signatures = [a.signature() for a in closure.assignments]
            if len(set(signatures)) != len(signatures):
                problems.append(f"{label}: duplicate assignments")
            if set(signatures) != oracle_signatures:
                problems.append(f"{label}: assignment set differs from oracle")
            if [a.signature() for a in hook_seen] != signatures:
                problems.append(f"{label}: on_assignment stream != result list")

    # -- semantics layer ----------------------------------------------------
    oracle_results = {
        "end": end_semantics(memory, program, engine="naive"),
        "stage": stage_semantics(memory, program, engine="naive"),
        "step": step_semantics(memory, program, engine="naive"),
        "independent": independent_semantics(memory, program, engine="naive"),
    }
    semantics_runs = (
        ("naive", "naive", None),
        ("semi-naive", "semi-naive", None),
        ("sharded/4", "sharded", 4),
    )
    for backend in ("memory", "sqlite"):
        db = (SQLiteDatabase.from_database(memory) if backend == "sqlite" else memory)
        for run_label, engine, shards in semantics_runs:
            if backend == "memory" and engine == "naive":
                continue
            label = f"[{backend}/{run_label}]"
            end = end_semantics(
                db, program, engine=engine, context=_run_context(shards),
            )
            if end.deleted != oracle_results["end"].deleted:
                problems.append(f"end{label}: deleted set differs from oracle")
            stage = stage_semantics(
                db, program, engine=engine, context=_run_context(shards),
            )
            if stage.deleted != oracle_results["stage"].deleted:
                problems.append(f"stage{label}: deleted set differs from oracle")
            if stage.rounds != oracle_results["stage"].rounds:
                problems.append(
                    f"stage{label}: {stage.rounds} stages, oracle "
                    f"{oracle_results['stage'].rounds}",
                )
            step = step_semantics(
                db, program, engine=engine, context=_run_context(shards),
            )
            if step.deleted != oracle_results["step"].deleted:
                problems.append(f"step{label}: deleted set differs from oracle")
            independent = independent_semantics(
                db, program, engine=engine, context=_run_context(shards),
            )
            if independent.size != oracle_results["independent"].size:
                problems.append(
                    f"independent{label}: size {independent.size}, oracle "
                    f"{oracle_results['independent'].size}",
                )
            if not is_stabilizing_set(db, program, independent.deleted):
                problems.append(f"independent{label}: non-stabilizing result")
    return problems


def _still_fails(spec: InstanceSpec) -> bool:
    try:
        spec.build()
    except Exception:
        # Invalid shrink candidate (duplicate rules etc.): not a failure.
        return False
    try:
        return bool(divergences(spec))
    except Exception:
        # A crash inside the engines is a genuine repro — keep shrinking it.
        return True


@pytest.mark.parametrize("index", range(INSTANCE_COUNT))
def test_instance_matches_naive_oracle(index: int) -> None:
    spec = _spec_for(index)
    problems = divergences(spec)
    if problems:
        shrunk = shrink_spec(spec, _still_fails)
        final = divergences(shrunk)
        pytest.fail(
            f"instance {index} (PYTEST_SEED={SEED}) diverges from the naive "
            f"oracle:\n  " + "\n  ".join(final or problems) + "\n"
            f"minimized repro (paste into divergences()):\n{shrunk!r}",
        )


def test_shrinker_produces_buildable_minimum() -> None:
    """The shrinking machinery itself: minimise against a synthetic predicate.

    An always-failing (but validity-respecting) predicate must drive the spec
    down to the structural floor: one rule reduced to its guard atom, no
    facts, no comparisons — and the result must still build.
    """
    spec = _spec_for(0)
    shrunk = shrink_spec(spec, _buildable)
    assert len(shrunk.rules) == 1
    assert shrunk.facts == ()
    assert len(shrunk.rules[0].body) == 1  # just the guard
    assert shrunk.rules[0].comparisons == ()
    shrunk.build()
    assert shrunk.size() < spec.size()


def _buildable(spec: InstanceSpec) -> bool:
    try:
        spec.build()
        return True
    except Exception:
        return False
