"""Property-based tests (hypothesis) for the core invariants of the framework.

Random small databases and delta programs are generated and the paper's
formal guarantees are checked on every instance:

* every semantics returns a stabilizing set (Proposition 3.18);
* ``Stage ⊆ End`` and ``Step ⊆ End`` (Proposition 3.20);
* ``|Ind| ≤ |Stage|, |Step|`` and Ind matches the brute-force minimum;
* stage semantics is rule-order independent (Proposition 3.9);
* the Min-Ones solver returns models matching the brute-force optimum;
* storage-engine round trips preserve facts.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Database, RepairEngine, Schema, Semantics
from repro.core.stability import is_stabilizing_set, minimum_stabilizing_set_bruteforce
from repro.datalog.delta import DeltaProgram
from repro.datalog.parser import parse_program
from repro.solver.bruteforce import solve_min_ones_bruteforce
from repro.solver.cnf import CNF
from repro.solver.minones import solve_min_ones
from repro.storage.facts import Fact

#: The small universe the random databases draw from.
_SCHEMA = Schema.from_arities({"R": 1, "S": 1, "T": 1})

#: A pool of well-formed delta rules over that universe; programs are subsets.
_RULE_POOL = tuple(
    parse_program(
        """
        delta R(x) :- R(x), S(x).
        delta S(x) :- R(x), S(x).
        delta T(x) :- T(x), delta R(x).
        delta T(y) :- T(y), R(x), delta S(x).
        delta S(y) :- S(y), delta T(y).
        delta R(x) :- R(x), x = 0.
        delta T(x) :- T(x), S(x), x > 1.
        """
    ).rules,
)

values = st.integers(min_value=0, max_value=3)
relation_contents = st.fixed_dictionaries(
    {
        "R": st.sets(values, max_size=3),
        "S": st.sets(values, max_size=3),
        "T": st.sets(values, max_size=3),
    },
)
rule_subsets = st.sets(
    st.integers(min_value=0, max_value=len(_RULE_POOL) - 1), min_size=1, max_size=4,
)


def build_database(contents: dict) -> Database:
    return Database.from_dicts(
        _SCHEMA,
        {name: [(value,) for value in values] for name, values in contents.items()},
    )


def build_program(indexes: set[int]) -> DeltaProgram:
    return DeltaProgram.from_rules(_RULE_POOL[index] for index in sorted(indexes))


core_settings = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow],
)


class TestSemanticsInvariants:
    @core_settings
    @given(contents=relation_contents, indexes=rule_subsets)
    def test_every_semantics_returns_a_stabilizing_set(self, contents, indexes):
        db = build_database(contents)
        program = build_program(indexes)
        engine = RepairEngine(db, program)
        for semantics in Semantics:
            result = engine.repair(semantics)
            assert is_stabilizing_set(db, program, result.deleted)
            assert result.deleted <= set(db.all_active())

    @core_settings
    @given(contents=relation_contents, indexes=rule_subsets)
    def test_containment_and_size_relationships(self, contents, indexes):
        db = build_database(contents)
        program = build_program(indexes)
        results = RepairEngine(db, program).repair_all()
        end = results[Semantics.END].deleted
        assert results[Semantics.STAGE].deleted <= end
        assert results[Semantics.STEP].deleted <= end
        assert results[Semantics.INDEPENDENT].size <= results[Semantics.STAGE].size
        assert results[Semantics.INDEPENDENT].size <= results[Semantics.STEP].size

    @core_settings
    @given(contents=relation_contents, indexes=rule_subsets)
    def test_independent_matches_bruteforce_minimum(self, contents, indexes):
        db = build_database(contents)
        program = build_program(indexes)
        if db.count_active() > 9:
            pytest.skip("brute force limited to small instances")
        exact = minimum_stabilizing_set_bruteforce(db, program, max_tuples=9)
        result = RepairEngine(db, program).repair(Semantics.INDEPENDENT)
        assert result.size == len(exact)

    @core_settings
    @given(contents=relation_contents, indexes=rule_subsets)
    def test_stage_is_rule_order_independent(self, contents, indexes):
        db = build_database(contents)
        program = build_program(indexes)
        reversed_program = DeltaProgram.from_rules(tuple(reversed(program.rules)))
        first = RepairEngine(db, program).repair(Semantics.STAGE).deleted
        second = RepairEngine(db, reversed_program).repair(Semantics.STAGE).deleted
        assert first == second

    @core_settings
    @given(contents=relation_contents, indexes=rule_subsets)
    def test_repaired_database_is_original_minus_deleted(self, contents, indexes):
        db = build_database(contents)
        program = build_program(indexes)
        result = RepairEngine(db, program).repair(Semantics.STAGE)
        active_after = set(result.repaired.all_active())
        assert active_after == set(db.all_active()) - result.deleted


class TestSolverProperties:
    clause_literals = st.lists(
        st.integers(min_value=-5, max_value=5).filter(lambda literal: literal != 0),
        min_size=1,
        max_size=4,
    )
    formulas = st.lists(clause_literals, min_size=0, max_size=8)

    @settings(max_examples=60, deadline=None)
    @given(clauses=formulas)
    def test_solver_matches_bruteforce_when_satisfiable(self, clauses):
        cnf = CNF.from_clauses(clauses) if clauses else CNF()
        try:
            exact = solve_min_ones_bruteforce(cnf)
        except Exception:
            # Unsatisfiable formulas: the solver must also refuse.
            with pytest.raises(Exception):
                solve_min_ones(cnf)
            return
        result = solve_min_ones(cnf)
        assert result.cost == exact.cost
        assert cnf.is_satisfied_by(result.assignment)

    @settings(max_examples=40, deadline=None)
    @given(clauses=formulas)
    def test_simplification_preserves_models(self, clauses):
        cnf = CNF.from_clauses(clauses) if clauses else CNF()
        simplified = cnf.simplified()
        try:
            result = solve_min_ones(cnf)
        except Exception:
            return
        assert simplified.is_satisfied_by(result.assignment)


class TestStorageProperties:
    rows = st.lists(
        st.tuples(st.integers(min_value=0, max_value=5), st.text(max_size=3)),
        max_size=10,
    )

    @settings(max_examples=50, deadline=None)
    @given(rows=rows)
    def test_insert_then_read_round_trips(self, rows):
        schema = Schema.from_arities({"R": 2})
        db = Database(schema)
        for row in rows:
            db.insert(Fact("R", row))
        assert db.active_facts("R") == frozenset(Fact("R", row) for row in rows)

    @settings(max_examples=50, deadline=None)
    @given(rows=rows)
    def test_delete_moves_every_tuple_to_delta(self, rows):
        schema = Schema.from_arities({"R": 2})
        db = Database(schema)
        facts = [Fact("R", row) for row in rows]
        db.insert_all(facts)
        db.delete_all(list(db.active_facts("R")))
        assert db.count_active("R") == 0
        assert db.delta_facts("R") == frozenset(facts)

    @settings(max_examples=30, deadline=None)
    @given(rows=rows)
    def test_clone_equality(self, rows):
        schema = Schema.from_arities({"R": 2})
        db = Database(schema)
        db.insert_all(Fact("R", row) for row in rows)
        assert db.clone().same_state_as(db)
