"""Smoke and shape tests for the experiment harness (small scales only)."""

import pytest

from repro.core.semantics import Semantics
from repro.experiments import (
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    table3,
    table4,
    table5,
    triggers_cmp,
)
from repro.experiments.runner import ExperimentReport, average, run_program_suite
from repro.workloads.mas import generate_mas
from repro.workloads.programs_mas import mas_programs


class TestRunner:
    def test_run_program_suite_produces_containment(self):
        mas = generate_mas(scale=0.2, seed=3)
        runs = run_program_suite(mas.db, mas_programs(mas, ("2", "16")))
        assert set(runs) == {"2", "16"}
        assert runs["2"].containment.invariants_hold()
        assert runs["2"].sizes["independent"] <= runs["2"].sizes["end"]
        assert runs["2"].result("end").semantics is Semantics.END

    def test_report_rendering(self):
        report = ExperimentReport("demo", ["a", "b"])
        report.add_row([1, 2])
        report.add_note("hello")
        text = report.render()
        assert "demo" in text and "hello" in text and "1" in text

    def test_average(self):
        assert average([1.0, 3.0]) == 2.0
        assert average([]) == 0.0


class TestTableAndFigureModules:
    def test_table3_invariants_hold(self):
        report = table3.run(
            mas_scale=0.2, tpch_scale=0.2, mas_ids=("2", "8", "16"), tpch_ids=("T-2",),
        )
        assert report.data["invariant_failures"] == []
        assert len(report.rows) == 4

    def test_figure6_panel_b_shape(self):
        report = figure6.run(panel="6b", scale=0.2)
        sizes = {row[0]: row for row in report.rows}
        # End/Stage/Step identical within each program of the join chain.
        for _program, end, stage, step, _ind in report.rows:
            assert end == stage == step
        # Ind is never larger than the others and shrinks as joins are added.
        assert sizes["15"][4] <= sizes["11"][4]

    def test_figure6_panel_c_all_equal(self):
        report = figure6.run(panel="6c", scale=0.2)
        for _program, end, stage, step, ind in report.rows:
            assert end == stage == step == ind

    def test_figure7_reports_all_programs(self):
        report = figure7.run(scale=0.2, program_ids=("1", "16"))
        assert len(report.rows) == 2
        assert all(isinstance(row[1], float) for row in report.rows)
        assert set(report.data["averages"]) == {"end", "stage", "step", "independent"}

    def test_figure8_fractions_sum_to_about_one(self):
        report = figure8.run(scale=0.2)
        for breakdown in report.data["breakdowns"].values():
            assert 0.95 <= sum(breakdown.values()) <= 1.0 + 1e-6

    def test_figure9_rows_and_invariants(self):
        report = figure9.run(scale=0.2, program_ids=("T-2", "T-4"))
        assert len(report.rows) == 2
        for row in report.rows:
            _name, end, stage, step, ind = row[:5]
            assert ind <= min(stage, step) and stage <= end and step <= end

    def test_table4_independent_is_exact(self):
        report = table4.run(error_counts=(4, 8), n_rows=80)
        assert [row[1] for row in report.rows] == ["+0", "+0"]
        for errors, info in report.data["details"].items():
            assert info["sizes"]["end"] >= errors

    def test_table5_semantics_reach_zero(self):
        report = table5.run(error_counts=(4,), n_rows=80)
        row = report.rows[0]
        assert row[-1].startswith("0/")
        details = report.data["details"][4]
        assert sum(details["semantics_after"].values()) == 0

    def test_figure10_both_panels(self):
        report_a = figure10.run(panel="a", error_counts=(4,), n_rows=80)
        report_b = figure10.run(panel="b", row_counts=(80,), n_errors=4)
        assert len(report_a.rows) == 1 and len(report_b.rows) == 1
        with pytest.raises(ValueError):
            figure10.run(panel="z")

    def test_triggers_cmp_shape(self):
        report = triggers_cmp.run(scale=0.2, program_ids=("5", "20"))
        for row in report.rows:
            _program, postgres, mysql, end, stage, _step, _ind = row
            # Pure cascade programs: triggers behave like the cascade semantics.
            assert postgres == mysql == end == stage
