"""Unit tests for the per-rule join planner (repro.datalog.planner)."""

import pytest

from repro.datalog.parser import parse_rule
from repro.datalog.planner import JoinPlanner, plan_key
from repro.storage.database import Database
from repro.storage.schema import Schema


@pytest.fixture
def db() -> Database:
    schema = Schema.from_arities({"Big": 2, "Small": 2, "Tiny": 1})
    return Database.from_dicts(
        schema,
        {
            "Big": [(i, i % 5) for i in range(50)],
            "Small": [(i, i) for i in range(5)],
            "Tiny": [(1,)],
        },
    )


class TestJoinPlanner:
    def test_plan_covers_every_body_atom_once(self, db):
        rule = parse_rule("delta Big(x, y) :- Big(x, y), Small(y, z), Tiny(x).")
        plan = JoinPlanner(db).plan(rule)
        assert sorted(plan.order) == [0, 1, 2]
        assert plan.seed is None

    def test_smallest_relation_starts_an_unseeded_plan(self, db):
        rule = parse_rule("delta Big(x, y) :- Big(x, y), Tiny(x).")
        plan = JoinPlanner(db).plan(rule)
        # Nothing is bound initially, so the scan starts at the smallest extent.
        assert plan.order[0] == 1  # Tiny

    def test_connectivity_beats_cardinality(self, db):
        # After seeding Big(x, y), Small(y, z) is connected through y while
        # Tiny(w) is disconnected (a cross product) despite being tiny.
        rule = parse_rule("delta Big(x, y) :- Big(x, y), Tiny(w), Small(y, z).")
        plan = JoinPlanner(db).plan(rule, seed=0)
        assert plan.order == (0, 2, 1)

    def test_seeded_plan_puts_seed_first(self, db):
        rule = parse_rule("delta Big(x, y) :- Big(x, y), delta Small(y, z).")
        plan = JoinPlanner(db).plan(rule, seed=1)
        assert plan.order[0] == 1
        assert plan.seed == 1

    def test_plans_are_cached(self, db):
        rule = parse_rule("delta Big(x, y) :- Big(x, y), Small(y, z).")
        planner = JoinPlanner(db)
        assert planner.plan(rule) is planner.plan(rule)

    def test_rules_differing_only_in_constants_share_a_plan(self, db):
        first = parse_rule("delta Big(x, 1) :- Big(x, 1), Small(x, z).")
        second = parse_rule("delta Big(x, 2) :- Big(x, 2), Small(x, z).")
        assert plan_key(first, None, False) == plan_key(second, None, False)
        planner = JoinPlanner(db)
        assert planner.plan(first) is planner.plan(second)

    def test_constant_positions_count_as_bound(self, db):
        # Big(x, 1) has a constant: it should be preferred over the equally
        # sized unconstrained Big(a, b) copy at the start of the plan.
        rule = parse_rule("delta Big(x, 1) :- Big(x, 1), Big(a, b), Small(x, z).")
        plan = JoinPlanner(db).plan(rule)
        assert plan.order[0] == 0

    def test_hypothetical_delta_cardinality_is_both_extents(self):
        schema = Schema.from_arities({"Big": 2, "Huge": 2})
        db = Database.from_dicts(
            schema,
            {
                "Big": [(i, i) for i in range(10)],
                "Huge": [(i, i) for i in range(100)],
            },
        )
        rule = parse_rule("delta Big(x, y) :- Big(x, y), delta Huge(x, z).")
        planner = JoinPlanner(db)
        # The delta extent of Huge is empty, so the plain plan drives the scan
        # from it; hypothetically the atom weighs active ∪ delta (100 facts)
        # and the plan starts from the smaller Big instead.
        assert planner.plan(rule, hypothetical=False).order == (1, 0)
        assert planner.plan(rule, hypothetical=True).order == (0, 1)
