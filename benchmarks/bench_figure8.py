"""Benchmark regenerating Figure 8 (runtime breakdown of Algorithms 1 and 2)."""

from benchmarks.conftest import run_once
from repro.experiments import figure8


def test_figure8_runtime_breakdown(benchmark, repro_scale):
    report = run_once(benchmark, figure8.run, scale=repro_scale)
    print("\n" + report.render())
    assert set(report.data["breakdowns"]) == {"8a", "8b", "8c", "8d"}
    for breakdown in report.data["breakdowns"].values():
        assert 0.9 <= sum(breakdown.values()) <= 1.0 + 1e-6
