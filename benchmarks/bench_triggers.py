"""Benchmark regenerating the Section-6 trigger comparison (programs 3, 4, 5, 8, 20)."""

from benchmarks.conftest import run_once
from repro.experiments import triggers_cmp


def test_trigger_comparison(benchmark, repro_scale):
    report = run_once(benchmark, triggers_cmp.run, scale=repro_scale)
    print("\n" + report.render())
    rows = {row[0]: row for row in report.rows}
    # Pure cascade programs: trigger results equal the cascade semantics.
    for program in ("5", "20"):
        _name, postgres, mysql, end, stage, _step, _ind = rows[program]
        assert postgres == mysql == end == stage
    # Programs with several triggers on one event over-delete vs step/independent.
    for program in ("3", "4"):
        _name, postgres, _mysql, _end, _stage, step, ind = rows[program]
        assert postgres >= step >= ind
