"""Benchmark regenerating Table 5 (residual DC violations after repair)."""

from benchmarks.conftest import run_once
from repro.experiments import table5


def test_table5_residual_violations(benchmark, repro_rows):
    errors = tuple(
        count for count in (10, 20, 30, 50, 70, 100) if count <= repro_rows // 3
    )
    report = run_once(benchmark, table5.run, error_counts=errors, n_rows=repro_rows)
    print("\n" + report.render())
    for errors_count, detail in report.data["details"].items():
        # Our semantics always fix every violation (Proposition 3.18).
        assert sum(detail["semantics_after"].values()) == 0
        assert sum(detail["holoclean_before"].values()) > 0
