"""Benchmark regenerating Figure 6 (result sizes of the MAS programs, panels a-c)."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import figure6


@pytest.mark.parametrize("panel", ["6a", "6b", "6c"])
def test_figure6_result_sizes(benchmark, repro_scale, panel):
    report = run_once(benchmark, figure6.run, panel=panel, scale=repro_scale)
    print("\n" + report.render())
    for _program, end, stage, step, ind in report.rows:
        assert ind <= min(stage, step)
        assert stage <= end and step <= end
    if panel == "6c":
        # Pure cascade chain: all four semantics coincide.
        for _program, end, stage, step, ind in report.rows:
            assert end == stage == step == ind
