"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures via the
corresponding :mod:`repro.experiments` module and prints the resulting report,
so ``pytest benchmarks/ --benchmark-only -s`` reproduces the whole evaluation
section in one run.  Scales are kept small enough for a laptop-class pure
Python run; pass ``--repro-scale`` to raise them.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser: "pytest.Parser") -> None:
    parser.addoption(
        "--repro-scale",
        action="store",
        type=float,
        default=0.35,
        help="scale factor for the synthetic MAS/TPC-H instances used by the benchmarks",
    )
    parser.addoption(
        "--repro-rows",
        action="store",
        type=int,
        default=300,
        help="row count of the Author table used by the DC / HoloClean benchmarks",
    )


@pytest.fixture(scope="session")
def repro_scale(request: "pytest.FixtureRequest") -> float:
    return request.config.getoption("--repro-scale")


@pytest.fixture(scope="session")
def repro_rows(request: "pytest.FixtureRequest") -> int:
    return request.config.getoption("--repro-rows")


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark and return its report."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
