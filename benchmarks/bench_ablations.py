"""Ablation benchmarks for the design choices called out in DESIGN.md.

Not part of the paper's evaluation, but useful for understanding where the
implementation spends its time:

* storage backend: in-memory engine vs the SQLite/SQL code path;
* Min-Ones solver: exact branch-and-bound vs the greedy fallback;
* step semantics: greedy Algorithm 2 vs the exhaustive firing-sequence search
  (on the vertex-cover gadget where the exhaustive search is feasible).
"""

from benchmarks.conftest import run_once
from repro import RepairEngine, Semantics, SQLiteDatabase
from repro.complexity import random_graph, step_instance_from_graph
from repro.workloads.mas import generate_mas
from repro.workloads.programs_mas import mas_program


def test_ablation_memory_vs_sqlite_backend(benchmark, repro_scale):
    mas = generate_mas(scale=repro_scale, seed=7)
    program = mas_program(mas, "16")

    def run_both():
        memory = RepairEngine(mas.fresh_db(), program).repair(Semantics.STAGE)
        sqlite_db = SQLiteDatabase.from_database(mas.db)
        sqlite = RepairEngine(sqlite_db, program).repair(Semantics.STAGE)
        return memory, sqlite

    memory, sqlite = run_once(benchmark, run_both)
    print(
        f"\nstage on program 16: in-memory={memory.runtime:.4f}s "
        f"sqlite={sqlite.runtime:.4f}s (same result: {memory.deleted == sqlite.deleted})"
    )
    assert memory.deleted == sqlite.deleted


def test_ablation_exact_vs_greedy_solver(benchmark, repro_scale):
    mas = generate_mas(scale=repro_scale, seed=7)
    program = mas_program(mas, "14")

    def run_both():
        exact = RepairEngine(mas.fresh_db(), program).repair(Semantics.INDEPENDENT)
        greedy = RepairEngine(mas.fresh_db(), program).repair(
            Semantics.INDEPENDENT, exact_variable_limit=1,
        )
        return exact, greedy

    exact, greedy = run_once(benchmark, run_both)
    print(
        f"\nindependent on program 14: exact={exact.size} tuples "
        f"({exact.runtime:.4f}s), greedy fallback={greedy.size} tuples "
        f"({greedy.runtime:.4f}s)"
    )
    assert exact.size <= greedy.size


def test_ablation_greedy_vs_exhaustive_step(benchmark):
    graph = random_graph(7, 0.35, seed=3)
    db, program = step_instance_from_graph(graph)

    def run_both():
        greedy = RepairEngine(db, program).repair(Semantics.STEP)
        exact = RepairEngine(db, program).repair(Semantics.STEP, method="exhaustive")
        return greedy, exact

    greedy, exact = run_once(benchmark, run_both)
    print(
        f"\nstep on a 7-node vertex-cover gadget: greedy={greedy.size} "
        f"({greedy.runtime:.4f}s), exhaustive={exact.size} ({exact.runtime:.4f}s)"
    )
    assert exact.size <= greedy.size
