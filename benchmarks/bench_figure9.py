"""Benchmark regenerating Figure 9 (TPC-H result sizes and runtimes)."""

from benchmarks.conftest import run_once
from repro.experiments import figure9


def test_figure9_tpch(benchmark, repro_scale):
    report = run_once(benchmark, figure9.run, scale=repro_scale)
    print("\n" + report.render())
    assert len(report.rows) == 6
    for row in report.rows:
        _name, end, stage, step, ind = row[:5]
        assert ind <= min(stage, step) and stage <= end and step <= end
