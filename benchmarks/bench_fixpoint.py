"""Micro-benchmark: naive vs semi-naive fixpoint evaluation, on every backend.

Compares the closure engines (:func:`repro.datalog.evaluation.run_closure`
with ``engine="naive"`` / ``engine="semi-naive"``) on the scaling MAS and
TPC-H workload programs over three backends:

* ``memory`` — the in-memory engine with planned joins;
* ``sqlite`` — in-memory SQLite, full-extent SQL joins vs the single-pass
  frontier-table driver of :mod:`repro.datalog.sql_seminaive`;
* ``sqlite-file`` — the same driver against a file-backed (WAL) database
  (``path != ":memory:"``), exercising the persisted generation counter.

The SQLite backends additionally record the **sharded** engine
(:mod:`repro.datalog.sharded`, ``shards=4``, workers auto-fitted to the
machine's cores and recorded per row): ``sharded_speedup`` is single-
connection semi-naive seconds over sharded seconds on the staged path,
``sharded_fast_speedup`` the same ratio for the install-only fast paths.
On a single-core container the sharded engine can at best match the
single-connection driver (the ratios hover around 1.0 or below — the
``cpus`` meta field records why); on multi-core hardware the per-shard
SELECTs overlap on WAL reader connections and the ratio is expected to
clear the parallel-win target.

A ``wcoj`` axis benches the cyclic workload family
(:mod:`repro.workloads.cyclic`) on the in-memory backend with the join
strategy forced both ways via ``REPRO_FORCE_PLAN``: ``wcoj_speedup`` is
forced-binary seconds over forced-wcoj seconds, and ``--check`` holds the
largest-scale triangle / 4-clique rows to an absolute
:data:`WCOJ_GATE_SPEEDUP` floor on top of the usual drift band.

For the semi-naive SQL driver two timings are recorded per row: the *staged*
path (assignments collected — comparable to the naive engine, which always
materialises assignments) and the *fast* path (``collect_assignments=False``,
install-only — what closure-level consumers such as end semantics now run by
default).  An end-to-end axis times figure-6-style end-semantics runs, and a
``compare()`` axis times all four semantics through one
:class:`~repro.core.repair.RepairEngine` sharing a single
:class:`~repro.datalog.context.EvalContext` against four cold engines.
Results are written to ``BENCH_fixpoint.json`` at the repository root so the
perf trajectory is tracked across PRs.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_fixpoint.py            # full run
    PYTHONPATH=src python benchmarks/bench_fixpoint.py --smoke    # best-of-2, small scales
    PYTHONPATH=src python benchmarks/bench_fixpoint.py --smoke --check
    # ^ CI regression gate: fail when this run's naive/semi-naive or
    #   staged/fast speedup ratios drop below --tolerance (default 0.35) of
    #   the committed BENCH_fixpoint.json values on matching rows

or through pytest (a correctness-checked smoke configuration that also
asserts the staged single-pass discipline via a query-counter hook)::

    PYTHONPATH=src python -m pytest benchmarks/bench_fixpoint.py -q
"""

from __future__ import annotations

import argparse
import contextlib
import json
import platform
import random
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List

import os

from repro.core.repair import RepairEngine
from repro.service import RepairService
from repro.storage.database import Database
from repro.storage.facts import Fact, fact
from repro.storage.schema import RelationSchema, Schema
from repro.core.semantics import Semantics, end_semantics
from repro.datalog.context import EvalContext
from repro.datalog.delta import DeltaProgram
from repro.datalog.evaluation import run_closure
from repro.datalog.planner import PLAN_BINARY, PLAN_ENV, PLAN_WCOJ
from repro.datalog.sql_compiler import TAG_ASSIGN_SELECT, TAG_STAGE
from repro.storage.sqlite_backend import SQLiteDatabase
from repro.workloads.cyclic import cyclic_programs, generate_cyclic
from repro.workloads.mas import generate_mas
from repro.workloads.programs_mas import mas_programs
from repro.workloads.programs_tpch import tpch_programs
from repro.workloads.tpch import generate_tpch

#: (workload, program id) pairs ordered by cascade depth; the last MAS entry
#: (program 20, the 5-layer cascade) is the "largest multi-round program" the
#: acceptance criterion tracks.
CLOSURE_PROGRAMS = (
    ("mas", "10"),
    ("mas", "18"),
    ("mas", "20"),
    ("tpch", "T-4"),
    ("tpch", "T-6"),
)

#: Figure-6c style end-semantics programs (the growing cascade chain).
END_TO_END_PROGRAMS = ("16", "17", "18", "19", "20")

#: Program used by the compare() axis (deep cascade, all four semantics).
COMPARE_PROGRAM = "18"

#: Maintenance axis configuration: the acceptance workload (deep-cascade
#: mas/20) under small alternating delete / re-insert batches.
MAINTENANCE_PROGRAM = "20"
MAINTENANCE_BATCHES = 6
MAINTENANCE_BATCH_SIZE = 3

#: Counting-deletion axis: a redundant-support chain closure (every seed fact
#: has two base-only derivations) maintained with the counting fast path on
#: and off.  The chain length is FIXED — identical in smoke and full runs —
#: so the ``--check`` row key matches either baseline.
COUNTING_PROGRAM = "counting-chain"
COUNTING_CHAIN = 240
COUNTING_BATCHES = 6

SEED = 7

#: Shard count of the benchmark's sharded-engine rows (the ISSUE/ROADMAP
#: configuration: 4-way hash partition, workers fitted to the cores).
BENCH_SHARDS = 4

#: Cyclic programs whose largest-scale ``wcoj_speedup`` row is gated by an
#: **absolute** floor under ``--check`` (the mutual-recursion program rides
#: along ungated: its rounds are dominated by small seeded frontiers, where
#: the two plans converge).
WCOJ_GATE_PROGRAMS = ("triangle", "clique4")

#: The acceptance floor: forced-wcoj must beat forced-binary by at least this
#: factor at the largest benched cyclic scale on the in-memory backend.
WCOJ_GATE_SPEEDUP = 3.0

#: The sharded engine's **never-slower** contract, enforced absolutely by
#: ``--check`` on the acceptance rows (mas/20, largest benched scale of each
#: SQLite section): dynamic shard collapse makes a sharded run on a small
#: frontier execute the semi-naive driver's own statements, so the
#: staged and fast sharded ratios must stay within 5% of the
#: single-connection driver **even on one CPU**.  The floor is applied
#: exactly to the *committed baseline's* acceptance rows on every ``--check``
#: (full-run, multi-repetition numbers: a regenerated baseline below the
#: floor is refused outright) and to the live run's rows — at face value on
#: full runs, relaxed by :data:`SMOKE_NOISE_ALLOWANCE` on smoke runs.
SHARDED_OVERHEAD_FLOOR = 0.95

#: Smoke closure rows time ~10–20 ms workloads on shared 1-CPU CI runners,
#: where run-to-run scheduler noise is far larger than the 5% the floor
#: resolves (observed paired-median swing: ±10%).  A smoke run therefore
#: gates the live ratio at ``SHARDED_OVERHEAD_FLOOR * SMOKE_NOISE_ALLOWANCE``
#: — still far above the pre-collapse ratios (0.56–0.75) this floor exists
#: to catch — while the exact floor is enforced on the committed baseline.
SMOKE_NOISE_ALLOWANCE = 0.85

#: The multi-core acceptance target (ROADMAP item 1): with at least two real
#: cores the sharded fast path must clear this factor over single-connection
#: on the file-backed acceptance row.  On smaller machines the gate is
#: skipped with a LOUD warning — never silently.
PARALLEL_WIN_SPEEDUP = 1.8

#: Every section ``run_benchmark`` can produce, in report order.  ``--axes``
#: selects a subset; a partial report is marked ``meta.partial`` and refused
#: by ``--check`` (the committed baseline is always a full run).
BENCH_AXES = (
    "closure",
    "sqlite_closure",
    "sqlite_file_closure",
    "wcoj",
    "end_to_end",
    "compare",
    "maintenance",
    "counting",
    "single_pass",
)

#: PR 2's recorded semi-naive seconds on the SQLite mas/20@8.0 closure
#: (BENCH_fixpoint.json at commit 0d28ef4) — the double-pass baseline the
#: single-pass acceptance criterion is measured against.
PR2_SQLITE_SEMI_SECONDS = 0.054607


def _dataset(workload: str, scale: float):
    if workload == "mas":
        return generate_mas(scale=scale, seed=SEED)
    return generate_tpch(scale=scale, seed=SEED)


def _program(workload: str, dataset, program_id: str):
    if workload == "mas":
        return mas_programs(dataset, (program_id,))[program_id]
    return tpch_programs(dataset, (program_id,))[program_id]


def _backend_factory(dataset, backend: str, workdir: Path):
    """A zero-argument factory producing one fresh database per repetition."""
    if backend == "memory":
        return dataset.db.clone
    if backend == "sqlite":
        base = SQLiteDatabase.from_database(dataset.db)
        return base.clone
    assert backend == "sqlite-file"
    counter = [0]

    def fresh() -> SQLiteDatabase:
        counter[0] += 1
        path = workdir / f"bench_{id(dataset)}_{counter[0]}.db"
        if path.exists():
            path.unlink()
        return SQLiteDatabase.from_database(dataset.db, path=str(path))

    return fresh


def _time_closure(factory, program, engine: str, repetitions: int, **options):
    """Best-of-N wall clock for one closure run.

    Returns ``(seconds, result, deltas)`` with ``deltas`` the final delta
    extent of the last repetition — the differential evidence for paths that
    do not materialise assignments.  Databases are closed after use so the
    file-backed axis never leaks handles into the temp directory cleanup.
    """
    timings = _interleaved_closures(
        factory, program, repetitions, [("only", engine, options)],
    )
    return timings["only"]


def _interleaved_closures(factory, program, repetitions: int, runs):
    """Best-of-N wall clock for several engines, repetitions interleaved.

    ``runs`` is a list of ``(key, engine, options)``; each repetition runs
    every engine once, in order, and the per-engine best is kept.  The
    interleaving is what makes the engine-vs-engine *ratios* trustworthy on
    a noisy shared runner: consecutive-block timing lets slow machine drift
    (cache state, frequency scaling, a neighbour burning the core) bias
    whichever engine ran in the slow window — observed at ±20% on ~60 ms
    workloads — while alternating the engines within each repetition gives
    every engine the same exposure to the drift.

    Returns ``{key: (best_seconds, result, deltas)}`` with ``deltas`` the
    final delta extent of the key's last repetition.
    """
    best = {key: float("inf") for key, _, _ in runs}
    result = {}
    deltas = {}
    for _ in range(repetitions):
        for key, engine, options in runs:
            working = factory()
            start = time.perf_counter()
            result[key] = run_closure(working, program, engine=engine, **options)
            best[key] = min(best[key], time.perf_counter() - start)
            deltas[key] = set(working.all_deltas())
            if isinstance(working, SQLiteDatabase):
                working.close()
    return {key: (best[key], result[key], deltas[key]) for key in best}


def bench_closures(
    scales: Dict[str, List[float]],
    repetitions: int,
    backend: str = "memory",
    workdir: Path | None = None,
) -> List[dict]:
    """Naive vs semi-naive closure timings on one backend.

    SQLite backends additionally record the install-only fast path
    (``semi_naive_fast_seconds``); every repetition runs on a fresh copy, so
    the semi-naive driver always starts from untouched frontier generations.
    """
    rows: List[dict] = []
    for workload, program_id in CLOSURE_PROGRAMS:
        for scale in scales[workload]:
            dataset = _dataset(workload, scale)
            program = _program(workload, dataset, program_id)
            factory = _backend_factory(dataset, backend, workdir or Path("."))
            # All engines for this row are timed by one interleaved loop —
            # the sharded/fast columns are consumed as *ratios*, and ratios
            # taken from consecutive blocks soak up machine drift.
            runs = [
                ("naive", "naive", {}),
                ("semi", "semi-naive", {}),
            ]
            shard_ctx = None
            if backend != "memory":
                # Sharded engine: 4-way hash partition, workers auto-fitted
                # to the machine (recorded per row — ratios from different
                # core counts are not comparable).  The staged ratio is
                # sharded vs the single-connection staged path, the fast
                # ratio sharded-fast vs the single-connection fast path.
                shard_ctx = EvalContext(shards=BENCH_SHARDS)
                runs += [
                    ("fast", "semi-naive", {"collect_assignments": False}),
                    ("sharded", "sharded", {"context": shard_ctx}),
                    (
                        "sharded_fast",
                        "sharded",
                        {
                            "context": EvalContext(shards=BENCH_SHARDS),
                            "collect_assignments": False,
                        },
                    ),
                ]
            timed = _interleaved_closures(factory, program, repetitions, runs)
            naive_seconds, naive, naive_deltas = timed["naive"]
            semi_seconds, semi, semi_deltas = timed["semi"]
            # The benchmark doubles as a differential check.
            naive_signatures = {a.signature() for a in naive.assignments}
            semi_signatures = {a.signature() for a in semi.assignments}
            if naive_signatures != semi_signatures or naive_deltas != semi_deltas:
                raise AssertionError(
                    f"{backend} {workload}/{program_id}@{scale}: engines disagree",
                )
            row = {
                "backend": backend,
                "workload": workload,
                "program": program_id,
                "scale": scale,
                "tuples": dataset.total_tuples,
                "assignments": len(naive.assignments),
                "naive_seconds": round(naive_seconds, 6),
                "semi_naive_seconds": round(semi_seconds, 6),
                "naive_rounds": naive.rounds,
                "semi_naive_rounds": semi.rounds,
                "speedup": round(naive_seconds / max(semi_seconds, 1e-9), 3),
            }
            if backend != "memory":
                fast_seconds, fast, fast_deltas = timed["fast"]
                # The fast path materialises no assignments, so its delta
                # fixpoint is compared against the naive oracle directly.
                if fast.rounds != semi.rounds or fast_deltas != naive_deltas:
                    raise AssertionError(
                        f"{backend} {workload}/{program_id}@{scale}: fast path "
                        "diverged from the oracle",
                    )
                row["semi_naive_fast_seconds"] = round(fast_seconds, 6)
                row["fast_speedup"] = round(
                    naive_seconds / max(fast_seconds, 1e-9), 3,
                )
                sharded_seconds, sharded, sharded_deltas = timed["sharded"]
                sharded_signatures = {a.signature() for a in sharded.assignments}
                if (
                    sharded_signatures != naive_signatures
                    or sharded_deltas != naive_deltas
                    or sharded.rounds != semi.rounds
                ):
                    raise AssertionError(
                        f"{backend} {workload}/{program_id}@{scale}: sharded "
                        "engine diverged from the oracle",
                    )
                sharded_fast_seconds, _, sharded_fast_deltas = timed["sharded_fast"]
                if sharded_fast_deltas != naive_deltas:
                    raise AssertionError(
                        f"{backend} {workload}/{program_id}@{scale}: sharded "
                        "fast path diverged from the oracle",
                    )
                row["shards"] = BENCH_SHARDS
                row["workers"] = shard_ctx.worker_count()
                row["sharded_seconds"] = round(sharded_seconds, 6)
                row["sharded_speedup"] = round(
                    semi_seconds / max(sharded_seconds, 1e-9), 3,
                )
                row["sharded_fast_seconds"] = round(sharded_fast_seconds, 6)
                row["sharded_fast_speedup"] = round(
                    fast_seconds / max(sharded_fast_seconds, 1e-9), 3,
                )
            rows.append(row)
    return rows


@contextlib.contextmanager
def _forced_plan(kind: str | None):
    """Temporarily force (or clear) ``REPRO_FORCE_PLAN`` around a timed run."""
    previous = os.environ.get(PLAN_ENV)
    if kind is None:
        os.environ.pop(PLAN_ENV, None)
    else:
        os.environ[PLAN_ENV] = kind
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(PLAN_ENV, None)
        else:
            os.environ[PLAN_ENV] = previous


def bench_wcoj(scales: List[float], repetitions: int) -> List[dict]:
    """Binary vs worst-case-optimal join plans on the cyclic workloads.

    In-memory backend, semi-naive engine, install-only runs: the same closure
    is timed once with every rule forced onto the binary planned search and
    once forced onto the generic-join path (``REPRO_FORCE_PLAN``), so
    ``wcoj_speedup`` isolates the join-evaluation strategy.  Each row also
    records the planner's **unforced** classification (``auto_plan_kinds``) —
    asserted here to route every cyclic program to wcoj — plus the wcoj
    :class:`~repro.datalog.context.QueryStats` counters, and the smallest
    scale doubles as a differential check of both plans against the naive
    oracle.
    """
    rows: List[dict] = []
    for scale in scales:
        dataset = generate_cyclic(scale=scale, seed=SEED)
        programs = cyclic_programs(dataset.hub)
        for name, program in programs.items():
            if scale == scales[0]:
                oracle = run_closure(
                    dataset.fresh_db(), program.rules, engine="naive",
                )
                oracle_signatures = {a.signature() for a in oracle.assignments}
                for kind in (PLAN_BINARY, PLAN_WCOJ):
                    with _forced_plan(kind):
                        result = run_closure(
                            dataset.fresh_db(),
                            program.rules,
                            engine="semi-naive",
                            context=EvalContext(),
                        )
                    forced = {a.signature() for a in result.assignments}
                    if forced != oracle_signatures:
                        raise AssertionError(
                            f"cyclic/{name}@{scale}: forced {kind} plan "
                            "diverged from the naive oracle",
                        )
            timings: Dict[str, float] = {}
            run_stats: Dict[str, object] = {}
            for kind in (PLAN_BINARY, PLAN_WCOJ):
                best = float("inf")
                context = None
                with _forced_plan(kind):
                    for _ in range(repetitions):
                        context = EvalContext()
                        working = dataset.fresh_db()
                        start = time.perf_counter()
                        run_closure(
                            working,
                            program.rules,
                            engine="semi-naive",
                            context=context,
                            collect_assignments=False,
                        )
                        best = min(best, time.perf_counter() - start)
                timings[kind] = best
                run_stats[kind] = context.stats
            with _forced_plan(None):
                planner = EvalContext().planner(dataset.db)
                auto_kinds = sorted(
                    {planner.plan(rule).kind for rule in program.rules},
                )
            if PLAN_WCOJ not in auto_kinds:
                raise AssertionError(
                    f"cyclic/{name}@{scale}: the width classifier routed no "
                    f"rule to wcoj (kinds: {auto_kinds})",
                )
            wcoj_stats = run_stats[PLAN_WCOJ]
            rows.append(
                {
                    "backend": "memory",
                    "workload": "cyclic",
                    "program": name,
                    "scale": scale,
                    "tuples": dataset.total_tuples,
                    "binary_seconds": round(timings[PLAN_BINARY], 6),
                    "wcoj_seconds": round(timings[PLAN_WCOJ], 6),
                    "wcoj_speedup": round(
                        timings[PLAN_BINARY] / max(timings[PLAN_WCOJ], 1e-9), 3
                    ),
                    "auto_plan_kinds": auto_kinds,
                    "wcoj_rules": wcoj_stats.wcoj_rules,
                    "wcoj_intersections": wcoj_stats.wcoj_intersections,
                    "width_estimates": wcoj_stats.width_estimates,
                },
            )
    return rows


def bench_end_to_end(scale: float, repetitions: int) -> List[dict]:
    """Figure-6-style end-semantics runs (full repair, not just the closure)."""
    rows: List[dict] = []
    dataset = generate_mas(scale=scale, seed=SEED)
    for program_id in END_TO_END_PROGRAMS:
        program = mas_programs(dataset, (program_id,))[program_id]
        timings = {}
        results = {}
        for engine in ("naive", "semi-naive"):
            best = float("inf")
            for _ in range(repetitions):
                start = time.perf_counter()
                results[engine] = end_semantics(dataset.db, program, engine=engine)
                best = min(best, time.perf_counter() - start)
            timings[engine] = best
        if results["naive"].deleted != results["semi-naive"].deleted:
            raise AssertionError(f"end semantics disagree on program {program_id}")
        rows.append(
            {
                "workload": "mas",
                "program": program_id,
                "scale": scale,
                "deleted": results["naive"].size,
                "naive_seconds": round(timings["naive"], 6),
                "semi_naive_seconds": round(timings["semi-naive"], 6),
                "speedup": round(
                    timings["naive"] / max(timings["semi-naive"], 1e-9), 3
                ),
            },
        )
    return rows


def bench_compare(scale: float, repetitions: int) -> List[dict]:
    """RepairEngine.compare(): one shared EvalContext vs four cold engines.

    ``shared`` runs all four semantics through a single engine (plans and
    compiled variants built once); ``cold`` creates a fresh engine — hence a
    fresh context — per semantics, the pre-sharing behaviour.
    """
    rows: List[dict] = []
    dataset = generate_mas(scale=scale, seed=SEED)
    program = mas_programs(dataset, (COMPARE_PROGRAM,))[COMPARE_PROGRAM]
    for backend in ("memory", "sqlite"):
        db = (
            SQLiteDatabase.from_database(dataset.db)
            if backend == "sqlite"
            else dataset.db
        )
        shared_best = float("inf")
        for _ in range(repetitions):
            engine = RepairEngine(db, program)
            start = time.perf_counter()
            shared_results = engine.repair_all()
            shared_best = min(shared_best, time.perf_counter() - start)
        cold_best = float("inf")
        for _ in range(repetitions):
            # Engines (and their fresh contexts) are constructed outside the
            # timed region, so the cold/shared delta measures only the plan
            # and compiled-variant reuse, not validation overhead.
            cold_engines = {member: RepairEngine(db, program) for member in Semantics}
            start = time.perf_counter()
            cold_results = {
                member: cold_engines[member].repair(member) for member in Semantics
            }
            cold_best = min(cold_best, time.perf_counter() - start)
        for member in Semantics:
            if shared_results[member].deleted != cold_results[member].deleted:
                raise AssertionError(
                    f"compare axis: {member.value} disagrees between shared "
                    f"and cold contexts on {backend}",
                )
        rows.append(
            {
                "backend": backend,
                "workload": "mas",
                "program": COMPARE_PROGRAM,
                "scale": scale,
                "shared_seconds": round(shared_best, 6),
                "cold_seconds": round(cold_best, 6),
                "speedup": round(cold_best / max(shared_best, 1e-9), 3),
            },
        )
    return rows


def bench_maintenance(scale: float, repetitions: int) -> List[dict]:
    """Per-batch incremental maintenance vs from-scratch recompute (mas).

    A :class:`~repro.service.RepairService` loads the deep-cascade
    acceptance program once, then absorbs :data:`MAINTENANCE_BATCHES`
    alternating delete / re-insert batches of :data:`MAINTENANCE_BATCH_SIZE`
    deterministic base facts.  The comparison recomputes the full fixpoint
    from scratch after every one of the same updates — today's only
    alternative to the service.  ``speedup`` is total recompute seconds over
    total maintenance seconds; with small batches the incremental drivers
    touch a few facts per batch while the recompute redoes the whole closure,
    so the ratio is the headline number of the maintenance layer.  The final
    delta extents of both sides are asserted identical per repetition.

    A third leg absorbs the same plan with sharded maintenance
    (``EvalContext(shards=BENCH_SHARDS, shard_maintenance=True)``):
    ``sharded_maintain_seconds`` / ``sharded_speedup`` record the serial-
    drivers-over-sharded-drivers ratio per batch, and the deltas are asserted
    equal to the serial leg (the byte-identical contract).  Like every
    parallel ratio, ``sharded_speedup`` is only gated by ``--check`` when the
    run's ``meta.cpus`` reaches the baseline's.
    """
    rows: List[dict] = []
    dataset = generate_mas(scale=scale, seed=SEED)
    program = mas_programs(dataset, (MAINTENANCE_PROGRAM,))[MAINTENANCE_PROGRAM]
    schema = dataset.db.schema
    pool = sorted(
        (
            item
            for relation in schema.relations
            for item in dataset.db.candidates(relation, {})
        ),
        key=Fact.sort_key,
    )
    rng = random.Random(SEED)
    plan: List[tuple] = []
    for _ in range(MAINTENANCE_BATCHES):
        sample = rng.sample(pool, min(MAINTENANCE_BATCH_SIZE, len(pool)))
        plan.append(("delete", sample))
        plan.append(("insert", sample))

    for backend in ("memory", "sqlite"):

        def fresh():
            if backend == "memory":
                return dataset.db.clone()
            return SQLiteDatabase.from_database(dataset.db)

        load_best = float("inf")
        maintain_best = float("inf")
        maintained_deltas = None
        stats = None
        for _ in range(repetitions):
            db = fresh()
            start = time.perf_counter()
            service = RepairService(db, program)
            load_best = min(load_best, time.perf_counter() - start)
            start = time.perf_counter()
            for kind, sample in plan:
                if kind == "delete":
                    service.apply(deletes=sample)
                else:
                    service.apply(inserts=sample)
            maintain_best = min(maintain_best, time.perf_counter() - start)
            maintained_deltas = {
                (item.relation, item.values) for item in db.all_deltas()
            }
            stats = service.stats
            if isinstance(db, SQLiteDatabase):
                db.close()

        # Sharded maintenance leg: the same plan absorbed with the per-batch
        # discovery/propagation/DRed drivers fanned over the worker pool
        # (byte-identical contract, so the deltas must match the serial leg).
        sharded_best = float("inf")
        sharded_deltas = None
        sharded_ctx = None
        for _ in range(repetitions):
            db = fresh()
            context = EvalContext(shards=BENCH_SHARDS, shard_maintenance=True)
            service = RepairService(db, program, context=context)
            start = time.perf_counter()
            for kind, sample in plan:
                if kind == "delete":
                    service.apply(deletes=sample)
                else:
                    service.apply(inserts=sample)
            sharded_best = min(sharded_best, time.perf_counter() - start)
            sharded_deltas = {
                (item.relation, item.values) for item in db.all_deltas()
            }
            sharded_ctx = context
            if isinstance(db, SQLiteDatabase):
                db.close()

        recompute_best = float("inf")
        recompute_deltas = None
        for _ in range(repetitions):
            base = fresh()
            start = time.perf_counter()
            for kind, sample in plan:
                if kind == "delete":
                    for item in sample:
                        base.drop_active(item)
                else:
                    base.insert_all(sample)
                working = base.clone()
                run_closure(working, program, collect_assignments=False)
                recompute_deltas = {
                    (item.relation, item.values) for item in working.all_deltas()
                }
                if isinstance(working, SQLiteDatabase):
                    working.close()
            recompute_best = min(recompute_best, time.perf_counter() - start)
            if isinstance(base, SQLiteDatabase):
                base.close()

        if maintained_deltas != recompute_deltas:
            raise AssertionError(
                f"maintenance axis: maintained closure disagrees with "
                f"from-scratch recompute on {backend}",
            )
        if sharded_deltas != maintained_deltas:
            raise AssertionError(
                f"maintenance axis: sharded maintenance disagrees with the "
                f"serial drivers on {backend}",
            )
        batches = len(plan)
        rows.append(
            {
                "backend": backend,
                "workload": "mas",
                "program": MAINTENANCE_PROGRAM,
                "scale": scale,
                "batches": batches,
                "batch_size": MAINTENANCE_BATCH_SIZE,
                "load_seconds": round(load_best, 6),
                "maintain_seconds": round(maintain_best, 6),
                "recompute_seconds": round(recompute_best, 6),
                "per_batch_maintain_seconds": round(maintain_best / batches, 6),
                "per_batch_recompute_seconds": round(recompute_best / batches, 6),
                "speedup": round(recompute_best / max(maintain_best, 1e-9), 3),
                "shards": BENCH_SHARDS,
                "workers": sharded_ctx.worker_count(),
                "sharded_maintain_seconds": round(sharded_best, 6),
                "per_batch_sharded_maintain_seconds": round(
                    sharded_best / batches, 6,
                ),
                # Serial drivers over sharded drivers: > 1 means the fan-out
                # wins; cpus-gated in --check like every sharded ratio.
                "sharded_speedup": round(
                    maintain_best / max(sharded_best, 1e-9), 3,
                ),
                "maint_shard_jobs": (
                    sharded_ctx.stats.maint_discovery_shards
                    + sharded_ctx.stats.maint_propagate_shards
                    + sharded_ctx.stats.maint_dred_shards
                ),
                "overdeleted": stats.overdeleted,
                "rederived": stats.rederived,
            },
        )
    return rows


def counting_workload():
    """The counting-deletion chain: two independent base-only seeds.

    ``S(0)`` and ``T(0)`` each give ``delta N(0)`` a base-only derivation;
    the recursive rule then walks the chain.  Deleting one seed leaves every
    closure fact with a positive base-only support count, so the counting
    fast path decides the batch without the DRed detour.
    """
    schema = Schema.from_relations(
        [
            RelationSchema.of("E", "x:int", "y:int"),
            RelationSchema.of("N", "x:int"),
            RelationSchema.of("S", "x:int"),
            RelationSchema.of("T", "x:int"),
        ],
    )
    program = DeltaProgram.from_text(
        """
        delta N(x) :- N(x), S(x).
        delta N(x) :- N(x), T(x).
        delta N(y) :- N(y), E(x, y), delta N(x).
        """,
    )
    facts = (
        [fact("E", i, i + 1) for i in range(COUNTING_CHAIN)]
        + [fact("N", i) for i in range(COUNTING_CHAIN + 1)]
        + [fact("S", 0), fact("T", 0)]
    )
    return schema, program, facts


def bench_counting(repetitions: int) -> List[dict]:
    """Counting-based deletion vs exact DRed on the redundant-support chain.

    Two :class:`~repro.service.RepairService` instances load the
    :func:`counting_workload` closure, then absorb the same alternating
    delete / re-insert batches of the redundant seed ``T(0)``.  The
    ``counting=True`` service decides every delete batch from base-only
    support counts alone (asserted: ``counted_deletes`` increments once per
    delete batch, no fallback); the ``counting=False`` service runs the
    exact DRed detour, over-deleting and re-deriving the whole chain each
    time.  ``speedup`` is exact-DRed maintenance seconds over counting
    maintenance seconds, and the final delta extents of both services are
    asserted identical per backend.
    """
    schema, program, facts = counting_workload()
    plan: List[tuple] = []
    for _ in range(COUNTING_BATCHES):
        plan.append(("delete", [fact("T", 0)]))
        plan.append(("insert", [fact("T", 0)]))

    rows: List[dict] = []
    for backend in ("memory", "sqlite"):

        def fresh():
            if backend == "memory":
                return Database.from_facts(schema, facts)
            db = SQLiteDatabase(schema)
            db.insert_all(facts)
            return db

        timings = {}
        deltas = {}
        counting_stats = None
        exact_stats = None
        load_best = float("inf")
        for counting in (True, False):
            best = float("inf")
            for _ in range(repetitions):
                db = fresh()
                start = time.perf_counter()
                service = RepairService(db, program, counting=counting)
                if counting:
                    load_best = min(load_best, time.perf_counter() - start)
                start = time.perf_counter()
                for kind, sample in plan:
                    if kind == "delete":
                        service.apply(deletes=sample)
                    else:
                        service.apply(inserts=sample)
                best = min(best, time.perf_counter() - start)
                deltas[counting] = {
                    (item.relation, item.values) for item in db.all_deltas()
                }
                if counting:
                    counting_stats = service.stats
                else:
                    exact_stats = service.stats
                if isinstance(db, SQLiteDatabase):
                    db.close()
            timings[counting] = best

        if deltas[True] != deltas[False]:
            raise AssertionError(
                "counting axis: counting-maintained closure disagrees with "
                f"exact DRed on {backend}",
            )
        if counting_stats.counted_deletes != COUNTING_BATCHES:
            raise AssertionError(
                "counting axis: fast path did not decide every delete batch "
                f"on {backend} ({counting_stats.counted_deletes}/"
                f"{COUNTING_BATCHES} counted, "
                f"{counting_stats.dred_fallbacks} fallbacks)",
            )
        batches = len(plan)
        rows.append(
            {
                "backend": backend,
                "workload": "chain",
                "program": COUNTING_PROGRAM,
                "scale": 1.0,
                "chain": COUNTING_CHAIN,
                "batches": batches,
                "load_seconds": round(load_best, 6),
                "counting_seconds": round(timings[True], 6),
                "exact_seconds": round(timings[False], 6),
                "per_batch_counting_seconds": round(timings[True] / batches, 6),
                "per_batch_exact_seconds": round(timings[False] / batches, 6),
                "speedup": round(timings[False] / max(timings[True], 1e-9), 3),
                "counted_deletes": counting_stats.counted_deletes,
                "dred_fallbacks": counting_stats.dred_fallbacks,
                "exact_overdeleted": exact_stats.overdeleted,
                "exact_rederived": exact_stats.rederived,
            },
        )
    return rows


def assert_single_pass(scale: float = 1.0) -> dict:
    """Verify the staged and zero-DDL disciplines with a query-counter hook.

    Runs the mas/20 closure once per path on a SQLite copy with a statement
    hook counting the compiler's tag comments, and asserts:

    * fast path — zero assignment SELECTs *and* zero staged inserts: the only
      join per variant is the install itself;
    * staged path — zero assignment SELECTs and exactly one staged insert per
      staged install: the join never runs twice for the same variant;
    * keyed stage tables — no ``DROP TABLE`` ever, and ``CREATE TEMP TABLE``
      only on the first staging of each variant width: steady-state rounds
      issue zero DDL (the multi-round mas/20 cascade stages far more joins
      than it creates tables);
    * sharded fast path (adaptive, the default) — zero assignment SELECTs,
      zero staged inserts, zero stage DDL **and zero partitioned statements**:
      with one worker every round's frontier collapses, so the engine runs
      the semi-naive fast path's own direct installs
      (``QueryStats.direct_installs``) — the never-slower contract is a
      statement-level identity, not just a timing ratio;
    * sharded fan-out path (``collapse_min=0`` pins the historical full
      fan-out) — zero staged inserts and zero stage DDL: every statement is
      a partitioned shard-install join, ``QueryStats.shard_selects``
      counting exactly ``shards`` per variant execution.
    """
    from collections import Counter

    dataset = generate_mas(scale=scale, seed=SEED)
    program = mas_programs(dataset, ("20",))["20"]
    base = SQLiteDatabase.from_database(dataset.db)
    observed = {}
    for path_name, engine, options, make_context in (
        ("fast", "semi-naive", {"collect_assignments": False}, EvalContext),
        ("staged", "semi-naive", {}, EvalContext),
        (
            "sharded-fast",
            "sharded",
            {"collect_assignments": False},
            lambda: EvalContext(shards=BENCH_SHARDS, workers=1),
        ),
        (
            "sharded-fanout",
            "sharded",
            {"collect_assignments": False},
            lambda: EvalContext(shards=BENCH_SHARDS, workers=1, collapse_min=0),
        ),
    ):
        working = base.clone()
        counts: Counter = Counter()

        def hook(sql: str, counts=counts) -> None:
            if TAG_ASSIGN_SELECT in sql:
                counts["assign_select"] += 1
            if TAG_STAGE in sql:
                counts["stage"] += 1
            if "DROP TABLE" in sql:
                counts["drop_table"] += 1
            if "CREATE TEMP TABLE" in sql:
                counts["create_temp_table"] += 1

        working.add_statement_hook(hook)
        context = make_context()
        run_closure(working, program, engine=engine, context=context, **options)
        if counts["assign_select"] != 0:
            raise AssertionError(
                f"{path_name} path re-ran {counts['assign_select']} assignment "
                "SELECT joins — the single-pass discipline is broken",
            )
        if counts["drop_table"] != 0:
            raise AssertionError(
                f"{path_name} path dropped {counts['drop_table']} tables — the "
                "keyed stage tables must persist across rounds",
            )
        if path_name == "fast" and counts["stage"] != 0:
            raise AssertionError("fast path staged rows despite no observer")
        if path_name == "fast" and counts["create_temp_table"] != 0:
            raise AssertionError("fast path created stage tables despite no observer")
        if path_name == "staged" and not (
            counts["stage"] == context.stats.staged_installs > 0
        ):
            raise AssertionError("staged path did not stage exactly once per install")
        if path_name == "staged" and not (
            0
            < counts["create_temp_table"]
            == context.stats.stage_ddl
            < counts["stage"]
        ):
            raise AssertionError(
                "staged path issued per-round DDL — steady-state rounds must "
                "reuse the keyed stage tables "
                f"(creates={counts['create_temp_table']}, stages={counts['stage']})",
            )
        if path_name == "sharded-fast":
            if counts["stage"] != 0 or counts["create_temp_table"] != 0:
                raise AssertionError(
                    "sharded fast path staged rows despite no observer",
                )
            if context.stats.shard_selects != 0:
                raise AssertionError(
                    "adaptive sharded fast path ran "
                    f"{context.stats.shard_selects} partitioned SELECTs with "
                    "one worker — dynamic collapse must fold every round "
                    "onto the semi-naive direct-install statements",
                )
            if not (context.stats.direct_installs > 0):
                raise AssertionError(
                    "adaptive sharded fast path recorded no direct installs "
                    "— the collapsed rounds did not take the fast path",
                )
            if not (context.stats.collapsed_rounds > 0):
                raise AssertionError(
                    "adaptive sharded fast path recorded no collapsed "
                    "rounds despite running with one worker",
                )
        if path_name == "sharded-fanout":
            if counts["stage"] != 0 or counts["create_temp_table"] != 0:
                raise AssertionError(
                    "sharded fan-out path staged rows despite no observer",
                )
            if not (
                context.stats.shard_selects
                == BENCH_SHARDS * context.stats.shard_installs
                > 0
            ):
                raise AssertionError(
                    "sharded fan-out path did not run exactly one "
                    "partitioned join per (variant, shard) "
                    f"(selects={context.stats.shard_selects}, "
                    f"installs={context.stats.shard_installs})",
                )
        observed[path_name] = {
            **dict(counts),
            "joins": context.stats.joins(),
            "shard_selects": context.stats.shard_selects,
            "shard_installs": context.stats.shard_installs,
            "direct_installs": context.stats.direct_installs,
            "collapsed_rounds": context.stats.collapsed_rounds,
            "effective_shards": context.stats.effective_shards,
        }
    return observed


def check_against_baseline(
    report: dict, baseline: dict, tolerance: float = 0.35,
) -> List[str]:
    """Compare a (smoke) run's speedup ratios against the committed baseline.

    For every closure row present in both reports — matched on (backend,
    workload, program, scale) — the run's naive/semi-naive ``speedup``,
    staged/fast ``fast_speedup`` and sharded-vs-single ``sharded_speedup`` /
    ``sharded_fast_speedup`` ratios must stay above ``tolerance`` times
    the committed value.  The engine-vs-engine ratios are machine-independent
    (both sides of each ratio run on the same box), so a generous band
    absorbs CI noise while a real regression — e.g. losing the single-pass
    or zero-DDL discipline — collapses the ratio far below it.  The
    *sharded* ratios are additionally **core-count-dependent** (the worker
    pool can only overlap shard SELECTs when cores exist), so they are gated
    only when this run has at least the baseline's ``meta.cpus`` — a
    smaller-than-baseline runner skips them instead of failing spuriously.

    A ratio column present on only **one** side of a matched row pair — a new
    column the committed baseline predates, or a column this run stopped
    producing — is warned about **loudly** (one stderr line per row and
    column) instead of being silently skipped: a stale baseline must not
    quietly disable the gate for a new metric.  Columns absent from *both*
    sides (e.g. sharded ratios on memory rows) stay silent by design.

    ``wcoj`` rows carry one further **absolute** gate: at the largest benched
    cyclic scale of this run, the :data:`WCOJ_GATE_PROGRAMS` rows must hold
    ``wcoj_speedup >= WCOJ_GATE_SPEEDUP`` regardless of the baseline — the
    worst-case-optimal acceptance criterion, not a drift band.

    The SQLite closure sections carry two more absolute gates on the
    acceptance rows (mas/20 at the largest benched scale):

    * the **never-slower floor** — ``sharded_speedup`` and
      ``sharded_fast_speedup`` must each clear
      :data:`SHARDED_OVERHEAD_FLOOR`, on any machine: dynamic shard
      collapse makes the 1-CPU sharded run execute the single-connection
      driver's own statements, so overhead beyond 5% is a regression, not
      a core-count artefact.  The exact floor applies to the committed
      baseline's acceptance rows (full-run numbers) on every ``--check``;
      the live run's rows are gated with :data:`SMOKE_NOISE_ALLOWANCE`
      relaxation under ``--smoke``, where ~15 ms workloads cannot resolve
      5% on a shared runner;
    * the **parallel win** — with ``meta.cpus >= 2`` the file-backed
      acceptance row must hold ``sharded_fast_speedup >=``
      :data:`PARALLEL_WIN_SPEEDUP`; on a 1-CPU runner this gate is
      skipped with a LOUD stderr warning, never silently.

    A report marked ``meta.partial`` (produced with ``--axes``) is refused
    outright: the committed baseline is a full run, and gating a subset
    would silently disarm every check on the missing axes.

    Returns the list of violations (empty = gate passes).  A run with
    **zero** comparable rows is itself a violation: key drift (renamed
    programs, changed scales, restructured baseline) must fail loudly
    instead of silently disabling the gate.
    """
    problems: List[str] = []
    meta = report.get("meta", {})
    if meta.get("partial"):
        return [
            "report is partial (axes="
            + ",".join(meta.get("axes", []))
            + ") — --check refuses to gate a subset against the full "
            "committed baseline; re-run without --axes",
        ]
    compared = 0
    run_cpus = meta.get("cpus") or 1
    baseline_cpus = baseline.get("meta", {}).get("cpus") or 1
    gate_sharded = run_cpus >= baseline_cpus

    def by_key(rows: List[dict]) -> Dict[tuple, dict]:
        return {
            (row["backend"], row["workload"], row["program"], row["scale"]): row
            for row in rows
        }

    section_ratios = {
        "closure": (
            "speedup",
            "fast_speedup",
            "sharded_speedup",
            "sharded_fast_speedup",
        ),
        "sqlite_closure": (
            "speedup",
            "fast_speedup",
            "sharded_speedup",
            "sharded_fast_speedup",
        ),
        "sqlite_file_closure": (
            "speedup",
            "fast_speedup",
            "sharded_speedup",
            "sharded_fast_speedup",
        ),
        "wcoj": ("wcoj_speedup",),
        "maintenance": ("speedup", "sharded_speedup"),
        "counting": ("speedup",),
    }
    for section, ratios in section_ratios.items():
        committed = by_key(baseline.get(section, []))
        for row in report.get(section, []):
            key = (row["backend"], row["workload"], row["program"], row["scale"])
            base = committed.get(key)
            if base is None:
                continue
            for ratio in ratios:
                in_row = ratio in row
                in_base = ratio in base
                if not (in_row and in_base):
                    if in_row != in_base:
                        missing_from = "committed baseline" if in_row else "run"
                        print(
                            f"bench --check warning: {section} {key}: column "
                            f"{ratio!r} missing from the {missing_from}; this "
                            "ratio is NOT gated — refresh BENCH_fixpoint.json "
                            "(or restore the column) to re-arm it",
                            file=sys.stderr,
                        )
                    continue
                if ratio.startswith("sharded") and not gate_sharded:
                    # Downgraded, not silent: a smaller-than-baseline runner
                    # cannot reproduce a parallel ratio, but the reader must
                    # see the gate was disarmed rather than passed.
                    print(
                        f"bench --check warning: {section} {key}: {ratio} NOT "
                        f"gated — this run has {run_cpus} cpu(s) vs the "
                        f"baseline's {baseline_cpus}; parallel ratios are "
                        "only enforced on runners with at least the "
                        "baseline's cores",
                        file=sys.stderr,
                    )
                    continue
                compared += 1
                floor = base[ratio] * tolerance
                if row[ratio] < floor:
                    problems.append(
                        f"{section} {key}: {ratio} {row[ratio]:.3f} < "
                        f"{floor:.3f} (= {tolerance} x committed {base[ratio]:.3f})",
                    )
    wcoj_rows = report.get("wcoj", [])
    if wcoj_rows:
        largest_scale = max(row["scale"] for row in wcoj_rows)
        for row in wcoj_rows:
            if row["scale"] != largest_scale:
                continue
            if row["program"] not in WCOJ_GATE_PROGRAMS:
                continue
            compared += 1
            speedup = row.get("wcoj_speedup")
            if speedup is None:
                # A gate program that stopped reporting the ratio leaves the
                # acceptance criterion unverifiable — that is a failure, not
                # a skip (unlike the warn-only drift columns above).
                problems.append(
                    f"wcoj cyclic/{row['program']}@{largest_scale}: "
                    "wcoj_speedup column missing — the absolute "
                    "worst-case-optimal floor cannot be verified",
                )
            elif speedup < WCOJ_GATE_SPEEDUP:
                problems.append(
                    f"wcoj cyclic/{row['program']}@{largest_scale}: "
                    f"wcoj_speedup {speedup:.3f} < "
                    f"{WCOJ_GATE_SPEEDUP} (absolute worst-case-optimal floor)",
                )
    smoke_run = bool(meta.get("smoke"))
    run_floor = SHARDED_OVERHEAD_FLOOR * (
        SMOKE_NOISE_ALLOWANCE if smoke_run else 1.0
    )
    for section in ("sqlite_closure", "sqlite_file_closure"):
        sources = (
            # The committed baseline's full-run ratios are gated at the exact
            # floor on EVERY --check (smoke included): regenerating
            # BENCH_fixpoint.json with a below-floor acceptance row is itself
            # the regression the never-slower contract exists to refuse.
            ("committed baseline", baseline, SHARDED_OVERHEAD_FLOOR),
            ("this run", report, run_floor),
        )
        for origin, source, floor in sources:
            rows = [
                row
                for row in source.get(section, [])
                if row["workload"] == "mas" and row["program"] == "20"
            ]
            if not rows:
                continue
            acceptance = max(rows, key=lambda row: row["scale"])
            label = f"{section} mas/20@{acceptance['scale']} ({origin})"
            for ratio in ("sharded_speedup", "sharded_fast_speedup"):
                compared += 1
                value = acceptance.get(ratio)
                if value is None:
                    problems.append(
                        f"{label}: {ratio} column missing — the absolute "
                        "never-slower floor cannot be verified",
                    )
                elif value < floor:
                    allowance = (
                        " (smoke noise allowance applied)"
                        if floor != SHARDED_OVERHEAD_FLOOR
                        else ""
                    )
                    problems.append(
                        f"{label}: {ratio} {value:.3f} < {floor:.3f} "
                        "(absolute never-slower floor — dynamic shard "
                        "collapse must keep the sharded engine within 5% "
                        f"of single-connection even on 1 CPU){allowance}",
                    )
        rows = [
            row
            for row in report.get(section, [])
            if row["workload"] == "mas" and row["program"] == "20"
        ]
        acceptance = max(rows, key=lambda row: row["scale"]) if rows else None
        label = (
            f"{section} mas/20@{acceptance['scale']}" if acceptance else section
        )
        if section == "sqlite_file_closure" and acceptance is not None:
            if run_cpus >= 2:
                compared += 1
                value = acceptance.get("sharded_fast_speedup")
                if value is not None and value < PARALLEL_WIN_SPEEDUP:
                    problems.append(
                        f"{label}: sharded_fast_speedup {value:.3f} < "
                        f"{PARALLEL_WIN_SPEEDUP} (absolute multi-core "
                        f"target with {run_cpus} cpus — ROADMAP item 1)",
                    )
            else:
                print(
                    "bench --check warning: PARALLEL WIN NOT VERIFIED — "
                    f"{label}: the >= {PARALLEL_WIN_SPEEDUP}x multi-core "
                    f"target needs >= 2 cpus and this run has {run_cpus}; "
                    "the never-slower floor was still enforced, but the "
                    "speedup itself must be proven on a multi-core runner",
                    file=sys.stderr,
                )
    if compared == 0:
        problems.append(
            "no rows of this run matched the committed baseline — the gate "
            "compared nothing (program/scale/section drift?); refresh "
            "BENCH_fixpoint.json or fix the row keys",
        )
    return problems


def run_benchmark(smoke: bool = False, axes=None) -> dict:
    # Warm the lazily imported engine modules so single-repetition (smoke)
    # timings measure evaluation, not the first import.
    import repro.datalog.seminaive  # noqa: F401

    selected = tuple(BENCH_AXES) if axes is None else tuple(axes)
    unknown = sorted(set(selected) - set(BENCH_AXES))
    if unknown:
        raise ValueError(
            f"unknown bench axes {unknown}; valid axes: {', '.join(BENCH_AXES)}",
        )
    active = set(selected)
    partial = active != set(BENCH_AXES)

    # Smoke keeps two repetitions (best-of-2): a single repetition makes the
    # first, cold run the measurement, and cold-cache noise on the file-backed
    # axis is larger than the --check tolerance band.
    repetitions = 2 if smoke else 3
    # The closure axes feed the absolute never-slower floor, which leaves no
    # headroom for the heavy-tailed timing noise of a shared container —
    # repeated measurements on an idle 1-CPU box still swing ±20% on ~60 ms
    # closures.  Full (baseline-producing) runs therefore take extra
    # interleaved repetitions on those axes so the per-engine best settles.
    closure_repetitions = repetitions if smoke else repetitions + 2
    if smoke:
        scales = {"mas": [1.0], "tpch": [1.0]}
        file_scales = {"mas": [1.0], "tpch": [1.0]}
        end_scale = 1.0
        compare_scale = 1.0
        maintenance_scale = 1.0
        # One cyclic scale, chosen well past the crossover where the binary
        # plan's two-path blowup dominates (small scales sit too close to it
        # for the absolute --check floor).
        wcoj_scales = [3.0]
    else:
        scales = {"mas": [1.0, 2.0, 4.0, 8.0], "tpch": [1.0, 2.0, 4.0]}
        file_scales = {"mas": [1.0, 4.0, 8.0], "tpch": [1.0, 4.0]}
        end_scale = 4.0
        compare_scale = 2.0
        maintenance_scale = 2.0
        wcoj_scales = [1.0, 2.0, 3.0, 4.0]
    report: dict = {
        "meta": {
            "benchmark": "fixpoint-engines",
            "smoke": smoke,
            "repetitions": repetitions,
            "python": platform.python_version(),
            "machine": platform.machine(),
            # Sharded ratios are only comparable between machines with the
            # same core budget: on one CPU the worker pool cannot overlap
            # the per-shard SELECTs.
            "cpus": os.cpu_count(),
            # --axes marks the report partial; --check refuses such reports
            # (the committed baseline is always a full run).
            "axes": sorted(active),
            "partial": partial,
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        },
    }
    with tempfile.TemporaryDirectory(prefix="bench_fixpoint_") as tmp:
        workdir = Path(tmp)
        if "closure" in active:
            report["closure"] = bench_closures(scales, closure_repetitions)
        if "sqlite_closure" in active:
            report["sqlite_closure"] = bench_closures(
                scales, closure_repetitions, backend="sqlite",
            )
        if "sqlite_file_closure" in active:
            report["sqlite_file_closure"] = bench_closures(
                file_scales, closure_repetitions,
                backend="sqlite-file", workdir=workdir,
            )
    if "wcoj" in active:
        report["wcoj"] = bench_wcoj(wcoj_scales, repetitions)
    if "end_to_end" in active:
        report["end_to_end"] = bench_end_to_end(end_scale, repetitions)
    if "compare" in active:
        report["compare"] = bench_compare(compare_scale, repetitions)
    if "maintenance" in active:
        report["maintenance"] = bench_maintenance(maintenance_scale, repetitions)
    if "counting" in active:
        report["counting"] = bench_counting(repetitions)
    if "single_pass" in active:
        report["single_pass"] = assert_single_pass()
    report["summary"] = _summarise(report)
    return report


def _summarise(report: dict) -> dict:
    """Build the summary from whichever sections the run produced."""

    def deepest(rows):
        return [
            row
            for row in rows
            if row["workload"] == "mas" and row["program"] == "20"
        ][-1]

    summary: dict = {}
    closure_rows = report.get("closure")
    if closure_rows:
        largest = deepest(closure_rows)
        summary.update(
            largest_program=f"mas/20@{largest['scale']}",
            largest_program_speedup=largest["speedup"],
            max_closure_speedup=max(row["speedup"] for row in closure_rows),
            min_closure_speedup=min(row["speedup"] for row in closure_rows),
        )
    sqlite_rows = report.get("sqlite_closure")
    if sqlite_rows:
        sqlite_largest = deepest(sqlite_rows)
        summary.update(
            sqlite_largest_program=f"mas/20@{sqlite_largest['scale']}",
            sqlite_largest_program_speedup=sqlite_largest["speedup"],
            sqlite_largest_program_fast_speedup=sqlite_largest["fast_speedup"],
            sqlite_max_closure_speedup=max(
                row["speedup"] for row in sqlite_rows
            ),
            sqlite_min_closure_speedup=min(
                row["speedup"] for row in sqlite_rows
            ),
            # The acceptance ratio: single-pass semi-naive (both paths)
            # against PR 2's recorded double-pass semi-naive seconds on the
            # same workload.  Only meaningful for the full (non-smoke) run,
            # which measures the same mas/20@8.0 configuration.
            pr2_sqlite_semi_naive_seconds=PR2_SQLITE_SEMI_SECONDS,
            sqlite_staged_vs_pr2_semi=round(
                PR2_SQLITE_SEMI_SECONDS
                / max(sqlite_largest["semi_naive_seconds"], 1e-9),
                3,
            ),
            sqlite_fast_vs_pr2_semi=round(
                PR2_SQLITE_SEMI_SECONDS
                / max(sqlite_largest["semi_naive_fast_seconds"], 1e-9),
                3,
            ),
            sqlite_largest_program_sharded_speedup=sqlite_largest[
                "sharded_speedup"
            ],
        )
    file_rows = report.get("sqlite_file_closure")
    if file_rows:
        file_largest = deepest(file_rows)
        summary.update(
            sqlite_file_largest_program=f"mas/20@{file_largest['scale']}",
            sqlite_file_largest_program_speedup=file_largest["speedup"],
            sqlite_file_largest_program_fast_speedup=file_largest[
                "fast_speedup"
            ],
            # Sharded vs single-connection on the acceptance workload
            # (deep-cascade mas/20 at the deepest file-backed scale), with
            # the worker count that actually ran — the parallel win only
            # materialises when `meta.cpus` provides the cores.
            sharded_workers=file_largest["workers"],
            sqlite_file_largest_program_sharded_speedup=file_largest[
                "sharded_speedup"
            ],
            sqlite_file_largest_program_sharded_fast_speedup=file_largest[
                "sharded_fast_speedup"
            ],
        )
    end_rows = report.get("end_to_end")
    if end_rows:
        summary["end_semantics_geomean_speedup"] = round(
            _geomean([row["speedup"] for row in end_rows]), 3,
        )
    compare_rows = report.get("compare")
    if compare_rows:
        summary["compare_shared_vs_cold"] = {
            row["backend"]: row["speedup"] for row in compare_rows
        }
    maintenance_rows = report.get("maintenance")
    if maintenance_rows:
        # Incremental maintenance (RepairService) vs recompute-per-batch
        # on the acceptance workload: small batches must win decisively.
        summary.update(
            maintenance_speedups={
                row["backend"]: row["speedup"] for row in maintenance_rows
            },
            maintenance_min_speedup=min(
                row["speedup"] for row in maintenance_rows
            ),
        )
    counting_rows = report.get("counting")
    if counting_rows:
        # Counting-based deletion vs exact DRed on the redundant-support
        # chain: support counts must beat the over-delete/re-derive
        # detour when they can decide the batch.
        summary.update(
            counting_speedups={
                row["backend"]: row["speedup"] for row in counting_rows
            },
            counting_min_speedup=min(
                row["speedup"] for row in counting_rows
            ),
        )
    wcoj_rows = report.get("wcoj")
    if wcoj_rows:
        # Binary vs worst-case-optimal at the largest benched cyclic
        # scale; the gated programs must clear WCOJ_GATE_SPEEDUP.
        wcoj_largest = max(row["scale"] for row in wcoj_rows)
        summary.update(
            wcoj_largest_scale=wcoj_largest,
            wcoj_speedups={
                row["program"]: row["wcoj_speedup"]
                for row in wcoj_rows
                if row["scale"] == wcoj_largest
            },
            wcoj_min_gated_speedup=min(
                row["wcoj_speedup"]
                for row in wcoj_rows
                if row["scale"] == wcoj_largest
                and row["program"] in WCOJ_GATE_PROGRAMS
            ),
        )
    return summary


def _geomean(values: List[float]) -> float:
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values)) if values else 0.0


def _render(report: dict) -> str:
    lines = []
    meta = report.get("meta", {})
    if meta.get("partial"):
        lines.append(
            "PARTIAL run (--axes " + ",".join(meta.get("axes", [])) + "): "
            "not comparable to the committed full-run baseline",
        )
    for key, label in (
        ("closure", "in-memory"),
        ("sqlite_closure", "SQLite"),
        ("sqlite_file_closure", "SQLite file-backed"),
    ):
        if key not in report:
            continue
        lines.append(f"closure (naive vs semi-naive, {label} backend):")
        for row in report[key]:
            fast = (
                f" fast={row['semi_naive_fast_seconds']:.4f}s"
                f" ({row['fast_speedup']:.2f}x)"
                if "semi_naive_fast_seconds" in row
                else ""
            )
            sharded = (
                f" sharded={row['sharded_seconds']:.4f}s"
                f" ({row['sharded_speedup']:.2f}x/"
                f"{row['sharded_fast_speedup']:.2f}x @w{row['workers']})"
                if "sharded_seconds" in row
                else ""
            )
            lines.append(
                f"  {row['workload']:>4}/{row['program']:<4} "
                f"scale={row['scale']:<4} tuples={row['tuples']:<6} "
                f"naive={row['naive_seconds']:.4f}s "
                f"semi={row['semi_naive_seconds']:.4f}s "
                f"speedup={row['speedup']:.2f}x{fast}{sharded}",
            )
    if any(
        key in report
        for key in ("closure", "sqlite_closure", "sqlite_file_closure")
    ):
        lines.append(
            f"  note: sharded columns ran with {report['meta']['cpus']} "
            "cpu(s); on a 1-CPU runner dynamic shard collapse keeps the "
            "sharded engine within the never-slower floor, but the parallel "
            "win itself needs real cores.",
        )
    if "wcoj" in report:
        lines.append(
            "wcoj (binary vs worst-case-optimal plans, in-memory backend):",
        )
    for row in report.get("wcoj", []):
        lines.append(
            f"  cyclic/{row['program']:<9} scale={row['scale']:<4} "
            f"tuples={row['tuples']:<6} binary={row['binary_seconds']:.4f}s "
            f"wcoj={row['wcoj_seconds']:.4f}s "
            f"speedup={row['wcoj_speedup']:.2f}x "
            f"(rules={row['wcoj_rules']}, "
            f"intersections={row['wcoj_intersections']}, "
            f"widths={row['width_estimates']})",
        )
    if "end_to_end" in report:
        lines.append("end-to-end end semantics (figure-6c style):")
    for row in report.get("end_to_end", []):
        lines.append(
            f"  mas/{row['program']:<4} scale={row['scale']:<4} "
            f"naive={row['naive_seconds']:.4f}s semi={row['semi_naive_seconds']:.4f}s "
            f"speedup={row['speedup']:.2f}x",
        )
    if "compare" in report:
        lines.append(
            "compare() — four semantics, shared context vs cold engines:",
        )
    for row in report.get("compare", []):
        lines.append(
            f"  {row['backend']:>6} mas/{row['program']} scale={row['scale']:<4} "
            f"shared={row['shared_seconds']:.4f}s cold={row['cold_seconds']:.4f}s "
            f"speedup={row['speedup']:.2f}x",
        )
    if "maintenance" in report:
        lines.append(
            "maintenance (RepairService batches vs from-scratch recompute):",
        )
    for row in report.get("maintenance", []):
        lines.append(
            f"  {row['backend']:>6} mas/{row['program']} scale={row['scale']:<4} "
            f"batches={row['batches']}x{row['batch_size']} "
            f"load={row['load_seconds']:.4f}s "
            f"maintain={row['per_batch_maintain_seconds']:.4f}s/batch "
            f"recompute={row['per_batch_recompute_seconds']:.4f}s/batch "
            f"speedup={row['speedup']:.2f}x "
            f"sharded={row['per_batch_sharded_maintain_seconds']:.4f}s/batch "
            f"({row['sharded_speedup']:.2f}x @s{row['shards']}w{row['workers']}, "
            f"{row['maint_shard_jobs']} jobs) "
            f"(overdeleted={row['overdeleted']}, rederived={row['rederived']})",
        )
    if "counting" in report:
        lines.append(
            "counting deletion (base-only support counts vs exact DRed, "
            "redundant-support chain):",
        )
    for row in report.get("counting", []):
        lines.append(
            f"  {row['backend']:>6} {row['workload']}/{row['program']} "
            f"chain={row['chain']} batches={row['batches']} "
            f"counting={row['per_batch_counting_seconds']:.4f}s/batch "
            f"exact={row['per_batch_exact_seconds']:.4f}s/batch "
            f"speedup={row['speedup']:.2f}x "
            f"(counted_deletes={row['counted_deletes']}, exact overdeleted="
            f"{row['exact_overdeleted']})",
        )
    summary = report["summary"]
    if meta.get("partial"):
        # Partial run: the one-line digest needs every axis; list what ran.
        if summary:
            lines.append(
                "summary (partial): "
                + ", ".join(f"{k}={v}" for k, v in sorted(summary.items())),
            )
        return "\n".join(lines)
    lines.append(
        f"summary: largest={summary['largest_program']} "
        f"{summary['largest_program_speedup']:.2f}x, sqlite largest="
        f"{summary['sqlite_largest_program']} "
        f"{summary['sqlite_largest_program_speedup']:.2f}x "
        f"(fast {summary['sqlite_largest_program_fast_speedup']:.2f}x, "
        f"vs PR2 semi: staged {summary['sqlite_staged_vs_pr2_semi']:.2f}x / "
        f"fast {summary['sqlite_fast_vs_pr2_semi']:.2f}x), file-backed "
        f"{summary['sqlite_file_largest_program_speedup']:.2f}x, sharded "
        f"vs single {summary['sqlite_file_largest_program_sharded_speedup']:.2f}x"
        f"/{summary['sqlite_file_largest_program_sharded_fast_speedup']:.2f}x "
        f"(w{summary['sharded_workers']}, {report['meta']['cpus']} cpus), "
        f"end-semantics geomean {summary['end_semantics_geomean_speedup']:.2f}x, "
        f"wcoj min gated {summary['wcoj_min_gated_speedup']:.2f}x@"
        f"{summary['wcoj_largest_scale']}",
    )
    return "\n".join(lines)


# -- pytest integration ---------------------------------------------------------


def test_fixpoint_smoke():
    """Smoke configuration: engines agree, single-pass discipline holds."""
    report = run_benchmark(smoke=True)
    print("\n" + _render(report))
    # Correctness is asserted inside the bench (including the query-counter
    # single-pass check); timing assertions stay loose (CI machines are
    # noisy) — the checked-in BENCH_fixpoint.json records the real ratios.
    assert report["summary"]["max_closure_speedup"] > 1.0
    assert report["summary"]["sqlite_max_closure_speedup"] > 1.0
    assert report["single_pass"]["fast"].get("assign_select", 0) == 0
    assert report["single_pass"]["staged"].get("assign_select", 0) == 0
    sharded_fast = report["single_pass"]["sharded-fast"]
    assert sharded_fast.get("assign_select", 0) == 0
    assert sharded_fast.get("stage", 0) == 0
    # Dynamic collapse: with one worker the sharded fast path degenerates to
    # the semi-naive direct installs — no partitioned statements at all.
    assert sharded_fast["shard_selects"] == 0
    assert sharded_fast["direct_installs"] > 0
    assert sharded_fast["collapsed_rounds"] > 0
    # collapse_min=0 pins the historical full fan-out: exactly one
    # partitioned SELECT per (variant, shard).
    fanout = report["single_pass"]["sharded-fanout"]
    assert fanout["shard_selects"] == BENCH_SHARDS * fanout["shard_installs"] > 0
    # The wcoj path actually ran (counters flowed through QueryStats) and the
    # generic join won at the benched cyclic scale; the hard >= 3.0 gate is
    # applied by --check on the committed full-run baseline.
    assert report["wcoj"], "no wcoj rows benched"
    for row in report["wcoj"]:
        assert row["wcoj_rules"] > 0 and row["wcoj_intersections"] > 0, row
        assert row["width_estimates"] > 0, row
    assert report["summary"]["wcoj_min_gated_speedup"] > 1.0
    # Maintenance axis: correctness (maintained == recomputed) is asserted
    # inside the bench; per-batch maintenance must beat full recompute.
    assert report["maintenance"], "no maintenance rows benched"
    assert report["summary"]["maintenance_min_speedup"] > 1.0
    # Counting axis: the bench itself asserts the fast path decided every
    # delete batch and that both services converge to the same closure;
    # counts must beat the exact DRed detour on both backends.
    assert report["counting"], "no counting rows benched"
    for row in report["counting"]:
        assert row["counted_deletes"] > 0, row
        assert row["dred_fallbacks"] == 0, row
    assert report["summary"]["counting_min_speedup"] > 1.0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="best-of-2 repetitions, small scales",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=(
            "regression gate: compare this run's naive/semi-naive and "
            "staged/fast speedup ratios against the committed baseline and "
            "exit non-zero on a regression"
        ),
    )
    parser.add_argument(
        "--baseline",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_fixpoint.json"),
        help="committed baseline report for --check",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.35,
        help=(
            "ratio floor for --check, as a fraction of the committed value "
            "(default 0.35 — wide enough for 1-repetition CI noise, far "
            "above a genuine discipline regression)"
        ),
    )
    parser.add_argument(
        "--axes",
        default=None,
        help=(
            "comma-separated subset of axes to run (of: "
            + ", ".join(BENCH_AXES)
            + "); the report is marked partial and --check refuses it — "
            "the committed baseline is always a full run"
        ),
    )
    parser.add_argument(
        "--out",
        default=None,
        help=(
            "output path for the machine-readable report (default: "
            "BENCH_fixpoint.json at the repo root, or bench-check-report.json "
            "under --check so a gated smoke run never overwrites the "
            "committed full-run baseline)"
        ),
    )
    args = parser.parse_args()
    axes = None
    if args.axes is not None:
        axes = [name.strip() for name in args.axes.split(",") if name.strip()]
        if not axes:
            parser.error("--axes given but no axis names parsed")
        unknown = sorted(set(axes) - set(BENCH_AXES))
        if unknown:
            parser.error(
                f"unknown axes {', '.join(unknown)} "
                f"(valid: {', '.join(BENCH_AXES)})",
            )
        if args.check and set(axes) != set(BENCH_AXES):
            parser.error(
                "--check refuses a partial run: the committed baseline is a "
                "full run, and gating a subset would silently disarm the "
                "checks on the missing axes (drop --axes or list them all)",
            )
    partial = axes is not None and set(axes) != set(BENCH_AXES)
    if args.out is None:
        root = Path(__file__).resolve().parent.parent
        if args.check:
            name = "bench-check-report.json"
        elif partial:
            # A partial report must never land on the committed baseline.
            name = "bench-axes-report.json"
        else:
            name = "BENCH_fixpoint.json"
        args.out = str(root / name)
    baseline = None
    if args.check:
        baseline = json.loads(Path(args.baseline).read_text())
    report = run_benchmark(smoke=args.smoke, axes=axes)
    print(_render(report))
    # Write before gating so CI can upload the report of a failed run too.
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    if baseline is not None:
        problems = check_against_baseline(report, baseline, args.tolerance)
        if problems:
            print("ratio regression against committed baseline:")
            for problem in problems:
                print(f"  {problem}")
            raise SystemExit(1)
        print(
            f"ratio gate ok (tolerance {args.tolerance} x committed "
            f"{args.baseline})"
        )


if __name__ == "__main__":
    main()
