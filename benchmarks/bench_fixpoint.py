"""Micro-benchmark: naive vs semi-naive fixpoint evaluation, on both backends.

Compares the two closure engines (:func:`repro.datalog.evaluation.run_closure`
with ``engine="naive"`` / ``engine="semi-naive"``) on the scaling MAS and
TPC-H workload programs — once over the in-memory backend and once over the
SQLite backend (full-extent SQL joins vs the frontier-table semi-naive driver
of :mod:`repro.datalog.sql_seminaive`) — plus an end-to-end comparison of
figure-6-style end-semantics runs.  Results are written to
``BENCH_fixpoint.json`` at the repository root so the perf trajectory is
tracked across PRs.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_fixpoint.py            # full run
    PYTHONPATH=src python benchmarks/bench_fixpoint.py --smoke    # 1 repetition, small scales

or through pytest (a correctness-checked smoke configuration)::

    PYTHONPATH=src python -m pytest benchmarks/bench_fixpoint.py -q
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path
from typing import Dict, List

from repro.core.semantics import end_semantics
from repro.datalog.evaluation import run_closure
from repro.storage.sqlite_backend import SQLiteDatabase
from repro.workloads.mas import generate_mas
from repro.workloads.programs_mas import mas_programs
from repro.workloads.programs_tpch import tpch_programs
from repro.workloads.tpch import generate_tpch

#: (workload, program id) pairs ordered by cascade depth; the last MAS entry
#: (program 20, the 5-layer cascade) is the "largest multi-round program" the
#: acceptance criterion tracks.
CLOSURE_PROGRAMS = (
    ("mas", "10"),
    ("mas", "18"),
    ("mas", "20"),
    ("tpch", "T-4"),
    ("tpch", "T-6"),
)

#: Figure-6c style end-semantics programs (the growing cascade chain).
END_TO_END_PROGRAMS = ("16", "17", "18", "19", "20")

SEED = 7


def _dataset(workload: str, scale: float):
    if workload == "mas":
        return generate_mas(scale=scale, seed=SEED)
    return generate_tpch(scale=scale, seed=SEED)


def _program(workload: str, dataset, program_id: str):
    if workload == "mas":
        return mas_programs(dataset, (program_id,))[program_id]
    return tpch_programs(dataset, (program_id,))[program_id]


def _time_closure(db, program, engine: str, repetitions: int):
    """Best-of-N wall clock for one closure run; returns (seconds, result)."""
    best = float("inf")
    result = None
    for _ in range(repetitions):
        working = db.clone()
        start = time.perf_counter()
        result = run_closure(working, program, engine=engine)
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_closures(
    scales: Dict[str, List[float]], repetitions: int, backend: str = "memory"
) -> List[dict]:
    """Naive vs semi-naive closure timings on one backend.

    ``backend="sqlite"`` copies each dataset into a :class:`SQLiteDatabase`
    first, pitting the full-recompute SQL loop against the frontier-table
    driver; each repetition then runs on a fresh backup-API clone, so the
    semi-naive driver always starts from untouched frontier generations.
    """
    rows: List[dict] = []
    for workload, program_id in CLOSURE_PROGRAMS:
        for scale in scales[workload]:
            dataset = _dataset(workload, scale)
            program = _program(workload, dataset, program_id)
            db = (
                SQLiteDatabase.from_database(dataset.db)
                if backend == "sqlite"
                else dataset.db
            )
            naive_seconds, naive = _time_closure(db, program, "naive", repetitions)
            semi_seconds, semi = _time_closure(
                db, program, "semi-naive", repetitions
            )
            # The benchmark doubles as a differential check.
            naive_signatures = {a.signature() for a in naive.assignments}
            semi_signatures = {a.signature() for a in semi.assignments}
            if naive_signatures != semi_signatures:
                raise AssertionError(
                    f"{backend} {workload}/{program_id}@{scale}: engines disagree"
                )
            rows.append(
                {
                    "backend": backend,
                    "workload": workload,
                    "program": program_id,
                    "scale": scale,
                    "tuples": dataset.total_tuples,
                    "assignments": len(naive.assignments),
                    "naive_seconds": round(naive_seconds, 6),
                    "semi_naive_seconds": round(semi_seconds, 6),
                    "naive_rounds": naive.rounds,
                    "semi_naive_rounds": semi.rounds,
                    "speedup": round(naive_seconds / max(semi_seconds, 1e-9), 3),
                }
            )
    return rows


def bench_end_to_end(scale: float, repetitions: int) -> List[dict]:
    """Figure-6-style end-semantics runs (full repair, not just the closure)."""
    rows: List[dict] = []
    dataset = generate_mas(scale=scale, seed=SEED)
    for program_id in END_TO_END_PROGRAMS:
        program = mas_programs(dataset, (program_id,))[program_id]
        timings = {}
        results = {}
        for engine in ("naive", "semi-naive"):
            best = float("inf")
            for _ in range(repetitions):
                start = time.perf_counter()
                results[engine] = end_semantics(dataset.db, program, engine=engine)
                best = min(best, time.perf_counter() - start)
            timings[engine] = best
        if results["naive"].deleted != results["semi-naive"].deleted:
            raise AssertionError(f"end semantics disagree on program {program_id}")
        rows.append(
            {
                "workload": "mas",
                "program": program_id,
                "scale": scale,
                "deleted": results["naive"].size,
                "naive_seconds": round(timings["naive"], 6),
                "semi_naive_seconds": round(timings["semi-naive"], 6),
                "speedup": round(
                    timings["naive"] / max(timings["semi-naive"], 1e-9), 3
                ),
            }
        )
    return rows


def run_benchmark(smoke: bool = False) -> dict:
    # Warm the lazily imported engine modules so single-repetition (smoke)
    # timings measure evaluation, not the first import.
    import repro.datalog.seminaive  # noqa: F401

    repetitions = 1 if smoke else 3
    if smoke:
        scales = {"mas": [1.0], "tpch": [1.0]}
        end_scale = 1.0
    else:
        scales = {"mas": [1.0, 2.0, 4.0, 8.0], "tpch": [1.0, 2.0, 4.0]}
        end_scale = 4.0
    closure_rows = bench_closures(scales, repetitions)
    sqlite_rows = bench_closures(scales, repetitions, backend="sqlite")
    end_rows = bench_end_to_end(end_scale, repetitions)

    def deepest(rows):
        return [
            row
            for row in rows
            if row["workload"] == "mas" and row["program"] == "20"
        ][-1]

    largest = deepest(closure_rows)
    sqlite_largest = deepest(sqlite_rows)
    end_speedups = [row["speedup"] for row in end_rows]
    return {
        "meta": {
            "benchmark": "fixpoint-engines",
            "smoke": smoke,
            "repetitions": repetitions,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        },
        "closure": closure_rows,
        "sqlite_closure": sqlite_rows,
        "end_to_end": end_rows,
        "summary": {
            "largest_program": f"mas/20@{largest['scale']}",
            "largest_program_speedup": largest["speedup"],
            "max_closure_speedup": max(row["speedup"] for row in closure_rows),
            "min_closure_speedup": min(row["speedup"] for row in closure_rows),
            "sqlite_largest_program": f"mas/20@{sqlite_largest['scale']}",
            "sqlite_largest_program_speedup": sqlite_largest["speedup"],
            "sqlite_max_closure_speedup": max(
                row["speedup"] for row in sqlite_rows
            ),
            "sqlite_min_closure_speedup": min(
                row["speedup"] for row in sqlite_rows
            ),
            "end_semantics_geomean_speedup": round(
                _geomean(end_speedups), 3
            ),
        },
    }


def _geomean(values: List[float]) -> float:
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values)) if values else 0.0


def _render(report: dict) -> str:
    lines = []
    for key, label in (("closure", "in-memory"), ("sqlite_closure", "SQLite")):
        lines.append(f"closure (naive vs semi-naive, {label} backend):")
        for row in report[key]:
            lines.append(
                f"  {row['workload']:>4}/{row['program']:<4} "
                f"scale={row['scale']:<4} tuples={row['tuples']:<6} "
                f"naive={row['naive_seconds']:.4f}s "
                f"semi={row['semi_naive_seconds']:.4f}s "
                f"speedup={row['speedup']:.2f}x"
            )
    lines.append("end-to-end end semantics (figure-6c style):")
    for row in report["end_to_end"]:
        lines.append(
            f"  mas/{row['program']:<4} scale={row['scale']:<4} "
            f"naive={row['naive_seconds']:.4f}s semi={row['semi_naive_seconds']:.4f}s "
            f"speedup={row['speedup']:.2f}x"
        )
    summary = report["summary"]
    lines.append(
        f"summary: largest={summary['largest_program']} "
        f"{summary['largest_program_speedup']:.2f}x, sqlite largest="
        f"{summary['sqlite_largest_program']} "
        f"{summary['sqlite_largest_program_speedup']:.2f}x, end-semantics "
        f"geomean {summary['end_semantics_geomean_speedup']:.2f}x"
    )
    return "\n".join(lines)


# -- pytest integration ---------------------------------------------------------


def test_fixpoint_smoke():
    """Smoke configuration: engines agree and the semi-naive paths keep up."""
    report = run_benchmark(smoke=True)
    print("\n" + _render(report))
    # Correctness is asserted inside the bench; timing assertions stay loose
    # (CI machines are noisy) — the checked-in BENCH_fixpoint.json records the
    # real ratios.
    assert report["summary"]["max_closure_speedup"] > 1.0
    assert report["summary"]["sqlite_max_closure_speedup"] > 1.0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="1 repetition, small scales"
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_fixpoint.json"),
        help="output path for the machine-readable report",
    )
    args = parser.parse_args()
    report = run_benchmark(smoke=args.smoke)
    print(_render(report))
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
