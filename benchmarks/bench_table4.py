"""Benchmark regenerating Table 4 (over-deletions vs HoloClean under-repairs)."""

from benchmarks.conftest import run_once
from repro.experiments import table4


def test_table4_over_deletions(benchmark, repro_rows):
    errors = tuple(
        count for count in (10, 20, 30, 50, 70, 100) if count <= repro_rows // 3
    )
    report = run_once(benchmark, table4.run, error_counts=errors, n_rows=repro_rows)
    print("\n" + report.render())
    # Independent semantics deletes exactly the injected duplicates.
    assert all(row[1] == "+0" for row in report.rows)
    for errors_count, info in report.data["details"].items():
        assert info["sizes"]["independent"] == errors_count
        assert info["sizes"]["end"] >= errors_count
