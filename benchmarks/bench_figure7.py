"""Benchmark regenerating Figure 7 (runtimes of the four semantics, MAS programs)."""

from benchmarks.conftest import run_once
from repro.experiments import figure7


def test_figure7_runtimes(benchmark, repro_scale):
    report = run_once(benchmark, figure7.run, scale=repro_scale)
    print("\n" + report.render())
    assert len(report.rows) == 20
    averages = report.data["averages"]
    # The provenance-based algorithms carry the overhead (paper Figure 7).
    assert averages["independent"] + averages["step"] >= averages["stage"]
