"""Benchmark regenerating Figure 10 (runtime vs #errors and vs #rows on the DC workload)."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import figure10


@pytest.mark.parametrize("panel", ["a", "b"])
def test_figure10_runtime_sweeps(benchmark, repro_rows, panel):
    if panel == "a":
        report = run_once(
            benchmark,
            figure10.run,
            panel="a",
            error_counts=(10, 30, 50),
            n_rows=repro_rows,
        )
    else:
        report = run_once(
            benchmark,
            figure10.run,
            panel="b",
            row_counts=(repro_rows // 2, repro_rows, repro_rows * 2),
            n_errors=30,
        )
    print("\n" + report.render())
    assert len(report.rows) == 3
    for row in report.rows:
        assert all(value >= 0.0 for value in row[1:])
