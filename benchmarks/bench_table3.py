"""Benchmark regenerating Table 3 (containment of results, MAS + TPC-H programs)."""

from benchmarks.conftest import run_once
from repro.experiments import table3


def test_table3_containment(benchmark, repro_scale):
    report = run_once(
        benchmark, table3.run, mas_scale=repro_scale, tpch_scale=repro_scale,
    )
    print("\n" + report.render())
    assert report.data["invariant_failures"] == []
    assert len(report.rows) == 26  # 20 MAS + 6 TPC-H programs
