"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file only exists so
that ``pip install -e .`` works on environments whose setuptools/wheel stack
predates PEP 660 editable installs (legacy ``setup.py develop`` path).
"""

from setuptools import setup

setup()
