"""Explanations for repairs: why was a tuple deleted, and what did it cost?

The paper leans on provenance to *compute* repairs (Algorithms 1 and 2); the
same provenance also answers the user-facing question "why is this tuple in
the repair?".  This module derives two kinds of explanations from a
:class:`~repro.core.semantics.base.RepairResult`:

* a **derivation explanation** — for operational semantics (end / stage /
  step), the chain of rule firings that forced the deletion, read off the
  provenance graph of ``End(P, D)``;
* a **conflict explanation** — for independent semantics, the violated
  hypothetical assignments (CNF clauses) this deletion voids, i.e. the
  conflicts the tuple was sacrificed to resolve.

These are diagnostics for humans; they do not affect any repair computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.core.semantics.base import RepairResult
from repro.datalog.ast import Program, Rule
from repro.datalog.delta import DeltaProgram
from repro.provenance.boolean import build_boolean_provenance
from repro.provenance.graph import ProvenanceGraph, build_provenance_graph
from repro.storage.database import BaseDatabase
from repro.storage.facts import Fact

ProgramLike = DeltaProgram | Program | Iterable[Rule]


@dataclass(frozen=True)
class DerivationStep:
    """One rule firing in a derivation explanation."""

    rule: str
    used: tuple[str, ...]
    derived: str

    def __str__(self) -> str:
        return f"{self.rule}: {', '.join(self.used)} ⟹ delete {self.derived}"


@dataclass(frozen=True)
class DeletionExplanation:
    """Why one tuple appears in a repair."""

    target: Fact
    semantics: str
    derivation: tuple[DerivationStep, ...]
    conflicts: tuple[str, ...]

    def is_seed(self) -> bool:
        """True when the tuple was deleted directly by a selection/seed rule."""
        return len(self.derivation) <= 1 and not self.conflicts

    def render(self) -> str:
        """A human-readable multi-line explanation."""
        lines = [f"{self.target} (deleted under {self.semantics} semantics)"]
        if self.derivation:
            lines.append("  derivation chain:")
            lines.extend(f"    {index + 1}. {step}" for index, step in enumerate(self.derivation))
        if self.conflicts:
            lines.append("  conflicts resolved by this deletion:")
            lines.extend(f"    - {conflict}" for conflict in self.conflicts)
        if len(lines) == 1:
            lines.append("  (no recorded derivation — requested or seed deletion)")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _derivation_chain(graph: ProvenanceGraph, target: Fact) -> List[DerivationStep]:
    """The shallowest derivation chain ending at ``Δ(target)``, leaf to target."""
    steps: List[DerivationStep] = []
    current = target
    seen: set[Fact] = set()
    while current in graph.layers and current not in seen:
        seen.add(current)
        derivations = graph.assignments_deriving(current)
        if not derivations:
            break
        # Prefer the derivation realised earliest (fewest delta dependencies).
        best = min(
            derivations,
            key=lambda assignment: (
                max(
                    (graph.layers.get(dep, 0) for dep in assignment.delta_facts()),
                    default=0,
                ),
                len(assignment.delta_facts()),
            ),
        )
        steps.append(
            DerivationStep(
                rule=best.rule.display_name(),
                used=tuple(
                    ("Δ" if atom.is_delta else "") + str(item) for atom, item in best.used
                ),
                derived=str(current),
            ),
        )
        dependencies = best.delta_facts()
        if not dependencies:
            break
        current = min(dependencies, key=lambda dep: graph.layers.get(dep, 0))
    steps.reverse()
    return steps


def explain_deletion(
    db: BaseDatabase,
    program: ProgramLike,
    result: RepairResult,
    target: Fact,
) -> DeletionExplanation:
    """Explain why ``target`` belongs to ``result``.

    Raises ``ValueError`` when the tuple was not deleted by the given result.
    """
    rules = list(program)
    if target not in result.deleted:
        raise ValueError(f"{target} is not part of the {result.semantics.value} repair")

    graph = build_provenance_graph(db, rules)
    derivation = tuple(_derivation_chain(graph, target))

    conflicts: tuple[str, ...] = ()
    if result.semantics.value == "independent":
        provenance = build_boolean_provenance(db, rules)
        involved = [
            clause
            for clause in provenance.clauses
            if target in clause.positives
            and not clause.satisfied_by(result.deleted - {target})
        ]
        conflicts = tuple(
            f"[{clause.rule_name}] would delete "
            f"{clause.derived.label() if clause.derived else '?'} via "
            + ", ".join(sorted(str(item) for item in clause.variables()))
            for clause in involved
        )
    return DeletionExplanation(
        target=target,
        semantics=result.semantics.value,
        derivation=derivation,
        conflicts=conflicts,
    )


def explain_repair(
    db: BaseDatabase,
    program: ProgramLike,
    result: RepairResult,
    limit: int | None = None,
) -> List[DeletionExplanation]:
    """Explanations for every deleted tuple of ``result`` (optionally capped)."""
    targets = sorted(result.deleted, key=lambda item: item.sort_key())
    if limit is not None:
        targets = targets[:limit]
    rules = list(program)
    return [explain_deletion(db, rules, result, target) for target in targets]
