"""The public repair engine: one object tying a database to a delta program.

:class:`RepairEngine` is the main entry point of the library.  It validates the
program against the database schema, answers stability questions, computes the
repair under any of the four semantics, and compares the four results the way
the paper's experimental section does.

Example
-------
>>> from repro import Database, Schema, RepairEngine, DeltaProgram, Semantics
>>> schema = Schema.from_arities({"R": 1, "S": 1})
>>> db = Database.from_dicts(schema, {"R": [(1,)], "S": [(1,)]})
>>> program = DeltaProgram.from_text("delta R(x) :- R(x), S(x).")
>>> engine = RepairEngine(db, program)
>>> engine.repair(Semantics.END).size
1
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Iterable, Sequence

from repro.core.containment import ContainmentReport, compare_results

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.datalog.context import EvalContext
from repro.core.semantics import RepairResult, Semantics, compute_repair
from repro.core.stability import is_stable, is_stabilizing_set, verify_repair
from repro.datalog.ast import Program, Rule
from repro.datalog.delta import DeltaProgram
from repro.exceptions import SemanticsError
from repro.storage.database import BaseDatabase
from repro.storage.facts import Fact


class RepairEngine:
    """Computes and verifies repairs of a database under a delta program.

    Parameters
    ----------
    db:
        The database instance.  It is never modified: every repair works on a
        clone and the repaired database is returned inside the result.
    program:
        The delta program, as a :class:`DeltaProgram`, a plain
        :class:`Program`, or any iterable of rules.  Plain programs are wrapped
        and validated.
    validate_schema:
        Check relations and arities of the program against the database schema
        (default True).
    verify:
        When True, every computed result is checked to be a stabilizing set
        before being returned (slower; useful in tests and demos).
    engine:
        Default evaluation engine for every repair computed by this object:
        ``"auto"`` (semi-naive on every backend — delta-driven planned joins
        in memory, frontier-table SQL variants on SQLite — or the sharded
        engine when the shared context sets ``shards=``/``workers=``),
        ``"semi-naive"``, ``"sharded"`` (hash-partitioned frontiers fanned
        out across a worker pool, see :mod:`repro.datalog.sharded`), or
        ``"naive"`` (the differential-testing oracle).  Unknown names raise
        :class:`~repro.exceptions.UnknownEngineError` (a :class:`ValueError`).
        A per-call ``engine=`` option to :meth:`repair` overrides it.
    context:
        Optional :class:`~repro.datalog.context.EvalContext`.  Every repair
        this engine computes shares it, so a :meth:`compare` / :meth:`repair_all`
        run builds join plans and compiled SQL rule variants **once** and
        reuses them across all four semantics (and across repeated calls on
        the same engine object).  By default each engine creates its own
        private context; pass one explicitly to share planning state between
        several engines evaluating structurally similar programs.
    """

    def __init__(
        self,
        db: BaseDatabase,
        program: DeltaProgram | Program | Iterable[Rule],
        validate_schema: bool = True,
        verify: bool = False,
        engine: str = "auto",
        context: "EvalContext | None" = None,
    ) -> None:
        from repro.datalog.context import EvalContext
        from repro.datalog.evaluation import validate_engine

        validate_engine(engine)
        self._db = db
        if isinstance(program, DeltaProgram):
            self._program = program
        else:
            rules = tuple(program)
            self._program = DeltaProgram(Program(rules))
        if validate_schema:
            self._program.validate_against_schema(db.schema)
        self._verify = verify
        self._engine = engine
        self._context = context if context is not None else EvalContext()

    # -- accessors --------------------------------------------------------------

    @property
    def database(self) -> BaseDatabase:
        """The original (unmodified) database."""
        return self._db

    @property
    def program(self) -> DeltaProgram:
        """The validated delta program."""
        return self._program

    @property
    def context(self) -> "EvalContext":
        """The shared evaluation context (plan caches, observers, stats)."""
        return self._context

    # -- queries -----------------------------------------------------------------

    def is_stable(self) -> bool:
        """True when the database already satisfies no rule of the program."""
        return is_stable(self._db, self._program)

    def is_stabilizing_set(self, deleted: Iterable[Fact]) -> bool:
        """True when deleting ``deleted`` stabilizes the database."""
        return is_stabilizing_set(self._db, self._program, deleted)

    # -- repairs ------------------------------------------------------------------

    def repair(
        self, semantics: Semantics | str = Semantics.INDEPENDENT, **options: Any,
    ) -> RepairResult:
        """Compute the repair under the given semantics.

        ``options`` are forwarded to the underlying algorithm (e.g.
        ``method="exhaustive"`` for step semantics, ``engine="naive"`` to force
        the oracle evaluation engine).  Unless overridden, every call shares
        this engine's :attr:`context`, so plans and compiled rule variants
        carry across semantics and repeated repairs.
        """
        options.setdefault("engine", self._engine)
        options.setdefault("context", self._context)
        result = compute_repair(self._db, self._program, semantics, **options)
        if self._verify and not verify_repair(self._db, self._program, result):
            raise SemanticsError(
                f"{result.semantics.value} semantics returned a non-stabilizing set "
                "(internal error)",
            )
        return result

    def repair_all(
        self,
        semantics: Sequence[Semantics | str] | None = None,
        **options: Any,
    ) -> Dict[Semantics, RepairResult]:
        """Compute the repair under several semantics (all four by default)."""
        requested = (
            [Semantics.parse(member) for member in semantics]
            if semantics is not None
            else list(Semantics)
        )
        return {member: self.repair(member, **options) for member in requested}

    def with_deletion_requests(self, items: Sequence[Fact]) -> "RepairEngine":
        """A new engine whose program additionally requests the deletion of ``items``.

        This is the paper's second initialisation mode (Section 3.6): the
        database may be stable, and the user seeds the process by asking for
        specific tuples to go (the running example's rule (0)).
        """
        return RepairEngine(
            self._db,
            self._program.with_deletion_requests(items),
            validate_schema=False,
            verify=self._verify,
            engine=self._engine,
            # Request rules only rename constants, so the structural plan
            # cache (and the base rules' compiled variants) stay valid.
            context=self._context,
        )

    # -- comparisons ---------------------------------------------------------------

    def compare(self, name: str = "", **options: Any) -> ContainmentReport:
        """Run all four semantics and report their containment relationships."""
        results = self.repair_all(**options)
        return compare_results(results, name=name)

    def __repr__(self) -> str:
        return (
            f"RepairEngine(db={self._db.summary()!r}, rules={len(self._program)}, "
            f"verify={self._verify})"
        )
