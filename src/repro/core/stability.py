"""Stability of databases and verification of stabilizing sets (Section 3.6).

A database is *stable* with respect to a delta program when no rule has a
satisfying assignment (Definition 3.12); a *stabilizing set* is a set of
tuples whose deletion (and recording in the delta relations) makes the
database stable (Definition 3.14).  These checks underpin the correctness
tests of every semantics and the experiment harness's validation step.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, List

from repro.core.semantics.base import RepairResult
from repro.datalog.ast import Program, Rule
from repro.datalog.delta import DeltaProgram
from repro.datalog.evaluation import Assignment, find_assignments
from repro.exceptions import SemanticsError
from repro.storage.database import BaseDatabase, stabilized_copy
from repro.storage.facts import Fact

ProgramLike = DeltaProgram | Program | Iterable[Rule]


def violating_assignments(db: BaseDatabase, program: ProgramLike) -> List[Assignment]:
    """All satisfying assignments of the program's rules over ``db``.

    An empty list means the database is stable.
    """
    found: List[Assignment] = []
    for rule in program:
        found.extend(find_assignments(db, rule))
    return found


def is_stable(db: BaseDatabase, program: ProgramLike) -> bool:
    """True when ``db`` satisfies no rule of ``program`` (Definition 3.12)."""
    for rule in program:
        if find_assignments(db, rule):
            return False
    return True


def is_stabilizing_set(
    db: BaseDatabase, program: ProgramLike, deleted: Iterable[Fact],
) -> bool:
    """True when removing ``deleted`` (and adding ``Δ(deleted)``) stabilizes ``db``."""
    rules = list(program)
    return is_stable(stabilized_copy(db, deleted), rules)


def verify_repair(db: BaseDatabase, program: ProgramLike, result: RepairResult) -> bool:
    """Check that a :class:`RepairResult` really is a stabilizing set of ``db``.

    The repaired database carried by the result is also cross-checked against a
    freshly constructed ``(D \\ S) ∪ Δ(S)``.
    """
    rules = list(program)
    if not is_stabilizing_set(db, rules, result.deleted):
        return False
    expected = stabilized_copy(db, result.deleted)
    return expected.same_state_as(result.repaired)


def minimum_stabilizing_set_bruteforce(
    db: BaseDatabase,
    program: ProgramLike,
    max_tuples: int = 16,
) -> frozenset[Fact]:
    """The exact minimum stabilizing set, by exhaustive subset enumeration.

    Exponential in the database size — refuse to run beyond ``max_tuples``
    tuples.  This is the ground truth the test suite compares independent
    semantics against (Definition 3.3 made executable).
    """
    rules = list(program)
    facts = sorted(db.all_active(), key=lambda item: item.sort_key())
    if len(facts) > max_tuples:
        raise SemanticsError(
            f"brute-force minimum stabilizing set refused: {len(facts)} tuples "
            f"exceeds the limit of {max_tuples}",
        )
    for size in range(len(facts) + 1):
        for subset in combinations(facts, size):
            if is_stabilizing_set(db, rules, subset):
                return frozenset(subset)
    # Proposition 3.18: the full database is always stabilizing, so we cannot
    # reach this point.
    raise SemanticsError("no stabilizing set found (violates Proposition 3.18)")


def all_minimum_stabilizing_sets(
    db: BaseDatabase,
    program: ProgramLike,
    max_tuples: int = 14,
) -> List[frozenset[Fact]]:
    """Every minimum-cardinality stabilizing set (Proposition 3.19 may give several)."""
    rules = list(program)
    facts = sorted(db.all_active(), key=lambda item: item.sort_key())
    if len(facts) > max_tuples:
        raise SemanticsError(
            f"enumeration refused: {len(facts)} tuples exceeds the limit of {max_tuples}",
        )
    for size in range(len(facts) + 1):
        found = [
            frozenset(subset)
            for subset in combinations(facts, size)
            if is_stabilizing_set(db, rules, subset)
        ]
        if found:
            return found
    raise SemanticsError("no stabilizing set found (violates Proposition 3.18)")
