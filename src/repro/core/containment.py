"""Containment and size relationships between the results of the four semantics.

The paper summarises the relationships in Figure 3 and reports, per program,
the three conditions of Table 3 (``Step = Stage``, ``Ind ⊆ Stage``,
``Ind ⊆ Step``); the other relationships (``Stage ⊆ End``, ``Step ⊆ End``,
``|Ind| ≤ |Step|, |Stage|``) always hold (Proposition 3.20).  This module
computes all of them from a set of :class:`RepairResult` objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.core.semantics.base import RepairResult, Semantics
from repro.utils.text import format_table


@dataclass(frozen=True)
class ContainmentReport:
    """The pairwise relationships between the four results for one program."""

    name: str
    sizes: tuple[tuple[str, int], ...]
    step_equals_stage: bool
    ind_subset_of_stage: bool
    ind_subset_of_step: bool
    stage_subset_of_end: bool
    step_subset_of_end: bool
    ind_not_larger_than_stage: bool
    ind_not_larger_than_step: bool

    @property
    def size_map(self) -> Dict[str, int]:
        """Result sizes keyed by semantics name."""
        return dict(self.sizes)

    def invariants_hold(self) -> bool:
        """The relationships of Proposition 3.20 that must always hold."""
        return (
            self.stage_subset_of_end
            and self.step_subset_of_end
            and self.ind_not_larger_than_stage
            and self.ind_not_larger_than_step
        )

    def table3_row(self) -> tuple[str, bool, bool, bool]:
        """The row this program contributes to the paper's Table 3."""
        return (
            self.name,
            self.step_equals_stage,
            self.ind_subset_of_stage,
            self.ind_subset_of_step,
        )

    def describe(self) -> str:
        """Multi-line rendering of sizes and relationships."""
        rows = [
            ["|End|", self.size_map.get("end", "-")],
            ["|Stage|", self.size_map.get("stage", "-")],
            ["|Step|", self.size_map.get("step", "-")],
            ["|Ind|", self.size_map.get("independent", "-")],
            ["Step = Stage", self.step_equals_stage],
            ["Ind ⊆ Stage", self.ind_subset_of_stage],
            ["Ind ⊆ Step", self.ind_subset_of_step],
            ["Stage ⊆ End", self.stage_subset_of_end],
            ["Step ⊆ End", self.step_subset_of_end],
        ]
        return format_table(["property", "value"], rows, title=f"program {self.name}")


def compare_results(
    results: Mapping[Semantics | str, RepairResult], name: str = "",
) -> ContainmentReport:
    """Build a :class:`ContainmentReport` from per-semantics results.

    All four semantics must be present in ``results``.
    """
    normalized: Dict[Semantics, RepairResult] = {
        Semantics.parse(key): value for key, value in results.items()
    }
    missing = [member for member in Semantics if member not in normalized]
    if missing:
        raise ValueError(
            "compare_results needs all four semantics; missing: "
            + ", ".join(member.value for member in missing),
        )
    end = normalized[Semantics.END]
    stage = normalized[Semantics.STAGE]
    step = normalized[Semantics.STEP]
    ind = normalized[Semantics.INDEPENDENT]
    sizes = tuple(
        (member.value, normalized[member].size)
        for member in (
            Semantics.END,
            Semantics.STAGE,
            Semantics.STEP,
            Semantics.INDEPENDENT,
        )
    )
    return ContainmentReport(
        name=name,
        sizes=sizes,
        step_equals_stage=step.deleted == stage.deleted,
        ind_subset_of_stage=ind.deleted <= stage.deleted,
        ind_subset_of_step=ind.deleted <= step.deleted,
        stage_subset_of_end=stage.deleted <= end.deleted,
        step_subset_of_end=step.deleted <= end.deleted,
        ind_not_larger_than_stage=ind.size <= stage.size,
        ind_not_larger_than_step=ind.size <= step.size,
    )
