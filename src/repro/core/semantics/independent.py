"""Independent semantics (Definition 3.3): the globally minimum stabilizing set.

Independent semantics asks for the smallest set ``S`` of tuples such that the
database ``(D \\ S) ∪ Δ(S)`` satisfies no rule of the program — the classic
minimum-repair objective for denial constraints, generalised to cascading
delta rules.  Finding it is NP-hard (Proposition 4.2); the paper's Algorithm 1
builds the Boolean provenance of every possible delta tuple, negates it, and
asks a Min-Ones SAT solver for a model with the fewest deletions.  This module
implements that algorithm on top of :mod:`repro.provenance.boolean` and
:mod:`repro.solver`.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.semantics.base import (
    PHASE_EVAL,
    PHASE_PROCESS_PROV,
    PHASE_SOLVE,
    RepairResult,
    Semantics,
)
from repro.datalog.ast import Program, Rule
from repro.datalog.delta import DeltaProgram
from repro.provenance.boolean import build_boolean_provenance
from repro.solver.cnf import CNF, FactVariableMap
from repro.solver.minones import solve_min_ones
from repro.storage.database import BaseDatabase, stabilized_copy
from repro.storage.facts import Fact
from repro.utils.timing import PhaseTimer


def independent_semantics(
    db: BaseDatabase,
    program: DeltaProgram | Program | Iterable[Rule],
    timer: PhaseTimer | None = None,
    exact_variable_limit: int = 2000,
    node_limit: int = 200_000,
    engine: str = "auto",
    context=None,
) -> RepairResult:
    """Compute ``Ind(P, D)`` via Algorithm 1 (Boolean provenance + Min-Ones SAT).

    The result is the exact minimum whenever the solver reports optimality
    (``metadata["optimal"]``); otherwise it is still a valid stabilizing set,
    mirroring the paper's remark that any satisfying assignment is sound.
    ``engine`` selects join planning for the provenance build (see
    :func:`repro.provenance.boolean.build_boolean_provenance`).
    """
    from repro.datalog.evaluation import validate_engine

    validate_engine(engine)
    timer = timer if timer is not None else PhaseTimer()
    rules = list(program)

    # Line 1: Boolean provenance of every possible delta tuple.
    with timer.phase(PHASE_EVAL):
        provenance = build_boolean_provenance(
            db, rules, engine=engine, context=context,
        )

    # Lines 2-4: the negated provenance as a CNF over deletion variables.
    with timer.phase(PHASE_PROCESS_PROV):
        ordered_facts: list[Fact] = sorted(
            provenance.variables, key=lambda item: item.sort_key(),
        )
        mapping = FactVariableMap.from_keys(ordered_facts)
        fact_to_var = mapping.key_to_var
        cnf = CNF()
        nontrivial = True
        for clause in provenance.clauses:
            literals = [fact_to_var[item] for item in sorted(clause.positives)]
            literals += [-fact_to_var[item] for item in sorted(clause.negatives)]
            if literals:
                cnf.add_clause(literals)
            else:
                # An assignment with no voidable literal: the database cannot be
                # stabilized by deletions alone (cannot happen for well-formed
                # delta rules, whose guard atom always contributes a literal).
                nontrivial = False

    # Line 5: Min-Ones SAT.
    with timer.phase(PHASE_SOLVE):
        solution = solve_min_ones(
            cnf, exact_variable_limit=exact_variable_limit, node_limit=node_limit,
        )

    var_to_fact = mapping.var_to_key
    deleted = frozenset(var_to_fact[variable] for variable in solution.true_variables)
    repaired = stabilized_copy(db, deleted)
    return RepairResult(
        semantics=Semantics.INDEPENDENT,
        deleted=deleted,
        repaired=repaired,
        timer=timer,
        rounds=None,
        metadata={
            "optimal": solution.optimal and nontrivial,
            "clauses": provenance.clause_count(),
            "provenance_variables": provenance.variable_count(),
            "solver_components": solution.stats.components,
            "solver_nodes": solution.stats.nodes_explored,
            "solver_greedy_components": solution.stats.greedy_components,
        },
    )
