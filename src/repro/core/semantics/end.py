"""End semantics (Definition 3.10): standard datalog evaluation of delta relations.

End semantics treats the delta relations as ordinary intensional relations:
every derivable delta tuple is derived against the *original* relations, and
only once the fixpoint is reached are the derived tuples removed from the
database.  It is the most permissive of the four semantics (its result
contains both the stage and step results) and serves as the paper's baseline.
Computing it is PTIME (Proposition 4.1).

The derivation fixpoint runs on the shared closure engine: semi-naive and
delta-driven by default (``engine="auto"``) on both the in-memory and the
SQLite backend (the latter through the frontier-table SQL driver of
:mod:`repro.datalog.sql_seminaive`), with the naive re-evaluate-everything
loop kept as the differential-testing oracle (``engine="naive"``).
"""

from __future__ import annotations

from typing import Iterable

from repro.core.semantics.base import PHASE_EVAL, RepairResult, Semantics
from repro.datalog.ast import Program, Rule
from repro.datalog.delta import DeltaProgram
from repro.datalog.evaluation import ENGINE_AUTO, run_closure
from repro.storage.database import BaseDatabase
from repro.utils.timing import PhaseTimer


def end_semantics(
    db: BaseDatabase,
    program: DeltaProgram | Program | Iterable[Rule],
    timer: PhaseTimer | None = None,
    engine: str = ENGINE_AUTO,
    context=None,
    collect_assignments: bool = False,
) -> RepairResult:
    """Compute ``End(P, D)``.

    The input database is never modified; the returned result carries a
    repaired clone.  ``engine`` selects the closure engine (see
    :func:`repro.datalog.evaluation.run_closure`) and ``context`` shares
    planning state (and delivers assignments to its observers) across runs.
    End semantics only needs the derived delta *facts*, so by default it does
    not collect assignments — on SQLite this enables the install-only
    fast path (one join per rule variant per round).  Pass
    ``collect_assignments=True`` to retain the old behaviour and populate
    ``metadata["assignments"]``.
    """
    timer = timer if timer is not None else PhaseTimer()
    rules = list(program)
    working = db.clone()
    with timer.phase(PHASE_EVAL):
        # Derive all delta tuples to fixpoint; the active relations stay frozen
        # at D^0 (mark_deleted only touches the delta extents).
        closure = run_closure(
            working,
            rules,
            engine=engine,
            context=context,
            collect_assignments=collect_assignments,
        )
        # Final state T: remove every derived tuple from the active relations.
        deleted = set()
        for relation in working.relation_names():
            for item in working.delta_facts(relation):
                if working.has_active(item):
                    working.drop_active(item)
                    deleted.add(item)
    return RepairResult(
        semantics=Semantics.END,
        deleted=frozenset(deleted),
        repaired=working,
        timer=timer,
        rounds=closure.rounds,
        metadata={
            "derived_delta_tuples": working.count_delta(),
            "engine": closure.engine,
            # None when the fast path skipped assignment enumeration.
            "assignments": (
                len(closure.assignments) if collect_assignments else None
            ),
        },
    )
