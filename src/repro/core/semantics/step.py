"""Step semantics (Definition 3.5): one rule activation at a time.

Step semantics fires a single satisfying assignment per step, immediately
updates the database, and looks for the firing sequence whose fixpoint deletes
the fewest tuples.  Deciding whether a result of size ``k`` exists is NP-hard
(Proposition 4.2), so the paper proposes the greedy Algorithm 2 over the
provenance graph; this module implements both that greedy algorithm (the
default) and an exhaustive search over firing sequences that is exact but only
feasible on small instances (used by the tests to validate the greedy result
and by the vertex-cover reduction experiments).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.core.semantics.base import (
    PHASE_EVAL,
    PHASE_PROCESS_PROV,
    PHASE_TRAVERSE,
    RepairResult,
    Semantics,
)
from repro.datalog.ast import Program, Rule
from repro.datalog.delta import DeltaProgram
from repro.datalog.evaluation import (
    ENGINE_AUTO,
    Assignment,
    find_assignments,
    run_closure,
    validate_engine,
)
from repro.exceptions import SemanticsError
from repro.provenance.graph import ProvenanceGraph
from repro.storage.database import BaseDatabase
from repro.storage.database import stabilized_copy
from repro.storage.facts import Fact
from repro.utils.rng import stable_hash
from repro.utils.timing import PhaseTimer


def step_semantics(
    db: BaseDatabase,
    program: DeltaProgram | Program | Iterable[Rule],
    timer: PhaseTimer | None = None,
    method: str = "greedy",
    max_states: int = 100_000,
    engine: str = ENGINE_AUTO,
    context=None,
) -> RepairResult:
    """Compute a step-semantics stabilizing set.

    Parameters
    ----------
    method:
        ``"greedy"`` (Algorithm 2, default) or ``"exhaustive"`` — an exact
        search over firing sequences, exponential in the worst case and guarded
        by ``max_states``.
    engine:
        The closure engine building the provenance for the greedy method (see
        :func:`repro.datalog.evaluation.run_closure`); the exhaustive search
        evaluates single hypothetical states and ignores it.
    context:
        Optional shared :class:`~repro.datalog.context.EvalContext`.  The
        provenance build registers as an assignment observer of the closure
        (so on SQLite it reads the staged rows of the single per-round join),
        and the context's plan/variant caches carry over to sibling runs.
    """
    validate_engine(engine)
    if method == "greedy":
        return _step_greedy(db, program, timer, engine=engine, context=context)
    if method == "exhaustive":
        return _step_exhaustive(db, program, timer, max_states=max_states)
    raise SemanticsError(f"unknown step-semantics method: {method!r}")


# ---------------------------------------------------------------------------
# Greedy Algorithm 2
# ---------------------------------------------------------------------------


def _step_greedy(
    db: BaseDatabase,
    program: DeltaProgram | Program | Iterable[Rule],
    timer: PhaseTimer | None,
    engine: str = ENGINE_AUTO,
    context=None,
) -> RepairResult:
    timer = timer if timer is not None else PhaseTimer()
    rules = list(program)

    # Line 1 of Algorithm 2: the provenance graph of End(P, D).  The graph
    # only needs the assignment *stream* (it indexes facts itself), so the
    # closure is told not to retain its own copy of the assignment list.
    provenance = ProvenanceGraph()
    working = db.clone()
    with timer.phase(PHASE_EVAL):
        closure = run_closure(
            working,
            rules,
            on_assignment=provenance._register_assignment,
            engine=engine,
            collect_assignments=False,
            context=context,
        )
    with timer.phase(PHASE_PROCESS_PROV):
        provenance._compute_layers()
        provenance._compute_benefits()

    chosen: Set[Fact] = set()
    removed: Set[Fact] = set()
    with timer.phase(PHASE_TRAVERSE):
        assignments_of: Dict[Fact, List[Assignment]] = {}
        for assignment in provenance.assignments:
            assignments_of.setdefault(assignment.derived, []).append(assignment)

        def prune() -> None:
            """Remove delta tuples all of whose derivations are voided."""
            changed = True
            while changed:
                changed = False
                for target in provenance.derived:
                    if target in chosen or target in removed:
                        continue
                    derivations = assignments_of.get(target, [])
                    if derivations and all(
                        _is_voided(assignment, target, chosen, removed)
                        for assignment in derivations
                    ):
                        removed.add(target)
                        changed = True

        for layer in range(1, provenance.layer_count + 1):
            while True:
                candidates = [
                    item
                    for item in provenance.tuples_in_layer(layer)
                    if item not in chosen and item not in removed
                ]
                if not candidates:
                    break
                best = max(
                    candidates,
                    key=lambda item: (
                        provenance.benefit(item),
                        -stable_hash(item.relation, item.values),
                    ),
                )
                chosen.add(best)
                prune()

    repaired = stabilized_copy(db, chosen)
    return RepairResult(
        semantics=Semantics.STEP,
        deleted=frozenset(chosen),
        repaired=repaired,
        timer=timer,
        rounds=provenance.layer_count,
        metadata={
            "method": "greedy",
            "engine": closure.engine,
            "closure_rounds": closure.rounds,
            "provenance_nodes": provenance.node_count(),
            "provenance_edges": provenance.edge_count(),
            "provenance_assignments": len(provenance.assignments),
            "pruned_delta_tuples": len(removed),
        },
    )


def _is_voided(
    assignment: Assignment,
    target: Fact,
    chosen: Set[Fact],
    removed: Set[Fact],
) -> bool:
    """An assignment is voided when a chosen deletion breaks one of its base atoms,
    or a pruned delta tuple can no longer supply one of its delta atoms."""
    for item in assignment.base_facts():
        if item in chosen and item != target:
            return True
    for item in assignment.delta_facts():
        if item in removed:
            return True
    return False


# ---------------------------------------------------------------------------
# Exhaustive search over firing sequences (exact, small inputs only)
# ---------------------------------------------------------------------------


def _step_exhaustive(
    db: BaseDatabase,
    program: DeltaProgram | Program | Iterable[Rule],
    timer: PhaseTimer | None,
    max_states: int,
) -> RepairResult:
    timer = timer if timer is not None else PhaseTimer()
    rules = list(program)
    best: Set[Fact] | None = None
    visited: Set[frozenset[Fact]] = set()
    explored = 0

    with timer.phase(PHASE_TRAVERSE):

        def explore(deleted: frozenset[Fact]) -> None:
            nonlocal best, explored
            if deleted in visited:
                return
            visited.add(deleted)
            explored += 1
            if explored > max_states:
                raise SemanticsError(
                    f"exhaustive step search exceeded {max_states} states; "
                    "use method='greedy' for this input",
                )
            if best is not None and len(deleted) >= len(best):
                # Any extension only grows; a known smaller/equal fixpoint wins.
                return
            state = stabilized_copy(db, deleted)
            derivable = set()
            for rule in rules:
                for assignment in find_assignments(state, rule):
                    derivable.add(assignment.derived)
            derivable -= set(deleted)
            if not derivable:
                if best is None or len(deleted) < len(best):
                    best = set(deleted)
                return
            if best is not None and len(deleted) + 1 >= len(best):
                return
            for item in sorted(derivable, key=lambda fact: fact.sort_key()):
                explore(deleted | {item})

        explore(frozenset())

    if best is None:
        raise SemanticsError("exhaustive step search found no fixpoint (unexpected)")
    repaired = stabilized_copy(db, best)
    return RepairResult(
        semantics=Semantics.STEP,
        deleted=frozenset(best),
        repaired=repaired,
        timer=timer,
        rounds=None,
        metadata={"method": "exhaustive", "states_explored": explored},
    )
