"""The four repair semantics and a uniform dispatch entry point."""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable

from repro.core.semantics.base import (
    PHASE_EVAL,
    PHASE_PROCESS_PROV,
    PHASE_SOLVE,
    PHASE_TRAVERSE,
    RepairResult,
    Semantics,
)
from repro.core.semantics.end import end_semantics
from repro.core.semantics.independent import independent_semantics
from repro.core.semantics.stage import stage_semantics
from repro.core.semantics.step import step_semantics
from repro.datalog.ast import Program, Rule
from repro.datalog.delta import DeltaProgram
from repro.storage.database import BaseDatabase

#: Dispatch table from semantics to its implementation.
SEMANTICS_IMPLEMENTATIONS: Dict[Semantics, Callable[..., RepairResult]] = {
    Semantics.END: end_semantics,
    Semantics.STAGE: stage_semantics,
    Semantics.STEP: step_semantics,
    Semantics.INDEPENDENT: independent_semantics,
}


def compute_repair(
    db: BaseDatabase,
    program: DeltaProgram | Program | Iterable[Rule],
    semantics: Semantics | str,
    **options: Any,
) -> RepairResult:
    """Compute the repair of ``db`` under ``program`` for the given semantics.

    ``options`` are forwarded to the specific implementation (e.g.
    ``method="exhaustive"`` for step semantics, ``exact_variable_limit`` for
    independent semantics).
    """
    resolved = Semantics.parse(semantics)
    implementation = SEMANTICS_IMPLEMENTATIONS[resolved]
    return implementation(db, program, **options)


__all__ = [
    "Semantics",
    "RepairResult",
    "end_semantics",
    "stage_semantics",
    "step_semantics",
    "independent_semantics",
    "compute_repair",
    "SEMANTICS_IMPLEMENTATIONS",
    "PHASE_EVAL",
    "PHASE_PROCESS_PROV",
    "PHASE_SOLVE",
    "PHASE_TRAVERSE",
]
