"""Stage semantics (Definition 3.7): semi-naive rounds with immediate deletion.

At every stage all satisfying assignments over the *current* state of the
database are evaluated, all the derived tuples are deleted together, and the
next stage starts from the updated state.  The evaluation is deterministic and
rule-order independent, and converges to a unique fixpoint (Proposition 3.9);
computing it is PTIME (Proposition 4.1).

Stage semantics models cascade deletions by SQL triggers that fire in rounds
(statement-level "after delete" triggers), as discussed in Section 3.4.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.semantics.base import PHASE_EVAL, RepairResult, Semantics
from repro.datalog.ast import Program, Rule
from repro.datalog.delta import DeltaProgram
from repro.datalog.evaluation import find_assignments
from repro.storage.database import BaseDatabase
from repro.utils.timing import PhaseTimer


def stage_semantics(
    db: BaseDatabase,
    program: DeltaProgram | Program | Iterable[Rule],
    timer: PhaseTimer | None = None,
) -> RepairResult:
    """Compute ``Stage(P, D)``.

    The input database is never modified; the returned result carries a
    repaired clone and the number of stages until the fixpoint.
    """
    timer = timer if timer is not None else PhaseTimer()
    rules = list(program)
    working = db.clone()
    deleted: set = set()
    stages = 0
    with timer.phase(PHASE_EVAL):
        while True:
            stages += 1
            # Evaluate every rule against the state at the start of the stage.
            derived_now = set()
            for rule in rules:
                for assignment in find_assignments(working, rule):
                    derived_now.add(assignment.derived)
            # Only tuples still active lead to a state change.
            newly_deleted = {
                item
                for item in derived_now
                if working.has_active(item) or not working.has_delta(item)
            }
            changed = False
            for item in newly_deleted:
                was_active = working.has_active(item)
                if working.delete(item) or was_active:
                    changed = True
                if was_active:
                    deleted.add(item)
            if not changed:
                break
    return RepairResult(
        semantics=Semantics.STAGE,
        deleted=frozenset(deleted),
        repaired=working,
        timer=timer,
        rounds=stages,
        metadata={},
    )
