"""Stage semantics (Definition 3.7): semi-naive rounds with immediate deletion.

At every stage all satisfying assignments over the *current* state of the
database are evaluated, all the derived tuples are deleted together, and the
next stage starts from the updated state.  The evaluation is deterministic and
rule-order independent, and converges to a unique fixpoint (Proposition 3.9);
computing it is PTIME (Proposition 4.1).

Stage semantics models cascade deletions by SQL triggers that fire in rounds
(statement-level "after delete" triggers), as discussed in Section 3.4.

The default engine maintains the satisfying assignments *incrementally*
between stages instead of re-enumerating them: deleting a tuple can only
(a) void assignments that matched it through a base atom — tracked by an
assignment-per-base-fact index — and (b) enable assignments that match it
through a delta atom — discovered by seeding the rules from the frontier of
newly recorded deletions (:func:`repro.datalog.seminaive.seeded_assignments`
on in-memory databases, the generation-window SQL variants of
:func:`repro.datalog.sql_seminaive.seeded_assignments_sql` on SQLite-backed
ones).  ``engine="naive"`` keeps the re-evaluate-everything loop as the oracle.

With a shared :class:`~repro.datalog.context.EvalContext` (e.g. inside a
``RepairEngine.compare()`` run) both discovery paths turn adaptive: join
plans are re-costed at every stage boundary
(:meth:`~repro.datalog.planner.JoinPlanner.begin_round` — deletions shrink
extents, so cached orders go stale), and when the context carries assignment
*observers* each discovered assignment is delivered to them once per
enumeration on both backends — the SQLite path stages the discovery join
through the persistent keyed stage table so rows feed the observers and the
live-assignment index from one join (see
:mod:`repro.datalog.sql_seminaive`), the in-memory path mirrors its planned
enumeration to the observers as it streams.  Without observers discovery
stays on plain single-pass SELECTs / streamed joins.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Set

from repro.core.semantics.base import PHASE_EVAL, RepairResult, Semantics
from repro.datalog.ast import Program, Rule
from repro.datalog.delta import DeltaProgram
from repro.datalog.evaluation import (
    ENGINE_AUTO,
    ENGINE_NAIVE,
    Assignment,
    find_assignments,
    resolve_engine,
)
from repro.storage.database import BaseDatabase
from repro.storage.facts import Fact
from repro.storage.sqlite_backend import SQLiteDatabase
from repro.utils.timing import PhaseTimer


def stage_semantics(
    db: BaseDatabase,
    program: DeltaProgram | Program | Iterable[Rule],
    timer: PhaseTimer | None = None,
    engine: str = ENGINE_AUTO,
    context=None,
) -> RepairResult:
    """Compute ``Stage(P, D)``.

    The input database is never modified; the returned result carries a
    repaired clone and the number of stages until the fixpoint.  ``context``
    (an :class:`~repro.datalog.context.EvalContext`) shares join plans /
    compiled SQL variants with other runs, e.g. the sibling semantics of one
    ``RepairEngine.compare()`` call.
    """
    timer = timer if timer is not None else PhaseTimer()
    rules = list(program)
    working = db.clone()
    # Sharding applies to closure drivers, not the incremental discovery
    # loop, so every non-naive resolution (semi-naive or sharded) takes the
    # same incremental path; resolving with the context keeps the reported
    # metadata honest when ``auto`` opted into sharding.
    resolved = resolve_engine(working, engine, context)
    deleted: set = set()
    with timer.phase(PHASE_EVAL):
        if resolved == ENGINE_NAIVE:
            stages = _stage_fixpoint_naive(working, rules, deleted)
        else:
            stages = _stage_fixpoint_incremental(working, rules, deleted, context)
    return RepairResult(
        semantics=Semantics.STAGE,
        deleted=frozenset(deleted),
        repaired=working,
        timer=timer,
        rounds=stages,
        metadata={"engine": resolved},
    )


def _apply_stage(
    working: BaseDatabase, derived_now: Set[Fact], deleted: set,
) -> tuple[bool, List[Fact]]:
    """Delete this stage's derived tuples; returns (changed, facts deleted from
    the active extent)."""
    # Only tuples still active lead to a state change.
    newly_deleted = {
        item
        for item in derived_now
        if working.has_active(item) or not working.has_delta(item)
    }
    changed = False
    dropped: List[Fact] = []
    for item in newly_deleted:
        was_active = working.has_active(item)
        if working.delete(item) or was_active:
            changed = True
        if was_active:
            deleted.add(item)
            dropped.append(item)
    return changed, dropped


def _stage_fixpoint_naive(
    working: BaseDatabase, rules: List[Rule], deleted: set,
) -> int:
    """The oracle loop: re-enumerate every rule at every stage."""
    stages = 0
    while True:
        stages += 1
        # Evaluate every rule against the state at the start of the stage.
        derived_now: Set[Fact] = set()
        for rule in rules:
            for assignment in find_assignments(working, rule):
                derived_now.add(assignment.derived)
        changed, _dropped = _apply_stage(working, derived_now, deleted)
        if not changed:
            break
    return stages


class _MemoryStageDiscovery:
    """Assignment discovery over the in-memory engine's planned joins."""

    def __init__(
        self, working: BaseDatabase, rules: List[Rule], context=None,
    ) -> None:
        from repro.datalog.planner import JoinPlanner

        self._working = working
        self._rules = rules
        self._context = context
        self._planner = (
            context.planner(working) if context is not None else JoinPlanner(working)
        )
        self._delta_rules = [
            rule for rule in rules if any(atom.is_delta for atom in rule.body)
        ]
        self._relations = sorted(
            {
                atom.relation
                for rule in self._delta_rules
                for atom in rule.body
                if atom.is_delta
            },
        )
        self._tokens = {
            relation: working.delta_token(relation) for relation in self._relations
        }

    def _deliver(self, assignments: Iterable[Assignment]) -> Iterator[Assignment]:
        """Yield ``assignments``, mirroring each to the context's assignment
        observers (same delivery the SQL discovery path performs while
        staging) — a no-op pass-through without observers."""
        context = self._context
        if context is None or not context.has_observers:
            yield from assignments
            return
        for assignment in assignments:
            context.notify(assignment)
            yield assignment

    def initial(self) -> Iterator[Assignment]:
        for rule in self._rules:
            yield from self._deliver(
                find_assignments(self._working, rule, planner=self._planner),
            )

    def newly_enabled(self) -> Iterator[Assignment]:
        from repro.datalog.seminaive import seeded_assignments

        # Stage boundary: deletions changed the extents, so let the planner
        # re-cost any plan whose snapshot has drifted.
        self._planner.begin_round()
        frontier: Dict[str, Set[Fact]] = {}
        for relation in self._relations:
            added = self._working.delta_added_since(relation, self._tokens[relation])
            self._tokens[relation] = self._working.delta_token(relation)
            if added:
                frontier[relation] = set(added)
        if frontier:
            for rule in self._delta_rules:
                yield from self._deliver(
                    seeded_assignments(self._working, rule, frontier, self._planner),
                )


class _SQLStageDiscovery:
    """Assignment discovery over the SQLite frontier tables.

    The frontier of one stage is the generation window recorded since the
    previous discovery call; the delta-rewritten variants enumerate exactly
    the assignments enabled by it, entirely via SQL joins.
    """

    def __init__(
        self, working: SQLiteDatabase, rules: List[Rule], context=None,
    ) -> None:
        self._working = working
        self._rules = rules
        self._context = context
        self._delta_rules = [
            rule for rule in rules if any(atom.is_delta for atom in rule.body)
        ]
        self._token = working.generation()

    def initial(self) -> Iterator[Assignment]:
        from repro.datalog.sql_seminaive import full_assignments_sql

        for rule in self._rules:
            yield from full_assignments_sql(
                self._working, rule, self._token, context=self._context,
            )

    def newly_enabled(self) -> Iterator[Assignment]:
        from repro.datalog.sql_seminaive import seeded_assignments_sql

        lo, self._token = self._token, self._working.generation()
        if lo == self._token:
            return
        for rule in self._delta_rules:
            yield from seeded_assignments_sql(
                self._working, rule, lo, self._token, context=self._context,
            )


def _stage_fixpoint_incremental(
    working: BaseDatabase, rules: List[Rule], deleted: set, context=None,
) -> int:
    """Delta-driven stages: maintain the live assignments across deletions."""
    if isinstance(working, SQLiteDatabase):
        discovery = _SQLStageDiscovery(working, rules, context)
    else:
        discovery = _MemoryStageDiscovery(working, rules, context)

    live: Dict[tuple, Assignment] = {}
    by_base: Dict[Fact, Set[tuple]] = {}

    def admit(assignment: Assignment) -> None:
        signature = assignment.signature()
        if signature in live:
            return
        live[signature] = assignment
        for item in assignment.base_facts():
            by_base.setdefault(item, set()).add(signature)

    for assignment in discovery.initial():
        admit(assignment)

    stages = 0
    while True:
        stages += 1
        derived_now = {assignment.derived for assignment in live.values()}
        changed, dropped = _apply_stage(working, derived_now, deleted)
        if not changed:
            break
        # Deleting a base fact voids every assignment matching it positively.
        for item in dropped:
            for signature in by_base.pop(item, ()):
                live.pop(signature, None)
        # Newly recorded deltas may enable assignments through delta atoms.
        for assignment in discovery.newly_enabled():
            admit(assignment)
    return stages
