"""Shared types for the repair semantics: the :class:`Semantics` enum and results."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict

from repro.storage.database import BaseDatabase
from repro.storage.facts import Fact
from repro.utils.timing import PhaseTimer

#: Phase names used for the Figure-8 runtime breakdown.
PHASE_EVAL = "eval"
PHASE_PROCESS_PROV = "process_prov"
PHASE_SOLVE = "solve"
PHASE_TRAVERSE = "traverse"


class Semantics(str, Enum):
    """The four semantics of delta programs defined in Section 3 of the paper."""

    END = "end"
    STAGE = "stage"
    STEP = "step"
    INDEPENDENT = "independent"

    @classmethod
    def parse(cls, value: "Semantics | str") -> "Semantics":
        """Accept either an enum member or its (case-insensitive) string name."""
        if isinstance(value, Semantics):
            return value
        normalized = value.strip().lower()
        aliases = {"ind": "independent", "indep": "independent"}
        normalized = aliases.get(normalized, normalized)
        for member in cls:
            if member.value == normalized or member.name.lower() == normalized:
                return member
        raise ValueError(f"unknown semantics: {value!r}")

    def __str__(self) -> str:
        return self.value


@dataclass
class RepairResult:
    """The outcome of evaluating one semantics on a (database, program) pair.

    Attributes
    ----------
    semantics:
        Which semantics produced the result.
    deleted:
        The stabilizing set ``S`` — the non-delta tuples removed from the
        database (the paper's ``σ(P, D)``).
    repaired:
        The repaired database ``(D \\ S) ∪ Δ(S)``.
    timer:
        Wall-clock phase breakdown (``eval`` / ``process_prov`` / ``solve`` /
        ``traverse`` for the provenance-based algorithms, ``eval`` otherwise).
    rounds:
        Number of evaluation rounds (stages / fixpoint iterations) when the
        semantics is round-based, else None.
    metadata:
        Algorithm-specific extras: solver statistics, provenance sizes,
        optimality flags, firing sequences...
    """

    semantics: Semantics
    deleted: frozenset[Fact]
    repaired: BaseDatabase
    timer: PhaseTimer = field(default_factory=PhaseTimer)
    rounds: int | None = None
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def size(self) -> int:
        """Number of deleted tuples — the quantity Figures 6 and 9a report."""
        return len(self.deleted)

    @property
    def runtime(self) -> float:
        """Total wall-clock seconds across all recorded phases."""
        return self.timer.total

    def deleted_by_relation(self) -> Dict[str, frozenset[Fact]]:
        """The deleted tuples grouped by relation name."""
        grouped: Dict[str, set[Fact]] = {}
        for item in self.deleted:
            grouped.setdefault(item.relation, set()).add(item)
        return {relation: frozenset(items) for relation, items in grouped.items()}

    def contains(self, other: "RepairResult") -> bool:
        """Set containment of the other result's deletions in this one."""
        return other.deleted <= self.deleted

    def summary(self) -> str:
        """A one-line summary used by the experiment reports."""
        per_relation = ", ".join(
            f"{relation}:{len(items)}"
            for relation, items in sorted(self.deleted_by_relation().items())
        )
        return (
            f"{self.semantics.value:<11} deleted={self.size:<6} "
            f"time={self.runtime:.4f}s [{per_relation}]"
        )

    def __str__(self) -> str:
        return self.summary()
