"""Core repair framework: the four semantics, the repair engine, and analysis.

This is the paper's primary contribution packaged behind a small public API:

>>> from repro.core import RepairEngine, Semantics
>>> # engine = RepairEngine(db, program)
>>> # result = engine.repair(Semantics.INDEPENDENT)
"""

from repro.core.semantics import (
    RepairResult,
    Semantics,
    end_semantics,
    independent_semantics,
    stage_semantics,
    step_semantics,
    compute_repair,
)
from repro.core.repair import RepairEngine
from repro.core.stability import (
    is_stable,
    is_stabilizing_set,
    violating_assignments,
    verify_repair,
)
from repro.core.containment import ContainmentReport, compare_results
from repro.core.explain import DeletionExplanation, explain_deletion, explain_repair

__all__ = [
    "DeletionExplanation",
    "explain_deletion",
    "explain_repair",
    "Semantics",
    "RepairResult",
    "end_semantics",
    "stage_semantics",
    "step_semantics",
    "independent_semantics",
    "compute_repair",
    "RepairEngine",
    "is_stable",
    "is_stabilizing_set",
    "violating_assignments",
    "verify_repair",
    "ContainmentReport",
    "compare_results",
]
