"""Small shared utilities: timers, deterministic RNG helpers, text tables."""

from repro.utils.timing import PhaseTimer, Stopwatch
from repro.utils.text import format_table
from repro.utils.rng import make_rng, stable_hash

__all__ = [
    "PhaseTimer",
    "Stopwatch",
    "format_table",
    "make_rng",
    "stable_hash",
]
