"""Plain-text table rendering for the experiment reports.

The experiment harness prints the same rows the paper's tables and figures
report; :func:`format_table` renders them as aligned monospace tables so the
benchmark output is directly readable in a terminal or a log file.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def _stringify(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table.

    Example
    -------
    >>> print(format_table(["program", "size"], [["MAS-1", 12]]))
    program | size
    --------+-----
    MAS-1   | 12
    """
    str_rows = [[_stringify(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))

    def render_row(cells: Sequence[str]) -> str:
        padded = [cell.ljust(widths[index]) for index, cell in enumerate(cells)]
        return " | ".join(padded).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("-+-".join("-" * width for width in widths))
    for row in str_rows:
        lines.append(render_row(row))
    return "\n".join(lines)


def format_percentages(values: dict[str, float]) -> str:
    """Format a ``{phase: fraction}`` mapping as ``phase=12.3%`` pairs."""
    parts = [f"{name}={fraction * 100:.1f}%" for name, fraction in values.items()]
    return ", ".join(parts)
