"""Timing helpers used by the semantics implementations and the experiment harness.

The paper reports both end-to-end runtimes (Figures 7, 9b, 10) and a phase
breakdown for Algorithms 1 and 2 (Figure 8: Eval / Process Prov / Solve /
Traverse).  :class:`PhaseTimer` records named phases so the experiment modules
can reproduce that breakdown without re-instrumenting the algorithms.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator


@dataclass
class Stopwatch:
    """A simple start/stop wall-clock stopwatch.

    Example
    -------
    >>> watch = Stopwatch()
    >>> watch.start()
    >>> _ = sum(range(1000))
    >>> elapsed = watch.stop()
    >>> elapsed >= 0.0
    True
    """

    _started_at: float | None = None
    _elapsed: float = 0.0

    def start(self) -> None:
        """Start (or restart) the stopwatch."""
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        """Stop the stopwatch and return the total elapsed seconds."""
        if self._started_at is not None:
            self._elapsed += time.perf_counter() - self._started_at
            self._started_at = None
        return self._elapsed

    def reset(self) -> None:
        """Reset the accumulated time and stop the stopwatch."""
        self._started_at = None
        self._elapsed = 0.0

    @property
    def elapsed(self) -> float:
        """Elapsed seconds, including the currently running interval if any."""
        running = 0.0
        if self._started_at is not None:
            running = time.perf_counter() - self._started_at
        return self._elapsed + running


@dataclass
class PhaseTimer:
    """Accumulates wall-clock time per named phase.

    Used to reproduce the Figure-8 runtime breakdown: the semantics
    implementations wrap their major stages in ``with timer.phase("eval"):``
    blocks, and the experiment code reads :attr:`phases` afterwards.
    """

    phases: Dict[str, float] = field(default_factory=dict)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Context manager adding the elapsed time of the block to ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.phases[name] = self.phases.get(name, 0.0) + (
                time.perf_counter() - start
            )

    def add(self, name: str, seconds: float) -> None:
        """Add ``seconds`` to the accumulated time of phase ``name``."""
        self.phases[name] = self.phases.get(name, 0.0) + seconds

    def get(self, name: str) -> float:
        """Return the accumulated seconds for ``name`` (0.0 if never recorded)."""
        return self.phases.get(name, 0.0)

    @property
    def total(self) -> float:
        """Total seconds across all phases."""
        return sum(self.phases.values())

    def fractions(self) -> Dict[str, float]:
        """Return the per-phase fraction of the total time (sums to 1.0)."""
        total = self.total
        if total <= 0.0:
            return {name: 0.0 for name in self.phases}
        return {name: seconds / total for name, seconds in self.phases.items()}

    def merge(self, other: "PhaseTimer") -> None:
        """Accumulate all phases from ``other`` into this timer."""
        for name, seconds in other.phases.items():
            self.add(name, seconds)
