"""Deterministic randomness helpers.

All synthetic data generators in :mod:`repro.workloads` take an integer seed
and build their RNG through :func:`make_rng` so experiments are reproducible
run to run, and property-based tests can pin the exact instance they exercise.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any


def make_rng(seed: int | None, *namespace: Any) -> random.Random:
    """Return a :class:`random.Random` derived from ``seed`` and a namespace.

    The namespace arguments let two generators that share the same user-facing
    seed (e.g. the MAS generator and the error injector) still draw independent
    streams: ``make_rng(7, "mas")`` and ``make_rng(7, "errors")`` differ.
    """
    if seed is None:
        return random.Random()
    material = ":".join([str(seed), *[str(part) for part in namespace]])
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def stable_hash(*parts: Any) -> int:
    """Return a process-independent 63-bit hash of the string forms of ``parts``.

    Python's built-in ``hash`` is salted per process for strings; experiments
    that want a stable tie-breaking order (e.g. the greedy step algorithm) use
    this instead.
    """
    material = "\x1f".join(str(part) for part in parts)
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFF_FFFF_FFFF_FFFF
