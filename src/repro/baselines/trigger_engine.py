"""A simulator for "after delete, delete" SQL triggers.

Section 6 of the paper compares the four semantics against the same programs
implemented as triggers in PostgreSQL and MySQL, highlighting that when several
triggers watch the same event the systems pick the firing order themselves:
PostgreSQL fires them alphabetically by trigger name, MySQL in creation order.
PostgreSQL/MySQL are not available offline, so this module simulates the
relevant behaviour: a row-level cascade where each deletion event is handed to
the watching triggers in policy order, each firing deletes its target rows
immediately, and the newly deleted rows are queued as further events.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Sequence

from repro.constraints.triggers import DeleteTrigger, triggers_from_program
from repro.datalog.ast import Atom, Constant, Rule, Variable
from repro.datalog.delta import DeltaProgram
from repro.datalog.evaluation import find_assignments
from repro.datalog.planner import JoinPlanner
from repro.exceptions import ExperimentError
from repro.storage.database import BaseDatabase
from repro.storage.facts import Fact
from repro.utils.timing import Stopwatch


class FiringPolicy(str, Enum):
    """How simultaneous triggers on the same event are ordered."""

    POSTGRESQL = "postgresql"  # alphabetical by trigger name
    MYSQL = "mysql"            # order of creation

    def __str__(self) -> str:
        return self.value


@dataclass
class TriggerRun:
    """The outcome of one trigger-cascade simulation."""

    policy: FiringPolicy
    deleted: frozenset[Fact]
    deletion_order: tuple[Fact, ...]
    fired: tuple[tuple[str, Fact], ...]
    runtime: float

    @property
    def size(self) -> int:
        """Number of deleted tuples."""
        return len(self.deleted)


@dataclass
class TriggerEngine:
    """Simulates a set of row-level "after delete, delete" triggers.

    Parameters
    ----------
    triggers:
        The trigger definitions, in creation order.
    policy:
        The firing-order policy for triggers watching the same relation.
    max_events:
        Safety bound on processed deletion events (MySQL famously failed to
        terminate on the paper's program 20; the simulator raises instead).
    """

    triggers: Sequence[DeleteTrigger]
    policy: FiringPolicy = FiringPolicy.POSTGRESQL
    max_events: int = 1_000_000

    @classmethod
    def from_program(
        cls,
        program: DeltaProgram,
        policy: FiringPolicy = FiringPolicy.POSTGRESQL,
        max_events: int = 1_000_000,
    ) -> "TriggerEngine":
        """Build the engine from a delta program (cascade rules become triggers).

        Rules without a delta body atom (selection/seed rules) are not
        triggers; their matching tuples should be passed to :meth:`run` as the
        initial deletions instead (see :func:`seed_deletions`).
        """
        return cls(
            triggers=tuple(triggers_from_program(program)),
            policy=policy,
            max_events=max_events,
        )

    # -- execution -------------------------------------------------------------

    def _ordered_triggers(self, relation: str) -> List[DeleteTrigger]:
        watching = [
            trigger for trigger in self.triggers if trigger.watched.relation == relation
        ]
        if self.policy is FiringPolicy.POSTGRESQL:
            return sorted(watching, key=lambda trigger: trigger.name)
        return watching  # creation order

    def run(
        self,
        db: BaseDatabase,
        initial_deletions: Iterable[Fact],
        context=None,
    ) -> TriggerRun:
        """Delete ``initial_deletions`` and cascade through the triggers.

        The input database is cloned; the clone after the cascade is discarded
        (only the deletion set and order are reported, as in the paper).
        ``context`` (an :class:`~repro.datalog.context.EvalContext`) lets the
        per-event probe plans be shared with other runs — e.g. repeated
        cascades of a trigger-comparison experiment — and subscribes the
        context's observers to the cascade *as it runs*: candidate observers
        (``context.add_candidate_observer``) see every fact a probe join
        iterates, and assignment observers (``context.add_observer``) receive
        each probe match the moment a trigger fires on it, mid-cascade rather
        than from the post-run report.
        """
        watch = Stopwatch()
        watch.start()
        working = db.clone()
        # Probe rules built per deletion event share their body structure per
        # trigger, so one planner caches a single join plan per trigger.
        planner = (
            context.planner(working) if context is not None else JoinPlanner(working)
        )
        watching_candidates = (
            context is not None
            and context.has_candidate_observers
            and hasattr(working, "add_candidate_observer")
        )
        if watching_candidates:
            working.add_candidate_observer(context.notify_candidate)
        deleted: List[Fact] = []
        fired: List[tuple[str, Fact]] = []
        queue: deque[Fact] = deque()

        try:
            for item in initial_deletions:
                if working.has_active(item):
                    working.delete(item)
                    deleted.append(item)
                    queue.append(item)

            processed = 0
            while queue:
                processed += 1
                if processed > self.max_events:
                    raise ExperimentError(
                        f"trigger cascade exceeded {self.max_events} events "
                        "(possible non-termination)",
                    )
                event = queue.popleft()
                for trigger in self._ordered_triggers(event.relation):
                    for assignment in self._matching_assignments(
                        working, trigger, event, planner,
                    ):
                        target = assignment.derived
                        if not working.has_active(target):
                            continue
                        if context is not None:
                            # Mid-cascade delivery: observers hear about the
                            # firing probe match before its deletion applies.
                            context.notify(assignment)
                        working.delete(target)
                        deleted.append(target)
                        fired.append((trigger.name, target))
                        queue.append(target)
        finally:
            if watching_candidates:
                working.remove_candidate_observer(context.notify_candidate)
        return TriggerRun(
            policy=self.policy,
            deleted=frozenset(deleted),
            deletion_order=tuple(deleted),
            fired=tuple(fired),
            runtime=watch.stop(),
        )

    def _matching_assignments(
        self,
        db: BaseDatabase,
        trigger: DeleteTrigger,
        event: Fact,
        planner: JoinPlanner | None = None,
    ) -> List:
        """Probe assignments of the trigger for the deletion of ``event``
        (their ``derived`` facts are the deletion targets).

        The trigger's WHEN condition is evaluated against the current state of
        the database with the watched atom bound to the deleted row (the SQL
        ``OLD`` record).
        """
        bound_watched = Atom(
            trigger.watched.relation,
            tuple(Constant(value) for value in event.values),
            is_delta=False,
        )
        bindings: Dict[str, object] = {}
        for term, value in zip(trigger.watched.terms, event.values):
            if isinstance(term, Variable):
                if term.name in bindings and bindings[term.name] != value:
                    return []
                bindings[term.name] = value
            elif isinstance(term, Constant) and term.value != value:
                return []
        target = trigger.target.substitute(bindings)
        condition = tuple(atom.substitute(bindings) for atom in trigger.condition)
        comparisons = tuple(
            _substitute_comparison(comparison, bindings)
            for comparison in trigger.comparisons
        )
        probe_rule = Rule(
            head=target.as_delta(),
            body=(target, *condition),
            comparisons=comparisons,
            name=trigger.name,
        )
        del bound_watched  # the OLD record itself is gone from the active extent
        return find_assignments(db, probe_rule, planner=planner)


def _substitute_comparison(comparison, bindings: Dict[str, object]):
    """Replace bound variables of a comparison by constants."""
    from repro.datalog.ast import Comparison

    def resolve(term):
        if isinstance(term, Variable) and term.name in bindings:
            return Constant(bindings[term.name])
        return term

    return Comparison(resolve(comparison.lhs), comparison.op, resolve(comparison.rhs))


def seed_deletions(db: BaseDatabase, program: DeltaProgram) -> List[Fact]:
    """The initial deletions of a trigger comparison: tuples matched by seed rules.

    Seed rules are the program's rules without delta atoms in their bodies
    (selection rules such as ``ΔO(oid, n) :- O(oid, n), oid = C``).
    """
    seeds: List[Fact] = []
    seen: set[Fact] = set()
    for rule in program:
        if any(atom.is_delta for atom in rule.body):
            continue
        for assignment in find_assignments(db, rule):
            if assignment.derived not in seen:
                seen.add(assignment.derived)
                seeds.append(assignment.derived)
    return seeds
