"""A HoloClean-style probabilistic cell-repair baseline.

The paper compares its deletion-based semantics against HoloClean, which
relaxes the constraints and repairs *cells* using a probabilistic model over
co-occurrence statistics.  HoloClean itself (and its Torch dependency) is not
available offline, so this module implements a simplified baseline that
preserves the behaviours the comparison measures (see DESIGN.md):

* it repairs attribute values instead of deleting tuples;
* it does not cascade and does not guarantee consistency — residual violations
  remain, and their number grows with the error rate (Table 5);
* it repairs fewer cells than required when the statistical signal is weak
  (Table 4's negative "under-repair" column).

Pipeline (mirroring HoloClean's detect → domain → infer stages):

1. **Detect** — cells participating in a DC violation are marked noisy, using
   the comparison structure of each DC to blame the attributes being compared.
2. **Domain** — candidate values for a noisy cell are collected from the
   values co-occurring with the row's other attributes across the relation.
3. **Infer** — each candidate is scored by its co-occurrence support; the cell
   is repaired to the best candidate only when that candidate beats the
   current value by a confidence margin (ties keep the current value, which is
   where under-repair comes from).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.constraints.denial import DenialConstraint
from repro.datalog.ast import Variable
from repro.datalog.evaluation import find_assignments
from repro.storage.database import BaseDatabase
from repro.storage.facts import Fact
from repro.utils.timing import Stopwatch


@dataclass
class CellRepairResult:
    """The outcome of a HoloClean-style repair run."""

    repaired_db: BaseDatabase
    repaired_cells: Dict[Tuple[Fact, int], object]
    noisy_cells: set[Tuple[Fact, int]]
    residual_violations: Dict[str, int]
    initial_violations: Dict[str, int]
    runtime: float

    @property
    def repaired_cell_count(self) -> int:
        """Number of cells whose value was changed."""
        return len(self.repaired_cells)

    @property
    def repaired_tuple_count(self) -> int:
        """Number of distinct tuples touched by a repair (what Table 4 reports)."""
        return len({item for item, _position in self.repaired_cells})

    def total_residual_violations(self) -> int:
        """Sum of per-DC residual violation counts (Table 5's "Total" column)."""
        return sum(self.residual_violations.values())

    def total_initial_violations(self) -> int:
        """Sum of per-DC violation counts before the repair."""
        return sum(self.initial_violations.values())


@dataclass
class HoloCleanStyleRepairer:
    """Simplified HoloClean: detect noisy cells, score candidates, repair independently.

    Parameters
    ----------
    constraints:
        The denial constraints used both for violation detection and for the
        final residual-violation report.
    confidence_margin:
        A candidate value must have strictly more support than the current
        value times this margin to trigger a repair; raising it makes the
        baseline more conservative (more under-repair).
    """

    constraints: Sequence[DenialConstraint]
    confidence_margin: float = 1.0

    # -- public API -------------------------------------------------------------

    def repair(self, db: BaseDatabase) -> CellRepairResult:
        """Run detect → domain → infer over ``db`` and return the repaired copy."""
        watch = Stopwatch()
        watch.start()
        initial = self.count_violations(db)
        noisy = self._detect_noisy_cells(db)
        statistics = self._cooccurrence_statistics(db)
        repairs: Dict[Tuple[Fact, int], object] = {}
        ordered = sorted(noisy, key=lambda cell: (cell[0].sort_key(), cell[1]))
        for item, position in ordered:
            best = self._best_candidate(item, position, statistics)
            if best is not None and best != item.values[position]:
                repairs[(item, position)] = best
        repaired_db = self._apply(db, repairs)
        residual = self.count_violations(repaired_db)
        return CellRepairResult(
            repaired_db=repaired_db,
            repaired_cells=repairs,
            noisy_cells=noisy,
            residual_violations=residual,
            initial_violations=initial,
            runtime=watch.stop(),
        )

    def count_violations(self, db: BaseDatabase) -> Dict[str, int]:
        """Tuples participating in at least one violation, per constraint.

        This is the quantity Table 5 reports ("number of tuples that violate a
        DC with other tuples in the table").
        """
        counts: Dict[str, int] = {}
        for constraint in self.constraints:
            rule = constraint.to_delta_rule()
            participants: set[Fact] = set()
            for assignment in find_assignments(db, rule):
                facts = assignment.base_facts()
                if len(set(facts)) < 2:
                    continue  # a tuple cannot conflict with itself
                participants.update(facts)
            counts[constraint.name] = len(participants)
        return counts

    # -- detection ----------------------------------------------------------------

    def _detect_noisy_cells(self, db: BaseDatabase) -> set[Tuple[Fact, int]]:
        """Cells blamed by some violated DC (the attributes its ``!=`` predicates compare)."""
        noisy: set[Tuple[Fact, int]] = set()
        for constraint in self.constraints:
            rule = constraint.to_delta_rule()
            blamed = self._blamed_positions(constraint)
            for assignment in find_assignments(db, rule):
                facts = assignment.base_facts()
                if len(set(facts)) < 2:
                    continue
                for atom_index, item in enumerate(facts):
                    for position in blamed.get(atom_index, ()):
                        noisy.add((item, position))
        return noisy

    def _blamed_positions(self, constraint: DenialConstraint) -> Dict[int, List[int]]:
        """Per constraint atom, the attribute positions compared with ``!=``."""
        variable_positions: Dict[str, List[Tuple[int, int]]] = {}
        for atom_index, atom in enumerate(constraint.atoms):
            for position, term in enumerate(atom.terms):
                if isinstance(term, Variable):
                    variable_positions.setdefault(term.name, []).append(
                        (atom_index, position),
                    )
        blamed: Dict[int, List[int]] = {}
        for comparison in constraint.comparisons:
            if comparison.op != "!=":
                continue
            for term in (comparison.lhs, comparison.rhs):
                if isinstance(term, Variable):
                    for atom_index, position in variable_positions.get(term.name, ()):
                        blamed.setdefault(atom_index, []).append(position)
        return blamed

    # -- domain + inference ----------------------------------------------------------

    def _cooccurrence_statistics(
        self, db: BaseDatabase,
    ) -> Dict[str, Dict[Tuple[int, object, int], Dict[object, int]]]:
        """Counts of value co-occurrence within tuples, per relation.

        ``statistics[relation][(evidence_position, evidence_value, target_position)]``
        maps candidate target values to how often they co-occur with the
        evidence value.
        """
        statistics: Dict[str, Dict[Tuple[int, object, int], Dict[object, int]]] = {}
        for relation in db.relation_names():
            table: Dict[Tuple[int, object, int], Dict[object, int]] = {}
            for item in db.active_facts(relation):
                for evidence_position, evidence_value in enumerate(item.values):
                    for target_position, target_value in enumerate(item.values):
                        if target_position == evidence_position:
                            continue
                        key = (evidence_position, evidence_value, target_position)
                        bucket = table.setdefault(key, {})
                        bucket[target_value] = bucket.get(target_value, 0) + 1
            statistics[relation] = table
        return statistics

    def _best_candidate(
        self,
        item: Fact,
        position: int,
        statistics: Dict[str, Dict[Tuple[int, object, int], Dict[object, int]]],
    ) -> object | None:
        """The highest-support candidate value for one cell (None = no evidence)."""
        table = statistics.get(item.relation, {})
        scores: Dict[object, int] = {}
        for evidence_position, evidence_value in enumerate(item.values):
            if evidence_position == position:
                continue
            bucket = table.get((evidence_position, evidence_value, position), {})
            for candidate, count in bucket.items():
                scores[candidate] = scores.get(candidate, 0) + count
        if not scores:
            return None
        current_value = item.values[position]
        current_score = scores.get(current_value, 0)
        best_value = max(scores, key=lambda value: (scores[value], str(value)))
        if best_value == current_value:
            return None
        if scores[best_value] <= current_score * self.confidence_margin:
            return None
        return best_value

    # -- application -------------------------------------------------------------------

    def _apply(
        self, db: BaseDatabase, repairs: Dict[Tuple[Fact, int], object],
    ) -> BaseDatabase:
        """Apply cell repairs to a clone of ``db`` (merging repairs on the same tuple)."""
        by_fact: Dict[Fact, Dict[int, object]] = {}
        for (item, position), value in repairs.items():
            by_fact.setdefault(item, {})[position] = value
        repaired = db.clone()
        for item, cell_updates in by_fact.items():
            values = list(item.values)
            for position, value in cell_updates.items():
                values[position] = value
            repaired.drop_active(item)
            repaired.insert(Fact(item.relation, tuple(values), tid=item.tid))
        return repaired
