"""Baselines the paper compares against: SQL triggers and HoloClean-style repair."""

from repro.baselines.trigger_engine import FiringPolicy, TriggerEngine, TriggerRun
from repro.baselines.holoclean import HoloCleanStyleRepairer, CellRepairResult

__all__ = [
    "FiringPolicy",
    "TriggerEngine",
    "TriggerRun",
    "HoloCleanStyleRepairer",
    "CellRepairResult",
]
