"""Relational storage engines.

The paper stores the data in PostgreSQL and evaluates delta rules as SQL
queries.  This package provides two interchangeable storage engines behind the
same :class:`~repro.storage.database.BaseDatabase` interface:

* :class:`~repro.storage.database.Database` — an in-memory engine with
  per-attribute hash indexes.  It is the default backend for the semantics
  implementations and the tests.
* :class:`~repro.storage.sqlite_backend.SQLiteDatabase` — a ``sqlite3``-backed
  engine; rule bodies are compiled to SQL joins by :mod:`repro.storage.sql`,
  exercising the same "rules as SQL queries" code path as the paper's
  prototype.

Both engines model a database instance ``D`` over a schema ``R`` *and* the
delta relations ``Δ`` of the paper: every relation has an *active* extent (the
current content of ``R_i``) and a *delta* extent (the content of ``Δ_i``, i.e.
the record of deleted tuples).
"""

from repro.storage.schema import Attribute, RelationSchema, Schema
from repro.storage.facts import Fact, fact
from repro.storage.database import BaseDatabase, Database
from repro.storage.sqlite_backend import SQLiteDatabase

__all__ = [
    "Attribute",
    "RelationSchema",
    "Schema",
    "Fact",
    "fact",
    "BaseDatabase",
    "Database",
    "SQLiteDatabase",
]
