"""Facts (database tuples).

A :class:`Fact` is a tuple of a named relation, e.g. ``Author(4, "Marge")``.
Facts are immutable and hashable; equality is *set semantics* — two facts with
the same relation and the same values are the same tuple, regardless of their
optional human-readable identifier ``tid`` (the ``a2``/``w1``/``g2`` labels the
paper uses in its running example are ``tid`` values here).
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


class Fact:
    """An immutable database tuple ``relation(values...)``.

    Parameters
    ----------
    relation:
        Name of the relation this tuple belongs to.
    values:
        The attribute values, in schema order.
    tid:
        Optional human-readable tuple identifier (only used for display and for
        matching the paper's running examples); not part of equality/hashing.
    """

    __slots__ = ("relation", "values", "tid", "_hash")

    def __init__(
        self, relation: str, values: Sequence[Any], tid: str | None = None
    ) -> None:
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "values", tuple(values))
        object.__setattr__(self, "tid", tid)
        object.__setattr__(self, "_hash", hash((relation, self.values)))

    # Facts are conceptually frozen; block accidental mutation.
    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Fact objects are immutable")

    def __delattr__(self, name: str) -> None:
        raise AttributeError("Fact objects are immutable")

    def __reduce__(self) -> tuple:
        # Default pickling would __setattr__ into the frozen slots; rebuild
        # through the constructor instead (the process-pool workers of the
        # sharded engine ship fact batches across process boundaries).
        return (Fact, (self.relation, self.values, self.tid))

    # -- identity ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Fact):
            return NotImplemented
        return self.relation == other.relation and self.values == other.values

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "Fact") -> bool:
        if not isinstance(other, Fact):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def sort_key(self) -> tuple:
        """A deterministic sort key (relation name, stringified values)."""
        return (self.relation, tuple(str(value) for value in self.values))

    # -- convenience -------------------------------------------------------

    @property
    def arity(self) -> int:
        """Number of attribute values."""
        return len(self.values)

    def value(self, position: int) -> Any:
        """Return the value at 0-based ``position``."""
        return self.values[position]

    def with_tid(self, tid: str) -> "Fact":
        """Return a copy of this fact carrying the given identifier."""
        return Fact(self.relation, self.values, tid)

    def label(self) -> str:
        """The display label: the ``tid`` when present, otherwise the full text."""
        return self.tid if self.tid is not None else str(self)

    def __repr__(self) -> str:
        rendered = ", ".join(repr(value) for value in self.values)
        if self.tid is not None:
            return f"{self.relation}({rendered})#{self.tid}"
        return f"{self.relation}({rendered})"

    def __str__(self) -> str:
        rendered = ", ".join(str(value) for value in self.values)
        return f"{self.relation}({rendered})"


def fact(relation: str, *values: Any, tid: str | None = None) -> Fact:
    """Shorthand constructor: ``fact("Author", 4, "Marge", tid="a2")``."""
    return Fact(relation, values, tid=tid)


def facts_by_relation(items: Iterable[Fact]) -> dict[str, set[Fact]]:
    """Group an iterable of facts by relation name."""
    grouped: dict[str, set[Fact]] = {}
    for item in items:
        grouped.setdefault(item.relation, set()).add(item)
    return grouped
