"""SQLite-backed storage engine with SQL-level frontier tables.

The paper's prototype keeps the data in PostgreSQL and evaluates delta rules
as SQL queries over it.  PostgreSQL is not available in this environment, so
this module provides the closest substitute that exercises the same code path:
a :class:`SQLiteDatabase` engine storing every relation ``R`` in three tables,
all with columns ``c0 .. c{arity-1}`` plus a ``tid`` label column:

* ``r_R`` — the **active** extent (the current content of ``R``);
* ``d_R`` — the **delta** extent (the content of ``Δ_R``);
* ``f_R`` — the **frontier** table: the same facts as ``d_R`` plus a ``gen``
  generation stamp recording *when* each fact entered the delta extent.

The frontier scheme drives the SQL-level semi-naive engine
(:mod:`repro.datalog.sql_seminaive`).  A single monotone generation counter is
kept per database; every batch of delta insertions (a Python-level
:meth:`~SQLiteDatabase.mark_deleted`, or one ``INSERT OR IGNORE ... SELECT``
install statement of the semi-naive driver) stamps its *new* rows with a fresh
generation.  A half-open generation window ``(lo, hi]`` then identifies one
round's frontier entirely inside SQLite: delta-rewritten rule variants join
their seed atom against ``f_R WHERE gen > :lo AND gen <= :hi``, pre-seed delta
atoms against ``f_R WHERE gen <= :lo`` and the remaining delta atoms against
``f_R WHERE gen <= :hi``, so no frontier set is ever materialised in Python.
``INSERT OR IGNORE`` keyed on the value columns guarantees a fact keeps the
generation of its *first* arrival, which is exactly the semi-naive frontier
discipline (a re-derived fact never re-enters the frontier).

Rule bodies are compiled to SQL joins by :mod:`repro.datalog.sql_compiler`;
the generic evaluator automatically uses that path whenever the database is a
:class:`SQLiteDatabase`, and the closure engines route ``engine="auto"`` /
``"semi-naive"`` through the frontier-table driver.

File-backed databases run in **WAL mode** (in-memory ones keep a MEMORY
journal): WAL survives a crash mid-write where a MEMORY journal can corrupt
the file, and it is what makes the sharded engine's multi-connection mode
possible — :meth:`SQLiteDatabase.reader_connections` opens read-only sibling
connections on the same file so per-shard join SELECTs run concurrently on
worker threads while the primary connection serialises the installs.
"""

from __future__ import annotations

import sqlite3
from typing import Any, Dict, Iterable, Iterator, Mapping

from repro.exceptions import ArityMismatchError, StorageError, UnknownRelationError
from repro.storage.database import BaseDatabase
from repro.storage.facts import Fact
from repro.storage.schema import Schema

#: Mapping from repro attribute types to SQLite column types.
_SQL_TYPES = {"int": "INTEGER", "str": "TEXT", "float": "REAL"}

#: Statement tag on the stage-table DDL (see :mod:`repro.datalog.sql_compiler`
#: for the other ``/* repro:<class> */`` tags).  Stage DDL runs at most once
#: per (connection, stage width); steady-state rounds issue none.
TAG_STAGE_DDL = "/* repro:stage-ddl */"

#: Statement tag on every persistent-assignment-store statement (DDL, batched
#: writes, meta updates) — see
#: :class:`repro.datalog.incremental.PersistentAssignmentStore`.
TAG_ASSIGN = "/* repro:assign */"


def stage_table_name(width: int) -> str:
    """Name of the keyed temp table staging rows of ``width`` columns.

    One persistent temp table exists per distinct *stage width* (number of
    projected columns of a compiled rule variant); rows of different variants
    share it, keyed by a ``variant_id`` column.  Temp tables are
    connection-local, so concurrent databases never collide, and the sqlite
    backup API never copies them into clones.
    """
    return f"_repro_stage_w{width}"


def active_table(relation: str) -> str:
    """Name of the SQLite table holding the active extent of ``relation``."""
    return f"r_{relation}"


def delta_table(relation: str) -> str:
    """Name of the SQLite table holding the delta extent of ``relation``."""
    return f"d_{relation}"


def frontier_table(relation: str) -> str:
    """Name of the SQLite table holding the generation-stamped delta extent."""
    return f"f_{relation}"


class SQLiteDatabase(BaseDatabase):
    """A :class:`BaseDatabase` implementation backed by an SQLite connection.

    Example
    -------
    >>> from repro.storage import Schema, RelationSchema, fact
    >>> schema = Schema.from_relations([RelationSchema.of("R", "x:int", "y:str")])
    >>> db = SQLiteDatabase(schema)
    >>> _ = db.insert(fact("R", 1, "a"))
    >>> db.count_active("R")
    1
    """

    def __init__(self, schema: Schema, path: str = ":memory:") -> None:
        self._schema = schema
        self._path = path
        # Autocommit mode: every statement commits immediately, so the backup
        # API used by clone() always sees the latest state and no transaction
        # bookkeeping leaks into the storage interface.
        self._connection = sqlite3.connect(path, isolation_level=None)
        if path == ":memory:":
            # In-memory databases have no durability story and no sibling
            # connections; the rollback journal is pure overhead.
            self._connection.execute("PRAGMA synchronous = OFF")
            self._connection.execute("PRAGMA journal_mode = MEMORY")
        else:
            # File-backed databases run in WAL mode: crash-safe (a MEMORY
            # journal can corrupt the file on an ill-timed kill) and the
            # prerequisite for the sharded engine's read-only sibling
            # connections (:meth:`reader_connections`) — WAL readers scan a
            # consistent snapshot while the primary connection keeps
            # appending installs.  ``synchronous = NORMAL`` is the
            # recommended WAL pairing: commits only sync at checkpoints.
            self._connection.execute("PRAGMA journal_mode = WAL")
            self._connection.execute("PRAGMA synchronous = NORMAL")
        # Keep temp objects (the persistent keyed stage tables) in memory even
        # when the main database is file-backed; staged rows are per-round
        # scratch state and must never pay disk I/O.
        self._connection.execute("PRAGMA temp_store = MEMORY")
        #: Callables receiving the text of every statement routed through
        #: :meth:`execute` (the compiled-evaluation path) — the query-counter
        #: hooks the staging tests and the benchmark smoke run install.
        self._statement_hooks: list = []
        #: Stage widths whose keyed temp table already exists on this
        #: connection (see :meth:`ensure_stage_table`).
        self._stage_widths: set[int] = set()
        #: wcoj covering-index statements already applied through this
        #: connection (see :meth:`ensure_wcoj_indexes`).
        self._wcoj_indexes: set[str] = set()
        #: Lazily opened read-only sibling connections (file-backed WAL
        #: databases only; see :meth:`reader_connections`).
        self._readers: list[sqlite3.Connection] = []
        self._create_tables()
        #: Monotone generation counter backing the frontier tables.  Reopening
        #: a file-backed database must resume after the persisted stamps, or
        #: new deltas would collide with (and frontier windows exclude) the
        #: facts recorded by the previous session.
        self._generation = self._max_persisted_generation()
        if path != ":memory:":
            # A file written by an interrupted session may violate the
            # d_R ↔ f_R mirror invariant (a kill between the install and the
            # delta copy, or between the delta insert and the frontier stamp);
            # restore it before any consumer takes a frontier token.
            self._reconcile_frontier()

    # -- schema / DDL ---------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def connection(self) -> sqlite3.Connection:
        """The underlying SQLite connection (exposed for the SQL compiler)."""
        return self._connection

    def _columns(self, relation: str) -> list[str]:
        arity = self._schema.arity(relation)
        return [f"c{i}" for i in range(arity)]

    def _create_tables(self) -> None:
        cursor = self._connection.cursor()
        for relation_schema in self._schema:
            name = relation_schema.name
            column_defs = ", ".join(
                f"c{i} {_SQL_TYPES[attribute.dtype]}"
                for i, attribute in enumerate(relation_schema.attributes)
            )
            key = ", ".join(self._columns(name))
            for table in (active_table(name), delta_table(name)):
                cursor.execute(
                    f"CREATE TABLE IF NOT EXISTS {table} ({column_defs}, tid TEXT, "
                    f"PRIMARY KEY ({key}))",
                )
            cursor.execute(
                f"CREATE TABLE IF NOT EXISTS {frontier_table(name)} "
                f"({column_defs}, tid TEXT, gen INTEGER NOT NULL, PRIMARY KEY ({key}))",
            )
            cursor.execute(
                f"CREATE INDEX IF NOT EXISTS idx_{name}_f_gen "
                f"ON {frontier_table(name)} (gen)",
            )
            # Index every column: rule bodies join on arbitrary positions.
            for i in range(relation_schema.arity):
                for tag, table in (
                    ("a", active_table(name)),
                    ("d", delta_table(name)),
                    ("f", frontier_table(name)),
                ):
                    cursor.execute(
                        f"CREATE INDEX IF NOT EXISTS idx_{name}_{tag}_{i} "
                        f"ON {table} (c{i})",
                    )

    def _max_persisted_generation(self) -> int:
        top = 0
        for name in self._schema.names():
            row = self._connection.execute(
                f"SELECT MAX(gen) FROM {frontier_table(name)}",
            ).fetchone()
            if row[0] is not None:
                top = max(top, int(row[0]))
        return top

    def _reconcile_frontier(self) -> None:
        """Restore the delta ↔ frontier mirror after a torn previous session.

        The two extents are written by consecutive statements under autocommit,
        so a crash can leave either side ahead:

        * an ``INSERT OR IGNORE ... SELECT`` install commits into ``f_R``
          before :func:`~repro.datalog.sql_compiler.delta_copy_sql` promotes
          the rows into ``d_R`` — orphaned frontier rows would then never show
          up in :meth:`delta_facts` and the repair semantics would silently
          skip them;
        * :meth:`mark_deleted` inserts into ``d_R`` before stamping ``f_R`` —
          an unstamped delta fact would never enter any frontier window, so
          semi-naive consumers would never join it (a *skipped* frontier
          fact).

        Frontier rows are copied into the delta extent verbatim; unstamped
        delta rows are stamped with one fresh generation, so consumers that
        take their token *after* reopening (they all do — tokens never
        persist) see them as regular round-1 frontier content.
        """
        for name in self._schema.names():
            columns = ", ".join([*self._columns(name), "tid"])
            self._connection.execute(
                f"INSERT OR IGNORE INTO {delta_table(name)} ({columns}) "
                f"SELECT {columns} FROM {frontier_table(name)}",
            )
            cursor = self._connection.execute(
                f"INSERT OR IGNORE INTO {frontier_table(name)} "
                f"({columns}, gen) SELECT {columns}, ? FROM {delta_table(name)}",
                (self._generation + 1,),
            )
            if cursor.rowcount > 0:
                self._generation += 1

    def _check(self, item: Fact) -> None:
        if item.relation not in self._schema:
            raise UnknownRelationError(item.relation)
        expected = self._schema.arity(item.relation)
        if item.arity != expected:
            raise ArityMismatchError(item.relation, expected, item.arity)

    # -- reading -----------------------------------------------------------------

    def _rows_to_facts(self, relation: str, rows: Iterable[tuple]) -> Iterator[Fact]:
        arity = self._schema.arity(relation)
        for row in rows:
            yield Fact(relation, row[:arity], tid=row[arity])

    def active_facts(self, relation: str) -> frozenset[Fact]:
        if relation not in self._schema:
            raise UnknownRelationError(relation)
        rows = self._connection.execute(f"SELECT * FROM {active_table(relation)}")
        return frozenset(self._rows_to_facts(relation, rows))

    def delta_facts(self, relation: str) -> frozenset[Fact]:
        if relation not in self._schema:
            raise UnknownRelationError(relation)
        rows = self._connection.execute(f"SELECT * FROM {delta_table(relation)}")
        return frozenset(self._rows_to_facts(relation, rows))

    def _candidate_query(
        self, relation: str, bindings: Mapping[int, Any], delta: bool,
    ) -> tuple[str, list]:
        """The ``candidates()`` SELECT and parameters, connection-agnostic.

        Shared by the primary-connection :meth:`candidates` and the read-only
        :class:`SQLiteReaderView` the sharded maintenance drivers hand their
        worker threads, so both windows run the identical statement.
        """
        if relation not in self._schema:
            raise UnknownRelationError(relation)
        table = delta_table(relation) if delta else active_table(relation)
        where = ""
        params: list[Any] = []
        if bindings:
            clauses = []
            for position, value in bindings.items():
                clauses.append(f"c{position} = ?")
                params.append(value)
            where = " WHERE " + " AND ".join(clauses)
        return f"SELECT * FROM {table}{where}", params

    def candidates(
        self, relation: str, bindings: Mapping[int, Any], delta: bool = False,
    ) -> Iterator[Fact]:
        sql, params = self._candidate_query(relation, bindings, delta)
        rows = self._connection.execute(sql, params)
        return self._rows_to_facts(relation, rows)

    def has_active(self, item: Fact) -> bool:
        return self._exists(active_table(item.relation), item)

    def has_delta(self, item: Fact) -> bool:
        return self._exists(delta_table(item.relation), item)

    def _exists(self, table: str, item: Fact) -> bool:
        self._check(item)
        clauses = " AND ".join(f"c{i} = ?" for i in range(item.arity))
        row = self._connection.execute(
            f"SELECT 1 FROM {table} WHERE {clauses} LIMIT 1", item.values,
        ).fetchone()
        return row is not None

    def count_active(self, relation: str | None = None) -> int:
        if relation is not None:
            return self._count(active_table(relation))
        return sum(self._count(active_table(name)) for name in self._schema.names())

    def count_delta(self, relation: str | None = None) -> int:
        if relation is not None:
            return self._count(delta_table(relation))
        return sum(self._count(delta_table(name)) for name in self._schema.names())

    def _count(self, table: str) -> int:
        row = self._connection.execute(f"SELECT COUNT(*) FROM {table}").fetchone()
        return int(row[0])

    def extent_count(
        self,
        table: str,
        where: str | None = None,
        params: dict | None = None,
    ) -> int:
        """Row count of ``table`` (optionally windowed), for shard-collapse costing.

        Bypasses the statement hooks on purpose: this is a planning read, not
        part of the per-round statement discipline the staging/sharding tests
        pin down.
        """
        sql = f"SELECT COUNT(*) FROM {table}"
        if where is not None:
            sql += f" WHERE {where}"
        row = self._connection.execute(sql, params or {}).fetchone()
        return int(row[0])

    # -- frontier tracking --------------------------------------------------------

    def generation(self) -> int:
        """The current value of the monotone generation counter."""
        return self._generation

    def next_generation(self) -> int:
        """Advance and return the generation counter (one stamp per batch)."""
        self._generation += 1
        return self._generation

    def delta_token(self, relation: str) -> int:
        """Frontier token: the database-wide generation counter.

        Generations are globally unique across relations, so the single counter
        satisfies the per-relation contract of
        :meth:`~repro.storage.database.BaseDatabase.delta_token`.
        """
        if relation not in self._schema:
            raise UnknownRelationError(relation)
        return self._generation

    def delta_added_since(self, relation: str, token: int) -> list[Fact]:
        if relation not in self._schema:
            raise UnknownRelationError(relation)
        arity = self._schema.arity(relation)
        columns = ", ".join([*self._columns(relation), "tid"])
        rows = self._connection.execute(
            f"SELECT {columns} FROM {frontier_table(relation)} WHERE gen > ?",
            (token,),
        )
        return [Fact(relation, row[:arity], tid=row[arity]) for row in rows]

    # -- writing -----------------------------------------------------------------

    def insert(self, item: Fact) -> bool:
        self._check(item)
        return self._insert_into(active_table(item.relation), item)

    def _insert_into(self, table: str, item: Fact) -> bool:
        placeholders = ", ".join("?" for _ in range(item.arity + 1))
        cursor = self._connection.execute(
            f"INSERT OR IGNORE INTO {table} VALUES ({placeholders})",
            (*item.values, item.tid),
        )
        return cursor.rowcount > 0

    def _record_delta(self, item: Fact) -> bool:
        """Insert ``item`` into the delta extent and, when new, the frontier."""
        if not self._insert_into(delta_table(item.relation), item):
            return False
        placeholders = ", ".join("?" for _ in range(item.arity + 2))
        self._connection.execute(
            f"INSERT OR IGNORE INTO {frontier_table(item.relation)} "
            f"VALUES ({placeholders})",
            (*item.values, item.tid, self.next_generation()),
        )
        return True

    def _delete_from(self, table: str, item: Fact) -> bool:
        clauses = " AND ".join(f"c{i} = ?" for i in range(item.arity))
        cursor = self._connection.execute(
            f"DELETE FROM {table} WHERE {clauses}", item.values,
        )
        return cursor.rowcount > 0

    def delete(self, item: Fact) -> bool:
        self._check(item)
        self._delete_from(active_table(item.relation), item)
        return self._record_delta(item)

    def mark_deleted(self, item: Fact) -> bool:
        self._check(item)
        return self._record_delta(item)

    def drop_active(self, item: Fact) -> bool:
        self._check(item)
        return self._delete_from(active_table(item.relation), item)

    def retract_delta(self, item: Fact) -> bool:
        self._check(item)
        removed = self._delete_from(delta_table(item.relation), item)
        # Drop the frontier mirror too: a later re-derivation must re-stamp
        # ``f_R`` with a fresh generation (``INSERT OR IGNORE`` would otherwise
        # keep the stale row and the fact would never re-enter any window).
        self._delete_from(frontier_table(item.relation), item)
        return removed

    def insert_all(self, items: Iterable[Fact]) -> int:
        by_relation: Dict[str, list[tuple]] = {}
        for item in items:
            self._check(item)
            by_relation.setdefault(item.relation, []).append((*item.values, item.tid))
        inserted = 0
        for relation, rows in by_relation.items():
            placeholders = ", ".join("?" for _ in range(len(rows[0])))
            cursor = self._connection.executemany(
                f"INSERT OR IGNORE INTO {active_table(relation)} "
                f"VALUES ({placeholders})",
                rows,
            )
            inserted += cursor.rowcount
        return inserted

    # -- lifecycle -----------------------------------------------------------------

    def clone(self) -> "SQLiteDatabase":
        copy = SQLiteDatabase(self._schema)
        # The backup API copies all three table families (and their indexes)
        # page-wise, orders of magnitude faster than re-inserting row by row.
        self._connection.backup(copy._connection)
        copy._generation = self._generation
        return copy

    @property
    def path(self) -> str:
        """The database path (``":memory:"`` for in-memory engines)."""
        return self._path

    def supports_readers(self) -> bool:
        """True when read-only sibling connections can be opened (file + WAL)."""
        return self._path != ":memory:"

    def reader_connections(self, count: int) -> "list[sqlite3.Connection] | None":
        """``count`` read-only sibling connections onto this database file.

        WAL multi-connection mode for the sharded engine: each returned
        connection is opened on the same file with ``PRAGMA query_only = ON``
        and ``check_same_thread=False``, so worker threads can run the
        per-shard frontier-window SELECTs concurrently while the primary
        connection serialises only the installs and stage-table writes.  WAL
        readers see the last committed state at the start of each statement;
        the sharded driver only writes between shard waves, so every reader
        scans the full frontier of its round.  Connections are opened lazily,
        cached for the database's lifetime, and closed by :meth:`close`.
        Returns None for in-memory databases (no file to share — callers fall
        back to the primary connection).
        """
        if not self.supports_readers():
            return None
        while len(self._readers) < count:
            reader = sqlite3.connect(
                self._path, isolation_level=None, check_same_thread=False,
            )
            reader.execute("PRAGMA query_only = ON")
            self._readers.append(reader)
        return self._readers[:count]

    def reader_views(self, count: int) -> "list[SQLiteReaderView] | None":
        """``count`` read-only :class:`SQLiteReaderView` windows, or None.

        The Python-join counterpart of :meth:`reader_connections`: the
        incremental maintenance drivers run their insert-discovery joins
        Python-side (``planned_search`` probing :meth:`candidates`), and the
        primary connection is pinned to its creating thread, so each worker
        slot of a sharded maintenance batch gets one reader connection
        wrapped in a view exposing the same ``candidates()`` surface.  The
        underlying connections are the cached :meth:`reader_connections`
        siblings — a maintenance batch that follows a sharded closure load
        (or one batch following another) reuses them instead of reopening.
        Returns None for in-memory databases, like :meth:`reader_connections`.
        """
        readers = self.reader_connections(count)
        if readers is None:
            return None
        return [SQLiteReaderView(self, reader) for reader in readers]

    def notify_statement_hooks(self, sql: str) -> None:
        """Deliver ``sql`` to the statement hooks without executing it.

        The sharded driver runs its per-shard SELECTs on reader connections
        from worker threads; it replays the executed statements to the hooks
        from the merge (main) thread via this method, so query-counter hooks
        stay single-threaded and deterministic.
        """
        for hook in self._statement_hooks:
            hook(sql)

    def close(self) -> None:
        """Close the underlying connection (and any reader connections)."""
        for reader in self._readers:
            reader.close()
        self._readers.clear()
        self._connection.close()

    def ensure_stage_table(self, width: int) -> bool:
        """Create the keyed stage table for ``width`` columns, once per connection.

        Returns True when the DDL actually ran (first sighting of ``width`` on
        this connection), False on the steady-state no-op path.  The table is
        a temp table ``_repro_stage_w{width}`` with a ``variant_id`` key column
        plus ``s0..s{width-1}``; the semi-naive driver and the staged
        stage-discovery path ``DELETE``/``INSERT`` into it per round instead
        of dropping and recreating a table per variant execution, so
        steady-state rounds issue zero DDL.  The DDL routes through
        :meth:`execute` (tagged :data:`TAG_STAGE_DDL`) so statement hooks can
        assert exactly that.
        """
        if width in self._stage_widths:
            return False
        table = stage_table_name(width)
        columns = ", ".join(f"s{i}" for i in range(width))
        self.execute(
            f"{TAG_STAGE_DDL} CREATE TEMP TABLE IF NOT EXISTS {table} "
            f"(variant_id INTEGER NOT NULL, {columns})",
        )
        self.execute(
            f"{TAG_STAGE_DDL} CREATE INDEX IF NOT EXISTS idx_stage_w{width}_variant "
            f"ON {table} (variant_id)",
        )
        self._stage_widths.add(width)
        return True

    def ensure_wcoj_indexes(self, statements) -> int:
        """Apply a wcoj variant's covering-index DDL, once per connection.

        ``statements`` is :attr:`FrontierQuery.wcoj_index_sql
        <repro.datalog.sql_compiler.FrontierQuery.wcoj_index_sql>` — tagged
        ``CREATE INDEX IF NOT EXISTS`` statements.  Returns how many actually
        ran (statements seen before on this connection are skipped, so
        steady-state rounds issue zero DDL; ``IF NOT EXISTS`` makes the first
        run idempotent across connections sharing a database file).  The DDL
        routes through :meth:`execute` so statement hooks count it.
        """
        ran = 0
        for statement in statements:
            if statement in self._wcoj_indexes:
                continue
            self.execute(statement)
            self._wcoj_indexes.add(statement)
            ran += 1
        return ran

    def add_statement_hook(self, hook) -> None:
        """Register ``hook(sql)`` to observe every :meth:`execute` statement.

        The compiled evaluation paths (rule SELECTs, staged creates, installs,
        delta copies) all route through :meth:`execute`, and every compiled
        statement embeds a ``/* repro:<class> */`` tag
        (:mod:`repro.datalog.sql_compiler`), so a hook can count statement
        classes — the staging tests and the benchmark smoke run use this to
        assert each rule variant's join runs exactly once per round.
        """
        self._statement_hooks.append(hook)

    def remove_statement_hook(self, hook) -> None:
        """Unregister a previously added statement hook (no-op when absent)."""
        try:
            self._statement_hooks.remove(hook)
        except ValueError:
            pass

    def execute(
        self, sql: str, params: Iterable[Any] | Mapping[str, Any] = (),
    ) -> sqlite3.Cursor:
        """Run a raw SQL statement against the backing connection.

        ``params`` may be positional (for ``?`` placeholders) or a mapping (for
        the named ``:name`` placeholders the semi-naive compiler emits).
        """
        for hook in self._statement_hooks:
            hook(sql)
        try:
            if isinstance(params, Mapping):
                return self._connection.execute(sql, params)
            return self._connection.execute(sql, tuple(params))
        except sqlite3.Error as error:
            raise StorageError(f"SQL execution failed: {error}") from error

    # -- persistent assignment store ------------------------------------------

    def ensure_assignment_tables(self) -> None:
        """Create the ``_repro_assign*`` table family, idempotently.

        The durable mirror of the incremental maintenance layer's
        :class:`~repro.datalog.incremental.AssignmentStore` — one row per live
        satisfying assignment plus the three fact-level indexes and a meta
        table (program fingerprint, dirty flag, aid counter).  The tables live
        in the main database (not temp), so a file-backed
        :class:`~repro.service.RepairService` can warm-restart from them; all
        writes go through :meth:`execute` / :meth:`executemany` under the
        existing autocommit discipline (batch flushes open their own
        transaction), tagged :data:`TAG_ASSIGN` for statement hooks.
        """
        statements = (
            "CREATE TABLE IF NOT EXISTS _repro_assign ("
            "aid INTEGER PRIMARY KEY, rule INTEGER NOT NULL, used TEXT NOT NULL)",
            "CREATE TABLE IF NOT EXISTS _repro_assign_base ("
            "aid INTEGER NOT NULL, fact TEXT NOT NULL)",
            "CREATE INDEX IF NOT EXISTS idx_assign_base_fact "
            "ON _repro_assign_base (fact)",
            "CREATE INDEX IF NOT EXISTS idx_assign_base_aid "
            "ON _repro_assign_base (aid)",
            "CREATE TABLE IF NOT EXISTS _repro_assign_delta ("
            "aid INTEGER NOT NULL, fact TEXT NOT NULL)",
            "CREATE INDEX IF NOT EXISTS idx_assign_delta_fact "
            "ON _repro_assign_delta (fact)",
            "CREATE INDEX IF NOT EXISTS idx_assign_delta_aid "
            "ON _repro_assign_delta (aid)",
            "CREATE TABLE IF NOT EXISTS _repro_assign_support ("
            "aid INTEGER NOT NULL, fact TEXT NOT NULL, base_only INTEGER NOT NULL)",
            "CREATE INDEX IF NOT EXISTS idx_assign_support_fact "
            "ON _repro_assign_support (fact)",
            "CREATE INDEX IF NOT EXISTS idx_assign_support_aid "
            "ON _repro_assign_support (aid)",
            "CREATE TABLE IF NOT EXISTS _repro_assign_meta ("
            "key TEXT PRIMARY KEY, value TEXT NOT NULL)",
        )
        for statement in statements:
            self.execute(f"{TAG_ASSIGN} {statement}")

    def assignment_meta(self, key: str) -> str | None:
        """One value from the ``_repro_assign_meta`` table, or None."""
        row = self.execute(
            f"{TAG_ASSIGN} SELECT value FROM _repro_assign_meta WHERE key = ?",
            (key,),
        ).fetchone()
        return None if row is None else str(row[0])

    def set_assignment_meta(self, key: str, value: str) -> None:
        """Upsert one ``_repro_assign_meta`` entry (commits immediately unless
        the caller opened a transaction)."""
        self.execute(
            f"{TAG_ASSIGN} INSERT OR REPLACE INTO _repro_assign_meta VALUES (?, ?)",
            (key, value),
        )

    def executemany(self, sql: str, rows: Iterable[tuple]) -> sqlite3.Cursor:
        """Run one parameterised statement over many rows (hook-visible).

        The batched-write mirror of :meth:`execute`: statement hooks see the
        SQL once per call, and :class:`sqlite3.Error` is wrapped in
        :class:`~repro.exceptions.StorageError` like every other storage
        failure.
        """
        for hook in self._statement_hooks:
            hook(sql)
        try:
            return self._connection.executemany(sql, rows)
        except sqlite3.Error as error:
            raise StorageError(f"SQL execution failed: {error}") from error

    @classmethod
    def from_database(cls, source: BaseDatabase, path: str = ":memory:") -> "SQLiteDatabase":
        """Copy an existing (e.g. in-memory) database into a SQLite engine.

        Facts are inserted in sorted order, not the source's set-iteration
        order: rowids double as the sharded engine's partition axis
        (``rowid % :nshards``), so copies built in different processes must
        assign the same rowids to the same facts or replays could not
        reproduce shard routing (string hashes are salted per process).
        """
        copy = cls(source.schema, path=path)
        for relation in source.relation_names():
            copy.insert_all(sorted(source.active_facts(relation), key=Fact.sort_key))
            for item in sorted(source.delta_facts(relation), key=Fact.sort_key):
                copy.mark_deleted(item)
        return copy

    def __repr__(self) -> str:
        return self.summary()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BaseDatabase):
            return NotImplemented
        return self.same_state_as(other)

    def __hash__(self) -> int:  # pragma: no cover
        raise TypeError("SQLiteDatabase instances are mutable and unhashable")


class SQLiteReaderView:
    """A thread-confined read-only ``candidates()`` window onto a database.

    Wraps one WAL reader connection (see
    :meth:`SQLiteDatabase.reader_views`); a sharded maintenance worker probes
    it exactly like the database itself — same SELECT, same row-to-fact
    decoding — while the primary connection stays untouched on the merge
    thread.  WAL readers see the last committed state at statement start, and
    the backend runs in autocommit mode, so every base/delta row written
    before a shard wave is visible to every view during it.
    """

    __slots__ = ("_db", "_connection")

    def __init__(self, db: SQLiteDatabase, connection: sqlite3.Connection) -> None:
        self._db = db
        self._connection = connection

    def candidates(
        self, relation: str, bindings: Mapping[int, Any], delta: bool = False,
    ) -> Iterator[Fact]:
        sql, params = self._db._candidate_query(relation, bindings, delta)
        rows = self._connection.execute(sql, params)
        return self._db._rows_to_facts(relation, rows)
