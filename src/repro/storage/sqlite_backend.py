"""SQLite-backed storage engine.

The paper's prototype keeps the data in PostgreSQL and evaluates delta rules
as SQL queries over it.  PostgreSQL is not available in this environment, so
this module provides the closest substitute that exercises the same code path:
a :class:`SQLiteDatabase` engine storing every relation ``R`` in a table
``r_R`` and its delta relation ``Δ_R`` in a table ``d_R``, both with columns
``c0 .. c{arity-1}`` plus a ``tid`` label column.

Rule bodies are compiled to SQL ``SELECT`` joins by
:mod:`repro.datalog.sql_compiler`; the generic evaluator automatically uses
that path whenever the database is a :class:`SQLiteDatabase`.
"""

from __future__ import annotations

import sqlite3
from typing import Any, Dict, Iterable, Iterator, Mapping

from repro.exceptions import ArityMismatchError, StorageError, UnknownRelationError
from repro.storage.database import BaseDatabase
from repro.storage.facts import Fact
from repro.storage.schema import Schema

#: Mapping from repro attribute types to SQLite column types.
_SQL_TYPES = {"int": "INTEGER", "str": "TEXT", "float": "REAL"}


def active_table(relation: str) -> str:
    """Name of the SQLite table holding the active extent of ``relation``."""
    return f"r_{relation}"


def delta_table(relation: str) -> str:
    """Name of the SQLite table holding the delta extent of ``relation``."""
    return f"d_{relation}"


class SQLiteDatabase(BaseDatabase):
    """A :class:`BaseDatabase` implementation backed by an SQLite connection.

    Example
    -------
    >>> from repro.storage import Schema, RelationSchema, fact
    >>> schema = Schema.from_relations([RelationSchema.of("R", "x:int", "y:str")])
    >>> db = SQLiteDatabase(schema)
    >>> _ = db.insert(fact("R", 1, "a"))
    >>> db.count_active("R")
    1
    """

    def __init__(self, schema: Schema, path: str = ":memory:") -> None:
        self._schema = schema
        self._path = path
        self._connection = sqlite3.connect(path)
        self._connection.execute("PRAGMA synchronous = OFF")
        self._connection.execute("PRAGMA journal_mode = MEMORY")
        self._create_tables()

    # -- schema / DDL ---------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def connection(self) -> sqlite3.Connection:
        """The underlying SQLite connection (exposed for the SQL compiler)."""
        return self._connection

    def _columns(self, relation: str) -> list[str]:
        arity = self._schema.arity(relation)
        return [f"c{i}" for i in range(arity)]

    def _create_tables(self) -> None:
        cursor = self._connection.cursor()
        for relation_schema in self._schema:
            column_defs = ", ".join(
                f"c{i} {_SQL_TYPES[attribute.dtype]}"
                for i, attribute in enumerate(relation_schema.attributes)
            )
            for table in (active_table(relation_schema.name), delta_table(relation_schema.name)):
                cursor.execute(
                    f"CREATE TABLE IF NOT EXISTS {table} ({column_defs}, tid TEXT, "
                    f"PRIMARY KEY ({', '.join(self._columns(relation_schema.name))}))"
                )
            # Index every column: rule bodies join on arbitrary positions.
            for i in range(relation_schema.arity):
                cursor.execute(
                    f"CREATE INDEX IF NOT EXISTS idx_{relation_schema.name}_a_{i} "
                    f"ON {active_table(relation_schema.name)} (c{i})"
                )
                cursor.execute(
                    f"CREATE INDEX IF NOT EXISTS idx_{relation_schema.name}_d_{i} "
                    f"ON {delta_table(relation_schema.name)} (c{i})"
                )
        self._connection.commit()

    def _check(self, item: Fact) -> None:
        if item.relation not in self._schema:
            raise UnknownRelationError(item.relation)
        expected = self._schema.arity(item.relation)
        if item.arity != expected:
            raise ArityMismatchError(item.relation, expected, item.arity)

    # -- reading -----------------------------------------------------------------

    def _rows_to_facts(self, relation: str, rows: Iterable[tuple]) -> Iterator[Fact]:
        arity = self._schema.arity(relation)
        for row in rows:
            yield Fact(relation, row[:arity], tid=row[arity])

    def active_facts(self, relation: str) -> frozenset[Fact]:
        if relation not in self._schema:
            raise UnknownRelationError(relation)
        rows = self._connection.execute(f"SELECT * FROM {active_table(relation)}")
        return frozenset(self._rows_to_facts(relation, rows))

    def delta_facts(self, relation: str) -> frozenset[Fact]:
        if relation not in self._schema:
            raise UnknownRelationError(relation)
        rows = self._connection.execute(f"SELECT * FROM {delta_table(relation)}")
        return frozenset(self._rows_to_facts(relation, rows))

    def candidates(
        self, relation: str, bindings: Mapping[int, Any], delta: bool = False
    ) -> Iterator[Fact]:
        if relation not in self._schema:
            raise UnknownRelationError(relation)
        table = delta_table(relation) if delta else active_table(relation)
        where = ""
        params: list[Any] = []
        if bindings:
            clauses = []
            for position, value in bindings.items():
                clauses.append(f"c{position} = ?")
                params.append(value)
            where = " WHERE " + " AND ".join(clauses)
        rows = self._connection.execute(f"SELECT * FROM {table}{where}", params)
        return self._rows_to_facts(relation, rows)

    def has_active(self, item: Fact) -> bool:
        return self._exists(active_table(item.relation), item)

    def has_delta(self, item: Fact) -> bool:
        return self._exists(delta_table(item.relation), item)

    def _exists(self, table: str, item: Fact) -> bool:
        self._check(item)
        clauses = " AND ".join(f"c{i} = ?" for i in range(item.arity))
        row = self._connection.execute(
            f"SELECT 1 FROM {table} WHERE {clauses} LIMIT 1", item.values
        ).fetchone()
        return row is not None

    def count_active(self, relation: str | None = None) -> int:
        if relation is not None:
            return self._count(active_table(relation))
        return sum(self._count(active_table(name)) for name in self._schema.names())

    def count_delta(self, relation: str | None = None) -> int:
        if relation is not None:
            return self._count(delta_table(relation))
        return sum(self._count(delta_table(name)) for name in self._schema.names())

    def _count(self, table: str) -> int:
        row = self._connection.execute(f"SELECT COUNT(*) FROM {table}").fetchone()
        return int(row[0])

    # -- writing -----------------------------------------------------------------

    def insert(self, item: Fact) -> bool:
        self._check(item)
        return self._insert_into(active_table(item.relation), item)

    def _insert_into(self, table: str, item: Fact) -> bool:
        placeholders = ", ".join("?" for _ in range(item.arity + 1))
        cursor = self._connection.execute(
            f"INSERT OR IGNORE INTO {table} VALUES ({placeholders})",
            (*item.values, item.tid),
        )
        return cursor.rowcount > 0

    def _delete_from(self, table: str, item: Fact) -> bool:
        clauses = " AND ".join(f"c{i} = ?" for i in range(item.arity))
        cursor = self._connection.execute(
            f"DELETE FROM {table} WHERE {clauses}", item.values
        )
        return cursor.rowcount > 0

    def delete(self, item: Fact) -> bool:
        self._check(item)
        self._delete_from(active_table(item.relation), item)
        return self._insert_into(delta_table(item.relation), item)

    def mark_deleted(self, item: Fact) -> bool:
        self._check(item)
        return self._insert_into(delta_table(item.relation), item)

    def drop_active(self, item: Fact) -> bool:
        self._check(item)
        return self._delete_from(active_table(item.relation), item)

    def insert_all(self, items: Iterable[Fact]) -> int:
        inserted = 0
        with self._connection:
            for item in items:
                if self.insert(item):
                    inserted += 1
        return inserted

    # -- lifecycle -----------------------------------------------------------------

    def clone(self) -> "SQLiteDatabase":
        copy = SQLiteDatabase(self._schema)
        for relation in self._schema.names():
            for item in self.active_facts(relation):
                copy.insert(item)
            for item in self.delta_facts(relation):
                copy.mark_deleted(item)
        return copy

    def close(self) -> None:
        """Close the underlying connection."""
        self._connection.close()

    def execute(self, sql: str, params: Iterable[Any] = ()) -> sqlite3.Cursor:
        """Run a raw SQL statement against the backing connection."""
        try:
            return self._connection.execute(sql, tuple(params))
        except sqlite3.Error as error:
            raise StorageError(f"SQL execution failed: {error}") from error

    @classmethod
    def from_database(cls, source: BaseDatabase, path: str = ":memory:") -> "SQLiteDatabase":
        """Copy an existing (e.g. in-memory) database into a SQLite engine."""
        copy = cls(source.schema, path=path)
        for relation in source.relation_names():
            copy.insert_all(source.active_facts(relation))
            for item in source.delta_facts(relation):
                copy.mark_deleted(item)
        return copy

    def __repr__(self) -> str:
        return self.summary()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BaseDatabase):
            return NotImplemented
        return self.same_state_as(other)

    def __hash__(self) -> int:  # pragma: no cover
        raise TypeError("SQLiteDatabase instances are mutable and unhashable")
