"""Database instances: active relations ``R_i`` plus delta relations ``Δ_i``.

The paper's model (Section 3.1) pairs every relation ``R_i`` with a delta
relation ``Δ_i`` recording the tuples deleted from ``R_i``.  The storage
engines expose both extents:

* the **active** extent of ``R`` — the current content of the relation;
* the **delta** extent of ``R`` — the content of ``Δ_R``.

The repair semantics drive the engine through three mutating primitives:

* :meth:`BaseDatabase.delete` — remove a tuple from the active extent *and*
  record it in the delta extent (what step/stage semantics do each round);
* :meth:`BaseDatabase.mark_deleted` — record the tuple in the delta extent but
  keep it active (what end semantics does while deriving);
* :meth:`BaseDatabase.drop_active` — remove from the active extent only (used
  by end semantics at its final state).
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from typing import Any, Dict, Iterable, Iterator, Mapping, Sequence

from repro.exceptions import ArityMismatchError, StorageError, UnknownRelationError
from repro.storage.facts import Fact
from repro.storage.indexes import RelationIndex
from repro.storage.schema import RelationSchema, Schema


class BaseDatabase(ABC):
    """Abstract interface shared by the in-memory and SQLite storage engines."""

    # -- schema ---------------------------------------------------------------

    @property
    @abstractmethod
    def schema(self) -> Schema:
        """The relational schema of this instance."""

    def relation_names(self) -> tuple[str, ...]:
        """All relation names declared in the schema."""
        return self.schema.names()

    # -- reading ----------------------------------------------------------------

    @abstractmethod
    def active_facts(self, relation: str) -> frozenset[Fact]:
        """The current (non-deleted) tuples of ``relation``."""

    @abstractmethod
    def delta_facts(self, relation: str) -> frozenset[Fact]:
        """The tuples recorded as deleted from ``relation`` (content of ``Δ``)."""

    @abstractmethod
    def candidates(
        self, relation: str, bindings: Mapping[int, Any], delta: bool = False,
    ) -> Iterator[Fact]:
        """Facts of ``relation`` matching the ``position -> value`` constraints.

        ``delta=True`` scans the delta extent instead of the active extent.
        """

    def hypothetical_candidates(
        self, relation: str, bindings: Mapping[int, Any],
    ) -> Iterator[Fact]:
        """Candidates for a *hypothetical* delta atom: active ∪ delta extent.

        Used by Algorithm 1 / independent semantics, where a delta atom may
        match any tuple of the database.  The default implementation chains the
        two extents and deduplicates; engines with cheap membership tests
        should override it to avoid building a per-call ``seen`` set.
        """
        seen: set[Fact] = set()
        for item in itertools.chain(
            self.candidates(relation, bindings, delta=False),
            self.candidates(relation, bindings, delta=True),
        ):
            if item not in seen:
                seen.add(item)
                yield item

    # -- frontier tracking ------------------------------------------------------

    def delta_token(self, relation: str) -> int:
        """An opaque marker of the delta extent's current "time".

        Pass it back to :meth:`delta_added_since` to obtain the frontier — the
        delta facts recorded after the token was taken.  The default
        implementation falls back to snapshot diffing; indexed engines override
        both methods with O(frontier) implementations.
        """
        return len(self.delta_facts(relation))

    def delta_added_since(self, relation: str, token: int) -> list[Fact]:
        """The delta facts of ``relation`` recorded after ``token`` was taken."""
        extent = self.delta_facts(relation)
        if len(extent) <= token:
            return []
        # Fallback: no insertion order available; return the whole extent so
        # callers overshoot (correct, merely less incremental).
        return list(extent)

    def all_active(self) -> Iterator[Fact]:
        """Iterate over every active fact of every relation."""
        for relation in self.relation_names():
            yield from self.active_facts(relation)

    def all_deltas(self) -> Iterator[Fact]:
        """Iterate over every delta fact of every relation."""
        for relation in self.relation_names():
            yield from self.delta_facts(relation)

    def has_active(self, item: Fact) -> bool:
        """True when ``item`` is currently active."""
        return item in self.active_facts(item.relation)

    def stored_active(self, item: Fact) -> Fact | None:
        """The active extent's own copy of ``item`` (tid-stamped), or None.

        Fact equality ignores tids, so a caller holding a bare value-level
        fact can recover the stored row — the incremental maintenance layer
        uses this to address assignments by the exact facts the closure
        derived them from.
        """
        fixed = dict(enumerate(item.values))
        return next(iter(self.candidates(item.relation, fixed)), None)

    def has_delta(self, item: Fact) -> bool:
        """True when ``item`` has been recorded as deleted."""
        return item in self.delta_facts(item.relation)

    def count_active(self, relation: str | None = None) -> int:
        """Number of active facts, in one relation or overall."""
        if relation is not None:
            return len(self.active_facts(relation))
        return sum(len(self.active_facts(name)) for name in self.relation_names())

    def count_delta(self, relation: str | None = None) -> int:
        """Number of delta facts, in one relation or overall."""
        if relation is not None:
            return len(self.delta_facts(relation))
        return sum(len(self.delta_facts(name)) for name in self.relation_names())

    # -- writing ---------------------------------------------------------------

    @abstractmethod
    def insert(self, item: Fact) -> bool:
        """Insert a fact into the active extent; returns False if already present."""

    def insert_all(self, items: Iterable[Fact]) -> int:
        """Insert many facts; returns how many were new."""
        return sum(1 for item in items if self.insert(item))

    @abstractmethod
    def delete(self, item: Fact) -> bool:
        """Delete ``item``: drop it from the active extent and record it in ``Δ``.

        Returns True when the delta extent changed.
        """

    @abstractmethod
    def mark_deleted(self, item: Fact) -> bool:
        """Record ``item`` in ``Δ`` without touching the active extent."""

    @abstractmethod
    def drop_active(self, item: Fact) -> bool:
        """Remove ``item`` from the active extent only."""

    @abstractmethod
    def retract_delta(self, item: Fact) -> bool:
        """Remove ``item`` from the delta extent only (inverse of :meth:`mark_deleted`).

        Used by DRed-style incremental maintenance
        (:mod:`repro.datalog.incremental`) when a derived delta fact loses its
        last derivation: the fact leaves the delta extent *and* any frontier
        bookkeeping, so a later re-derivation re-enters the frontier like a
        brand-new delta fact.  Returns True when the delta extent changed.
        """

    def delete_all(self, items: Iterable[Fact]) -> int:
        """Delete many facts; returns how many delta entries were added."""
        return sum(1 for item in items if self.delete(item))

    # -- lifecycle --------------------------------------------------------------

    @abstractmethod
    def clone(self) -> "BaseDatabase":
        """Deep copy of this instance (both extents)."""

    # -- comparisons / display ---------------------------------------------------

    def state(self) -> tuple[frozenset[Fact], frozenset[Fact]]:
        """The pair (all active facts, all delta facts) as frozen sets."""
        return frozenset(self.all_active()), frozenset(self.all_deltas())

    def same_state_as(self, other: "BaseDatabase") -> bool:
        """True when both engines hold exactly the same active and delta facts."""
        return self.state() == other.state()

    def summary(self) -> str:
        """A one-line human-readable summary of the instance size."""
        return (
            f"{type(self).__name__}(relations={len(self.relation_names())}, "
            f"active={self.count_active()}, delta={self.count_delta()})"
        )


class Database(BaseDatabase):
    """The in-memory storage engine.

    Facts are stored in per-relation :class:`RelationIndex` structures (one for
    the active extent, one for the delta extent), giving indexed lookups to the
    rule evaluator and O(1) delete/insert.

    Example
    -------
    >>> from repro.storage import Schema, RelationSchema, fact
    >>> schema = Schema.from_relations([RelationSchema.of("R", "x:int")])
    >>> db = Database(schema)
    >>> _ = db.insert(fact("R", 1))
    >>> db.count_active()
    1
    >>> _ = db.delete(fact("R", 1))
    >>> db.count_active(), db.count_delta()
    (0, 1)
    """

    def __init__(self, schema: Schema) -> None:
        self._schema = schema
        self._active: Dict[str, RelationIndex] = {
            name: RelationIndex() for name in schema.names()
        }
        self._delta: Dict[str, RelationIndex] = {
            name: RelationIndex() for name in schema.names()
        }
        self._tid_counter = itertools.count(1)
        #: ``observer -> [(index, wrapper), ...]`` for candidate-observer
        #: removal (see :meth:`add_candidate_observer`).
        self._candidate_observers: Dict[Any, list] = {}

    # -- construction helpers -----------------------------------------------

    @classmethod
    def from_facts(cls, schema: Schema, items: Iterable[Fact]) -> "Database":
        """Build a database from an iterable of facts."""
        db = cls(schema)
        db.insert_all(items)
        return db

    @classmethod
    def from_dicts(
        cls, schema: Schema, contents: Mapping[str, Iterable[Sequence[Any]]],
    ) -> "Database":
        """Build a database from ``{relation: [value-tuples]}``.

        >>> schema = Schema.from_arities({"R": 2})
        >>> db = Database.from_dicts(schema, {"R": [(1, 2), (3, 4)]})
        >>> db.count_active("R")
        2
        """
        db = cls(schema)
        for relation, rows in contents.items():
            for row in rows:
                db.insert(Fact(relation, tuple(row)))
        return db

    # -- schema ----------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    def _relation_schema(self, relation: str) -> RelationSchema:
        return self._schema.relation(relation)

    def _check(self, item: Fact) -> None:
        if item.relation not in self._schema:
            raise UnknownRelationError(item.relation)
        expected = self._schema.arity(item.relation)
        if item.arity != expected:
            raise ArityMismatchError(item.relation, expected, item.arity)

    # -- reading -----------------------------------------------------------------

    def active_facts(self, relation: str) -> frozenset[Fact]:
        try:
            return self._active[relation].facts()
        except KeyError:
            raise UnknownRelationError(relation) from None

    def delta_facts(self, relation: str) -> frozenset[Fact]:
        try:
            return self._delta[relation].facts()
        except KeyError:
            raise UnknownRelationError(relation) from None

    def candidates(
        self, relation: str, bindings: Mapping[int, Any], delta: bool = False,
    ) -> Iterator[Fact]:
        store = self._delta if delta else self._active
        try:
            index = store[relation]
        except KeyError:
            raise UnknownRelationError(relation) from None
        return index.candidates(bindings)

    def hypothetical_candidates(
        self, relation: str, bindings: Mapping[int, Any],
    ) -> Iterator[Fact]:
        try:
            active = self._active[relation]
            delta = self._delta[relation]
        except KeyError:
            raise UnknownRelationError(relation) from None
        yield from active.candidates(bindings)
        # Deduplicate against the active extent via its O(1) membership test
        # instead of materialising a per-call ``seen`` set.
        for item in delta.candidates(bindings):
            if item not in active:
                yield item

    # -- candidate observers ------------------------------------------------------

    def add_candidate_observer(self, observer) -> None:
        """Subscribe ``observer(relation, fact)`` to every candidate iterated.

        The storage end of the :class:`~repro.datalog.context.EvalContext`
        candidate-observer API: the observer fires for each fact any of this
        database's per-relation candidate iterators yields (active and delta
        extents alike) while it stays registered, so a subscriber sees probes
        mid-round / mid-cascade.  Clones never inherit observers.
        """
        wrappers = []
        for store in (self._active, self._delta):
            for name, index in store.items():
                def wrapper(item: Fact, relation: str = name) -> None:
                    observer(relation, item)

                index.add_observer(wrapper)
                wrappers.append((index, wrapper))
        self._candidate_observers.setdefault(observer, []).extend(wrappers)

    def remove_candidate_observer(self, observer) -> None:
        """Unsubscribe a previously added candidate observer (no-op when absent)."""
        for index, wrapper in self._candidate_observers.pop(observer, ()):
            index.remove_observer(wrapper)

    @property
    def has_candidate_observers(self) -> bool:
        """True while any candidate observer is registered.

        The wcoj driver walks tries instead of candidate iterators, so the
        engines fall back to the binary path whenever this is set — candidate
        observers must see every probed fact.
        """
        return bool(self._candidate_observers)

    def relation_index(self, relation: str, delta: bool = False) -> RelationIndex:
        """The :class:`RelationIndex` backing one extent (trie access point)."""
        store = self._delta if delta else self._active
        try:
            return store[relation]
        except KeyError:
            raise UnknownRelationError(relation) from None

    def delta_token(self, relation: str) -> int:
        try:
            return self._delta[relation].token()
        except KeyError:
            raise UnknownRelationError(relation) from None

    def delta_added_since(self, relation: str, token: int) -> list[Fact]:
        try:
            return self._delta[relation].added_since(token)
        except KeyError:
            raise UnknownRelationError(relation) from None

    def has_active(self, item: Fact) -> bool:
        index = self._active.get(item.relation)
        return index is not None and item in index

    def has_delta(self, item: Fact) -> bool:
        index = self._delta.get(item.relation)
        return index is not None and item in index

    # -- writing -----------------------------------------------------------------

    def insert(self, item: Fact) -> bool:
        self._check(item)
        if item.tid is None:
            item = item.with_tid(f"t{next(self._tid_counter)}")
        return self._active[item.relation].add(item)

    def delete(self, item: Fact) -> bool:
        self._check(item)
        self._active[item.relation].discard(item)
        return self._delta[item.relation].add(item)

    def mark_deleted(self, item: Fact) -> bool:
        self._check(item)
        return self._delta[item.relation].add(item)

    def drop_active(self, item: Fact) -> bool:
        self._check(item)
        return self._active[item.relation].discard(item)

    def retract_delta(self, item: Fact) -> bool:
        self._check(item)
        return self._delta[item.relation].discard(item)

    # -- lifecycle ----------------------------------------------------------------

    def clone(self) -> "Database":
        copy = Database(self._schema)
        for relation, index in self._active.items():
            copy._active[relation] = index.copy()
        for relation, index in self._delta.items():
            copy._delta[relation] = index.copy()
        return copy

    def reset_deltas(self) -> None:
        """Drop all delta facts (the active extents are untouched)."""
        for index in self._delta.values():
            index.clear()

    # -- dunder -------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BaseDatabase):
            return NotImplemented
        return self.same_state_as(other)

    def __hash__(self) -> int:  # pragma: no cover - databases are not hashable keys
        raise TypeError("Database instances are mutable and unhashable")

    def __repr__(self) -> str:
        return self.summary()


def stabilized_copy(db: BaseDatabase, deleted: Iterable[Fact]) -> BaseDatabase:
    """Return a copy of ``db`` with ``deleted`` removed and recorded in ``Δ``.

    This materialises the paper's ``(D \\ S) ∪ Δ(S)`` construction used in the
    definitions of stabilizing sets and of independent semantics.
    """
    copy = db.clone()
    for item in deleted:
        if not copy.has_active(item) and not copy.has_delta(item):
            raise StorageError(
                f"cannot stabilize with {item!r}: not a tuple of the database",
            )
        copy.delete(item)
    return copy
