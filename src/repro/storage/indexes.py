"""Per-attribute hash indexes for the in-memory storage engine.

Rule-body evaluation repeatedly asks "give me all facts of relation ``R``
whose attribute at position ``i`` equals ``v``" while extending a partial
assignment.  :class:`RelationIndex` answers those lookups in expected O(1) by
maintaining one hash index per attribute position, built lazily on first use
and maintained incrementally afterwards.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, Set

from repro.storage.facts import Fact


class RelationIndex:
    """Hash indexes over a single relation extent (active or delta).

    The index only ever stores references to :class:`Fact` objects owned by the
    database; it never copies values.  Positions are indexed lazily: the first
    lookup on position ``i`` scans the extent once and subsequent inserts and
    removals keep that position's index up to date.
    """

    __slots__ = ("_facts", "_by_position")

    def __init__(self, facts: Iterable[Fact] | None = None) -> None:
        self._facts: Set[Fact] = set(facts) if facts is not None else set()
        self._by_position: Dict[int, Dict[Any, Set[Fact]]] = {}

    # -- extent maintenance --------------------------------------------------

    def add(self, item: Fact) -> bool:
        """Insert a fact; returns False when it was already present."""
        if item in self._facts:
            return False
        self._facts.add(item)
        for position, buckets in self._by_position.items():
            buckets.setdefault(item.values[position], set()).add(item)
        return True

    def discard(self, item: Fact) -> bool:
        """Remove a fact if present; returns True when something was removed."""
        if item not in self._facts:
            return False
        self._facts.discard(item)
        for position, buckets in self._by_position.items():
            bucket = buckets.get(item.values[position])
            if bucket is not None:
                bucket.discard(item)
                if not bucket:
                    del buckets[item.values[position]]
        return True

    def clear(self) -> None:
        """Remove every fact and drop all indexes."""
        self._facts.clear()
        self._by_position.clear()

    # -- lookups --------------------------------------------------------------

    def __contains__(self, item: object) -> bool:
        return item in self._facts

    def __len__(self) -> int:
        return len(self._facts)

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._facts)

    def facts(self) -> frozenset[Fact]:
        """A frozen snapshot of the extent."""
        return frozenset(self._facts)

    def _ensure_position(self, position: int) -> Dict[Any, Set[Fact]]:
        buckets = self._by_position.get(position)
        if buckets is None:
            buckets = {}
            for item in self._facts:
                buckets.setdefault(item.values[position], set()).add(item)
            self._by_position[position] = buckets
        return buckets

    def lookup(self, position: int, value: Any) -> frozenset[Fact]:
        """All facts whose attribute at ``position`` equals ``value``."""
        buckets = self._ensure_position(position)
        return frozenset(buckets.get(value, ()))

    def candidates(self, bindings: Dict[int, Any]) -> Iterator[Fact]:
        """Facts matching every ``position -> value`` constraint in ``bindings``.

        With an empty ``bindings`` this iterates the whole extent.  Otherwise a
        single indexed position (the one with the smallest bucket) narrows the
        scan and the remaining constraints are checked per candidate.
        """
        if not bindings:
            yield from self._facts
            return
        # Pick the most selective bound position to drive the scan.
        best_position = None
        best_bucket: Set[Fact] | None = None
        for position, value in bindings.items():
            bucket = self._ensure_position(position).get(value, set())
            if best_bucket is None or len(bucket) < len(best_bucket):
                best_position, best_bucket = position, bucket
                if not bucket:
                    return
        assert best_bucket is not None
        remaining = {
            position: value
            for position, value in bindings.items()
            if position != best_position
        }
        for item in best_bucket:
            if all(item.values[position] == value for position, value in remaining.items()):
                yield item

    def copy(self) -> "RelationIndex":
        """Return a copy sharing no mutable state (indexes are rebuilt lazily)."""
        return RelationIndex(self._facts)
