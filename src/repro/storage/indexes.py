"""Per-attribute hash indexes for the in-memory storage engine.

Rule-body evaluation repeatedly asks "give me all facts of relation ``R``
whose attribute at position ``i`` equals ``v``" while extending a partial
assignment.  :class:`RelationIndex` answers those lookups in expected O(1) by
maintaining one hash index per attribute position, built lazily on first use
and maintained incrementally afterwards.

The index also keeps an append-only log of insertions so the semi-naive
evaluator can ask for the *frontier* — "every fact added since token ``T``" —
without diffing whole extents (see :meth:`RelationIndex.token` and
:meth:`RelationIndex.added_since`).

Per-position tries
------------------

The worst-case-optimal join driver (:mod:`repro.datalog.wcoj`) walks relation
extents attribute-by-attribute rather than fact-by-fact, intersecting the
possible values of one variable across every atom that mentions it.  That
access pattern needs a *trie* view of the extent: nested dictionaries keyed by
the attribute values in a chosen position order, with the full fact at the
leaves.  :meth:`RelationIndex.trie` builds such a view lazily per position
order (the first request scans the extent once) and every subsequent
``add``/``discard`` maintains all built tries incrementally, exactly like the
per-position hash indexes.  Because :class:`~repro.storage.facts.Fact`
equality ignores the tuple id, an extent holds at most one fact per value
tuple, so a fully-descended trie path ends in a single ``Fact`` — no leaf
cross-products.  ``clear`` drops the tries and :meth:`RelationIndex.copy`
never carries them over; value-level ordering is applied by the wcoj driver
when it materialises an intersection, keeping trie maintenance O(arity).

Candidate observers
-------------------

:meth:`RelationIndex.add_observer` registers a callable invoked with every
fact the :meth:`RelationIndex.candidates` iterator yields.  This is the
storage end of the :class:`~repro.datalog.context.EvalContext` candidate
observer API: the in-memory evaluation engines bridge context observers down
to the per-relation indexes for the duration of a run, so a subscriber (e.g.
a trigger-probe experiment) sees each probed fact *as the join explores* —
mid-round and mid-cascade — rather than once per finished round.  With no
observer registered the iterators are returned untouched (zero overhead on
the hot path), and :meth:`RelationIndex.copy` never carries observers over.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, Set

from repro.storage.facts import Fact


class RelationIndex:
    """Hash indexes over a single relation extent (active or delta).

    The index only ever stores references to :class:`Fact` objects owned by the
    database; it never copies values.  Positions are indexed lazily: the first
    lookup on position ``i`` scans the extent once and subsequent inserts and
    removals keep that position's index up to date.
    """

    __slots__ = (
        "_facts",
        "_by_position",
        "_tries",
        "_snapshot",
        "_log",
        "_observers",
    )

    def __init__(self, facts: Iterable[Fact] | None = None) -> None:
        self._facts: Set[Fact] = set(facts) if facts is not None else set()
        self._by_position: Dict[int, Dict[Any, Set[Fact]]] = {}
        #: Lazily built tries keyed by position order (see module docstring).
        self._tries: Dict[tuple, Dict[Any, Any]] = {}
        #: Cached frozen snapshot of the extent, dropped on every write.
        self._snapshot: frozenset[Fact] | None = None
        #: Append-only insertion log backing the frontier tokens.
        self._log: List[Fact] = list(self._facts)
        #: Callables fed every fact :meth:`candidates` yields (see module
        #: docstring); empty in the common case.
        self._observers: List[Callable[[Fact], None]] = []

    # -- extent maintenance --------------------------------------------------

    def add(self, item: Fact) -> bool:
        """Insert a fact; returns False when it was already present."""
        if item in self._facts:
            return False
        self._facts.add(item)
        self._log.append(item)
        self._snapshot = None
        for position, buckets in self._by_position.items():
            buckets.setdefault(item.values[position], set()).add(item)
        for positions, trie in self._tries.items():
            self._trie_insert(trie, positions, item)
        return True

    def discard(self, item: Fact) -> bool:
        """Remove a fact if present; returns True when something was removed."""
        if item not in self._facts:
            return False
        self._facts.discard(item)
        self._snapshot = None
        for position, buckets in self._by_position.items():
            bucket = buckets.get(item.values[position])
            if bucket is not None:
                bucket.discard(item)
                if not bucket:
                    del buckets[item.values[position]]
        for positions, trie in self._tries.items():
            self._trie_remove(trie, positions, item)
        return True

    def clear(self) -> None:
        """Remove every fact and drop all indexes (the frontier log survives
        so outstanding tokens stay valid)."""
        self._facts.clear()
        self._by_position.clear()
        self._tries.clear()
        self._snapshot = None

    # -- frontier tokens -------------------------------------------------------

    def token(self) -> int:
        """An opaque marker for "now": pass it back to :meth:`added_since`."""
        return len(self._log)

    def added_since(self, token: int) -> List[Fact]:
        """Facts added after ``token`` was taken and still present.

        Tokens are monotone: the same token can be replayed as the extent keeps
        growing.  Facts discarded since their insertion are filtered out.
        """
        if token >= len(self._log):
            return []
        present = self._facts
        return [item for item in self._log[token:] if item in present]

    # -- lookups --------------------------------------------------------------

    def __contains__(self, item: object) -> bool:
        return item in self._facts

    def __len__(self) -> int:
        return len(self._facts)

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._facts)

    def facts(self) -> frozenset[Fact]:
        """A frozen snapshot of the extent (cached until the next write)."""
        if self._snapshot is None:
            self._snapshot = frozenset(self._facts)
        return self._snapshot

    def _ensure_position(self, position: int) -> Dict[Any, Set[Fact]]:
        buckets = self._by_position.get(position)
        if buckets is None:
            buckets = {}
            for item in self._facts:
                buckets.setdefault(item.values[position], set()).add(item)
            self._by_position[position] = buckets
        return buckets

    def lookup(self, position: int, value: Any) -> Set[Fact]:
        """All facts whose attribute at ``position`` equals ``value``.

        Returns a *live view* of the underlying bucket — do not mutate it, and
        do not hold it across writes to the index.
        """
        buckets = self._ensure_position(position)
        bucket = buckets.get(value)
        return bucket if bucket is not None else _EMPTY_BUCKET

    # -- tries -----------------------------------------------------------------

    @staticmethod
    def _trie_insert(trie: Dict[Any, Any], positions: tuple, item: Fact) -> None:
        values = item.values
        node = trie
        for position in positions[:-1]:
            node = node.setdefault(values[position], {})
        node[values[positions[-1]]] = item

    @staticmethod
    def _trie_remove(trie: Dict[Any, Any], positions: tuple, item: Fact) -> None:
        values = item.values
        path: List[tuple] = []
        node = trie
        for position in positions[:-1]:
            child = node.get(values[position])
            if child is None:
                return
            path.append((node, values[position]))
            node = child
        node.pop(values[positions[-1]], None)
        # Prune now-empty interior nodes so key sets stay exact.
        while path and not node:
            node, key = path.pop()
            del node[key]

    def trie(self, positions: tuple) -> Dict[Any, Any]:
        """A nested-dict trie over the extent keyed in ``positions`` order.

        ``positions`` must be a permutation of the relation's attribute
        positions.  Level ``k`` maps the value at ``positions[k]`` to the next
        level; the final level maps the last value to the (unique) fact.  The
        returned trie is a *live view* maintained by ``add``/``discard`` — do
        not mutate it.  Built on first request by a single extent scan; the
        build publishes only a fully-constructed trie so concurrent readers
        never observe a partial structure.
        """
        if not positions:
            raise ValueError("trie requires at least one position")
        trie = self._tries.get(positions)
        if trie is None:
            trie = {}
            for item in self._facts:
                self._trie_insert(trie, positions, item)
            self._tries[positions] = trie
        return trie

    # -- candidate observers ---------------------------------------------------

    def add_observer(self, observer: Callable[[Fact], None]) -> None:
        """Register ``observer(fact)`` on every future :meth:`candidates` yield."""
        self._observers.append(observer)

    def remove_observer(self, observer: Callable[[Fact], None]) -> None:
        """Unregister a previously added observer (no-op when absent)."""
        try:
            self._observers.remove(observer)
        except ValueError:
            pass

    def _observed(self, iterator: Iterator[Fact]) -> Iterator[Fact]:
        """Wrap ``iterator`` to notify the observers of every yielded fact."""
        for item in iterator:
            for observer in self._observers:
                observer(item)
            yield item

    def candidates(self, bindings: Mapping[int, Any]) -> Iterator[Fact]:
        """Facts matching every ``position -> value`` constraint in ``bindings``.

        With an empty ``bindings`` this iterates the whole extent.  Otherwise a
        single indexed position (the one with the smallest bucket) narrows the
        scan and the remaining constraints are checked per candidate.  With
        observers registered, every yielded fact is delivered to them first.
        """
        if self._observers:
            return self._observed(self._candidates(bindings))
        return self._candidates(bindings)

    def _candidates(self, bindings: Mapping[int, Any]) -> Iterator[Fact]:
        if not bindings:
            yield from self._facts
            return
        # Pick the most selective bound position to drive the scan.
        best_position = None
        best_bucket: Set[Fact] | None = None
        for position, value in bindings.items():
            bucket = self._ensure_position(position).get(value, _EMPTY_BUCKET)
            if best_bucket is None or len(bucket) < len(best_bucket):
                best_position, best_bucket = position, bucket
                if not bucket:
                    return
        assert best_bucket is not None
        if len(bindings) == 1:
            yield from best_bucket
            return
        remaining = [
            (position, value)
            for position, value in bindings.items()
            if position != best_position
        ]
        for item in best_bucket:
            values = item.values
            if all(values[position] == value for position, value in remaining):
                yield item

    def copy(self) -> "RelationIndex":
        """Return a copy sharing no mutable state (indexes are rebuilt lazily,
        observers are not carried over)."""
        return RelationIndex(self._facts)


#: Shared immutable-by-convention empty bucket returned by missing lookups.
_EMPTY_BUCKET: Set[Fact] = set()
