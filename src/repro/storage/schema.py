"""Relational schemas.

A :class:`Schema` is the paper's ``R = (R1, ..., Rk)``: a collection of named
relations, each with an ordered list of typed attributes.  Delta relations
``Δ_i`` are not declared separately — every relation implicitly has a delta
counterpart with the same attributes (Section 3.1 of the paper), and the
storage engines materialise it as a second extent of the same relation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Mapping, Sequence

from repro.exceptions import SchemaError, UnknownRelationError

#: Attribute types understood by the storage engines and the SQLite compiler.
VALID_TYPES = ("int", "str", "float")


@dataclass(frozen=True)
class Attribute:
    """A single typed attribute of a relation.

    Parameters
    ----------
    name:
        Attribute name, unique within its relation.
    dtype:
        One of ``"int"``, ``"str"``, ``"float"``.  Only used for validation and
        for choosing SQLite column types; the in-memory engine stores Python
        values as-is.
    """

    name: str
    dtype: str = "str"

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError(f"invalid attribute name: {self.name!r}")
        if self.dtype not in VALID_TYPES:
            raise SchemaError(
                f"invalid attribute type {self.dtype!r}; expected one of {VALID_TYPES}",
            )

    def validate(self, value: object) -> bool:
        """Return True when ``value`` is acceptable for this attribute's type."""
        if self.dtype == "int":
            return isinstance(value, int) and not isinstance(value, bool)
        if self.dtype == "float":
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        return isinstance(value, str)


@dataclass(frozen=True)
class RelationSchema:
    """The schema of a single relation: a name plus ordered attributes."""

    name: str
    attributes: tuple[Attribute, ...]

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError(f"invalid relation name: {self.name!r}")
        if not self.attributes:
            raise SchemaError(f"relation {self.name!r} must have at least one attribute")
        names = [attribute.name for attribute in self.attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"relation {self.name!r} has duplicate attribute names")

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self.attributes)

    @property
    def attribute_names(self) -> tuple[str, ...]:
        """Attribute names in declaration order."""
        return tuple(attribute.name for attribute in self.attributes)

    def position_of(self, attribute_name: str) -> int:
        """Return the 0-based position of ``attribute_name``.

        Raises :class:`SchemaError` when the attribute does not exist.
        """
        for index, attribute in enumerate(self.attributes):
            if attribute.name == attribute_name:
                return index
        raise SchemaError(
            f"relation {self.name!r} has no attribute {attribute_name!r}",
        )

    def validate_values(self, values: Sequence[object], typed: bool = False) -> None:
        """Check arity (and optionally attribute types) of a value vector."""
        if len(values) != self.arity:
            raise SchemaError(
                f"relation {self.name!r} expects {self.arity} values, got {len(values)}",
            )
        if typed:
            for attribute, value in zip(self.attributes, values):
                if not attribute.validate(value):
                    raise SchemaError(
                        f"value {value!r} is not a valid {attribute.dtype} for "
                        f"{self.name}.{attribute.name}",
                    )

    @classmethod
    def of(cls, name: str, *attribute_specs: str) -> "RelationSchema":
        """Build a schema from ``"attr"`` or ``"attr:type"`` strings.

        >>> RelationSchema.of("Author", "aid:int", "name", "oid:int").arity
        3
        """
        attributes = []
        for spec in attribute_specs:
            if ":" in spec:
                attr_name, dtype = spec.split(":", 1)
            else:
                attr_name, dtype = spec, "str"
            attributes.append(Attribute(attr_name, dtype))
        return cls(name, tuple(attributes))


@dataclass
class Schema:
    """A full relational schema: a mapping from relation name to its definition."""

    relations: Dict[str, RelationSchema] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Normalise: keys must match the relation schema names.
        for name, relation in self.relations.items():
            if name != relation.name:
                raise SchemaError(
                    f"schema key {name!r} does not match relation name {relation.name!r}",
                )

    # -- construction ------------------------------------------------------

    @classmethod
    def from_relations(cls, relations: Iterable[RelationSchema]) -> "Schema":
        """Build a schema from an iterable of relation schemas."""
        schema = cls()
        for relation in relations:
            schema.add(relation)
        return schema

    @classmethod
    def from_arities(cls, arities: Mapping[str, int]) -> "Schema":
        """Build an untyped schema where relation ``R`` gets attributes a0..a(n-1).

        Convenient for tests and for the complexity-reduction gadgets where the
        attribute names carry no meaning.
        """
        relations = []
        for name, arity in arities.items():
            attributes = tuple(Attribute(f"a{i}") for i in range(arity))
            relations.append(RelationSchema(name, attributes))
        return cls.from_relations(relations)

    # -- mutation / lookup -------------------------------------------------

    def add(self, relation: RelationSchema) -> None:
        """Add a relation; raises :class:`SchemaError` if the name already exists."""
        if relation.name in self.relations:
            raise SchemaError(f"relation {relation.name!r} already defined")
        self.relations[relation.name] = relation

    def relation(self, name: str) -> RelationSchema:
        """Return the schema of relation ``name`` or raise :class:`UnknownRelationError`."""
        try:
            return self.relations[name]
        except KeyError:
            raise UnknownRelationError(name) from None

    def arity(self, name: str) -> int:
        """Arity of relation ``name``."""
        return self.relation(name).arity

    def names(self) -> tuple[str, ...]:
        """All relation names in insertion order."""
        return tuple(self.relations)

    def __contains__(self, name: object) -> bool:
        return name in self.relations

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self.relations.values())

    def __len__(self) -> int:
        return len(self.relations)

    def copy(self) -> "Schema":
        """Return a shallow copy (relation schemas are immutable)."""
        return Schema(dict(self.relations))
