"""Synthetic cyclic-join workloads for the worst-case-optimal join path.

The MAS / TPC-H programs of the paper are acyclic (their join hypergraphs
GYO-reduce to nothing), so they never exercise the generic-join evaluator of
:mod:`repro.datalog.wcoj` or the ordered SQL lowering.  This module provides
a workload family whose rule bodies keep a cyclic core:

* **triangle** — ``delta Edge(x, y) :- Edge(x, y), Edge(y, z), Edge(z, x).``
  The canonical AGM separation: a binary plan enumerates every length-2 path
  (``Θ(Σ deg²)`` on a skewed graph) while the generic join is bounded by the
  ``O(N^{3/2})`` triangle output;
* **clique4** — the 4-clique body (six ``Edge`` atoms), a deeper cyclic core
  with fractional-hypertree width 2;
* **mutual** — a mutually recursive pair of delta rules over ``A`` / ``B``
  whose bodies close a triangle through the *other* relation's frontier, so
  the wcoj path runs seeded (rank-stratified) rounds, not just round 1.

The generated graph is hub-heavy **by construction**: a fixed set of hub
nodes is wired bidirectionally to a large sample of the remaining nodes, on
top of a sparse ring and a few random extras.  The hub core guarantees the
degree skew (it is not left to preferential-attachment luck, which varies
wildly across seeds): every binary triangle plan must enumerate the hubs'
``Θ(deg²)`` two-paths, while the generic join's per-variable intersections
stay bounded by the small non-hub degrees — so the binary/wcoj separation
grows with scale at every seed.

All programs are *repair-style* delta programs (guard-first bodies: the head's
base counterpart leads the body), matching the paper's program shape so every
engine and semantics accepts them unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.datalog.delta import DeltaProgram
from repro.storage.database import Database
from repro.storage.facts import Fact
from repro.storage.schema import RelationSchema, Schema
from repro.utils.rng import make_rng


def cyclic_schema() -> Schema:
    """Schema of the cyclic workload family: three binary edge relations."""
    return Schema.from_relations(
        [
            RelationSchema.of("Edge", "src:int", "dst:int"),
            RelationSchema.of("A", "src:int", "dst:int"),
            RelationSchema.of("B", "src:int", "dst:int"),
        ],
    )


@dataclass
class CyclicDataset:
    """A generated cyclic-graph instance plus its hub node and size summary."""

    db: Database
    schema: Schema
    counts: Dict[str, int]
    #: The highest-degree node — the constant the mutual-recursion program
    #: seeds its cascade from (and the node whose ``deg²`` dominates a binary
    #: triangle plan).
    hub: int

    @property
    def total_tuples(self) -> int:
        """Total number of tuples across all three relations."""
        return sum(self.counts.values())

    def fresh_db(self) -> Database:
        """A deep copy of the instance (runs mutate delta extents)."""
        return self.db.clone()


#: Number of hub nodes of the constructed core (nodes ``0 .. N_HUBS - 1``).
N_HUBS = 3

#: Fraction of the non-hub nodes each hub is wired to, in both directions.
HUB_WINDOW = 0.6


def generate_cyclic(scale: float = 1.0, seed: int = 0) -> CyclicDataset:
    """Generate a hub-core digraph (see the module docstring).

    ``scale`` multiplies the node count linearly (edges follow: the hub core
    is ``Θ(N_HUBS · n)``, the ring and extras ``Θ(n)``).  The seed only
    varies *which* nodes fall in each hub's window and where the extra edges
    land — the degree skew itself is structural, so the binary-vs-wcoj
    separation holds at every seed.  ``A`` holds the same edge set and ``B``
    its reversal, giving the mutual-recursion program a closed triangle
    through both relations for every directed triangle of the base graph.
    """
    rng = make_rng(seed, "cyclic", scale)
    n_nodes = max(24, round(40 * scale))
    nodes = list(range(n_nodes))
    edges: set[Tuple[int, int]] = set()

    # Hub core: every hub is wired bidirectionally to a HUB_WINDOW sample of
    # the other nodes — the guaranteed Θ(deg²) two-path mass.
    for hub in range(N_HUBS):
        others = [node for node in nodes if node != hub]
        window = rng.sample(others, round(HUB_WINDOW * len(others)))
        for node in window:
            edges.add((node, hub))
            edges.add((hub, node))

    # Sparse ring: closes triangles through the hubs (x -> hub -> x+1 -> x
    # needs the ring edge) without inflating any degree.
    for node in nodes:
        edges.add((node, (node + 1) % n_nodes))

    # A few random extras for triangle variety off the ring.
    extras = n_nodes
    while extras:
        src, dst = rng.randrange(n_nodes), rng.randrange(n_nodes)
        if src != dst and (src, dst) not in edges:
            edges.add((src, dst))
            extras -= 1

    schema = cyclic_schema()
    db = Database(schema)
    ordered: List[Tuple[int, int]] = sorted(edges)
    for index, (src, dst) in enumerate(ordered):
        db.insert(Fact("Edge", (src, dst), tid=f"e{index}"))
        db.insert(Fact("A", (src, dst), tid=f"a{index}"))
        db.insert(Fact("B", (dst, src), tid=f"b{index}"))

    degree: Dict[int, int] = {node: 0 for node in nodes}
    for src, dst in ordered:
        degree[src] += 1
        degree[dst] += 1
    hub = max(nodes, key=lambda node: (degree[node], -node))
    counts = {"Edge": len(ordered), "A": len(ordered), "B": len(ordered)}
    return CyclicDataset(db=db, schema=schema, counts=counts, hub=hub)


def triangle_program() -> DeltaProgram:
    """Delete every edge that closes a directed triangle."""
    program = DeltaProgram.from_text(
        "delta Edge(x, y) :- Edge(x, y), Edge(y, z), Edge(z, x).",
    )
    program.validate_against_schema(cyclic_schema())
    return program


def clique_program() -> DeltaProgram:
    """Delete every edge lying on a directed 4-clique (six-atom cyclic body)."""
    program = DeltaProgram.from_text(
        "delta Edge(x, y) :- Edge(x, y), Edge(y, z), Edge(z, w), Edge(w, x), "
        "Edge(x, z), Edge(y, w).",
    )
    program.validate_against_schema(cyclic_schema())
    return program


def mutual_recursion_program(hub: int) -> DeltaProgram:
    """Mutually recursive triangle closure between ``A`` and ``B``.

    The seed rule deletes the hub's outgoing ``A`` edges; each later round
    closes a triangle through the *other* relation's frontier, so the cascade
    alternates between the relations and the wcoj path runs through the
    seeded, rank-stratified enumeration — not just the full round-1 variant.
    """
    program = DeltaProgram.from_text(
        f"delta A(x, y) :- A(x, y), x = {hub}.\n"
        "delta B(x, y) :- B(x, y), delta A(y, z), B(z, x).\n"
        "delta A(x, y) :- A(x, y), delta B(y, z), A(z, x).\n",
    )
    program.validate_against_schema(cyclic_schema())
    return program


def cyclic_programs(hub: int) -> Dict[str, DeltaProgram]:
    """The family's programs, keyed by short name (benchmark row labels)."""
    return {
        "triangle": triangle_program(),
        "clique4": clique_program(),
        "mutual": mutual_recursion_program(hub),
    }
