"""The four denial constraints DC1–DC4 of the HoloClean comparison (Section 6).

All four constraints range over the extended single-table schema
``Author(aid, name, oid, organization)`` (see
:func:`repro.workloads.errors.author_table_schema`):

* DC1 — the same ``aid`` cannot have two different ``oid`` values;
* DC2 — the same ``aid`` cannot have two different names;
* DC3 — the same ``aid`` cannot have two different organization names;
* DC4 — the same ``oid`` cannot have two different organization names.
"""

from __future__ import annotations

from typing import Dict

from repro.constraints.denial import DenialConstraint, program_from_denial_constraints
from repro.datalog.ast import Atom, Comparison, Variable
from repro.datalog.delta import DeltaProgram
from repro.workloads.errors import AUTHOR_EXT_RELATION


def _author_atom(suffix: str) -> Atom:
    return Atom(
        AUTHOR_EXT_RELATION,
        (
            Variable(f"a{suffix}"),
            Variable(f"n{suffix}"),
            Variable(f"o{suffix}"),
            Variable(f"on{suffix}"),
        ),
    )


def dc_constraints() -> Dict[str, DenialConstraint]:
    """DC1–DC4 as :class:`DenialConstraint` objects keyed by their paper name."""
    first = _author_atom("1")
    second = _author_atom("2")

    def equal(lhs: str, rhs: str) -> Comparison:
        return Comparison(Variable(lhs), "=", Variable(rhs))

    def different(lhs: str, rhs: str) -> Comparison:
        return Comparison(Variable(lhs), "!=", Variable(rhs))

    return {
        "DC1": DenialConstraint(
            (first, second), (equal("a1", "a2"), different("o1", "o2")), name="DC1"
        ),
        "DC2": DenialConstraint(
            (first, second), (equal("a1", "a2"), different("n1", "n2")), name="DC2"
        ),
        "DC3": DenialConstraint(
            (first, second), (equal("a1", "a2"), different("on1", "on2")), name="DC3"
        ),
        "DC4": DenialConstraint(
            (first, second), (equal("o1", "o2"), different("on1", "on2")), name="DC4"
        ),
    }


def dc_program(per_atom: bool = False) -> DeltaProgram:
    """DC1–DC4 combined into one delta program (the paper's comparison workload).

    ``per_atom=True`` uses the per-atom encoding (one rule per DC atom), which
    lets step semantics delete either side of a violating pair.
    """
    return program_from_denial_constraints(dc_constraints().values(), per_atom=per_atom)
