"""Synthetic workloads and the paper's test programs.

The paper evaluates on a fragment of the Microsoft Academic Search database
(MAS) and on a TPC-H fragment.  Neither dataset is redistributable / buildable
offline, so this package generates synthetic instances over the same schemas
with configurable scale and seeded randomness (see DESIGN.md, substitution 3),
plus:

* :mod:`repro.workloads.cyclic` — hub-heavy cyclic-join graphs (triangle,
  4-clique, mutual recursion) exercising the worst-case-optimal join path;
* :mod:`repro.workloads.errors` — the duplicate-with-perturbation error
  injector used by the DC / HoloClean experiments (Tables 4-5, Figure 10);
* :mod:`repro.workloads.programs_mas` — the 20 MAS programs of Table 1;
* :mod:`repro.workloads.programs_tpch` — the 6 TPC-H programs of Table 2;
* :mod:`repro.workloads.programs_dc` — the four denial constraints DC1-DC4.
"""

from repro.workloads.cyclic import (
    CyclicDataset,
    cyclic_programs,
    cyclic_schema,
    generate_cyclic,
)
from repro.workloads.mas import MASDataset, generate_mas, mas_schema
from repro.workloads.tpch import TPCHDataset, generate_tpch, tpch_schema
from repro.workloads.errors import (
    ErrorInjectionResult,
    generate_author_table,
    inject_errors,
)
from repro.workloads.programs_mas import mas_programs, mas_program
from repro.workloads.programs_tpch import tpch_programs, tpch_program
from repro.workloads.programs_dc import dc_constraints, dc_program

__all__ = [
    "CyclicDataset",
    "cyclic_programs",
    "cyclic_schema",
    "generate_cyclic",
    "MASDataset",
    "generate_mas",
    "mas_schema",
    "TPCHDataset",
    "generate_tpch",
    "tpch_schema",
    "ErrorInjectionResult",
    "generate_author_table",
    "inject_errors",
    "mas_programs",
    "mas_program",
    "tpch_programs",
    "tpch_program",
    "dc_constraints",
    "dc_program",
]
