"""The Author table and error injection for the DC / HoloClean experiments.

Section 6 of the paper compares the four semantics against HoloClean on a
single extended Author table ``Author(aid, name, oid, organization)`` with four
denial constraints (DC1–DC4), a fixed number of rows, and an increasing number
of injected errors (Tables 4 and 5, Figure 10).

The injector follows the standard duplicate-with-perturbation recipe: each
error duplicates a randomly chosen clean row under the same ``aid`` but with
one attribute perturbed, so that the pair violates at least one DC.  The
injected row is recorded, which gives the experiments their ground truth: the
minimum deletion repair removes exactly the injected rows, and the minimum
cell repair fixes exactly the perturbed cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.exceptions import ExperimentError
from repro.storage.database import Database
from repro.storage.facts import Fact
from repro.storage.schema import RelationSchema, Schema
from repro.utils.rng import make_rng

#: The extended Author relation used by the HoloClean comparison.
AUTHOR_EXT_RELATION = "Author"


def author_table_schema() -> Schema:
    """Schema of the single-table HoloClean comparison: Author(aid, name, oid, organization)."""
    return Schema.from_relations(
        [
            RelationSchema.of(
                AUTHOR_EXT_RELATION, "aid:int", "name:str", "oid:int", "organization:str"
            )
        ],
    )


def generate_author_table(
    n_rows: int, n_orgs: int | None = None, seed: int = 0
) -> Database:
    """A clean extended Author table.

    Every ``aid`` appears once, and ``organization`` is functionally determined
    by ``oid`` (the dependency DC4 protects).
    """
    rng = make_rng(seed, "author-table", n_rows)
    n_orgs = n_orgs if n_orgs is not None else max(5, n_rows // 50)
    org_names = {oid: f"Organization {oid}" for oid in range(1, n_orgs + 1)}
    schema = author_table_schema()
    db = Database(schema)
    for aid in range(1, n_rows + 1):
        oid = rng.randint(1, n_orgs)
        db.insert(
            Fact(
                AUTHOR_EXT_RELATION,
                (aid, f"Author {aid}", oid, org_names[oid]),
                tid=f"a{aid}",
            ),
        )
    return db


@dataclass
class ErrorInjectionResult:
    """The outcome of :func:`inject_errors`.

    Attributes
    ----------
    db:
        The dirty database (clean rows plus injected duplicates).
    injected:
        The injected (erroneous) facts — the ground-truth minimum deletion
        repair.
    perturbed_attribute:
        For every injected fact, the attribute position that was perturbed —
        the ground-truth cell repair.
    clean_counterpart:
        For every injected fact, the clean fact it was duplicated from.
    """

    db: Database
    injected: List[Fact]
    perturbed_attribute: Dict[Fact, int]
    clean_counterpart: Dict[Fact, Fact]

    @property
    def error_count(self) -> int:
        """Number of injected errors."""
        return len(self.injected)


#: Attribute positions of Author(aid, name, oid, organization).
_POS_AID, _POS_NAME, _POS_OID, _POS_ORG = 0, 1, 2, 3


def inject_errors(
    clean_db: Database,
    n_errors: int,
    seed: int = 0,
    perturbable_positions: Sequence[int] = (_POS_NAME, _POS_OID, _POS_ORG),
) -> ErrorInjectionResult:
    """Inject ``n_errors`` duplicate-with-perturbation errors into a clean Author table.

    Each error copies a distinct clean row, keeps its ``aid``, and perturbs one
    of ``name`` / ``oid`` / ``organization``, so the (original, duplicate) pair
    violates DC2 / DC1 / DC3 respectively (and organization perturbations also
    violate DC4 against the other rows of the same organization).
    """
    clean_facts = sorted(
        clean_db.active_facts(AUTHOR_EXT_RELATION),
        key=lambda item: item.values[_POS_AID],
    )
    if n_errors > len(clean_facts):
        raise ExperimentError(
            f"cannot inject {n_errors} errors into a table of {len(clean_facts)} rows",
        )
    rng = make_rng(seed, "error-injection", n_errors)
    victims = rng.sample(clean_facts, n_errors)

    dirty = clean_db.clone()
    injected: List[Fact] = []
    perturbed_attribute: Dict[Fact, int] = {}
    clean_counterpart: Dict[Fact, Fact] = {}
    for index, victim in enumerate(victims):
        position = perturbable_positions[index % len(perturbable_positions)]
        values = list(victim.values)
        if position == _POS_NAME:
            values[_POS_NAME] = f"Typo {values[_POS_NAME]}"
        elif position == _POS_OID:
            values[_POS_OID] = values[_POS_OID] + 10_000 + index
        else:
            values[_POS_ORG] = f"Misspelled {values[_POS_ORG]}"
        bad = Fact(AUTHOR_EXT_RELATION, tuple(values), tid=f"err{index}")
        dirty.insert(bad)
        injected.append(bad)
        perturbed_attribute[bad] = position
        clean_counterpart[bad] = victim
    return ErrorInjectionResult(
        db=dirty,
        injected=injected,
        perturbed_attribute=perturbed_attribute,
        clean_counterpart=clean_counterpart,
    )
