"""Synthetic MAS (Microsoft Academic Search) workload.

The paper's MAS fragment has five relations — ``Organization(oid, name)``,
``Author(aid, name, oid)``, ``Writes(aid, pid)``, ``Publication(pid, title)``
and ``Cite(citing, cited)`` — totalling ~124K tuples.  The original fragment is
not redistributable, so :func:`generate_mas` builds a synthetic academic graph
over the same schema:

* authors are assigned to organizations (skewed: a few large organizations);
* every publication has 1–4 authors drawn with preferential attachment, so a
  few prolific authors exist (the constants the paper's programs select on);
* citations point from newer to older publications with a skewed in-degree.

The generator also chooses the constants used by the Table-1 programs (the
most prolific author, the largest organization, the most cited publication, a
median publication id as a ``<`` threshold) so experiments do not depend on
hard-coded magic values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.storage.database import Database
from repro.storage.facts import Fact
from repro.storage.schema import RelationSchema, Schema
from repro.utils.rng import make_rng

#: A pool of plausible name fragments for synthetic entities.
_FIRST_NAMES = [
    "Ada", "Alan", "Grace", "Edgar", "Barbara", "Donald", "Edsger", "Frances",
    "John", "Leslie", "Margaret", "Niklaus", "Radia", "Shafi", "Tim", "Tony",
]
_LAST_NAMES = [
    "Lovelace", "Turing", "Hopper", "Codd", "Liskov", "Knuth", "Dijkstra",
    "Allen", "Backus", "Lamport", "Hamilton", "Wirth", "Perlman", "Goldwasser",
    "Berners-Lee", "Hoare",
]
_ORG_SUFFIXES = ["University", "Institute", "Lab", "College", "Center"]
_TITLE_WORDS = [
    "Declarative", "Repairs", "Provenance", "Datalog", "Consistency", "Queries",
    "Semantics", "Constraints", "Deletion", "Propagation", "Causality", "Triggers",
]


def mas_schema() -> Schema:
    """The MAS relational schema used throughout the experiments."""
    return Schema.from_relations(
        [
            RelationSchema.of("Organization", "oid:int", "name:str"),
            RelationSchema.of("Author", "aid:int", "name:str", "oid:int"),
            RelationSchema.of("Writes", "aid:int", "pid:int"),
            RelationSchema.of("Publication", "pid:int", "title:str"),
            RelationSchema.of("Cite", "citing:int", "cited:int"),
        ],
    )


@dataclass(frozen=True)
class MASConstants:
    """The constants the Table-1 programs select on, chosen per generated instance."""

    target_author_id: int
    target_author_name: str
    target_org_id: int
    target_pub_id: int
    pid_threshold: int


@dataclass
class MASDataset:
    """A generated MAS instance plus its selected constants and size summary."""

    db: Database
    schema: Schema
    constants: MASConstants
    counts: Dict[str, int]

    @property
    def total_tuples(self) -> int:
        """Total number of tuples across all five relations."""
        return sum(self.counts.values())

    def fresh_db(self) -> Database:
        """A deep copy of the instance (experiments mutate repaired clones only)."""
        return self.db.clone()


def generate_mas(scale: float = 1.0, seed: int = 0) -> MASDataset:
    """Generate a synthetic MAS instance.

    Parameters
    ----------
    scale:
        Linear size multiplier.  ``scale=1.0`` produces roughly 1.5K tuples —
        small enough that all 20 programs x 4 semantics finish quickly in pure
        Python; the benchmark harness raises it for the runtime figures.
    seed:
        Seed for the deterministic RNG.
    """
    rng = make_rng(seed, "mas", scale)
    n_orgs = max(5, round(20 * scale))
    n_authors = max(20, round(150 * scale))
    n_pubs = max(25, round(200 * scale))

    schema = mas_schema()
    db = Database(schema)

    # Organizations -----------------------------------------------------------
    for oid in range(1, n_orgs + 1):
        name = (f"{rng.choice(_LAST_NAMES)} {rng.choice(_ORG_SUFFIXES)} {oid}")
        db.insert(Fact("Organization", (oid, name), tid=f"o{oid}"))

    # Authors (organization sizes are skewed: ~zipf over organizations) --------
    org_weights = [1.0 / (rank + 1) for rank in range(n_orgs)]
    authors: Dict[int, tuple[str, int]] = {}
    for aid in range(1, n_authors + 1):
        name = f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)} {aid}"
        oid = rng.choices(range(1, n_orgs + 1), weights=org_weights, k=1)[0]
        authors[aid] = (name, oid)
        db.insert(Fact("Author", (aid, name, oid), tid=f"a{aid}"))

    # Publications and authorship (preferential attachment over authors) -------
    author_pub_count: Dict[int, int] = {aid: 1 for aid in authors}
    writes: List[tuple[int, int]] = []
    pubs: List[int] = []
    for pid in range(1, n_pubs + 1):
        title = " ".join(rng.sample(_TITLE_WORDS, 3)) + f" {pid}"
        db.insert(Fact("Publication", (pid, title), tid=f"p{pid}"))
        pubs.append(pid)
        n_coauthors = rng.randint(1, 4)
        weights = [author_pub_count[aid] for aid in authors]
        chosen: set[int] = set()
        for _ in range(n_coauthors):
            aid = rng.choices(list(authors), weights=weights, k=1)[0]
            chosen.add(aid)
        for aid in chosen:
            author_pub_count[aid] += 1
            writes.append((aid, pid))
            db.insert(Fact("Writes", (aid, pid), tid=f"w{aid}_{pid}"))

    # Citations: newer publications cite older ones, skewed towards early pubs.
    cite_count = 0
    cited_in_degree: Dict[int, int] = {pid: 1 for pid in pubs}
    for pid in pubs:
        if pid <= 2:
            continue
        n_cites = rng.randint(1, min(4, pid - 1))
        older = list(range(1, pid))
        weights = [cited_in_degree[old] for old in older]
        targets = set()
        for _ in range(n_cites):
            cited = rng.choices(older, weights=weights, k=1)[0]
            targets.add(cited)
        for cited in targets:
            cited_in_degree[cited] += 1
            db.insert(Fact("Cite", (pid, cited), tid=f"c{pid}_{cited}"))
            cite_count += 1

    # Constants ----------------------------------------------------------------
    pubs_per_author: Dict[int, int] = {}
    for aid, _pid in writes:
        pubs_per_author[aid] = pubs_per_author.get(aid, 0) + 1
    target_author_id = max(
        pubs_per_author, key=lambda aid: (pubs_per_author[aid], -aid)
    )
    authors_per_org: Dict[int, int] = {}
    for aid, (_name, oid) in authors.items():
        authors_per_org[oid] = authors_per_org.get(oid, 0) + 1
    target_org_id = max(authors_per_org, key=lambda oid: (authors_per_org[oid], -oid))
    target_pub_id = max(cited_in_degree, key=lambda pid: (cited_in_degree[pid], -pid))
    constants = MASConstants(
        target_author_id=target_author_id,
        target_author_name=authors[target_author_id][0],
        target_org_id=target_org_id,
        target_pub_id=target_pub_id,
        pid_threshold=max(2, n_pubs // 2),
    )

    counts = {
        "Organization": n_orgs,
        "Author": n_authors,
        "Publication": n_pubs,
        "Writes": len(writes),
        "Cite": cite_count,
    }
    return MASDataset(db=db, schema=schema, constants=constants, counts=counts)
