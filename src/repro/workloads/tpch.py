"""Synthetic TPC-H workload.

The paper's second dataset is a 376K-tuple TPC-H fragment over the eight
standard tables.  TPC-H's ``dbgen`` is not available offline, so
:func:`generate_tpch` produces a synthetic instance over the same schema shape
(region → nation → supplier/customer, part → partsupp, customer → orders →
lineitem), with the referential fan-outs the Table-2 programs exercise.  The
attribute sets are trimmed to the columns the programs actually touch (the
paper itself abbreviates the remaining attributes as ``X``/``Y``/``Z``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.storage.database import Database
from repro.storage.facts import Fact
from repro.storage.schema import RelationSchema, Schema
from repro.utils.rng import make_rng

_REGION_NAMES = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
_NATION_NAMES = [
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
    "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
    "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA",
    "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
]
_ORDER_STATUSES = ["O", "F", "P"]


def tpch_schema() -> Schema:
    """The (trimmed) TPC-H schema used by the Table-2 programs."""
    return Schema.from_relations(
        [
            RelationSchema.of("Region", "rk:int", "name:str"),
            RelationSchema.of("Nation", "nk:int", "name:str", "rk:int"),
            RelationSchema.of("Supplier", "sk:int", "name:str", "nk:int"),
            RelationSchema.of("Customer", "ck:int", "name:str", "nk:int"),
            RelationSchema.of("Part", "pk:int", "name:str"),
            RelationSchema.of("PartSupp", "sk:int", "pk:int", "availqty:int"),
            RelationSchema.of("Orders", "ok:int", "ck:int", "status:str"),
            RelationSchema.of("LineItem", "ok:int", "sk:int", "pk:int"),
        ],
    )


@dataclass(frozen=True)
class TPCHConstants:
    """The selection constants used by the Table-2 programs."""

    supplier_key_threshold: int
    order_key_threshold: int
    target_nation_key: int
    customer_key_threshold: int


@dataclass
class TPCHDataset:
    """A generated TPC-H instance plus its constants and size summary."""

    db: Database
    schema: Schema
    constants: TPCHConstants
    counts: Dict[str, int]

    @property
    def total_tuples(self) -> int:
        """Total tuple count across the eight tables."""
        return sum(self.counts.values())

    def fresh_db(self) -> Database:
        """A deep copy of the generated instance."""
        return self.db.clone()


def generate_tpch(scale: float = 1.0, seed: int = 0) -> TPCHDataset:
    """Generate a synthetic TPC-H instance.

    ``scale=1.0`` yields roughly 1.3K tuples; the benchmark harness raises the
    scale for the runtime figures.  Thresholds are picked so the selection
    rules of Table 2 seed roughly 10% of the keyed relation.
    """
    rng = make_rng(seed, "tpch", scale)
    n_suppliers = max(10, round(30 * scale))
    n_customers = max(15, round(60 * scale))
    n_parts = max(20, round(80 * scale))
    n_orders = max(25, round(100 * scale))

    schema = tpch_schema()
    db = Database(schema)

    for rk, name in enumerate(_REGION_NAMES, start=1):
        db.insert(Fact("Region", (rk, name), tid=f"r{rk}"))
    n_nations = len(_NATION_NAMES)
    for nk, name in enumerate(_NATION_NAMES, start=1):
        rk = (nk % len(_REGION_NAMES)) + 1
        db.insert(Fact("Nation", (nk, name, rk), tid=f"n{nk}"))

    for sk in range(1, n_suppliers + 1):
        nk = rng.randint(1, n_nations)
        db.insert(Fact("Supplier", (sk, f"Supplier#{sk:05d}", nk), tid=f"s{sk}"))
    for ck in range(1, n_customers + 1):
        nk = rng.randint(1, n_nations)
        db.insert(Fact("Customer", (ck, f"Customer#{ck:05d}", nk), tid=f"c{ck}"))
    for pk in range(1, n_parts + 1):
        db.insert(Fact("Part", (pk, f"Part#{pk:05d}"), tid=f"p{pk}"))

    partsupp: List[tuple[int, int]] = []
    for pk in range(1, n_parts + 1):
        supplier_ids = range(1, n_suppliers + 1)
        for sk in rng.sample(supplier_ids, k=min(n_suppliers, rng.randint(2, 3))):
            qty = rng.randint(1, 9999)
            partsupp.append((sk, pk))
            db.insert(Fact("PartSupp", (sk, pk, qty), tid=f"ps{sk}_{pk}"))

    lineitem_count = 0
    for ok in range(1, n_orders + 1):
        ck = rng.randint(1, n_customers)
        status = rng.choice(_ORDER_STATUSES)
        db.insert(Fact("Orders", (ok, ck, status), tid=f"ord{ok}"))
        for _ in range(rng.randint(2, 4)):
            sk, pk = rng.choice(partsupp)
            if db.insert(Fact("LineItem", (ok, sk, pk), tid=f"li{ok}_{sk}_{pk}")):
                lineitem_count += 1

    constants = TPCHConstants(
        supplier_key_threshold=max(2, n_suppliers // 10 + 1),
        order_key_threshold=max(2, n_orders // 10 + 1),
        target_nation_key=rng.randint(1, n_nations),
        customer_key_threshold=max(2, n_customers // 10 + 1),
    )
    counts = {
        "Region": len(_REGION_NAMES),
        "Nation": n_nations,
        "Supplier": n_suppliers,
        "Customer": n_customers,
        "Part": n_parts,
        "PartSupp": len(partsupp),
        "Orders": n_orders,
        "LineItem": lineitem_count,
    }
    return TPCHDataset(db=db, schema=schema, constants=constants, counts=counts)
