"""The 20 MAS delta programs of Table 1.

Every program is parameterised by the constants the generator selected for the
concrete instance (the most prolific author, the largest organization, the
most cited publication, a publication-id threshold); this mirrors the paper's
use of ``C`` / ``C1`` / ``C2`` placeholders.

Relation-name abbreviations used in the paper map to the full synthetic MAS
schema: ``A`` = Author, ``W`` = Writes, ``P`` = Publication, ``O`` =
Organization, ``C`` = Cite.

Two faithful adjustments (documented in DESIGN.md and EXPERIMENTS.md):

* the heads of program 4 are written ``ΔA(aid, pid)`` / ``ΔO(aid, pid)`` in
  the paper, which does not type-check against the schema; the intended heads
  ``ΔA(aid, n, oid)`` / ``ΔO(oid, n2)`` are used here;
* programs 16–20 are rendered as a cleanly growing cascade chain
  (1, 2, 3, 4 and 5 rules respectively), matching the text's description of a
  5-layer cascade for program 20.
"""

from __future__ import annotations

from typing import Dict

from repro.datalog.delta import DeltaProgram
from repro.exceptions import ExperimentError
from repro.workloads.mas import MASDataset

#: Program identifiers, in the order Table 1 lists them.
MAS_PROGRAM_IDS = tuple(str(number) for number in range(1, 21))

#: Program groups used throughout the evaluation section.
DC_LIKE_PROGRAMS = ("1", "2", "3", "4", "11", "12", "13", "14", "15")
CASCADE_PROGRAMS = ("5", "9", "10", "16", "17", "18", "19", "20")
MIXED_PROGRAMS = ("6", "7", "8")


def _program_sources(dataset: MASDataset) -> Dict[str, str]:
    constants = dataset.constants
    aid = constants.target_author_id
    name = constants.target_author_name
    oid = constants.target_org_id
    pid = constants.target_pub_id
    pid_threshold = constants.pid_threshold

    sources: Dict[str, str] = {}

    sources["1"] = f"""
        delta Author(aid, n, oid) :- Author(aid, n, oid), n = '{name}'.
        delta Writes(aid, pid) :- Writes(aid, pid), aid = {aid}.
    """
    sources["2"] = f"""
        delta Writes(aid, pid) :- Writes(aid, pid), Author(aid, n, oid), aid = {aid}.
    """
    sources["3"] = f"""
        delta Author(aid, n, oid) :- Writes(aid, pid), Author(aid, n, oid), aid = {aid}.
        delta Writes(aid, pid) :- Writes(aid, pid), Author(aid, n, oid), aid = {aid}.
    """
    sources["4"] = f"""
        delta Author(aid, n, oid) :- Organization(oid, n2), Author(aid, n, oid), oid = {oid}.
        delta Organization(oid, n2) :- Organization(oid, n2), Author(aid, n, oid), oid = {oid}.
    """
    sources["5"] = f"""
        delta Author(aid, n, oid) :- Author(aid, n, oid), n = '{name}'.
        delta Writes(aid, pid) :- Writes(aid, pid), delta Author(aid, n, oid).
    """
    sources["6"] = f"""
        delta Author(aid, n, oid) :- Author(aid, n, oid), n = '{name}'.
        delta Writes(aid, pid) :- Writes(aid, pid), delta Author(aid, n, oid).
        delta Publication(pid, t) :- Publication(pid, t), delta Writes(aid, pid), Author(aid, n, oid).
    """
    sources["7"] = f"""
        delta Publication(pid, t) :- Publication(pid, t), pid = {pid}.
        delta Cite(pid, cited) :- Cite(pid, cited), delta Publication(pid, t).
        delta Cite(citing, pid) :- Cite(citing, pid), delta Publication(pid, t).
    """
    sources["8"] = f"""
        delta Author(aid, n, oid) :- Writes(aid, pid), Author(aid, n, oid), aid = {aid}.
        delta Writes(aid, pid) :- Writes(aid, pid), Author(aid, n, oid), aid = {aid}.
        delta Publication(pid, t) :- Publication(pid, t), delta Writes(aid, pid), Author(aid, n, oid).
        delta Publication(pid, t) :- Publication(pid, t), Writes(aid, pid), delta Author(aid, n, oid).
    """
    sources["9"] = f"""
        delta Author(aid, n, oid) :- Author(aid, n, oid), n = '{name}'.
        delta Writes(aid, pid) :- Writes(aid, pid), delta Author(aid, n, oid).
        delta Publication(pid, t) :- Publication(pid, t), delta Writes(aid, pid).
        delta Cite(pid, cited) :- Cite(pid, cited), delta Publication(pid, t), pid < {pid_threshold}.
    """
    sources["10"] = f"""
        delta Organization(oid, n2) :- Organization(oid, n2), oid = {oid}.
        delta Author(aid, n, oid) :- Author(aid, n, oid), delta Organization(oid, n2).
        delta Writes(aid, pid) :- Writes(aid, pid), delta Author(aid, n, oid).
        delta Publication(pid, t) :- Publication(pid, t), delta Writes(aid, pid).
    """

    # Programs 11-15: a single rule with an increasing join chain over
    # Cite -> Publication -> Writes -> Author -> Organization.
    join_chain = [
        "",
        ", Publication(pid, t)",
        ", Publication(pid, t), Writes(aid, pid)",
        ", Publication(pid, t), Writes(aid, pid), Author(aid, n, oid)",
        ", Publication(pid, t), Writes(aid, pid), Author(aid, n, oid), Organization(oid, n2)",
    ]
    for offset, extra in enumerate(join_chain):
        sources[str(11 + offset)] = f"""
            delta Cite(pid, c2) :- Cite(pid, c2){extra}.
        """

    # Programs 16-20: a cascade chain of growing depth seeded by one organization.
    cascade_rules = [
        f"delta Organization(oid, n2) :- Organization(oid, n2), oid = {oid}.",
        "delta Author(aid, n, oid) :- Author(aid, n, oid), delta Organization(oid, n2).",
        "delta Writes(aid, pid) :- Writes(aid, pid), delta Author(aid, n, oid).",
        "delta Publication(pid, t) :- Publication(pid, t), delta Writes(aid, pid).",
        "delta Cite(citing, pid) :- Cite(citing, pid), delta Publication(pid, t).",
    ]
    for offset in range(5):
        sources[str(16 + offset)] = "\n".join(cascade_rules[: offset + 1])

    return sources


def mas_program(dataset: MASDataset, program_id: str | int) -> DeltaProgram:
    """The Table-1 program ``program_id`` (``"1"`` to ``"20"``) for ``dataset``."""
    key = str(program_id)
    sources = _program_sources(dataset)
    if key not in sources:
        raise ExperimentError(
            f"unknown MAS program {program_id!r}; expected one of 1..20",
        )
    program = DeltaProgram.from_text(sources[key])
    program.validate_against_schema(dataset.schema)
    return program


def mas_programs(
    dataset: MASDataset, program_ids: tuple[str, ...] = MAS_PROGRAM_IDS,
) -> Dict[str, DeltaProgram]:
    """All requested Table-1 programs, keyed by their paper number."""
    return {key: mas_program(dataset, key) for key in program_ids}
