"""The six TPC-H delta programs of Table 2.

Relation abbreviations in the paper map to the trimmed synthetic schema:
``PS`` = PartSupp, ``S`` = Supplier, ``LI`` = LineItem, ``O`` = Orders,
``C`` = Customer, ``N`` = Nation, ``P`` = Part.  The paper writes the
non-essential attributes as ``X``/``Y``/``Z``; here they are spelled out with
the trimmed arities of :func:`repro.workloads.tpch.tpch_schema`.
"""

from __future__ import annotations

from typing import Dict

from repro.datalog.delta import DeltaProgram
from repro.exceptions import ExperimentError
from repro.workloads.tpch import TPCHDataset

#: Program identifiers, using the paper's "T-n" labels.
TPCH_PROGRAM_IDS = ("T-1", "T-2", "T-3", "T-4", "T-5", "T-6")


def _program_sources(dataset: TPCHDataset) -> Dict[str, str]:
    constants = dataset.constants
    sk_threshold = constants.supplier_key_threshold
    ok_threshold = constants.order_key_threshold
    nation_key = constants.target_nation_key
    ck_threshold = constants.customer_key_threshold

    sources: Dict[str, str] = {}
    sources["T-1"] = f"""
        delta PartSupp(sk, pk, q) :- PartSupp(sk, pk, q), Supplier(sk, sn, nk), sk < {sk_threshold}.
        delta LineItem(ok, sk, pk) :- LineItem(ok, sk, pk), delta PartSupp(sk, pk2, q).
    """
    sources["T-2"] = f"""
        delta PartSupp(sk, pk, q) :- PartSupp(sk, pk, q), sk < {sk_threshold}.
        delta LineItem(ok, sk, pk) :- LineItem(ok, sk, pk), delta PartSupp(sk, pk2, q).
    """
    sources["T-3"] = f"""
        delta PartSupp(sk, pk, q) :- PartSupp(sk, pk, q), Supplier(sk, sn, nk), Part(pk, pn), sk < {sk_threshold}.
        delta LineItem(ok, sk, pk) :- LineItem(ok, sk, pk), delta PartSupp(sk, pk2, q).
    """
    sources["T-4"] = f"""
        delta LineItem(ok, sk, pk) :- LineItem(ok, sk, pk), ok < {ok_threshold}.
        delta Supplier(sk, sn, nk) :- Supplier(sk, sn, nk), delta LineItem(ok, sk, pk).
        delta Customer(ck, cn, nk) :- Customer(ck, cn, nk), Orders(ok, ck, st), delta LineItem(ok, sk, pk).
    """
    sources["T-5"] = f"""
        delta Nation(nk, nn, rk) :- Nation(nk, nn, rk), nk = {nation_key}.
        delta Supplier(sk, sn, nk) :- Supplier(sk, sn, nk), delta Nation(nk, nn, rk), Customer(ck, cn, nk).
        delta Customer(ck, cn, nk) :- Customer(ck, cn, nk), delta Nation(nk, nn, rk), Supplier(sk, sn, nk).
    """
    sources["T-6"] = f"""
        delta Orders(ok, ck, st) :- Orders(ok, ck, st), Customer(ck, cn, nk), ok < {ck_threshold}.
        delta PartSupp(sk, pk, q) :- PartSupp(sk, pk, q), Supplier(sk, sn, nk), sk < {ck_threshold}.
        delta LineItem(ok, sk, pk) :- LineItem(ok, sk, pk), delta Orders(ok, ck, st).
        delta LineItem(ok, sk, pk) :- LineItem(ok, sk, pk), delta PartSupp(sk, pk2, q).
    """
    return sources


def tpch_program(dataset: TPCHDataset, program_id: str) -> DeltaProgram:
    """The Table-2 program ``program_id`` (``"T-1"`` to ``"T-6"``) for ``dataset``."""
    sources = _program_sources(dataset)
    if program_id not in sources:
        raise ExperimentError(
            f"unknown TPC-H program {program_id!r}; expected one of {TPCH_PROGRAM_IDS}",
        )
    program = DeltaProgram.from_text(sources[program_id])
    program.validate_against_schema(dataset.schema)
    return program


def tpch_programs(
    dataset: TPCHDataset, program_ids: tuple[str, ...] = TPCH_PROGRAM_IDS,
) -> Dict[str, DeltaProgram]:
    """All requested Table-2 programs, keyed by their paper label."""
    return {key: tpch_program(dataset, key) for key in program_ids}
