"""Complexity gadgets: the vertex-cover reductions of Proposition 4.2."""

from repro.complexity.vertex_cover import (
    independent_instance_from_graph,
    step_instance_from_graph,
    cover_from_result,
    minimum_vertex_cover_bruteforce,
    random_graph,
)

__all__ = [
    "independent_instance_from_graph",
    "step_instance_from_graph",
    "cover_from_result",
    "minimum_vertex_cover_bruteforce",
    "random_graph",
]
