"""The vertex-cover reductions behind Proposition 4.2.

The paper proves NP-hardness of deciding ``|Ind(P, D)| ≤ k`` and
``|Step(P, D)| ≤ k`` by reducing minimum vertex cover to the two semantics.
This module makes the reduction executable: it builds the database and delta
program of the proof from any (small) undirected graph, converts repair
results back to vertex covers, and provides a brute-force minimum vertex cover
for cross-checking.  The test suite uses it to validate the independent-
semantics solver and the exhaustive step search against a classical problem
with known answers.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable

import networkx as nx

from repro.core.semantics.base import RepairResult
from repro.datalog.delta import DeltaProgram
from repro.datalog.parser import parse_program
from repro.storage.database import Database
from repro.storage.facts import Fact
from repro.storage.schema import Schema
from repro.utils.rng import make_rng

#: Relation names used by the reduction (E = edges, VC = vertices).
EDGE_RELATION = "E"
VERTEX_RELATION = "VC"


def _reduction_schema() -> Schema:
    return Schema.from_arities({EDGE_RELATION: 2, VERTEX_RELATION: 1})


def _reduction_database(graph: "nx.Graph") -> Database:
    """The database of the reduction: E(u,v), E(v,u) per edge and VC(v) per vertex."""
    db = Database(_reduction_schema())
    for vertex in graph.nodes:
        db.insert(Fact(VERTEX_RELATION, (vertex,), tid=f"v{vertex}"))
    for u, v in graph.edges:
        db.insert(Fact(EDGE_RELATION, (u, v), tid=f"e{u}_{v}"))
        db.insert(Fact(EDGE_RELATION, (v, u), tid=f"e{v}_{u}"))
    return db


def independent_instance_from_graph(graph: "nx.Graph") -> tuple[Database, DeltaProgram]:
    """The (database, program) pair of the independent-semantics reduction.

    Rules (2) and (3) make deleting edge tuples pointless, so the minimum
    stabilizing set corresponds to a minimum vertex cover.
    """
    program = DeltaProgram(
        parse_program(
            """
            delta VC(x) :- E(x, y), VC(x), VC(y).
            delta VC(x) :- VC(x), delta E(x, y).
            delta VC(y) :- VC(y), delta E(x, y).
            """
        ),
    )
    return _reduction_database(graph), program


def step_instance_from_graph(graph: "nx.Graph") -> tuple[Database, DeltaProgram]:
    """The (database, program) pair of the step-semantics reduction (rule (1) only)."""
    program = DeltaProgram(
        parse_program("delta VC(x) :- E(x, y), VC(x), VC(y)."),
    )
    return _reduction_database(graph), program


def cover_from_result(result: RepairResult | Iterable[Fact]) -> frozenset:
    """Extract the vertex cover encoded by a repair result (its VC deletions)."""
    deleted = result.deleted if isinstance(result, RepairResult) else frozenset(result)
    return frozenset(
        item.values[0] for item in deleted if item.relation == VERTEX_RELATION
    )


def is_vertex_cover(graph: "nx.Graph", cover: Iterable) -> bool:
    """True when every edge of ``graph`` has an endpoint in ``cover``."""
    chosen = set(cover)
    return all(u in chosen or v in chosen for u, v in graph.edges)


def minimum_vertex_cover_bruteforce(graph: "nx.Graph", max_nodes: int = 20) -> frozenset:
    """The exact minimum vertex cover by exhaustive enumeration (small graphs only)."""
    nodes = list(graph.nodes)
    if len(nodes) > max_nodes:
        raise ValueError(
            f"brute-force vertex cover refused: {len(nodes)} nodes exceeds {max_nodes}",
        )
    for size in range(len(nodes) + 1):
        for candidate in combinations(nodes, size):
            if is_vertex_cover(graph, candidate):
                return frozenset(candidate)
    return frozenset(nodes)


def random_graph(n_nodes: int, edge_probability: float, seed: int | None = 0) -> "nx.Graph":
    """A seeded Erdős–Rényi graph used by tests and the ablation benchmarks."""
    rng = make_rng(seed, "vertex-cover-graph")
    graph = nx.Graph()
    graph.add_nodes_from(range(n_nodes))
    for u, v in combinations(range(n_nodes), 2):
        if rng.random() < edge_probability:
            graph.add_edge(u, v)
    return graph
