"""Branch-and-bound Min-Ones SAT solver.

Min-Ones SAT asks for a satisfying assignment with the minimum number of
variables set to True.  Algorithm 1 of the paper reduces independent semantics
to this problem (the true variables are the tuples to delete); the paper uses
Z3's MaxSMT engine, which is unavailable offline, so this module provides the
substitute described in DESIGN.md.

Strategy
--------

1. Simplify the formula (tautology removal + subsumption) and split it into
   variable-connected components; minimum solutions add up across components.
2. Solve each component exactly by DPLL-style branch and bound:
   unit propagation, most-frequent-positive-literal branching (False branch
   first), and pruning with a lower bound counting variable-disjoint
   all-positive unsatisfied clauses.
3. Components larger than ``exact_variable_limit`` (or exceeding the node
   budget) fall back to a greedy hitting-set heuristic.  The greedy answer is
   still a *satisfying* assignment — hence a stabilizing set — just not
   guaranteed minimum (the same soundness remark the paper makes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

from repro.exceptions import UnsatisfiableError
from repro.solver.cnf import CNF, literal_is_positive, literal_variable


@dataclass
class SolverStats:
    """Counters describing one :func:`solve_min_ones` run."""

    components: int = 0
    exact_components: int = 0
    greedy_components: int = 0
    nodes_explored: int = 0
    propagations: int = 0

    def merge(self, other: "SolverStats") -> None:
        """Accumulate counters from a per-component run."""
        self.components += other.components
        self.exact_components += other.exact_components
        self.greedy_components += other.greedy_components
        self.nodes_explored += other.nodes_explored
        self.propagations += other.propagations


@dataclass
class MinOnesResult:
    """The outcome of a Min-Ones solve.

    ``assignment`` is complete over the formula's variables; ``true_variables``
    is the set of variables assigned True (the deletions, in the repair
    setting); ``optimal`` is False when any component used the greedy fallback.
    """

    assignment: Dict[int, bool]
    true_variables: frozenset[int]
    optimal: bool
    stats: SolverStats = field(default_factory=SolverStats)

    @property
    def cost(self) -> int:
        """Number of variables set to True."""
        return len(self.true_variables)


class _ComponentSolver:
    """Exact branch-and-bound search over a single connected component."""

    def __init__(self, cnf: CNF, node_limit: int) -> None:
        self.clauses: List[FrozenSet[int]] = list(cnf.clauses)
        self.variables = sorted(cnf.variables())
        self.node_limit = node_limit
        self.nodes = 0
        self.propagations = 0
        self.best_cost: Optional[int] = None
        self.best_assignment: Dict[int, bool] = {}
        self.aborted = False

    # -- helpers ------------------------------------------------------------------

    def _clause_state(self, clause: FrozenSet[int], assignment: Dict[int, bool]):
        """Return (satisfied, unassigned_literals) for a clause."""
        unassigned = []
        for literal in clause:
            variable = literal_variable(literal)
            if variable in assignment:
                if literal_is_positive(literal) == assignment[variable]:
                    return True, []
            else:
                unassigned.append(literal)
        return False, unassigned

    def _propagate(self, assignment: Dict[int, bool]) -> Optional[Dict[int, bool]]:
        """Unit propagation; returns None on conflict."""
        changed = True
        current = dict(assignment)
        while changed:
            changed = False
            for clause in self.clauses:
                satisfied, unassigned = self._clause_state(clause, current)
                if satisfied:
                    continue
                if not unassigned:
                    return None
                if len(unassigned) == 1:
                    literal = unassigned[0]
                    current[literal_variable(literal)] = literal_is_positive(literal)
                    self.propagations += 1
                    changed = True
        return current

    def _lower_bound(self, assignment: Dict[int, bool]) -> int:
        """Variable-disjoint unsatisfied clauses whose open literals are all positive.

        Each such clause requires at least one additional True variable, and
        because they share no variables the requirements add up.
        """
        used_variables: set[int] = set()
        bound = 0
        for clause in self.clauses:
            satisfied, unassigned = self._clause_state(clause, assignment)
            if satisfied or not unassigned:
                continue
            if any(not literal_is_positive(literal) for literal in unassigned):
                continue
            clause_variables = {literal_variable(literal) for literal in unassigned}
            if clause_variables & used_variables:
                continue
            used_variables |= clause_variables
            bound += 1
        return bound

    def _pick_branch_variable(self, assignment: Dict[int, bool]) -> Optional[int]:
        """The unassigned variable occurring positively in most unsatisfied clauses."""
        scores: Dict[int, int] = {}
        for clause in self.clauses:
            satisfied, unassigned = self._clause_state(clause, assignment)
            if satisfied:
                continue
            for literal in unassigned:
                if literal_is_positive(literal):
                    scores[literal_variable(literal)] = (
                        scores.get(literal_variable(literal), 0) + 1
                    )
        if scores:
            return max(scores, key=lambda variable: (scores[variable], -variable))
        # No positive literal is open in any unsatisfied clause: branch on a
        # variable of some unsatisfied clause (its False branch satisfies the
        # negative literal at zero cost).
        for clause in self.clauses:
            satisfied, unassigned = self._clause_state(clause, assignment)
            if not satisfied and unassigned:
                return literal_variable(unassigned[0])
        return None

    def _cost(self, assignment: Dict[int, bool]) -> int:
        return sum(1 for value in assignment.values() if value)

    # -- search --------------------------------------------------------------------

    def solve(self, initial_best: Optional[Dict[int, bool]] = None):
        """Run the search; returns (assignment, optimal_flag)."""
        if initial_best is not None:
            self.best_assignment = dict(initial_best)
            self.best_cost = self._cost(initial_best)
        self._search({})
        if self.best_cost is None:
            raise UnsatisfiableError("component has no satisfying assignment")
        complete = dict(self.best_assignment)
        for variable in self.variables:
            complete.setdefault(variable, False)
        return complete, not self.aborted

    def _search(self, assignment: Dict[int, bool]) -> None:
        if self.aborted:
            return
        self.nodes += 1
        if self.nodes > self.node_limit:
            self.aborted = True
            return
        propagated = self._propagate(assignment)
        if propagated is None:
            return
        cost = self._cost(propagated)
        bound = cost + self._lower_bound(propagated)
        if self.best_cost is not None and bound >= self.best_cost:
            return
        # Fully satisfied with everything else False?
        remaining_unsat = [
            clause
            for clause in self.clauses
            if not self._clause_state(clause, propagated)[0]
        ]
        if not remaining_unsat:
            if self.best_cost is None or cost < self.best_cost:
                self.best_cost = cost
                self.best_assignment = dict(propagated)
            return
        variable = self._pick_branch_variable(propagated)
        if variable is None:
            # Clauses remain unsatisfied but have no open literal: dead end.
            return
        for value in (False, True):
            branched = dict(propagated)
            branched[variable] = value
            self._search(branched)


def _find_any_model(cnf: CNF) -> Optional[Dict[int, bool]]:
    """Plain DPLL searching for *any* model, preferring False assignments.

    Used when the hitting-set greedy paints itself into a corner (it never
    revisits a choice); preferring the False branch keeps the incidental cost
    of the model low.  Returns None when the formula is unsatisfiable.
    """
    variables = sorted(cnf.variables())

    def search(assignment: Dict[int, bool]) -> Optional[Dict[int, bool]]:
        # Unit propagation.
        changed = True
        while changed:
            changed = False
            for clause in cnf.clauses:
                unassigned = []
                satisfied = False
                for literal in clause:
                    variable = literal_variable(literal)
                    if variable in assignment:
                        if literal_is_positive(literal) == assignment[variable]:
                            satisfied = True
                            break
                    else:
                        unassigned.append(literal)
                if satisfied:
                    continue
                if not unassigned:
                    return None
                if len(unassigned) == 1:
                    literal = unassigned[0]
                    assignment[literal_variable(literal)] = literal_is_positive(literal)
                    changed = True
        branch_variable = next(
            (variable for variable in variables if variable not in assignment), None,
        )
        if branch_variable is None:
            return assignment if cnf.is_satisfied_by(assignment) else None
        for value in (False, True):
            attempt = search({**assignment, branch_variable: value})
            if attempt is not None:
                return attempt
        return None

    return search({})


def _greedy_component(cnf: CNF) -> Dict[int, bool]:
    """Greedy hitting-set heuristic; always returns a satisfying assignment.

    Clauses produced by the boolean-provenance construction contain at least
    one positive literal (the guard tuple of their rule), so repeatedly
    choosing the positive variable that fixes the most unsatisfied clauses
    terminates with a model.  On arbitrary CNFs the greedy can wedge itself; it
    then falls back to a plain DPLL model search.
    """
    assignment: Dict[int, bool] = {}
    stuck = False
    for _ in range(cnf.clause_count + cnf.variable_count + 1):
        unsatisfied = cnf.unsatisfied_clauses(assignment)
        if not unsatisfied:
            break
        scores: Dict[int, int] = {}
        for clause in unsatisfied:
            for literal in clause:
                variable = literal_variable(literal)
                if literal_is_positive(literal) and not assignment.get(variable, False):
                    scores[variable] = scores.get(variable, 0) + 1
        if not scores:
            stuck = True
            break
        chosen = max(scores, key=lambda variable: (scores[variable], -variable))
        assignment[chosen] = True
    for variable in cnf.variables():
        assignment.setdefault(variable, False)
    if stuck or not cnf.is_satisfied_by(assignment):
        model = _find_any_model(cnf)
        if model is None:
            raise UnsatisfiableError("component has no satisfying assignment")
        for variable in cnf.variables():
            model.setdefault(variable, False)
        return model
    return assignment


def solve_min_ones(
    cnf: CNF,
    exact_variable_limit: int = 2000,
    node_limit: int = 200_000,
) -> MinOnesResult:
    """Solve Min-Ones SAT for ``cnf``.

    Parameters
    ----------
    cnf:
        The formula; an empty formula yields the all-False (cost 0) model.
    exact_variable_limit:
        Components with more variables than this use the greedy fallback.
    node_limit:
        Branch-and-bound node budget per component; exceeding it degrades that
        component to its best-known (greedy-seeded) answer and marks the
        overall result as non-optimal.
    """
    stats = SolverStats()
    simplified = cnf.simplified()
    assignment: Dict[int, bool] = {variable: False for variable in cnf.variables()}
    optimal = True
    for component in simplified.components():
        stats.components += 1
        greedy = _greedy_component(component)
        if component.variable_count > exact_variable_limit:
            stats.greedy_components += 1
            optimal = False
            assignment.update(greedy)
            continue
        solver = _ComponentSolver(component, node_limit=node_limit)
        solved, component_optimal = solver.solve(initial_best=greedy)
        stats.nodes_explored += solver.nodes
        stats.propagations += solver.propagations
        if component_optimal:
            stats.exact_components += 1
        else:
            stats.greedy_components += 1
            optimal = False
        assignment.update(solved)
    true_variables = frozenset(
        variable for variable, value in assignment.items() if value
    )
    result = MinOnesResult(
        assignment=assignment,
        true_variables=true_variables,
        optimal=optimal,
        stats=stats,
    )
    if not cnf.is_satisfied_by(result.assignment):
        raise UnsatisfiableError("solver produced a non-model (internal error)")
    return result
