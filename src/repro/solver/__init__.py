"""Min-Ones SAT solving.

The paper's Algorithm 1 hands the negated Boolean provenance to the Z3 MaxSMT
engine and asks for a satisfying assignment with the minimum number of
"deleted" variables set to true (the *Min-Ones SAT* problem).  Z3 is not
available offline, so this package implements the solver from scratch:

* :mod:`repro.solver.cnf` — a small CNF container with simplification and
  connected-component decomposition;
* :mod:`repro.solver.minones` — an exact branch-and-bound Min-Ones solver with
  unit propagation and a greedy hitting-set fallback for oversized components;
* :mod:`repro.solver.bruteforce` — exhaustive minimisation for tiny formulas,
  used by the test suite to validate the branch-and-bound solver.

The substitution preserves the behaviour the paper relies on: an exact
minimum-cardinality model at evaluation scale, and — like any satisfying
assignment — a sound stabilizing set even when the greedy fallback is used.
"""

from repro.solver.cnf import CNF, SignedLiteral
from repro.solver.minones import MinOnesResult, SolverStats, solve_min_ones
from repro.solver.bruteforce import solve_min_ones_bruteforce

__all__ = [
    "CNF",
    "SignedLiteral",
    "MinOnesResult",
    "SolverStats",
    "solve_min_ones",
    "solve_min_ones_bruteforce",
]
