"""Exhaustive Min-Ones solver for tiny formulas.

Used by the test suite (and by the step-semantics exhaustive search) to
validate the branch-and-bound solver: it enumerates candidate True-sets in
increasing cardinality and returns the first satisfying one, which is optimal
by construction.  Exponential — only call it when the variable count is small
(the default guard refuses more than 22 variables).
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict

from repro.exceptions import SolverError, UnsatisfiableError
from repro.solver.cnf import CNF
from repro.solver.minones import MinOnesResult, SolverStats


def solve_min_ones_bruteforce(cnf: CNF, max_variables: int = 22) -> MinOnesResult:
    """Enumerate True-sets by increasing size and return the first model found."""
    variables = sorted(cnf.variables())
    if len(variables) > max_variables:
        raise SolverError(
            f"brute force refused: {len(variables)} variables exceeds the limit of "
            f"{max_variables}",
        )
    for size in range(len(variables) + 1):
        for chosen in combinations(variables, size):
            assignment: Dict[int, bool] = {variable: False for variable in variables}
            for variable in chosen:
                assignment[variable] = True
            if cnf.is_satisfied_by(assignment):
                return MinOnesResult(
                    assignment=assignment,
                    true_variables=frozenset(chosen),
                    optimal=True,
                    stats=SolverStats(components=1, exact_components=1),
                )
    raise UnsatisfiableError("no satisfying assignment exists")
