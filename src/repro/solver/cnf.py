"""CNF formulas over integer variables.

The Min-Ones solver works over plain integer variables; clauses are frozensets
of *signed literals* (``+v`` for the positive literal of variable ``v``, ``-v``
for its negation).  :class:`CNF` provides the bookkeeping the solver needs:
clause normalisation, tautology elimination, subsumption, and decomposition of
the formula into variable-connected components so each can be minimised
independently (costs are additive across components).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from repro.exceptions import SolverError

#: A signed literal: +v is the positive literal of variable v, -v its negation.
SignedLiteral = int


def literal_variable(literal: SignedLiteral) -> int:
    """The variable of a signed literal."""
    return abs(literal)


def literal_is_positive(literal: SignedLiteral) -> bool:
    """True for positive literals."""
    return literal > 0


@dataclass
class CNF:
    """A CNF formula: a list of clauses, each a frozenset of signed literals."""

    clauses: List[FrozenSet[SignedLiteral]] = field(default_factory=list)

    # -- construction ----------------------------------------------------------

    def add_clause(self, literals: Iterable[SignedLiteral]) -> None:
        """Add a clause; raises :class:`SolverError` for empty clauses or var 0."""
        clause = frozenset(int(literal) for literal in literals)
        if not clause:
            raise SolverError("cannot add an empty clause (formula is unsatisfiable)")
        if 0 in clause:
            raise SolverError("0 is not a valid literal")
        self.clauses.append(clause)

    @classmethod
    def from_clauses(cls, clauses: Iterable[Iterable[SignedLiteral]]) -> "CNF":
        """Build a CNF from an iterable of literal iterables."""
        cnf = cls()
        for clause in clauses:
            cnf.add_clause(clause)
        return cnf

    # -- inspection -------------------------------------------------------------

    def variables(self) -> frozenset[int]:
        """All variables mentioned by the formula."""
        return frozenset(
            literal_variable(literal) for clause in self.clauses for literal in clause
        )

    @property
    def clause_count(self) -> int:
        """Number of clauses."""
        return len(self.clauses)

    @property
    def variable_count(self) -> int:
        """Number of distinct variables."""
        return len(self.variables())

    def is_satisfied_by(self, assignment: Dict[int, bool]) -> bool:
        """True when ``assignment`` (complete over the formula's variables) satisfies it.

        Unassigned variables default to False — the natural default for
        Min-Ones, where a variable only costs when set to True.
        """
        for clause in self.clauses:
            satisfied = False
            for literal in clause:
                value = assignment.get(literal_variable(literal), False)
                if literal_is_positive(literal) == value:
                    satisfied = True
                    break
            if not satisfied:
                return False
        return True

    def unsatisfied_clauses(self, assignment: Dict[int, bool]) -> List[FrozenSet[int]]:
        """The clauses not satisfied by ``assignment`` (unassigned = False)."""
        failing = []
        for clause in self.clauses:
            if not any(
                literal_is_positive(literal)
                == assignment.get(literal_variable(literal), False)
                for literal in clause
            ):
                failing.append(clause)
        return failing

    # -- simplification -----------------------------------------------------------

    def simplified(self) -> "CNF":
        """Return a logically equivalent formula with tautologies and subsumed clauses removed."""
        cleaned: List[FrozenSet[int]] = []
        for clause in self.clauses:
            if any(-literal in clause for literal in clause):
                continue  # tautology: contains both x and ¬x
            cleaned.append(clause)
        # Subsumption: drop any clause that is a superset of another clause.
        cleaned.sort(key=len)
        kept: List[FrozenSet[int]] = []
        for clause in cleaned:
            if any(other <= clause for other in kept):
                continue
            kept.append(clause)
        return CNF(kept)

    # -- decomposition -------------------------------------------------------------

    def components(self) -> List["CNF"]:
        """Split into variable-connected components.

        Two clauses belong to the same component when they share a variable
        (transitively).  Minimum-ones solutions of the components are
        independent, so the solver minimises each separately and unions them.
        """
        parent: Dict[int, int] = {}

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a: int, b: int) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        for clause in self.clauses:
            variables = [literal_variable(literal) for literal in clause]
            for variable in variables:
                parent.setdefault(variable, variable)
            for variable in variables[1:]:
                union(variables[0], variable)

        grouped: Dict[int, List[FrozenSet[int]]] = {}
        for clause in self.clauses:
            root = find(literal_variable(next(iter(clause))))
            grouped.setdefault(root, []).append(clause)
        return [CNF(clauses) for clauses in grouped.values()]

    def __len__(self) -> int:
        return len(self.clauses)

    def __str__(self) -> str:
        def render(clause: FrozenSet[int]) -> str:
            parts = []
            for literal in sorted(clause, key=abs):
                parts.append(f"x{literal}" if literal > 0 else f"¬x{-literal}")
            return "(" + " ∨ ".join(parts) + ")"

        return " ∧ ".join(render(clause) for clause in self.clauses) or "⊤"


@dataclass(frozen=True)
class FactVariableMap:
    """Bidirectional mapping between facts (or any hashable keys) and SAT variables."""

    to_variable: Tuple[Tuple[object, int], ...]

    @classmethod
    def from_keys(cls, keys: Sequence[object]) -> "FactVariableMap":
        """Assign variables 1..n to ``keys`` in the given order."""
        return cls(tuple((key, index + 1) for index, key in enumerate(keys)))

    @property
    def key_to_var(self) -> Dict[object, int]:
        """Mapping from key to variable."""
        return dict(self.to_variable)

    @property
    def var_to_key(self) -> Dict[int, object]:
        """Mapping from variable to key."""
        return {variable: key for key, variable in self.to_variable}

    def __len__(self) -> int:
        return len(self.to_variable)
