""""After delete, delete" SQL triggers as delta rules.

The paper compares its semantics against the subset of SQL triggers that
delete tuples in response to another deletion.  :class:`DeleteTrigger`
describes such a trigger declaratively; the trigger *simulator* (with the
PostgreSQL alphabetical-order and MySQL creation-order firing policies) lives
in :mod:`repro.baselines.trigger_engine`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.datalog.ast import Atom, Comparison, Rule
from repro.datalog.delta import DeltaProgram
from repro.exceptions import RuleValidationError


@dataclass(frozen=True)
class DeleteTrigger:
    """A row-level "after delete on <watched>, delete <target>" trigger.

    Parameters
    ----------
    name:
        Trigger name — PostgreSQL fires same-event triggers alphabetically by
        this name, MySQL by creation order.
    watched:
        The atom whose deletion fires the trigger (becomes a delta body atom).
    target:
        The atom to delete when the trigger fires (becomes the head and its
        base guard atom).
    condition:
        Additional base atoms joined in the trigger's WHEN condition.
    comparisons:
        Comparison predicates of the WHEN condition.
    """

    name: str
    watched: Atom
    target: Atom
    condition: tuple[Atom, ...] = ()
    comparisons: tuple[Comparison, ...] = ()

    def __post_init__(self) -> None:
        if self.watched.is_delta or self.target.is_delta:
            raise RuleValidationError(
                f"trigger {self.name!r}: watched/target atoms must be base atoms",
            )
        for atom in self.condition:
            if atom.is_delta:
                raise RuleValidationError(
                    f"trigger {self.name!r}: condition atoms must be base atoms",
                )

    def to_delta_rule(self) -> Rule:
        """The delta rule this trigger corresponds to."""
        head = self.target.as_delta()
        body = (self.target, *self.condition, self.watched.as_delta())
        return Rule(head, body, self.comparisons, name=self.name)

    def __str__(self) -> str:
        return (
            f"CREATE TRIGGER {self.name} AFTER DELETE ON {self.watched.relation} "
            f"DELETE {self.target}"
        )


def program_from_triggers(triggers: Iterable[DeleteTrigger]) -> DeltaProgram:
    """Compile a set of triggers into a delta program (declaration order preserved)."""
    return DeltaProgram.from_rules(trigger.to_delta_rule() for trigger in triggers)


def triggers_from_program(program: DeltaProgram) -> list[DeleteTrigger]:
    """Best-effort inverse translation: delta rules with exactly one delta body atom.

    Rules without a delta body atom (seed/selection rules) are skipped — the
    trigger simulator treats them as the initial deletion events instead.
    """
    triggers: list[DeleteTrigger] = []
    for index, rule in enumerate(program):
        delta_atoms = [atom for atom in rule.body if atom.is_delta]
        if len(delta_atoms) != 1:
            continue
        guard = rule.guard_atom()
        if guard is None:
            continue
        condition = tuple(
            atom for atom in rule.body if not atom.is_delta and atom is not guard
        )
        triggers.append(
            DeleteTrigger(
                name=rule.name or f"trg_{index}",
                watched=delta_atoms[0].as_base(),
                target=guard,
                condition=condition,
                comparisons=rule.comparisons,
            ),
        )
    return triggers
