"""Constraint front-ends compiled to delta rules (Section 3.6 of the paper).

Delta rules can express several classic constraint formalisms; this package
provides first-class objects for each of them together with their translation
to delta rules:

* :class:`~repro.constraints.denial.DenialConstraint` — denial constraints
  (DCs), with the "any tuple of the violating set" reading under independent
  semantics and the per-atom reading under step semantics;
* :class:`~repro.constraints.triggers.DeleteTrigger` — the "after delete,
  delete" subset of SQL triggers;
* :class:`~repro.constraints.causal.CausalRule` — causal rules without
  recursion (Roy & Suciu style cascade deletions);
* :class:`~repro.constraints.domain.DomainConstraint` — domain (attribute
  range / allowed value) constraints.
"""

from repro.constraints.denial import DenialConstraint
from repro.constraints.triggers import DeleteTrigger
from repro.constraints.causal import CausalRule
from repro.constraints.domain import DomainConstraint

__all__ = [
    "DenialConstraint",
    "DeleteTrigger",
    "CausalRule",
    "DomainConstraint",
]
