"""Denial constraints and their translation to delta rules.

A denial constraint (DC) forbids a combination of tuples:

.. math::

    \\forall \\bar x_1 .. \\bar x_m\\;
    \\neg ( R_1(\\bar x_1) \\wedge ... \\wedge R_m(\\bar x_m) \\wedge \\varphi )

where ``φ`` is a conjunction of comparisons.  Section 3.6 of the paper shows
two delta-rule encodings:

* **single-head** — one rule whose head deletes (say) the first atom.  Under
  independent semantics this yields the classic minimum DC repair, because the
  head is irrelevant to ``Ind(P, D)``;
* **per-atom** — one rule per atom, each deleting that atom.  Under step
  semantics this lets the repair delete *any one* tuple of each violating set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.datalog.ast import Atom, Comparison, Rule
from repro.datalog.delta import DeltaProgram
from repro.exceptions import RuleValidationError


@dataclass(frozen=True)
class DenialConstraint:
    """A denial constraint over base atoms plus comparison predicates."""

    atoms: tuple[Atom, ...]
    comparisons: tuple[Comparison, ...] = ()
    name: str = "dc"

    def __post_init__(self) -> None:
        if not self.atoms:
            raise RuleValidationError("a denial constraint needs at least one atom")
        for atom in self.atoms:
            if atom.is_delta:
                raise RuleValidationError(
                    f"denial constraint {self.name!r}: atoms must be base atoms, got {atom}",
                )

    # -- translations ----------------------------------------------------------

    def to_delta_rule(self, head_index: int = 0) -> Rule:
        """The single-head encoding: delete the atom at ``head_index`` when violated."""
        if not 0 <= head_index < len(self.atoms):
            raise RuleValidationError(
                f"denial constraint {self.name!r}: head index {head_index} out of range",
            )
        head = self.atoms[head_index].as_delta()
        return Rule(head, self.atoms, self.comparisons, name=f"{self.name}_h{head_index}")

    def to_delta_rules_per_atom(self) -> tuple[Rule, ...]:
        """The per-atom encoding: one rule per atom of the constraint."""
        return tuple(self.to_delta_rule(index) for index in range(len(self.atoms)))

    def to_program(self, per_atom: bool = False) -> DeltaProgram:
        """Wrap the encoding in a validated delta program."""
        rules = self.to_delta_rules_per_atom() if per_atom else (self.to_delta_rule(),)
        return DeltaProgram.from_rules(rules)

    # -- helpers -----------------------------------------------------------------

    def relations(self) -> frozenset[str]:
        """Relations mentioned by the constraint."""
        return frozenset(atom.relation for atom in self.atoms)

    def __str__(self) -> str:
        parts = [str(atom) for atom in self.atoms]
        parts += [str(comparison) for comparison in self.comparisons]
        return f"¬({' ∧ '.join(parts)})"


def program_from_denial_constraints(
    constraints: Iterable[DenialConstraint],
    per_atom: bool = False,
) -> DeltaProgram:
    """Combine several DCs into one delta program (as in the HoloClean experiments)."""
    rules: list[Rule] = []
    for constraint in constraints:
        if per_atom:
            rules.extend(constraint.to_delta_rules_per_atom())
        else:
            rules.append(constraint.to_delta_rule())
    return DeltaProgram.from_rules(rules)


def violating_sets(db, constraint: DenialConstraint) -> list[tuple]:
    """All tuple combinations of ``db`` violating the constraint.

    Used by the HoloClean comparison (Table 5) to count residual violations
    before and after a repair.
    """
    from repro.datalog.evaluation import find_assignments

    rule = constraint.to_delta_rule()
    return [assignment.base_facts() for assignment in find_assignments(db, rule)]
