"""Causal rules (Roy & Suciu-style cascade deletions) as delta rules.

Causal dependencies start from an *intervention* — an initial tuple deletion —
and propagate it through foreign-key-like dependencies.  A causal rule says
"when a tuple matching ``cause`` is deleted and the ``context`` still holds,
delete ``effect``".  The delta-rule encoding is identical to a delete trigger;
the distinction the paper draws is about intent (explanations for query
answers) and about the initialisation: interventions become deletion-request
rules (the running example's rule (0)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.datalog.ast import Atom, Comparison, Rule
from repro.datalog.delta import DeltaProgram, deletion_request_rule
from repro.exceptions import RuleValidationError
from repro.storage.facts import Fact


@dataclass(frozen=True)
class CausalRule:
    """A causal dependency: deleting ``cause`` (with ``context``) deletes ``effect``."""

    cause: Atom
    effect: Atom
    context: tuple[Atom, ...] = ()
    comparisons: tuple[Comparison, ...] = ()
    name: str = "causal"

    def __post_init__(self) -> None:
        if self.cause.is_delta or self.effect.is_delta:
            raise RuleValidationError(
                f"causal rule {self.name!r}: cause/effect must be base atoms",
            )

    def to_delta_rule(self) -> Rule:
        """The delta-rule encoding of the dependency."""
        head = self.effect.as_delta()
        body = (self.effect, *self.context, self.cause.as_delta())
        return Rule(head, body, self.comparisons, name=self.name)

    def __str__(self) -> str:
        return f"delete({self.cause}) ⇒ delete({self.effect})"


def program_from_causal_rules(
    rules: Iterable[CausalRule],
    interventions: Sequence[Fact] = (),
) -> DeltaProgram:
    """Compile causal rules plus intervention tuples into a delta program.

    Each intervention becomes a deletion-request rule so that every semantics
    starts the cascade from it.
    """
    delta_rules = [rule.to_delta_rule() for rule in rules]
    delta_rules += [
        deletion_request_rule(item, name=f"intervention_{index}")
        for index, item in enumerate(interventions)
    ]
    return DeltaProgram.from_rules(delta_rules)
