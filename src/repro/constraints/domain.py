"""Domain constraints as delta rules.

A domain constraint restricts the admissible values of one attribute of a
relation (an allowed set, or a closed interval).  Tuples outside the domain
are deleted; the encoding is a selection rule per forbidden region, following
the paper's remark that delta rules capture domain constraints (Section 3.6,
citing Deutch & Frost).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.datalog.ast import Atom, Comparison, Constant, Rule, Variable
from repro.datalog.delta import DeltaProgram
from repro.exceptions import RuleValidationError
from repro.storage.schema import RelationSchema


@dataclass(frozen=True)
class DomainConstraint:
    """Admissible values for one attribute of one relation.

    Exactly one of ``allowed_values`` / (``minimum``, ``maximum``) must be
    provided.  ``allowed_values`` keeps only tuples whose attribute is in the
    set; an interval keeps tuples with ``minimum <= value <= maximum`` (either
    bound may be omitted).
    """

    relation: RelationSchema
    attribute: str
    allowed_values: tuple[Any, ...] | None = None
    minimum: Any | None = None
    maximum: Any | None = None
    name: str = "domain"

    def __post_init__(self) -> None:
        has_set = self.allowed_values is not None
        has_range = self.minimum is not None or self.maximum is not None
        if has_set == has_range:
            raise RuleValidationError(
                f"domain constraint {self.name!r}: provide either allowed_values or "
                "a minimum/maximum range (not both, not neither)",
            )
        self.relation.position_of(self.attribute)  # raises for unknown attributes

    def _head_and_guard(self) -> tuple[Atom, Atom, Variable]:
        variables = tuple(Variable(f"x{i}") for i in range(self.relation.arity))
        position = self.relation.position_of(self.attribute)
        head = Atom(self.relation.name, variables, is_delta=True)
        guard = Atom(self.relation.name, variables, is_delta=False)
        return head, guard, variables[position]

    def to_delta_rules(self) -> tuple[Rule, ...]:
        """Rules deleting every tuple whose attribute value is outside the domain."""
        head, guard, target = self._head_and_guard()
        rules: list[Rule] = []
        if self.allowed_values is not None:
            # One rule per allowed value would keep tuples; to delete violators we
            # instead emit a rule whose comparisons say "differs from every
            # allowed value".
            comparisons = tuple(
                Comparison(target, "!=", Constant(value)) for value in self.allowed_values
            )
            rules.append(Rule(head, (guard,), comparisons, name=f"{self.name}_notin"))
            return tuple(rules)
        if self.minimum is not None:
            rules.append(
                Rule(
                    head,
                    (guard,),
                    (Comparison(target, "<", Constant(self.minimum)),),
                    name=f"{self.name}_below",
                ),
            )
        if self.maximum is not None:
            rules.append(
                Rule(
                    head,
                    (guard,),
                    (Comparison(target, ">", Constant(self.maximum)),),
                    name=f"{self.name}_above",
                ),
            )
        return tuple(rules)

    def to_program(self) -> DeltaProgram:
        """The constraint as a stand-alone delta program."""
        return DeltaProgram.from_rules(self.to_delta_rules())

    def admits(self, value: Any) -> bool:
        """True when ``value`` belongs to the declared domain."""
        if self.allowed_values is not None:
            return value in self.allowed_values
        if self.minimum is not None and value < self.minimum:
            return False
        if self.maximum is not None and value > self.maximum:
            return False
        return True
