"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class.  Sub-classes are organised by subsystem:
schema/storage, datalog parsing/validation, evaluation, solving, and the
experiment harness.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """Raised when a schema definition is invalid or a relation is unknown."""


class StorageError(ReproError):
    """Raised when a fact or a storage operation is inconsistent with the schema."""


class UnknownRelationError(SchemaError):
    """Raised when a relation name is not present in the schema."""

    def __init__(self, relation: str) -> None:
        super().__init__(f"unknown relation: {relation!r}")
        self.relation = relation


class ArityMismatchError(StorageError):
    """Raised when a fact's arity does not match its relation schema."""

    def __init__(self, relation: str, expected: int, got: int) -> None:
        super().__init__(
            f"relation {relation!r} expects {expected} attributes, got {got}",
        )
        self.relation = relation
        self.expected = expected
        self.got = got


class ParseError(ReproError):
    """Raised when textual datalog / delta-rule syntax cannot be parsed."""

    def __init__(
        self, message: str, line: int | None = None, column: int | None = None
    ) -> None:
        location = ""
        if line is not None:
            location = f" (line {line}"
            if column is not None:
                location += f", column {column}"
            location += ")"
        super().__init__(message + location)
        self.line = line
        self.column = column


class RuleValidationError(ReproError):
    """Raised when a rule violates the delta-rule well-formedness conditions."""


class ProgramValidationError(ReproError):
    """Raised when a delta program as a whole is invalid (e.g. schema mismatch)."""


class EvaluationError(ReproError):
    """Raised when rule evaluation fails (unbound variables, bad comparisons...)."""


class ServicePoisonedError(EvaluationError):
    """Raised by a :class:`~repro.service.RepairService` after a failed batch.

    A batch that raises mid-maintenance leaves the active extent, the delta
    extent and the assignment store mutually inconsistent; the service marks
    itself *poisoned* and every later ``apply`` / ``apply_many`` / point query
    raises this error instead of answering from corrupt state.  Recovery:
    build a fresh service over a consistent base instance (re-deriving the
    closure), or — for a file-backed database with a persisted assignment
    store — reopen the last consistently flushed state from disk.
    """

    def __init__(self, cause: str) -> None:
        super().__init__(
            "RepairService is poisoned: a previous batch failed mid-maintenance "
            f"({cause}); the maintained state is inconsistent. Recover by "
            "constructing a new RepairService over a consistent base instance "
            "(re-derive), or by reopening the last flushed on-disk state for "
            "file-backed databases (reload).",
        )
        self.cause = cause


class UnknownEngineError(EvaluationError, ValueError):
    """Raised when an ``engine=`` knob receives an unknown engine name.

    Subclasses :class:`ValueError` so callers outside the library can catch it
    without importing the repro exception hierarchy.
    """

    def __init__(self, engine: object, choices: tuple[str, ...]) -> None:
        super().__init__(
            f"unknown evaluation engine {engine!r}; expected one of "
            + ", ".join(repr(choice) for choice in choices),
        )
        self.engine = engine
        self.choices = choices


class SolverError(ReproError):
    """Raised when the SAT / Min-Ones solver is given an invalid formula."""


class UnsatisfiableError(SolverError):
    """Raised when a CNF formula handed to the solver has no satisfying assignment."""


class SemanticsError(ReproError):
    """Raised when a repair semantics cannot produce a result."""


class ExperimentError(ReproError):
    """Raised by the experiment harness for invalid configurations."""
