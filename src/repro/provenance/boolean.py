"""Boolean provenance for delta tuples (Algorithm 1, Section 5.1).

Algorithm 1 of the paper represents the provenance of every *possible* delta
tuple as a DNF formula: each clause corresponds to one assignment deriving the
tuple, with base tuples as positive literals and delta tuples as the negation
of their base counterpart.  The disjunction of all those DNFs is negated into a
CNF and handed to a Min-Ones SAT solver.

This module encodes that construction directly over "deletion variables": for
every tuple ``t`` of the database there is a variable ``x_t`` meaning "``t`` is
deleted".  An assignment ``α`` of a rule body is then *voided* exactly when

* some base-atom fact of ``α`` is deleted (``x_t`` true), or
* some delta-atom fact of ``α`` is kept (``x_t`` false),

so the negated provenance is the CNF whose clause for ``α`` is::

    OR_{t base atom of α} x_t   OR   OR_{t delta atom of α} ¬x_t

A satisfying assignment with a minimum number of true variables is exactly the
result of independent semantics (``Ind(P, D)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

from repro.datalog.ast import Program, Rule
from repro.datalog.delta import DeltaProgram
from repro.datalog.evaluation import Assignment, find_assignments
from repro.storage.database import BaseDatabase
from repro.storage.facts import Fact


@dataclass(frozen=True)
class Clause:
    """One CNF clause of the negated provenance.

    ``positives`` are facts whose deletion satisfies the clause; ``negatives``
    are facts whose *retention* satisfies it.  The clause corresponds to a
    single assignment of a single rule and satisfying it voids that assignment.
    """

    positives: frozenset[Fact]
    negatives: frozenset[Fact]
    rule_name: str = ""
    derived: Fact | None = None

    def is_empty(self) -> bool:
        """True when the clause has no literals (the assignment cannot be voided)."""
        return not self.positives and not self.negatives

    def variables(self) -> frozenset[Fact]:
        """All facts mentioned by the clause."""
        return self.positives | self.negatives

    def satisfied_by(self, deleted: Iterable[Fact]) -> bool:
        """True when deleting exactly ``deleted`` satisfies (voids) this clause."""
        deleted_set = set(deleted)
        if self.positives & deleted_set:
            return True
        return bool(self.negatives - deleted_set)

    def __len__(self) -> int:
        return len(self.positives) + len(self.negatives)

    def __str__(self) -> str:
        parts = [f"del({item.label()})" for item in sorted(self.positives)]
        parts += [f"keep({item.label()})" for item in sorted(self.negatives)]
        return " ∨ ".join(parts) if parts else "⊥"


@dataclass
class BooleanProvenance:
    """The Boolean provenance of a (database, delta program) pair.

    Attributes
    ----------
    clauses:
        The CNF clauses of the negated provenance (one per hypothetical
        assignment).
    dnf_by_tuple:
        The positive DNF provenance per derivable delta tuple: for each head
        fact, the list of assignments that can derive it.  This is the paper's
        ``Prov(t)`` before negation, kept for explanations and tests.
    variables:
        Every fact that occurs in some clause (candidate deletions).
    """

    clauses: List[Clause] = field(default_factory=list)
    dnf_by_tuple: Dict[Fact, List[Assignment]] = field(default_factory=dict)
    variables: set[Fact] = field(default_factory=set)

    def add_assignment(
        self, assignment: Assignment, already_deleted: set[Fact]
    ) -> None:
        """Record one hypothetical assignment as a DNF clause and a CNF clause."""
        self.dnf_by_tuple.setdefault(assignment.derived, []).append(assignment)
        positives = frozenset(assignment.base_facts())
        # A delta atom that matched a fact already recorded as deleted is a
        # constant-true literal of the positive provenance, so it contributes
        # nothing to the negated clause (it can never be "kept" again).
        negatives = frozenset(
            item for item in assignment.delta_facts() if item not in already_deleted
        )
        clause = Clause(
            positives=positives,
            negatives=negatives,
            rule_name=assignment.rule.display_name(),
            derived=assignment.derived,
        )
        self.clauses.append(clause)
        self.variables |= clause.variables()

    # -- inspection -----------------------------------------------------------

    def clause_count(self) -> int:
        """Number of CNF clauses (hypothetical assignments)."""
        return len(self.clauses)

    def variable_count(self) -> int:
        """Number of distinct facts mentioned by the provenance."""
        return len(self.variables)

    def derivable_tuples(self) -> frozenset[Fact]:
        """All delta tuples with at least one hypothetical derivation."""
        return frozenset(self.dnf_by_tuple)

    def is_voided_by(self, deleted: Iterable[Fact]) -> bool:
        """True when deleting ``deleted`` voids every assignment (satisfies the CNF)."""
        deleted_set = set(deleted)
        return all(clause.satisfied_by(deleted_set) for clause in self.clauses)

    def violated_clauses(self, deleted: Iterable[Fact]) -> List[Clause]:
        """Clauses not satisfied when deleting exactly ``deleted`` (for debugging)."""
        deleted_set = set(deleted)
        return [
            clause for clause in self.clauses if not clause.satisfied_by(deleted_set)
        ]

    def describe(self) -> str:
        """A compact multi-line rendering of the negated provenance."""
        lines = [f"{self.clause_count()} clauses over {self.variable_count()} tuples"]
        for clause in self.clauses:
            target = clause.derived.label() if clause.derived is not None else "?"
            lines.append(f"  [{clause.rule_name} ⟹ Δ{target}] {clause}")
        return "\n".join(lines)


def build_boolean_provenance(
    db: BaseDatabase,
    program: DeltaProgram | Program | Sequence[Rule],
    engine: str = "auto",
    context=None,
) -> BooleanProvenance:
    """Build the Boolean provenance of every possible delta tuple (Algorithm 1, line 1).

    Delta atoms in rule bodies are evaluated *hypothetically*: they may match
    the delta counterpart of any tuple of ``db``, not only tuples already
    recorded as deleted.  This captures every potential cascade without
    committing to an operational semantics.

    The hypothetical evaluation is a single pass (no fixpoint), so ``engine``
    only controls join planning: the default plans each rule's joins once and
    caches them, while ``engine="naive"`` re-derives the atom order at every
    recursion step (the oracle behaviour).  A shared
    :class:`~repro.datalog.context.EvalContext` (``context=``) backs the
    planner with its cross-run structural plan cache.  On SQLite-backed
    databases both engines evaluate through compiled SQL joins (the planner
    is bypassed), so the knob only validates; unknown names raise
    :class:`~repro.exceptions.UnknownEngineError` either way.
    """
    from repro.datalog.evaluation import ENGINE_NAIVE, resolve_engine
    from repro.storage.sqlite_backend import SQLiteDatabase

    planner = None
    if resolve_engine(db, engine, context) != ENGINE_NAIVE and not isinstance(
        db, SQLiteDatabase,
    ):
        from repro.datalog.planner import JoinPlanner

        planner = context.planner(db) if context is not None else JoinPlanner(db)
    provenance = BooleanProvenance()
    already_deleted = set(db.all_deltas())
    for rule in program:
        for assignment in find_assignments(
            db, rule, hypothetical_deltas=True, planner=planner,
        ):
            provenance.add_assignment(assignment, already_deleted)
    return provenance
