"""Provenance structures used by the algorithms for the intractable semantics.

* :mod:`repro.provenance.boolean` — Boolean (DNF/CNF) provenance of delta
  tuples, as used by Algorithm 1 (independent semantics);
* :mod:`repro.provenance.graph` — the provenance graph (union of derivation
  trees) with layers and tuple benefits, as used by Algorithm 2 (step
  semantics).
"""

from repro.provenance.boolean import (
    BooleanProvenance,
    Clause,
    build_boolean_provenance,
)
from repro.provenance.graph import ProvenanceGraph, build_provenance_graph

__all__ = [
    "Clause",
    "BooleanProvenance",
    "build_boolean_provenance",
    "ProvenanceGraph",
    "build_provenance_graph",
]
