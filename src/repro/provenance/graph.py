"""The provenance graph and tuple benefits (Algorithm 2, Section 5.2).

The provenance graph of ``End(P, D)`` joins the derivation trees of every
derivable delta tuple: there is a node per base tuple and per derived delta
tuple, and an edge from a tuple ``t`` (base or delta) to ``Δ(t₂)`` whenever
``t`` participates in an assignment deriving ``Δ(t₂)``.

Two derived quantities drive the greedy algorithm:

* the **layer** of ``Δ(t)`` — the round of (stage-style) evaluation in which it
  is first derivable, i.e. the depth of its shallowest derivation;
* the **benefit** ``b_t`` of a base tuple ``t`` — the number of assignments
  ``t`` participates in (as a base atom) minus the number of assignments its
  delta counterpart ``Δ(t)`` participates in (as a delta atom).  Deleting a
  high-benefit tuple voids many pending derivations while enabling few new
  ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import networkx as nx

from repro.datalog.ast import Program, Rule
from repro.datalog.delta import DeltaProgram
from repro.datalog.evaluation import Assignment, derive_closure
from repro.storage.database import BaseDatabase
from repro.storage.facts import Fact

#: Node kinds in the provenance graph.
BASE = "base"
DELTA = "delta"


def base_node(item: Fact) -> Tuple[str, Fact]:
    """Graph node for a base tuple."""
    return (BASE, item)


def delta_node(item: Fact) -> Tuple[str, Fact]:
    """Graph node for the delta counterpart of a tuple."""
    return (DELTA, item)


@dataclass
class ProvenanceGraph:
    """The provenance graph of an end-semantics evaluation.

    Attributes
    ----------
    graph:
        A :class:`networkx.DiGraph` whose nodes are ``("base", fact)`` and
        ``("delta", fact)`` pairs and whose edges follow derivations.
    assignments:
        Every assignment observed during the end-semantics closure.
    derived:
        All delta tuples derived (the content of ``End(P, D)``).
    layers:
        ``fact -> layer`` for every derived delta tuple (1-based).
    benefits:
        ``fact -> benefit`` for every base tuple appearing in some assignment.
    """

    graph: "nx.DiGraph" = field(default_factory=nx.DiGraph)
    assignments: List[Assignment] = field(default_factory=list)
    derived: set[Fact] = field(default_factory=set)
    layers: Dict[Fact, int] = field(default_factory=dict)
    benefits: Dict[Fact, int] = field(default_factory=dict)

    # -- queries -------------------------------------------------------------

    @property
    def layer_count(self) -> int:
        """Number of layers (0 when nothing is derivable)."""
        return max(self.layers.values(), default=0)

    def tuples_in_layer(self, layer: int) -> frozenset[Fact]:
        """Delta tuples first derivable at ``layer``."""
        return frozenset(item for item, lvl in self.layers.items() if lvl == layer)

    def assignments_deriving(self, item: Fact) -> List[Assignment]:
        """All assignments whose head instantiates to ``item``."""
        return [a for a in self.assignments if a.derived == item]

    def assignments_using_base(self, item: Fact) -> List[Assignment]:
        """All assignments in which ``item`` participates through a base atom."""
        return [a for a in self.assignments if item in a.base_facts()]

    def assignments_using_delta(self, item: Fact) -> List[Assignment]:
        """All assignments in which ``Δ(item)`` participates through a delta atom."""
        return [a for a in self.assignments if item in a.delta_facts()]

    def benefit(self, item: Fact) -> int:
        """The benefit ``b_t`` of a base tuple (0 when it never participates)."""
        return self.benefits.get(item, 0)

    def node_count(self) -> int:
        """Number of graph nodes (base + delta)."""
        return self.graph.number_of_nodes()

    def edge_count(self) -> int:
        """Number of derivation edges."""
        return self.graph.number_of_edges()

    def describe(self) -> str:
        """A short multi-line description of the graph's shape."""
        lines = [
            f"nodes={self.node_count()}, edges={self.edge_count()}, "
            f"derived={len(self.derived)}, layers={self.layer_count}",
        ]
        for layer in range(1, self.layer_count + 1):
            members = ", ".join(
                sorted(item.label() for item in self.tuples_in_layer(layer)),
            )
            lines.append(f"  layer {layer}: {members}")
        return "\n".join(lines)

    # -- construction ---------------------------------------------------------

    def _register_assignment(self, assignment: Assignment) -> None:
        self.assignments.append(assignment)
        target = delta_node(assignment.derived)
        self.derived.add(assignment.derived)
        self.graph.add_node(target, kind=DELTA)
        for atom, item in assignment.used:
            source = delta_node(item) if atom.is_delta else base_node(item)
            self.graph.add_node(source, kind=atom.is_delta and DELTA or BASE)
            self.graph.add_edge(source, target)

    def _compute_layers(self) -> None:
        """Layer = the round of stage-style evaluation when a tuple first derives.

        Computed as a fixpoint: a delta tuple's layer is ``1 +`` the maximum
        layer of the delta tuples used by its *shallowest* derivation (0 when a
        derivation uses no delta tuples).
        """
        self.layers = {}
        changed = True
        while changed:
            changed = False
            for assignment in self.assignments:
                dependencies = assignment.delta_facts()
                if any(dep not in self.layers for dep in dependencies):
                    continue
                depth = 1 + max(
                    (self.layers[dep] for dep in dependencies), default=0,
                )
                current = self.layers.get(assignment.derived)
                if current is None or depth < current:
                    self.layers[assignment.derived] = depth
                    changed = True

    def _compute_benefits(self) -> None:
        self.benefits = {}
        for assignment in self.assignments:
            for item in assignment.base_facts():
                self.benefits[item] = self.benefits.get(item, 0) + 1
            for item in assignment.delta_facts():
                self.benefits[item] = self.benefits.get(item, 0) - 1


def build_provenance_graph(
    db: BaseDatabase,
    program: DeltaProgram | Program | Sequence[Rule],
    engine: str = "auto",
) -> ProvenanceGraph:
    """Build the provenance graph of ``End(P, D)`` (Algorithm 2, line 1).

    The database is cloned; ``db`` itself is not modified.  ``engine`` selects
    the closure engine (see :func:`repro.datalog.evaluation.run_closure`).
    """
    working = db.clone()
    provenance = ProvenanceGraph()
    derive_closure(
        working, program, on_assignment=provenance._register_assignment, engine=engine,
    )
    provenance._compute_layers()
    provenance._compute_benefits()
    return provenance
