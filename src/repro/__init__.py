"""repro — a reproduction of *On Multiple Semantics for Declarative Database Repairs*.

The library implements the paper's delta-rule framework end to end:

* a relational storage engine (in-memory and SQLite-backed);
* a non-recursive datalog engine with a textual rule syntax;
* the four repair semantics — end, stage, step, independent — including the
  provenance-based Algorithms 1 and 2 and a from-scratch Min-Ones SAT solver;
* constraint front-ends (denial constraints, "after delete" triggers, causal
  rules) compiled to delta rules;
* synthetic MAS / TPC-H workloads, the paper's test programs, baselines
  (trigger engine, HoloClean-style cell repair), and an experiment harness
  regenerating every table and figure of the evaluation section.

Quickstart
----------
>>> from repro import Database, Schema, DeltaProgram, RepairEngine, Semantics
>>> schema = Schema.from_arities({"R": 1, "S": 1})
>>> db = Database.from_dicts(schema, {"R": [(1,)], "S": [(1,)]})
>>> program = DeltaProgram.from_text("delta R(x) :- R(x), S(x).")
>>> RepairEngine(db, program).repair(Semantics.INDEPENDENT).size
1

Evaluation engines
------------------
Every fixpoint computation accepts an ``engine=`` knob (on
:class:`RepairEngine`, on the four ``*_semantics`` functions, and on
:func:`repro.datalog.evaluation.derive_closure`):

* ``"auto"`` (default) — the semi-naive, delta-driven engine for in-memory
  databases (:mod:`repro.datalog.seminaive`): after one full round, rules are
  only re-matched through the frontier of delta facts derived in the previous
  round, joined outward along per-rule plans cached by
  :mod:`repro.datalog.planner`.  SQLite-backed databases compile rule bodies
  to SQL joins instead.
* ``"semi-naive"`` — force the semi-naive engine.
* ``"naive"`` — the re-evaluate-everything oracle, kept for differential
  testing (``tests/test_seminaive_differential.py``) and benchmarking
  (``benchmarks/bench_fixpoint.py``).

>>> RepairEngine(db, program, engine="naive").repair(Semantics.END).size
1
"""

from repro.core import (
    ContainmentReport,
    RepairEngine,
    RepairResult,
    Semantics,
    compare_results,
    compute_repair,
    end_semantics,
    independent_semantics,
    is_stable,
    is_stabilizing_set,
    stage_semantics,
    step_semantics,
    verify_repair,
)
from repro.datalog import (
    Atom,
    Comparison,
    Constant,
    DeltaProgram,
    Program,
    Rule,
    Variable,
    parse_program,
    parse_rule,
)
from repro.service import MaintenanceResult, RepairService
from repro.storage import (
    Attribute,
    BaseDatabase,
    Database,
    Fact,
    RelationSchema,
    Schema,
    SQLiteDatabase,
    fact,
)

__version__ = "1.0.0"

__all__ = [
    # storage
    "Attribute",
    "RelationSchema",
    "Schema",
    "Fact",
    "fact",
    "BaseDatabase",
    "Database",
    "SQLiteDatabase",
    # datalog
    "Variable",
    "Constant",
    "Atom",
    "Comparison",
    "Rule",
    "Program",
    "DeltaProgram",
    "parse_rule",
    "parse_program",
    # core
    "Semantics",
    "RepairResult",
    "RepairEngine",
    "compute_repair",
    "end_semantics",
    "stage_semantics",
    "step_semantics",
    "independent_semantics",
    "is_stable",
    "is_stabilizing_set",
    "verify_repair",
    "ContainmentReport",
    "compare_results",
    # incremental maintenance
    "RepairService",
    "MaintenanceResult",
    "__version__",
]
