"""Table 3 — containment of results across the MAS and TPC-H programs.

For every program the paper reports three booleans: ``Step = Stage``,
``Ind ⊆ Stage`` and ``Ind ⊆ Step``; the remaining relationships always hold
(Figure 3 / Proposition 3.20) and are asserted here as invariants.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.runner import ExperimentReport, run_program_suite
from repro.workloads.mas import generate_mas
from repro.workloads.programs_mas import MAS_PROGRAM_IDS, mas_programs
from repro.workloads.programs_tpch import TPCH_PROGRAM_IDS, tpch_programs
from repro.workloads.tpch import generate_tpch


def run(
    mas_scale: float = 0.5,
    tpch_scale: float = 0.5,
    seed: int = 7,
    mas_ids: Sequence[str] = MAS_PROGRAM_IDS,
    tpch_ids: Sequence[str] = TPCH_PROGRAM_IDS,
    verify: bool = False,
) -> ExperimentReport:
    """Regenerate Table 3 on synthetic MAS and TPC-H instances."""
    report = ExperimentReport(
        name="Table 3 — containment of results",
        headers=["program", "Step = Stage", "Ind ⊆ Stage", "Ind ⊆ Step"],
    )

    mas = generate_mas(scale=mas_scale, seed=seed)
    mas_runs = run_program_suite(
        mas.db, mas_programs(mas, tuple(mas_ids)), verify=verify,
    )
    tpch = generate_tpch(scale=tpch_scale, seed=seed)
    tpch_runs = run_program_suite(
        tpch.db, tpch_programs(tpch, tuple(tpch_ids)), verify=verify,
    )

    invariant_failures = []
    for name, run_result in {**mas_runs, **tpch_runs}.items():
        containment = run_result.containment
        report.add_row(
            [
                name,
                containment.step_equals_stage,
                containment.ind_subset_of_stage,
                containment.ind_subset_of_step,
            ],
        )
        if not containment.invariants_hold():
            invariant_failures.append(name)

    report.add_note(
        "Stage ⊆ End, Step ⊆ End and |Ind| ≤ |Step|, |Stage| hold for every program "
        "(Proposition 3.20)"
        if not invariant_failures
        else f"INVARIANT VIOLATION for programs: {', '.join(invariant_failures)}",
    )
    report.add_note(
        f"MAS instance: {mas.total_tuples} tuples, TPC-H instance: {tpch.total_tuples} tuples",
    )
    report.data["mas_runs"] = mas_runs
    report.data["tpch_runs"] = tpch_runs
    report.data["invariant_failures"] = invariant_failures
    return report
