"""Figure 7 — execution time of the four semantics on the MAS programs.

The paper plots per-program runtimes (log scale) for end, stage, step
(Algorithm 2) and independent (Algorithm 1) semantics.  The harness reports
one row per program with the four wall-clock times in seconds and flags which
algorithm dominated.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.runner import ExperimentReport, average, run_program_suite
from repro.workloads.mas import generate_mas
from repro.workloads.programs_mas import MAS_PROGRAM_IDS, mas_programs


def run(
    scale: float = 0.5,
    seed: int = 7,
    program_ids: Sequence[str] = MAS_PROGRAM_IDS,
    verify: bool = False,
) -> ExperimentReport:
    """Regenerate Figure 7 on a synthetic MAS instance."""
    mas = generate_mas(scale=scale, seed=seed)
    runs = run_program_suite(
        mas.db, mas_programs(mas, tuple(program_ids)), verify=verify
    )

    report = ExperimentReport(
        name="Figure 7 — execution time (seconds), MAS programs",
        headers=["program", "end", "stage", "step", "independent", "slowest"],
    )
    for name, run_result in runs.items():
        runtimes = run_result.runtimes
        slowest = max(runtimes, key=runtimes.get)
        report.add_row(
            [
                name,
                runtimes["end"],
                runtimes["stage"],
                runtimes["step"],
                runtimes["independent"],
                slowest,
            ],
        )
    averages = {
        semantics: average(
            [run_result.runtimes[semantics] for run_result in runs.values()]
        )
        for semantics in ("end", "stage", "step", "independent")
    }
    report.add_note(
        "average runtimes: "
        + ", ".join(f"{name}={value:.4f}s" for name, value in averages.items()),
    )
    report.add_note(
        "expected shape: end/stage are the fastest on cascades; step/independent pay "
        "the provenance overhead (paper averages: 16.9 / 21.1 / 389.5 / 73 seconds)",
    )
    report.data["runs"] = runs
    report.data["averages"] = averages
    return report
