"""Table 4 — over-deletions per semantics vs HoloClean's under-repairs.

For an Author table with an increasing number of injected errors, the paper
reports (a) how many tuples each of the four semantics deletes *beyond* the
minimum required number (the number of injected errors), and (b) how many
fewer tuples HoloClean repairs than required.  The minimum deletion repair is
exactly the set of injected duplicates, so the ground truth is the injection
itself.
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines.holoclean import HoloCleanStyleRepairer
from repro.core.semantics import Semantics
from repro.experiments.runner import ExperimentReport, run_program_suite
from repro.workloads.errors import generate_author_table, inject_errors
from repro.workloads.programs_dc import dc_constraints, dc_program

#: Default sweep (scaled down from the paper's 100..1000 errors on 5000 rows so a
#: pure-Python run stays interactive; pass the paper's values to reproduce them).
DEFAULT_ERROR_COUNTS = (10, 20, 30, 50, 70, 100)
DEFAULT_ROWS = 500


def run(
    error_counts: Sequence[int] = DEFAULT_ERROR_COUNTS,
    n_rows: int = DEFAULT_ROWS,
    seed: int = 7,
    verify: bool = False,
) -> ExperimentReport:
    """Regenerate Table 4: over-deletions (+) and HoloClean under-repairs (−)."""
    report = ExperimentReport(
        name=f"Table 4 — over-deletions vs HoloClean under-repairs ({n_rows} rows)",
        headers=["errors", "Ind", "Step", "Stage", "End", "HoloClean"],
    )
    program = dc_program()
    repairer = HoloCleanStyleRepairer(list(dc_constraints().values()))
    details = {}
    for errors in error_counts:
        clean = generate_author_table(n_rows, seed=seed)
        dirty = inject_errors(clean, errors, seed=seed + errors)
        runs = run_program_suite(dirty.db, {"dc": program}, verify=verify)
        sizes = runs["dc"].sizes
        cell_result = repairer.repair(dirty.db)
        required_repairs = errors
        report.add_row(
            [
                errors,
                f"+{sizes['independent'] - required_repairs}",
                f"+{sizes['step'] - required_repairs}",
                f"+{sizes['stage'] - required_repairs}",
                f"+{sizes['end'] - required_repairs}",
                f"-{required_repairs - min(cell_result.repaired_tuple_count, required_repairs)}",
            ],
        )
        details[errors] = {
            "sizes": sizes,
            "holoclean_repaired_tuples": cell_result.repaired_tuple_count,
            "holoclean_residual_violations": cell_result.total_residual_violations(),
            "ind_optimal": runs["dc"].result(Semantics.INDEPENDENT).metadata.get("optimal"),
        }
    report.add_note(
        "expected shape: Ind deletes exactly the injected duplicates (+0), Step stays "
        "close, Stage/End over-delete both sides of every violation, HoloClean repairs "
        "fewer tuples than required",
    )
    report.data["details"] = details
    return report
