"""Figure 10 — runtime of the four semantics and HoloClean on the DC workload.

Panel (a) increases the number of injected errors at a fixed row count; panel
(b) increases the number of rows at a fixed error count.  The harness reports
one row per sweep point with the five runtimes in seconds.
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines.holoclean import HoloCleanStyleRepairer
from repro.experiments.runner import ExperimentReport, run_program_suite
from repro.workloads.errors import generate_author_table, inject_errors
from repro.workloads.programs_dc import dc_constraints, dc_program

DEFAULT_ERROR_SWEEP = (10, 30, 50, 70)
DEFAULT_ROW_SWEEP = (200, 400, 600, 800)
DEFAULT_ROWS = 500
DEFAULT_ERRORS = 50


def run(
    panel: str = "a",
    error_counts: Sequence[int] = DEFAULT_ERROR_SWEEP,
    row_counts: Sequence[int] = DEFAULT_ROW_SWEEP,
    n_rows: int = DEFAULT_ROWS,
    n_errors: int = DEFAULT_ERRORS,
    seed: int = 7,
) -> ExperimentReport:
    """Regenerate Figure 10a (``panel="a"``) or 10b (``panel="b"``)."""
    program = dc_program()
    repairer = HoloCleanStyleRepairer(list(dc_constraints().values()))

    if panel == "a":
        sweep = [(n_rows, errors) for errors in error_counts]
        label, name = "errors", f"Figure 10a — runtime vs #errors (rows={n_rows})"
    elif panel == "b":
        sweep = [(rows, n_errors) for rows in row_counts]
        label, name = "rows", f"Figure 10b — runtime vs #rows (errors={n_errors})"
    else:
        raise ValueError(f"unknown Figure 10 panel: {panel!r}")

    report = ExperimentReport(
        name=name,
        headers=[label, "end", "stage", "step", "independent", "holoclean"],
    )
    details = {}
    for rows, errors in sweep:
        clean = generate_author_table(rows, seed=seed)
        dirty = inject_errors(clean, errors, seed=seed + errors)
        runs = run_program_suite(dirty.db, {"dc": program})
        runtimes = runs["dc"].runtimes
        cell_result = repairer.repair(dirty.db)
        point = errors if panel == "a" else rows
        report.add_row(
            [
                point,
                runtimes["end"],
                runtimes["stage"],
                runtimes["step"],
                runtimes["independent"],
                cell_result.runtime,
            ],
        )
        details[point] = {"runtimes": runtimes, "holoclean": cell_result.runtime}
    report.add_note(
        "expected shape: end/stage are the fastest; the provenance-based algorithms and "
        "the cell-repair baseline are in the same (slower) ballpark",
    )
    report.data["details"] = details
    return report
