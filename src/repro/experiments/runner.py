"""Shared plumbing for the experiment modules.

The paper's evaluation repeatedly runs the same loop — for each test program,
compute the repair under all four semantics, record sizes, runtimes, and the
phase breakdown — and then slices the measurements per table or figure.
:func:`run_program_suite` is that loop; :class:`ExperimentReport` is the
uniform result container every experiment module returns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Sequence

from repro.core.containment import ContainmentReport, compare_results
from repro.core.repair import RepairEngine
from repro.core.semantics import RepairResult, Semantics
from repro.datalog.delta import DeltaProgram
from repro.storage.database import BaseDatabase
from repro.utils.text import format_table


@dataclass
class SemanticsRun:
    """All four semantics evaluated on one (program, database) pair."""

    name: str
    results: Dict[Semantics, RepairResult]
    containment: ContainmentReport

    @property
    def sizes(self) -> Dict[str, int]:
        """Result size per semantics (keyed by semantics name)."""
        return {
            semantics.value: result.size
            for semantics, result in self.results.items()
        }

    @property
    def runtimes(self) -> Dict[str, float]:
        """Wall-clock seconds per semantics (keyed by semantics name)."""
        return {
            semantics.value: result.runtime
            for semantics, result in self.results.items()
        }

    def result(self, semantics: Semantics | str) -> RepairResult:
        """The result for one semantics."""
        return self.results[Semantics.parse(semantics)]


@dataclass
class ExperimentReport:
    """A rendered experiment: a named table of rows plus free-form notes.

    ``data`` carries experiment-specific structured results (e.g. the raw
    :class:`SemanticsRun` objects) so tests can assert on them without parsing
    the rendered text.
    """

    name: str
    headers: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    data: Dict[str, Any] = field(default_factory=dict)

    def add_row(self, row: Sequence[Any]) -> None:
        """Append one row (same order as ``headers``)."""
        self.rows.append(list(row))

    def add_note(self, note: str) -> None:
        """Append a free-form note shown below the table."""
        self.notes.append(note)

    def render(self) -> str:
        """The report as an aligned plain-text table followed by its notes."""
        text = format_table(self.headers, self.rows, title=self.name)
        if self.notes:
            text += "\n" + "\n".join(f"  note: {note}" for note in self.notes)
        return text

    def __str__(self) -> str:
        return self.render()


def run_program_suite(
    db: BaseDatabase,
    programs: Mapping[str, DeltaProgram],
    semantics: Iterable[Semantics | str] | None = None,
    verify: bool = False,
    **options: Any,
) -> Dict[str, SemanticsRun]:
    """Evaluate every program of ``programs`` under the requested semantics.

    Each program gets a fresh clone of ``db``.  When all four semantics are
    requested (the default) the containment report of Table 3 is computed as
    well; otherwise a partial report is built against empty placeholders.
    """
    requested = (
        [Semantics.parse(member) for member in semantics]
        if semantics is not None
        else list(Semantics)
    )
    runs: Dict[str, SemanticsRun] = {}
    for name, program in programs.items():
        engine = RepairEngine(db.clone(), program, verify=verify)
        results = {member: engine.repair(member, **options) for member in requested}
        if set(requested) == set(Semantics):
            containment = compare_results(results, name=name)
        else:
            containment = None  # type: ignore[assignment]
        runs[name] = SemanticsRun(name=name, results=results, containment=containment)
    return runs


def average(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    return sum(values) / len(values) if values else 0.0
