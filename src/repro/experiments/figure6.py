"""Figure 6 — result sizes of the four semantics for the MAS programs.

The figure has three panels: (a) programs 1–10, (b) programs 11–15 (a single
rule with a growing join chain), and (c) programs 16–20 (a growing cascade
chain).  The harness reports one row per program with the four result sizes.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.semantics import Semantics
from repro.experiments.runner import ExperimentReport, run_program_suite
from repro.workloads.mas import generate_mas
from repro.workloads.programs_mas import mas_programs

#: The three panels of Figure 6.
PANELS = {
    "6a": tuple(str(number) for number in range(1, 11)),
    "6b": tuple(str(number) for number in range(11, 16)),
    "6c": tuple(str(number) for number in range(16, 21)),
}


def run(
    panel: str = "all",
    scale: float = 0.5,
    seed: int = 7,
    verify: bool = False,
) -> ExperimentReport:
    """Regenerate Figure 6 (one panel or all three)."""
    if panel == "all":
        program_ids: Sequence[str] = tuple(
            program_id for ids in PANELS.values() for program_id in ids
        )
    else:
        program_ids = PANELS[panel]

    mas = generate_mas(scale=scale, seed=seed)
    runs = run_program_suite(
        mas.db, mas_programs(mas, tuple(program_ids)), verify=verify
    )

    report = ExperimentReport(
        name=f"Figure 6 ({panel}) — result sizes, MAS programs",
        headers=["program", "|End|", "|Stage|", "|Step|", "|Ind|"],
    )
    for name, run_result in runs.items():
        sizes = run_result.sizes
        report.add_row(
            [name, sizes["end"], sizes["stage"], sizes["step"], sizes["independent"]],
        )
    report.add_note(f"synthetic MAS instance of {mas.total_tuples} tuples (scale={scale})")
    if panel in ("6b", "all"):
        report.add_note(
            "expected shape (6b): End/Stage/Step identical across 11-15, Ind decreases "
            "as the join chain grows",
        )
    if panel in ("6c", "all"):
        report.add_note("expected shape (6c): all four semantics coincide on cascade chains")
    report.data["runs"] = runs
    report.data["ind_optimal"] = {
        name: run_result.result(Semantics.INDEPENDENT).metadata.get("optimal", False)
        for name, run_result in runs.items()
    }
    return report
