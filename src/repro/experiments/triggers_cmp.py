"""Section 6 "Comparison with Triggers" — PostgreSQL/MySQL firing policies vs the semantics.

The paper implements MAS programs 3, 4, 5, 8 and 20 as triggers in PostgreSQL
(which fires same-event triggers alphabetically) and MySQL (creation order) and
compares the deleted tuples against the four semantics.  The harness replays
the same comparison with the trigger simulator.
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines.trigger_engine import FiringPolicy, TriggerEngine, seed_deletions
from repro.experiments.runner import ExperimentReport, run_program_suite
from repro.workloads.mas import generate_mas
from repro.workloads.programs_mas import mas_programs

#: The programs the paper implements as triggers.
DEFAULT_PROGRAM_IDS = ("3", "4", "5", "8", "20")


def run(
    scale: float = 0.5,
    seed: int = 7,
    program_ids: Sequence[str] = DEFAULT_PROGRAM_IDS,
    verify: bool = False,
) -> ExperimentReport:
    """Regenerate the trigger comparison on a synthetic MAS instance."""
    mas = generate_mas(scale=scale, seed=seed)
    programs = mas_programs(mas, tuple(program_ids))
    runs = run_program_suite(mas.db, programs, verify=verify)

    report = ExperimentReport(
        name="Trigger comparison — deleted tuples per execution model",
        headers=[
            "program",
            "PostgreSQL triggers",
            "MySQL triggers",
            "|End|",
            "|Stage|",
            "|Step|",
            "|Ind|",
        ],
    )
    trigger_runs = {}
    for name, program in programs.items():
        seeds = seed_deletions(mas.fresh_db(), program)
        postgres = TriggerEngine.from_program(program, FiringPolicy.POSTGRESQL).run(
            mas.fresh_db(), seeds,
        )
        mysql = TriggerEngine.from_program(program, FiringPolicy.MYSQL).run(
            mas.fresh_db(), seeds,
        )
        sizes = runs[name].sizes
        report.add_row(
            [
                name,
                postgres.size,
                mysql.size,
                sizes["end"],
                sizes["stage"],
                sizes["step"],
                sizes["independent"],
            ],
        )
        trigger_runs[name] = {"postgresql": postgres, "mysql": mysql}
    report.add_note(
        "expected shape: trigger results match the cascade semantics for pure cascade "
        "programs (5, 20) and over-delete relative to step/independent semantics when "
        "several triggers watch the same event (3, 4, 8)",
    )
    report.data["runs"] = runs
    report.data["trigger_runs"] = trigger_runs
    return report
