"""Table 5 — residual DC violations after repair: HoloClean vs the four semantics.

For every error count the paper reports, per denial constraint, the number of
tuples still violating the constraint after the repair over the number before
it.  Our semantics always reach zero residual violations (Proposition 3.18);
the HoloClean-style baseline may leave some.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.baselines.holoclean import HoloCleanStyleRepairer
from repro.core.repair import RepairEngine
from repro.core.semantics import Semantics
from repro.experiments.runner import ExperimentReport
from repro.workloads.errors import generate_author_table, inject_errors
from repro.workloads.programs_dc import dc_constraints, dc_program

DEFAULT_ERROR_COUNTS = (10, 20, 30, 50, 70, 100)
DEFAULT_ROWS = 500


def run(
    error_counts: Sequence[int] = DEFAULT_ERROR_COUNTS,
    n_rows: int = DEFAULT_ROWS,
    seed: int = 7,
    semantics: Semantics | str = Semantics.INDEPENDENT,
) -> ExperimentReport:
    """Regenerate Table 5: per-DC violations after/before repair."""
    constraints = dc_constraints()
    repairer = HoloCleanStyleRepairer(list(constraints.values()))
    program = dc_program()

    report = ExperimentReport(
        name=f"Table 5 — DC violations after/before repair ({n_rows} rows)",
        headers=[
            "errors",
            "HC DC1",
            "HC DC2",
            "HC DC3",
            "HC DC4",
            "HC total",
            "semantics total",
        ],
    )
    details: Dict[int, Dict[str, object]] = {}
    for errors in error_counts:
        clean = generate_author_table(n_rows, seed=seed)
        dirty = inject_errors(clean, errors, seed=seed + errors)
        cell_result = repairer.repair(dirty.db)

        engine = RepairEngine(dirty.db, program)
        repaired = engine.repair(semantics).repaired
        ours_after = repairer.count_violations(repaired)

        def cell(dc_name: str) -> str:
            return (
                f"{cell_result.residual_violations[dc_name]}/"
                f"{cell_result.initial_violations[dc_name]}"
            )

        report.add_row(
            [
                errors,
                cell("DC1"),
                cell("DC2"),
                cell("DC3"),
                cell("DC4"),
                f"{cell_result.total_residual_violations()}/"
                f"{cell_result.total_initial_violations()}",
                f"{sum(ours_after.values())}/{cell_result.total_initial_violations()}",
            ],
        )
        details[errors] = {
            "holoclean_after": cell_result.residual_violations,
            "holoclean_before": cell_result.initial_violations,
            "semantics_after": ours_after,
        }
    report.add_note(
        "expected shape: every semantics drives all four DCs to zero residual "
        "violations; the HoloClean-style baseline leaves residual violations that grow "
        "with the number of errors",
    )
    report.data["details"] = details
    return report
