"""Figure 8 — runtime breakdown of Algorithms 1 and 2.

The paper breaks the runtime of Algorithm 1 (independent semantics) into
Eval / Process Prov / Solve and of Algorithm 2 (step semantics) into
Eval / Process Prov / Traverse, averaged over MAS programs 1–15 (panels a, b)
and 16–20 (panels c, d).  The semantics implementations record exactly those
phases in their :class:`~repro.utils.timing.PhaseTimer`, so the harness just
averages the fractions.
"""

from __future__ import annotations

from typing import Dict

from repro.core.semantics import (
    PHASE_EVAL,
    PHASE_PROCESS_PROV,
    PHASE_SOLVE,
    PHASE_TRAVERSE,
    Semantics,
)
from repro.experiments.runner import ExperimentReport, average, run_program_suite
from repro.workloads.mas import generate_mas
from repro.workloads.programs_mas import mas_programs

#: The two program groups of Figure 8.
GROUPS = {
    "1-15": tuple(str(number) for number in range(1, 16)),
    "16-20": tuple(str(number) for number in range(16, 21)),
}

#: Panel layout of the figure: (algorithm, program group, phases reported).
PANELS = {
    "8a": (Semantics.INDEPENDENT, "1-15", (PHASE_EVAL, PHASE_PROCESS_PROV, PHASE_SOLVE)),
    "8b": (Semantics.STEP, "1-15", (PHASE_EVAL, PHASE_PROCESS_PROV, PHASE_TRAVERSE)),
    "8c": (Semantics.INDEPENDENT, "16-20", (PHASE_EVAL, PHASE_PROCESS_PROV, PHASE_SOLVE)),
    "8d": (Semantics.STEP, "16-20", (PHASE_EVAL, PHASE_PROCESS_PROV, PHASE_TRAVERSE)),
}


def run(scale: float = 0.5, seed: int = 7) -> ExperimentReport:
    """Regenerate the Figure-8 phase breakdown on a synthetic MAS instance."""
    mas = generate_mas(scale=scale, seed=seed)
    all_ids = tuple(program_id for ids in GROUPS.values() for program_id in ids)
    runs = run_program_suite(
        mas.db,
        mas_programs(mas, all_ids),
        semantics=(Semantics.STEP, Semantics.INDEPENDENT),
    )

    report = ExperimentReport(
        name="Figure 8 — runtime breakdown of Algorithms 1 (ind.) and 2 (step)",
        headers=["panel", "algorithm", "programs", "phase", "fraction of runtime"],
    )
    breakdowns: Dict[str, Dict[str, float]] = {}
    for panel, (semantics, group, phases) in PANELS.items():
        fractions_per_phase: Dict[str, list[float]] = {phase: [] for phase in phases}
        for program_id in GROUPS[group]:
            result = runs[program_id].result(semantics)
            fractions = result.timer.fractions()
            for phase in phases:
                fractions_per_phase[phase].append(fractions.get(phase, 0.0))
        panel_breakdown = {
            phase: average(values) for phase, values in fractions_per_phase.items()
        }
        breakdowns[panel] = panel_breakdown
        algorithm = "Algorithm 1" if semantics is Semantics.INDEPENDENT else "Algorithm 2"
        for phase, fraction in panel_breakdown.items():
            report.add_row([panel, algorithm, group, phase, round(fraction, 4)])

    report.add_note(
        "expected shape: evaluation + provenance storage dominates; Solve/Traverse is "
        "second; converting the provenance is negligible (paper Figure 8)",
    )
    report.data["runs"] = runs
    report.data["breakdowns"] = breakdowns
    return report
