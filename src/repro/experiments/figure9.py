"""Figure 9 — result sizes (9a) and runtimes (9b) for the TPC-H programs."""

from __future__ import annotations

from typing import Sequence

from repro.experiments.runner import ExperimentReport, run_program_suite
from repro.workloads.programs_tpch import TPCH_PROGRAM_IDS, tpch_programs
from repro.workloads.tpch import generate_tpch


def run(
    scale: float = 0.5,
    seed: int = 7,
    program_ids: Sequence[str] = TPCH_PROGRAM_IDS,
    verify: bool = False,
) -> ExperimentReport:
    """Regenerate Figure 9 on a synthetic TPC-H instance."""
    tpch = generate_tpch(scale=scale, seed=seed)
    runs = run_program_suite(
        tpch.db, tpch_programs(tpch, tuple(program_ids)), verify=verify
    )

    report = ExperimentReport(
        name="Figure 9 — TPC-H result sizes (9a) and runtimes in seconds (9b)",
        headers=[
            "program",
            "|End|",
            "|Stage|",
            "|Step|",
            "|Ind|",
            "t(end)",
            "t(stage)",
            "t(step)",
            "t(ind)",
        ],
    )
    for name, run_result in runs.items():
        sizes = run_result.sizes
        runtimes = run_result.runtimes
        report.add_row(
            [
                name,
                sizes["end"],
                sizes["stage"],
                sizes["step"],
                sizes["independent"],
                runtimes["end"],
                runtimes["stage"],
                runtimes["step"],
                runtimes["independent"],
            ],
        )
    report.add_note(
        f"synthetic TPC-H instance of {tpch.total_tuples} tuples (scale={scale})",
    )
    report.add_note(
        "expected shape: for T-1/T-3/T-5/T-6 independent semantics deletes fewer tuples "
        "by choosing tuples the other semantics cannot derive",
    )
    report.data["runs"] = runs
    return report
