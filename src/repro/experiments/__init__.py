"""The experiment harness: one module per table / figure of the paper's Section 6.

Every module exposes a ``run(...)`` function returning an
:class:`~repro.experiments.runner.ExperimentReport` whose rows mirror the rows
or series the paper reports; ``report.render()`` prints them as a plain-text
table.  The ``benchmarks/`` directory wraps these runs in pytest-benchmark so
the whole evaluation regenerates with ``pytest benchmarks/ --benchmark-only``.

Absolute numbers differ from the paper (synthetic data, pure-Python engine, no
PostgreSQL/Z3/HoloClean), but the shapes the paper argues from are preserved;
EXPERIMENTS.md records paper-vs-measured for every experiment.
"""

from repro.experiments.runner import (
    ExperimentReport,
    SemanticsRun,
    run_program_suite,
)
from repro.experiments import (
    table3,
    table4,
    table5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    triggers_cmp,
)

__all__ = [
    "ExperimentReport",
    "SemanticsRun",
    "run_program_suite",
    "table3",
    "table4",
    "table5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "triggers_cmp",
]
