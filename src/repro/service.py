"""A long-lived repair service maintained under insert/delete streams.

:class:`RepairService` is the user-facing face of the incremental layer
(:mod:`repro.datalog.incremental`): load a delta program over a base instance
once, then absorb per-user batches of base-fact insertions and deletions with
:meth:`~RepairService.apply`, keeping the closure, the satisfying
assignments, and the end-semantics repair outcome current without re-running
the fixpoint.  Between batches the service answers point queries — "is this
fact still derivable?" (:meth:`~RepairService.is_derivable`), "does it
survive the repair?" (:meth:`~RepairService.in_repair`) — straight off the
maintained extents, in milliseconds.

The maintained invariant, checked differentially in
``tests/test_incremental.py`` on both backends: the database's active
extents always equal the current base instance, its delta extents equal the
closure of that instance under the program, and the
:class:`~repro.datalog.incremental.AssignmentStore` holds exactly the
closure's satisfying assignments.  The repair outcome then falls out like in
:func:`repro.core.semantics.end.end_semantics`: the deleted set is every
closure fact that is also active.

Usage::

    service = RepairService(db, program)              # loads the closure
    service.apply(inserts=[fact("E", 1, 2)])           # absorb a batch
    service.apply(deletes=[fact("E", 0, 1)])           # DRed-maintained
    service.is_derivable(fact("N", 2))                 # point query
    service.in_repair(fact("N", 7))                    # survives the repair?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Tuple

from repro.datalog.ast import Program, Rule
from repro.datalog.context import EvalContext, QueryStats
from repro.datalog.delta import DeltaProgram
from repro.datalog.evaluation import (
    Assignment,
    ENGINE_AUTO,
    run_closure,
    validate_engine,
)
from repro.datalog.incremental import (
    AssignmentStore,
    dred_delete,
    maintain_insertions,
)
from repro.exceptions import EvaluationError
from repro.storage.database import BaseDatabase
from repro.storage.facts import Fact

__all__ = ["MaintenanceResult", "RepairService"]


@dataclass(frozen=True)
class MaintenanceResult:
    """What one :meth:`RepairService.apply` batch did.

    Attributes
    ----------
    inserted:
        Base facts actually added (as stored, with tids); requested inserts
        already present are skipped.
    deleted:
        Base facts actually dropped; requested deletes not present are
        skipped.
    overdeleted / rederived:
        DRed pass sizes for this batch: deletion candidates considered, and
        the subset rescued by an unaffected derivation.
    retracted:
        Closure facts that left the delta extent (``overdeleted`` minus
        ``rederived``).
    rounds:
        Frontier propagation rounds the insert side needed.
    """

    inserted: Tuple[Fact, ...] = ()
    deleted: Tuple[Fact, ...] = ()
    overdeleted: int = 0
    rederived: int = 0
    retracted: frozenset = field(default_factory=frozenset)
    rounds: int = 0


class RepairService:
    """Load a delta program once; keep its repair current across update batches.

    Parameters
    ----------
    db:
        The base instance, either backend.  Its delta extents must be empty —
        the service owns the closure from here on.
    program:
        A :class:`~repro.datalog.delta.DeltaProgram` (validated against the
        schema) or any iterable of rules.
    engine:
        Engine for the initial load (``"auto"``/``"naive"``/``"semi-naive"``/
        ``"sharded"``); maintenance itself always runs the incremental
        drivers.
    context:
        Optional shared :class:`~repro.datalog.context.EvalContext`; its
        observers see every assignment the service ever records, exactly
        once — during the load and during later batches.  Plans, compiled
        variants and :class:`~repro.datalog.context.QueryStats` are shared
        with the maintenance passes.
    """

    def __init__(
        self,
        db: BaseDatabase,
        program: DeltaProgram | Program | Iterable[Rule],
        engine: str = ENGINE_AUTO,
        context: Optional[EvalContext] = None,
        max_rounds: int | None = None,
    ) -> None:
        validate_engine(engine)
        if isinstance(program, DeltaProgram):
            program.validate_against_schema(db.schema)
        self._db = db
        self._rules = list(program)
        self._context = context if context is not None else EvalContext()
        # Maintenance passes run under an observer-free twin of the context:
        # it shares stats and plan caches, but assignment delivery stays in
        # _record so the SQLite discovery path cannot double-notify.
        self._qctx = self._context.query_context()
        self._planner = self._qctx.planner(db)
        self._store = AssignmentStore()
        self._max_rounds = max_rounds
        if db.count_delta() != 0:
            raise EvaluationError(
                "RepairService requires an empty delta extent to load; "
                "pass a fresh base instance (the service derives the closure "
                "itself)"
            )
        result = run_closure(
            db,
            self._rules,
            on_assignment=self._store_and_notify,
            max_rounds=max_rounds,
            engine=engine,
            collect_assignments=False,
            context=self._qctx,
        )
        self._load_rounds = result.rounds
        self._load_engine = result.engine

    # -- recording ---------------------------------------------------------

    def _store_and_notify(self, assignment: Assignment) -> bool:
        if not self._store.add(assignment):
            return False
        self._context.notify(assignment)
        return True

    # -- maintenance -------------------------------------------------------

    def apply(
        self,
        inserts: Sequence[Fact] = (),
        deletes: Sequence[Fact] = (),
    ) -> MaintenanceResult:
        """Absorb one batch of base-fact updates, maintaining the closure.

        Deletions run first (DRed over-delete / re-derive), then insertions
        (base-seeded discovery + frontier propagation), so a fact appearing
        in both lists ends up present.  Requested updates that are no-ops
        against the current base instance (inserting a present fact, deleting
        an absent one) are skipped silently — batches are idempotent.
        """
        # Refresh the planner's cardinality snapshot so the adaptive
        # re-costing band sees extent drift accumulated across batches.
        self._planner.begin_round()

        removed = []
        for item in deletes:
            stored = self._stored_active(item)
            if stored is not None and self._db.drop_active(stored):
                removed.append(stored)
        if removed:
            overdeleted, rederived, retracted = dred_delete(
                self._db, self._store, removed, stats=self.stats
            )
        else:
            overdeleted, rederived, retracted = set(), set(), set()

        added = []
        for item in inserts:
            if self._db.has_active(item):
                continue
            self._db.insert(item)
            stored = self._stored_active(item)
            if stored is not None:
                added.append(stored)
        rounds = 0
        if added:
            rounds = maintain_insertions(
                self._db,
                self._rules,
                self._planner,
                self._qctx,
                self._store_and_notify,
                added,
            )

        self.stats.maintained_batches += 1
        return MaintenanceResult(
            inserted=tuple(added),
            deleted=tuple(removed),
            overdeleted=len(overdeleted),
            rederived=len(rederived),
            retracted=frozenset(retracted),
            rounds=rounds,
        )

    def _stored_active(self, item: Fact) -> Fact | None:
        """The active extent's own copy of ``item`` (tid-stamped), or None."""
        fixed = dict(enumerate(item.values))
        return next(iter(self._db.candidates(item.relation, fixed)), None)

    # -- point queries -----------------------------------------------------

    def is_derivable(self, item: Fact) -> bool:
        """Is ``item`` in the maintained closure (the delta extents)?"""
        return self._db.has_delta(item)

    def in_repair(self, item: Fact) -> bool:
        """Does ``item`` survive the end-semantics repair of the current base
        instance?  True for active facts the closure does not delete."""
        return self._db.has_active(item) and not self._db.has_delta(item)

    def repair_deleted(self) -> frozenset:
        """The end-semantics deleted set: closure facts that are active."""
        return frozenset(
            item for item in self._db.all_deltas() if self._db.has_active(item)
        )

    # -- introspection -----------------------------------------------------

    def assignments(self) -> Tuple[Assignment, ...]:
        """Every live satisfying assignment of the maintained closure."""
        return tuple(self._store.assignments())

    @property
    def db(self) -> BaseDatabase:
        """The maintained database (active = base instance, delta = closure)."""
        return self._db

    @property
    def rules(self) -> Tuple[Rule, ...]:
        return tuple(self._rules)

    @property
    def stats(self) -> QueryStats:
        """Shared counters, including ``maintained_batches`` /
        ``overdeleted`` / ``rederived``."""
        return self._context.stats

    @property
    def load_rounds(self) -> int:
        """Rounds the initial closure load took."""
        return self._load_rounds

    @property
    def load_engine(self) -> str:
        """The concrete engine that ran the initial load."""
        return self._load_engine
