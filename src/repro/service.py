"""A long-lived repair service maintained under insert/delete streams.

:class:`RepairService` is the user-facing face of the incremental layer
(:mod:`repro.datalog.incremental`): load a delta program over a base instance
once, then absorb per-user batches of base-fact insertions and deletions with
:meth:`~RepairService.apply`, keeping the closure, the satisfying
assignments, and the end-semantics repair outcome current without re-running
the fixpoint.  Between batches the service answers point queries — "is this
fact still derivable?" (:meth:`~RepairService.is_derivable`), "does it
survive the repair?" (:meth:`~RepairService.in_repair`) — straight off the
maintained extents, in milliseconds.

The maintained invariant, checked differentially in
``tests/test_incremental.py`` on both backends: the database's active
extents always equal the current base instance, its delta extents equal the
closure of that instance under the program, and the
:class:`~repro.datalog.incremental.AssignmentStore` holds exactly the
closure's satisfying assignments.  The repair outcome then falls out like in
:func:`repro.core.semantics.end.end_semantics`: the deleted set is every
closure fact that is also active.

Usage::

    service = RepairService(db, program)              # loads the closure
    service.apply(inserts=[fact("E", 1, 2)])           # absorb a batch
    service.apply(deletes=[fact("E", 0, 1)])           # DRed-maintained
    service.is_derivable(fact("N", 2))                 # point query
    service.in_repair(fact("N", 7))                    # survives the repair?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Tuple

from repro.datalog.ast import Program, Rule
from repro.datalog.context import EvalContext, QueryStats
from repro.datalog.delta import DeltaProgram
from repro.datalog.evaluation import (
    Assignment,
    ENGINE_AUTO,
    run_closure,
    validate_engine,
)
from repro.datalog.incremental import (
    AssignmentStore,
    dred_delete,
    maintain_insertions,
    make_assignment_store,
)
from repro.exceptions import EvaluationError, ServicePoisonedError
from repro.storage.database import BaseDatabase
from repro.storage.facts import Fact

__all__ = ["ENGINE_WARM", "MaintenanceResult", "RepairService"]

#: :attr:`RepairService.load_engine` value reported when the service
#: warm-restarted from a persisted assignment store instead of running a
#: closure engine.
ENGINE_WARM = "warm"


@dataclass(frozen=True)
class MaintenanceResult:
    """What one :meth:`RepairService.apply` batch did.

    Attributes
    ----------
    inserted:
        Base facts actually added (as stored, with tids); requested inserts
        already present are skipped.
    deleted:
        Base facts actually dropped; requested deletes not present are
        skipped.
    overdeleted / rederived:
        DRed pass sizes for this batch: deletion candidates considered, and
        the subset rescued by an unaffected derivation.
    retracted:
        Closure facts that left the delta extent (``overdeleted`` minus
        ``rederived``).
    rounds:
        Frontier propagation rounds the insert side needed.
    """

    inserted: Tuple[Fact, ...] = ()
    deleted: Tuple[Fact, ...] = ()
    overdeleted: int = 0
    rederived: int = 0
    retracted: frozenset = field(default_factory=frozenset)
    rounds: int = 0


class RepairService:
    """Load a delta program once; keep its repair current across update batches.

    Parameters
    ----------
    db:
        The base instance, either backend.  Its delta extents must be empty —
        the service owns the closure from here on.
    program:
        A :class:`~repro.datalog.delta.DeltaProgram` (validated against the
        schema) or any iterable of rules.
    engine:
        Engine for the initial load (``"auto"``/``"naive"``/``"semi-naive"``/
        ``"sharded"``); maintenance itself always runs the incremental
        drivers.
    context:
        Optional shared :class:`~repro.datalog.context.EvalContext`; its
        observers see every assignment the service ever records, exactly
        once — during the load and during later batches.  Plans, compiled
        variants and :class:`~repro.datalog.context.QueryStats` are shared
        with the maintenance passes.  On a warm restart the persisted
        assignments are **replayed** to the observers in their original
        record order, so a fresh process keeps the exactly-once contract
        (an observer surviving from the writing process would see them
        twice — reuse the service, not just the database, in-process).
        The context's ``shard_maintenance`` knob (or the
        ``REPRO_SHARD_MAINTENANCE`` environment variable) additionally fans
        every maintenance batch's discovery, propagation and DRed scans out
        over the sharded worker pool, with a byte-identical maintained
        state, record stream and persisted store at any ``shards=`` /
        ``workers=`` count.
    counting:
        Enable the counting-based deletion fast path (default True): delete
        batches fully covered by base-only support counts skip the DRed
        over-delete/re-derive detour (``stats.counted_deletes``), everything
        else falls back to exact DRed (``stats.dred_fallbacks``).  Disable to
        force exact DRed on every batch (the benchmark's comparison knob).
    """

    def __init__(
        self,
        db: BaseDatabase,
        program: DeltaProgram | Program | Iterable[Rule],
        engine: str = ENGINE_AUTO,
        context: Optional[EvalContext] = None,
        max_rounds: int | None = None,
        counting: bool = True,
    ) -> None:
        validate_engine(engine)
        if isinstance(program, DeltaProgram):
            program.validate_against_schema(db.schema)
        self._db = db
        self._rules = list(program)
        self._context = context if context is not None else EvalContext()
        # Maintenance passes run under an observer-free twin of the context:
        # it shares stats and plan caches, but assignment delivery stays in
        # _record so the SQLite discovery path cannot double-notify.
        self._qctx = self._context.query_context()
        self._planner = self._qctx.planner(db)
        self._store: AssignmentStore = make_assignment_store(db, self._rules)
        self._max_rounds = max_rounds
        self._counting = counting
        self._poisoned: str | None = None
        if db.count_delta() != 0:
            restored = self._store.load_persisted()
            if restored is None:
                raise EvaluationError(
                    "RepairService requires an empty delta extent to load, or "
                    "a cleanly flushed persisted assignment store to "
                    "warm-restart from; pass a fresh base instance, or reopen "
                    "a file-backed database whose previous service flushed "
                    "its last batch (a dirty or mismatched store means the "
                    "closure must be re-derived)",
                )
            for assignment in restored:
                self._context.notify(assignment)
            self._load_rounds = 0
            self._load_engine = ENGINE_WARM
            return
        self._store.reset_persisted()
        result = run_closure(
            db,
            self._rules,
            on_assignment=self._store_and_notify,
            max_rounds=max_rounds,
            engine=engine,
            collect_assignments=False,
            context=self._qctx,
        )
        self._store.flush()
        self._load_rounds = result.rounds
        self._load_engine = result.engine

    # -- recording ---------------------------------------------------------

    def _store_and_notify(self, assignment: Assignment) -> bool:
        if not self._store.add(assignment):
            return False
        self._context.notify(assignment)
        return True

    # -- maintenance -------------------------------------------------------

    def apply(
        self,
        inserts: Sequence[Fact] = (),
        deletes: Sequence[Fact] = (),
    ) -> MaintenanceResult:
        """Absorb one batch of base-fact updates, maintaining the closure.

        Deletions run first (DRed over-delete / re-derive), then insertions
        (base-seeded discovery + frontier propagation), so a fact appearing
        in both lists ends up present.  Requested updates that are no-ops
        against the current base instance (inserting a present fact, deleting
        an absent one) are skipped silently — batches are idempotent.
        """
        return self.apply_many([(inserts, deletes)])

    def apply_many(
        self,
        batches: Sequence[Tuple[Sequence[Fact], Sequence[Fact]]],
    ) -> MaintenanceResult:
        """Coalesce many tenants' ``(inserts, deletes)`` streams into one pass.

        The batches are merged into their *net effect* — one op per fact,
        decided by walking the tenants in order with each tenant's deletes
        applied before its inserts (so insert wins within a tenant, and a
        later tenant overrides an earlier one) — and absorbed with a single
        discovery + propagation pass and a single DRed/counting pass, instead
        of one maintenance cycle per tenant.  The closure is a function of
        the final base instance alone (delta programs are monotone), so the
        maintained state equals applying the batches one by one; a fact
        deleted and re-inserted across tenants is left untouched if already
        present (net no-op), like re-inserting a present fact in
        :meth:`apply`.
        """
        if self._poisoned is not None:
            raise ServicePoisonedError(self._poisoned)
        net: dict[Fact, bool] = {}
        for inserts, deletes in batches:
            for item in deletes:
                net[item] = False
            for item in inserts:
                net[item] = True

        self._store.begin_batch()
        try:
            # Refresh the planner's cardinality snapshot so the adaptive
            # re-costing band sees extent drift accumulated across batches.
            self._planner.begin_round()

            removed = []
            for item, is_insert in net.items():
                if is_insert:
                    continue
                stored = self._db.stored_active(item)
                if stored is not None and self._db.drop_active(stored):
                    removed.append(stored)
            if removed:
                overdeleted, rederived, retracted = dred_delete(
                    self._db,
                    self._store,
                    removed,
                    stats=self.stats,
                    counting=self._counting,
                    context=self._qctx,
                )
            else:
                overdeleted, rederived, retracted = set(), set(), set()

            added = []
            for item, is_insert in net.items():
                if not is_insert or self._db.has_active(item):
                    continue
                self._db.insert(item)
                stored = self._db.stored_active(item)
                if stored is not None:
                    added.append(stored)
            rounds = 0
            if added:
                rounds = maintain_insertions(
                    self._db,
                    self._rules,
                    self._planner,
                    self._qctx,
                    self._store_and_notify,
                    added,
                    max_rounds=self._max_rounds,
                )
            self._store.flush()
        except BaseException as error:
            # The base extent may have mutated before the failure: active,
            # delta and store no longer agree.  Poison the service so every
            # later call fails loudly instead of answering from corrupt
            # state; the persistent store's dirty flag stays set, so a torn
            # on-disk state refuses warm restart too.
            self._poisoned = f"{type(error).__name__}: {error}"
            raise

        self.stats.maintained_batches += 1
        return MaintenanceResult(
            inserted=tuple(added),
            deleted=tuple(removed),
            overdeleted=len(overdeleted),
            rederived=len(rederived),
            retracted=frozenset(retracted),
            rounds=rounds,
        )

    # -- point queries -----------------------------------------------------

    def _check_usable(self) -> None:
        if self._poisoned is not None:
            raise ServicePoisonedError(self._poisoned)

    @property
    def poisoned(self) -> bool:
        """True after a failed batch left the maintained state inconsistent."""
        return self._poisoned is not None

    def is_derivable(self, item: Fact) -> bool:
        """Is ``item`` in the maintained closure (the delta extents)?"""
        self._check_usable()
        return self._db.has_delta(item)

    def in_repair(self, item: Fact) -> bool:
        """Does ``item`` survive the end-semantics repair of the current base
        instance?  True for active facts the closure does not delete."""
        self._check_usable()
        return self._db.has_active(item) and not self._db.has_delta(item)

    def repair_deleted(self) -> frozenset:
        """The end-semantics deleted set: closure facts that are active."""
        self._check_usable()
        return frozenset(
            item for item in self._db.all_deltas() if self._db.has_active(item)
        )

    # -- introspection -----------------------------------------------------

    def assignments(self) -> Tuple[Assignment, ...]:
        """Every live satisfying assignment of the maintained closure."""
        return tuple(self._store.assignments())

    @property
    def db(self) -> BaseDatabase:
        """The maintained database (active = base instance, delta = closure)."""
        return self._db

    @property
    def rules(self) -> Tuple[Rule, ...]:
        return tuple(self._rules)

    @property
    def stats(self) -> QueryStats:
        """Shared counters, including ``maintained_batches`` /
        ``overdeleted`` / ``rederived``."""
        return self._context.stats

    @property
    def load_rounds(self) -> int:
        """Rounds the initial closure load took."""
        return self._load_rounds

    @property
    def load_engine(self) -> str:
        """The concrete engine that ran the initial load."""
        return self._load_engine
