"""Compilation of delta-rule bodies to SQL for the SQLite backend.

The paper's prototype evaluates delta rules as SQL queries over PostgreSQL;
this module reproduces that code path on SQLite.  Every body atom becomes a
table alias in the ``FROM`` clause (the active table for base atoms, the delta
table for delta atoms), repeated variables become equality join conditions,
constants and comparison atoms become ``WHERE`` predicates, and the ``SELECT``
list pulls every aliased column plus the ``tid`` labels so that full
:class:`~repro.datalog.evaluation.Assignment` objects can be reconstructed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from repro.datalog.ast import Atom, Comparison, Constant, Rule, Variable
from repro.exceptions import EvaluationError
from repro.storage.facts import Fact
from repro.storage.sqlite_backend import SQLiteDatabase, active_table, delta_table

_SQL_OPS = {"=": "=", "!=": "<>", "<": "<", "<=": "<=", ">": ">", ">=": ">="}


@dataclass(frozen=True)
class CompiledRule:
    """The SQL form of a rule body.

    Attributes
    ----------
    sql:
        A ``SELECT`` statement whose result rows contain, for each body atom
        ``i`` (in body order), its value columns followed by its ``tid``.
    params:
        Bind parameters for the constant predicates.
    atom_arities:
        The arity of each body atom, used to slice result rows back into facts.
    """

    sql: str
    params: tuple[Any, ...]
    atom_arities: tuple[int, ...]


def compile_rule(
    rule: Rule,
    hypothetical_deltas: bool = False,
) -> List[CompiledRule]:
    """Compile ``rule`` into one or more SQL queries.

    In hypothetical mode a delta atom may range over both the active and the
    delta table of its relation; the compiler then emits one query per
    combination of source tables (the union of their results is the assignment
    set).  In normal mode exactly one query is produced.
    """
    delta_positions = [
        index for index, atom in enumerate(rule.body) if atom.is_delta
    ]
    source_choices: List[Dict[int, str]] = [{}]
    if hypothetical_deltas and delta_positions:
        source_choices = []
        for mask in range(2 ** len(delta_positions)):
            choice = {}
            for bit, position in enumerate(delta_positions):
                choice[position] = "active" if (mask >> bit) & 1 else "delta"
            source_choices.append(choice)

    compiled = []
    for choice in source_choices:
        compiled.append(_compile_single(rule, choice))
    return compiled


def _table_for(atom: Atom, index: int, choice: Dict[int, str]) -> str:
    if atom.is_delta:
        source = choice.get(index, "delta")
        if source == "active":
            return active_table(atom.relation)
        return delta_table(atom.relation)
    return active_table(atom.relation)


def _compile_single(rule: Rule, choice: Dict[int, str]) -> CompiledRule:
    aliases = [f"a{i}" for i in range(len(rule.body))]
    select_parts: List[str] = []
    from_parts: List[str] = []
    where: List[str] = []
    params: List[Any] = []
    arities: List[int] = []

    # First column reference of every variable, for join conditions and
    # comparison predicates.
    variable_column: Dict[str, str] = {}

    for index, atom in enumerate(rule.body):
        alias = aliases[index]
        from_parts.append(f"{_table_for(atom, index, choice)} AS {alias}")
        arities.append(atom.arity)
        for position in range(atom.arity):
            select_parts.append(f"{alias}.c{position}")
        select_parts.append(f"{alias}.tid")
        for position, term in enumerate(atom.terms):
            column = f"{alias}.c{position}"
            if isinstance(term, Constant):
                where.append(f"{column} = ?")
                params.append(term.value)
            else:
                assert isinstance(term, Variable)
                if term.name in variable_column:
                    where.append(f"{column} = {variable_column[term.name]}")
                else:
                    variable_column[term.name] = column

    for comparison in rule.comparisons:
        where.append(_compile_comparison(comparison, variable_column, params, rule))

    sql = f"SELECT {', '.join(select_parts)} FROM {', '.join(from_parts)}"
    if where:
        sql += " WHERE " + " AND ".join(where)
    return CompiledRule(sql, tuple(params), tuple(arities))


def _compile_comparison(
    comparison: Comparison,
    variable_column: Dict[str, str],
    params: List[Any],
    rule: Rule,
) -> str:
    def operand(term: Any) -> str:
        if isinstance(term, Variable):
            if term.name not in variable_column:
                raise EvaluationError(
                    f"rule {rule.display_name()}: comparison variable {term.name!r} "
                    "does not occur in any body atom"
                )
            return variable_column[term.name]
        assert isinstance(term, Constant)
        params.append(term.value)
        return "?"

    left = operand(comparison.lhs)
    right = operand(comparison.rhs)
    return f"{left} {_SQL_OPS[comparison.op]} {right}"


def find_assignments_sql(
    db: SQLiteDatabase,
    rule: Rule,
    hypothetical_deltas: bool = False,
):
    """Evaluate ``rule`` over a SQLite-backed database via compiled SQL.

    Returns the same :class:`~repro.datalog.evaluation.Assignment` objects the
    in-memory evaluator produces (up to ordering), so the two backends are
    interchangeable for the semantics implementations.
    """
    from repro.datalog.evaluation import Assignment, ground_head

    assignments = []
    seen: set[tuple] = set()
    for compiled in compile_rule(rule, hypothetical_deltas=hypothetical_deltas):
        cursor = db.execute(compiled.sql, compiled.params)
        for row in cursor.fetchall():
            used = []
            bindings: Dict[str, Any] = {}
            offset = 0
            valid = True
            for atom, arity in zip(rule.body, compiled.atom_arities):
                values = tuple(row[offset : offset + arity])
                tid = row[offset + arity]
                offset += arity + 1
                item = Fact(atom.relation, values, tid=tid)
                used.append((atom, item))
                for term, value in zip(atom.terms, values):
                    if isinstance(term, Variable):
                        if term.name in bindings and bindings[term.name] != value:
                            valid = False
                            break
                        bindings[term.name] = value
                if not valid:
                    break
            if not valid:
                continue
            assignment = Assignment(
                rule=rule,
                bindings=tuple(sorted(bindings.items(), key=lambda kv: kv[0])),
                used=tuple(used),
                derived=ground_head(rule, bindings),
            )
            signature = assignment.signature()
            if signature not in seen:
                seen.add(signature)
                assignments.append(assignment)
    return assignments
