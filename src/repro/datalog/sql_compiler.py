"""Compilation of delta-rule bodies to SQL for the SQLite backend.

The paper's prototype evaluates delta rules as SQL queries over PostgreSQL;
this module reproduces that code path on SQLite.  Every body atom becomes a
table alias in the ``FROM`` clause (the active table for base atoms, the delta
table for delta atoms), repeated variables become equality join conditions,
constants and comparison atoms become ``WHERE`` predicates, and the ``SELECT``
list pulls every aliased column plus the ``tid`` labels so that full
:class:`~repro.datalog.evaluation.Assignment` objects can be reconstructed.

Two compilation schemes are provided:

* :func:`compile_rule` — the naive scheme: one query per rule (one per
  source-table combination in hypothetical mode), used by the full
  re-evaluation oracle and by Algorithm 1's provenance build;
* :func:`compile_frontier_rule` — the semi-naive scheme: delta atoms read the
  generation-stamped frontier tables (``f_R``) and the rule is rewritten into
  one variant per delta atom.  The variant seeded at rank ``i`` joins that
  atom against the current frontier window (``gen > :lo AND gen <= :hi``),
  delta atoms of rank ``< i`` against the pre-frontier (``gen <= :lo``) and
  ranks ``> i`` against everything recorded (``gen <= :hi``), so each new
  assignment is enumerated exactly once per closure.

Every frontier variant carries three execution forms so the semi-naive driver
can evaluate its join **exactly once per round**:

* :attr:`FrontierQuery.install_sql` — fast path: ``INSERT OR IGNORE ...
  SELECT`` over the body join, installing the derived head facts directly
  inside SQLite.  Used when nothing observes the assignments: the body join
  runs once and no row crosses into Python;
* :attr:`FrontierQuery.staged_insert_sql` — staged path, step 1: the same
  body join with every projected column aliased ``s0..sN``, inserted into the
  **persistent keyed stage table** of the variant's width
  (:func:`~repro.storage.sqlite_backend.stage_table_name`), keyed by the
  variant's :attr:`~FrontierQuery.variant_id`.  The table is created once per
  connection (``SQLiteDatabase.ensure_stage_table``) and reused by every
  variant of the same width, so steady-state rounds issue **zero DDL** — the
  per-round cycle is ``DELETE`` (:attr:`~FrontierQuery.stage_delete_sql`) then
  ``INSERT ... SELECT``;
* :attr:`FrontierQuery.staged_install_sql` — staged path, step 2: the install
  re-expressed over the variant's staged rows, so observers (assignment
  collection, provenance builders, stage discovery) and the install both read
  the single join's output instead of re-running it.  Observers read the rows
  back via :attr:`~FrontierQuery.staged_rows_sql`.

Each statement embeds a ``/* repro:<class> */`` tag comment
(:data:`TAG_ASSIGN_SELECT` ...), which the query-counter hooks of
:meth:`~repro.storage.sqlite_backend.SQLiteDatabase.add_statement_hook` use to
assert the single-pass and zero-DDL disciplines from tests and benchmarks.

Frontier variants additionally come in two *lowerings*, selected per rule by
:func:`resolve_plan_kind` (mirroring the in-memory planner's plan kinds):
binary variants keep the comma join and leave ordering to SQLite's optimiser,
while wcoj variants — rules whose join hypergraph is cyclic — pin an explicit
multi-way join order with ``CROSS JOIN`` and ship covering-index DDL
(:attr:`FrontierQuery.wcoj_index_sql`) so each non-leading atom is entered
through a sorted equality prefix, the ordered-join shape of a generic join.
All wcoj statements carry the extra :data:`TAG_WCOJ` tag.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Dict, Iterator, List, Tuple

from repro.datalog.ast import Atom, Comparison, Constant, Rule, Variable
from repro.datalog.planner import (
    PLAN_BINARY,
    PLAN_WCOJ,
    cyclic_core,
    env_forced_plan,
)
from repro.exceptions import EvaluationError
from repro.storage.facts import Fact
from repro.storage.sqlite_backend import (
    SQLiteDatabase,
    active_table,
    delta_table,
    frontier_table,
    stage_table_name,
)

_SQL_OPS = {"=": "=", "!=": "<>", "<": "<", "<=": "<=", ">": ">", ">=": ">="}

#: Statement-tag comments embedded in compiled SQL, one per statement class.
#: Query-counter hooks grep for these to verify the single-pass (and, for the
#: keyed stage tables, zero-DDL) discipline.  ``TAG_STAGE`` marks the keyed
#: ``INSERT INTO _repro_stage_wN ... SELECT`` — one body *join* each;
#: ``TAG_STAGE_DELETE`` / ``TAG_STAGE_ROWS`` mark the per-round key cleanup
#: and the staged-row read-back, both plain scans of the stage table.
TAG_ASSIGN_SELECT = "/* repro:assign-select */"
TAG_STAGE = "/* repro:stage */"
TAG_STAGE_DELETE = "/* repro:stage-delete */"
TAG_STAGE_ROWS = "/* repro:stage-rows */"
TAG_INSTALL_DIRECT = "/* repro:install-direct */"
TAG_INSTALL_STAGED = "/* repro:install-staged */"
TAG_SHARD_SELECT = "/* repro:shard-select */"
TAG_SHARD_INSTALL = "/* repro:shard-install */"

#: Extra tag carried by every statement of a wcoj-lowered variant — the join
#: statements *in addition to* their class tag, and the covering-index DDL of
#: :attr:`FrontierQuery.wcoj_index_sql` on its own.  Statement hooks count it
#: to assert which plan kind a run's SQL actually executed.
TAG_WCOJ = "/* repro:wcoj */"

#: Marker for constant entries of :attr:`FrontierQuery.head_sources`.
HEAD_CONST = "const"

#: Process-wide allocator of :attr:`FrontierQuery.variant_id` keys.  Ids are
#: assigned at compile time and never reused, so two live variants can never
#: collide in a shared stage table.  A rule evicted from the ``lru_cache``
#: and recompiled gets a *fresh* id; the only cost is that rows a caller
#: abandoned mid-iteration under the old id stop being reclaimed by that
#: variant's pre-insert DELETE (completed runs always delete their rows, and
#: per-context caches pin variants against eviction for a context's
#: lifetime).
_variant_ids = itertools.count(1)


@dataclass(frozen=True)
class CompiledRule:
    """The SQL form of a rule body.

    Attributes
    ----------
    sql:
        A ``SELECT`` statement whose result rows contain, for each body atom
        ``i`` (in body order), its value columns followed by its ``tid``.
    params:
        Bind parameters for the constant predicates.
    atom_arities:
        The arity of each body atom, used to slice result rows back into facts.
    """

    sql: str
    params: tuple[Any, ...]
    atom_arities: tuple[int, ...]


def compile_rule(
    rule: Rule,
    hypothetical_deltas: bool = False,
) -> List[CompiledRule]:
    """Compile ``rule`` into one or more SQL queries.

    In hypothetical mode a delta atom may range over both the active and the
    delta table of its relation; the compiler then emits one query per
    combination of source tables (the union of their results is the assignment
    set).  In normal mode exactly one query is produced.
    """
    delta_positions = [index for index, atom in enumerate(rule.body) if atom.is_delta]
    source_choices: List[Dict[int, str]] = [{}]
    if hypothetical_deltas and delta_positions:
        source_choices = []
        for mask in range(2 ** len(delta_positions)):
            choice = {}
            for bit, position in enumerate(delta_positions):
                choice[position] = "active" if (mask >> bit) & 1 else "delta"
            source_choices.append(choice)

    compiled = []
    for choice in source_choices:
        compiled.append(_compile_single(rule, choice))
    return compiled


def _table_for(atom: Atom, index: int, choice: Dict[int, str]) -> str:
    if atom.is_delta:
        source = choice.get(index, "delta")
        if source == "active":
            return active_table(atom.relation)
        return delta_table(atom.relation)
    return active_table(atom.relation)


def _compile_single(rule: Rule, choice: Dict[int, str]) -> CompiledRule:
    aliases = [f"a{i}" for i in range(len(rule.body))]
    select_parts: List[str] = []
    from_parts: List[str] = []
    where: List[str] = []
    params: List[Any] = []
    arities: List[int] = []

    # First column reference of every variable, for join conditions and
    # comparison predicates.
    variable_column: Dict[str, str] = {}

    for index, atom in enumerate(rule.body):
        alias = aliases[index]
        from_parts.append(f"{_table_for(atom, index, choice)} AS {alias}")
        arities.append(atom.arity)
        for position in range(atom.arity):
            select_parts.append(f"{alias}.c{position}")
        select_parts.append(f"{alias}.tid")
        for position, term in enumerate(atom.terms):
            column = f"{alias}.c{position}"
            if isinstance(term, Constant):
                where.append(f"{column} = ?")
                params.append(term.value)
            else:
                assert isinstance(term, Variable)
                if term.name in variable_column:
                    where.append(f"{column} = {variable_column[term.name]}")
                else:
                    variable_column[term.name] = column

    for comparison in rule.comparisons:
        where.append(_compile_comparison(comparison, variable_column, params, rule))

    sql = (
        f"{TAG_ASSIGN_SELECT} SELECT {', '.join(select_parts)} "
        f"FROM {', '.join(from_parts)}"
    )
    if where:
        sql += " WHERE " + " AND ".join(where)
    return CompiledRule(sql, tuple(params), tuple(arities))


def _compile_comparison(
    comparison: Comparison,
    variable_column: Dict[str, str],
    params: List[Any],
    rule: Rule,
) -> str:
    def operand(term: Any) -> str:
        if isinstance(term, Variable):
            if term.name not in variable_column:
                raise EvaluationError(
                    f"rule {rule.display_name()}: comparison variable {term.name!r} "
                    "does not occur in any body atom",
                )
            return variable_column[term.name]
        assert isinstance(term, Constant)
        params.append(term.value)
        return "?"

    left = operand(comparison.lhs)
    right = operand(comparison.rhs)
    return f"{left} {_SQL_OPS[comparison.op]} {right}"


# ---------------------------------------------------------------------------
# Semi-naive (frontier-window) compilation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FrontierQuery:
    """One delta-rewritten variant of a rule for the semi-naive SQL engine.

    The query and install statement use named placeholders: ``:lo`` / ``:hi``
    bound to the frontier generation window at execution time, ``:gen`` (in
    ``install_sql`` only) to the generation stamping this round's new facts,
    and ``:kN`` to the rule's constants (pre-bound in :attr:`params`).

    Attributes
    ----------
    sql:
        ``SELECT`` enumerating the variant's assignments (per-atom value
        columns + ``tid``, in body order — same row shape as
        :class:`CompiledRule`).  The semi-naive driver itself never runs this
        (it reads the staged rows instead); it remains the re-SELECT oracle
        for the staging regression tests and external callers.
    install_sql:
        Fast path: ``INSERT OR IGNORE INTO f_H ... SELECT DISTINCT <head>,
        NULL, :gen`` over the body join, installing the derived head facts
        into the head relation's frontier table without leaving SQLite.
    staged_insert_sql:
        The body join with every projected column aliased ``s0..sN``,
        inserted into the keyed stage table of this variant's width under
        ``:variant`` (pre-bound to :attr:`variant_id`).  One body join per
        execution; the table itself persists across rounds and runs.
    staged_rows_sql:
        Read-back of this variant's staged rows (a keyed scan, no join).
    stage_delete_sql:
        Per-round cleanup of this variant's key in the stage table.
    staged_install_sql:
        The install re-expressed over the variant's staged rows (a keyed scan
        of the stage table, no base-table join).
    params:
        The pre-bound parameters, as ``(name, value)`` pairs: the rule's
        constants (``kN``) plus the stage key (``variant``).
    atom_arities:
        Arity of each body atom, for row-to-assignment reconstruction.
    seed:
        Body index of the frontier-seeded delta atom, or None for the
        round-1 full variant.
    seed_relation:
        Relation of the seed atom (None for the full variant); the driver
        skips a variant when that relation's frontier is empty.
    stage_table:
        Name of the keyed stage table this variant stages into (shared by
        every variant of the same :attr:`stage_width`).
    stage_width:
        Number of projected (staged) columns of the body join.
    variant_id:
        The variant's key into :attr:`stage_table` (process-wide unique).
    sharded_sql:
        :attr:`sql` restricted to one hash partition of the shard axis: the
        body join with ``rowid % :nshards = :shard`` (normalised to a
        non-negative residue) on :attr:`shard_alias` appended.  The union of
        the results over ``shard = 0 .. :nshards - 1`` is exactly the
        unsharded result — every row of the shard-axis table falls in one
        partition — so the sharded driver evaluates each variant's join once
        per round *in total*, split across shards.
    sharded_heads_sql:
        ``SELECT DISTINCT <head exprs>`` over the same sharded body join —
        the fast-path form: only the derived head facts cross into Python,
        deduplicated per shard (cross-shard duplicates die in the
        ``INSERT OR IGNORE`` of :attr:`head_insert_sql`).
    sharded_install_sql:
        :attr:`install_sql` restricted to one shard: the install-only fast
        path for *sequential* shard execution (no reader connections — an
        in-memory database or a single worker), where the primary connection
        can run the partitioned join and the install as one statement and no
        row ever crosses into Python.
    head_insert_sql:
        ``INSERT OR IGNORE INTO f_H (c0.., tid, gen) VALUES (?, .., NULL, ?)``
        — the executemany install the sharded driver runs on the *primary*
        connection over the merged shard rows; bind one ``(*head_values,
        gen)`` tuple per row.
    head_sources:
        How to reconstruct the head-fact values from one assignment row of
        :attr:`sql` / :attr:`sharded_sql`: a tuple with one entry per head
        position — ``("col", index)`` picks the row column at ``index``,
        ``(HEAD_CONST, value)`` is a constant head term.  Mirrors the head
        expressions of :attr:`staged_install_sql`, so the sharded staged
        path installs the same facts the staged SQL install would.
    shard_alias:
        The body alias carrying the shard predicate: the seed atom for
        seeded variants (partitioning the frontier window), the first body
        atom for the round-1 full variant.
    plan_kind:
        The lowering this variant was compiled under (``"binary"`` comma
        join or ``"wcoj"`` ordered ``CROSS JOIN``); see
        :func:`resolve_plan_kind`.
    wcoj_index_sql:
        For wcoj variants, the ``CREATE INDEX IF NOT EXISTS`` statements
        (tagged :data:`TAG_WCOJ`) backing every non-leading atom of the
        explicit join order with a covering index — equality-bound columns
        first, the ``gen`` window next for frontier tables, then the covered
        remainder and ``tid``.  Drivers run them once per connection via
        :meth:`~repro.storage.sqlite_backend.SQLiteDatabase.ensure_wcoj_indexes`
        before the variant's first execution.  Empty for binary variants.
    """

    sql: str
    install_sql: str
    staged_insert_sql: str
    staged_rows_sql: str
    stage_delete_sql: str
    staged_install_sql: str
    params: tuple[tuple[str, Any], ...]
    atom_arities: tuple[int, ...]
    seed: int | None
    seed_relation: str | None
    stage_table: str
    stage_width: int
    variant_id: int
    sharded_sql: str
    sharded_heads_sql: str
    sharded_install_sql: str
    head_insert_sql: str
    head_sources: tuple[tuple[str, Any], ...]
    shard_alias: str
    plan_kind: str = PLAN_BINARY
    wcoj_index_sql: tuple[str, ...] = ()

    def bind(self, **window: int) -> Dict[str, Any]:
        """The full parameter mapping for one execution of the variant."""
        return {**dict(self.params), **window}

    def head_values(self, row: tuple) -> tuple:
        """The head-fact values one assignment row derives (see
        :attr:`head_sources`)."""
        return tuple(
            value if kind == HEAD_CONST else row[value]
            for kind, value in self.head_sources
        )


def resolve_plan_kind(rule: Rule) -> str:
    """Plan kind the SQL lowering uses for ``rule``.

    The SQL compiler runs ahead of any live cardinalities, so the decision is
    structural where the in-memory :class:`~repro.datalog.planner.JoinPlanner`
    is cost-based: a rule whose join hypergraph keeps a cyclic core under GYO
    reduction (:func:`~repro.datalog.planner.cyclic_core`) lowers to the wcoj
    form, acyclic rules to the binary comma join.  ``REPRO_FORCE_PLAN``
    overrides the structural choice exactly as it does in the planner; rules
    with fewer than two body atoms have no join and are always binary.
    """
    if len(rule.body) < 2:
        return PLAN_BINARY
    forced = env_forced_plan()
    if forced is not None:
        return forced
    return PLAN_WCOJ if cyclic_core(rule) else PLAN_BINARY


def compile_frontier_rule(
    rule: Rule, plan_kind: str | None = None,
) -> tuple[FrontierQuery, tuple[FrontierQuery, ...]]:
    """Compile ``rule`` for the semi-naive engine.

    Returns ``(full, seeded)``: the round-1 variant whose delta atoms all read
    ``gen <= :hi``, plus one frontier-seeded variant per delta atom (empty for
    rules without delta atoms, which can only fire in round 1).

    ``plan_kind`` selects the lowering (``"binary"`` comma join vs ``"wcoj"``
    ordered ``CROSS JOIN``); None resolves it via :func:`resolve_plan_kind`.
    Both kinds are cached independently, so a context that re-decides a rule's
    kind at a round boundary swaps variants without recompiling.
    """
    if plan_kind is None:
        plan_kind = resolve_plan_kind(rule)
    elif plan_kind == PLAN_WCOJ and len(rule.body) < 2:
        plan_kind = PLAN_BINARY
    return _compile_frontier_rule_cached(rule, plan_kind)


@lru_cache(maxsize=1024)
def _compile_frontier_rule_cached(
    rule: Rule, kind: str,
) -> tuple[FrontierQuery, tuple[FrontierQuery, ...]]:
    full = _compile_frontier_variant(rule, seed=None, kind=kind)
    seeded = tuple(
        _compile_frontier_variant(rule, seed=index, kind=kind)
        for index, atom in enumerate(rule.body)
        if atom.is_delta
    )
    return full, seeded


def _wcoj_join_order(rule: Rule, seed: int | None) -> List[int]:
    """Explicit multi-way join order for the wcoj lowering.

    Starts at the seed atom (the frontier window is the outermost loop, as on
    the binary path) or at the first body atom for the full variant, then
    greedily appends the atom sharing the most already-bound variables —
    ties broken towards cyclic-core atoms, then body order — so every later
    table is entered through the equality prefix its covering index sorts on.
    """
    body = rule.body
    core = set(cyclic_core(rule))
    start = seed if seed is not None else 0
    order = [start]
    bound = set(body[start].variable_names())
    remaining = [index for index in range(len(body)) if index != start]
    while remaining:
        best = min(
            remaining,
            key=lambda index: (
                -len(bound & body[index].variable_names()),
                0 if index in core else 1,
                index,
            ),
        )
        order.append(best)
        bound |= set(body[best].variable_names())
        remaining.remove(best)
    return order


def _compile_frontier_variant(
    rule: Rule, seed: int | None, kind: str = PLAN_BINARY,
) -> FrontierQuery:
    delta_positions = [index for index, atom in enumerate(rule.body) if atom.is_delta]
    seed_rank = delta_positions.index(seed) if seed is not None else None

    select_parts: List[str] = []
    from_parts: List[str] = []
    where: List[str] = []
    params: List[tuple[str, Any]] = []
    arities: List[int] = []
    variable_column: Dict[str, str] = {}
    #: Staged alias (``sN``) of every projected ``aI.cJ`` / ``aI.tid`` column.
    staged_column: Dict[str, str] = {}

    def project(expression: str) -> None:
        staged_column[expression] = f"s{len(select_parts)}"
        select_parts.append(expression)

    def constant_param(value: Any) -> str:
        name = f"k{len(params)}"
        params.append((name, value))
        return f":{name}"

    for index, atom in enumerate(rule.body):
        alias = f"a{index}"
        arities.append(atom.arity)
        if atom.is_delta:
            from_parts.append(f"{frontier_table(atom.relation)} AS {alias}")
            rank = delta_positions.index(index)
            if seed_rank is None:
                where.append(f"{alias}.gen <= :hi")
            elif rank == seed_rank:
                where.append(f"{alias}.gen > :lo AND {alias}.gen <= :hi")
            elif rank < seed_rank:
                where.append(f"{alias}.gen <= :lo")
            else:
                where.append(f"{alias}.gen <= :hi")
        else:
            from_parts.append(f"{active_table(atom.relation)} AS {alias}")
        for position in range(atom.arity):
            project(f"{alias}.c{position}")
        project(f"{alias}.tid")
        for position, term in enumerate(atom.terms):
            column = f"{alias}.c{position}"
            if isinstance(term, Constant):
                where.append(f"{column} = {constant_param(term.value)}")
            else:
                assert isinstance(term, Variable)
                if term.name in variable_column:
                    where.append(f"{column} = {variable_column[term.name]}")
                else:
                    variable_column[term.name] = column

    for comparison in rule.comparisons:
        def operand(term: Any) -> str:
            if isinstance(term, Variable):
                if term.name not in variable_column:
                    raise EvaluationError(
                        f"rule {rule.display_name()}: comparison variable "
                        f"{term.name!r} does not occur in any body atom",
                    )
                return variable_column[term.name]
            assert isinstance(term, Constant)
            return constant_param(term.value)

        where.append(
            f"{operand(comparison.lhs)} {_SQL_OPS[comparison.op]} "
            f"{operand(comparison.rhs)}",
        )

    # The wcoj lowering pins an explicit multi-way join order with CROSS JOIN
    # (SQLite keeps the written order for CROSS JOIN) and backs every
    # non-leading atom with a covering index whose prefix is exactly the
    # columns equality-bound by the time the atom is entered — the multi-way
    # ordered-join shape of a generic join.  Binary variants keep the comma
    # join and leave the order to SQLite's optimiser.
    wcoj_index_sql: tuple[str, ...] = ()
    wcoj_tag = ""
    if kind == PLAN_WCOJ:
        wcoj_tag = f" {TAG_WCOJ}"
        join_order = _wcoj_join_order(rule, seed)
        from_sql = " CROSS JOIN ".join(from_parts[index] for index in join_order)
        indexes: List[str] = []
        bound_vars = set(rule.body[join_order[0]].variable_names())
        for index in join_order[1:]:
            atom = rule.body[index]
            table = (
                frontier_table(atom.relation)
                if atom.is_delta
                else active_table(atom.relation)
            )
            eq_positions: List[int] = []
            rest_positions: List[int] = []
            for position, term in enumerate(atom.terms):
                if isinstance(term, Constant) or term.name in bound_vars:
                    eq_positions.append(position)
                else:
                    rest_positions.append(position)
            columns = [f"c{position}" for position in eq_positions]
            if atom.is_delta:
                # The gen window is a range predicate: it sorts after the
                # equality prefix, ahead of the covered remainder.
                columns.append("gen")
            columns.extend(f"c{position}" for position in rest_positions)
            columns.append("tid")
            name = f"wcoj_{table}__{'_'.join(columns)}"
            indexes.append(
                f"{TAG_WCOJ} CREATE INDEX IF NOT EXISTS {name} "
                f"ON {table} ({', '.join(columns)})",
            )
            bound_vars |= set(atom.variable_names())
        wcoj_index_sql = tuple(dict.fromkeys(indexes))
    else:
        from_sql = ", ".join(from_parts)

    where_sql = (" WHERE " + " AND ".join(where)) if where else ""
    body_sql = f"FROM {from_sql}{where_sql}"
    sql = f"{TAG_ASSIGN_SELECT}{wcoj_tag} SELECT {', '.join(select_parts)} {body_sql}"

    # Shard axis: the seed atom (its frontier window is what the sharded
    # driver partitions) or, for the full round-1 variant, the first body
    # atom.  The residue is normalised because SQLite's ``%`` keeps the sign
    # of the dividend and rowid-aliased INTEGER PRIMARY KEY columns may hold
    # negative values.
    shard_alias = f"a{seed}" if seed is not None else "a0"
    shard_predicate = (
        f"(({shard_alias}.rowid % :nshards) + :nshards) % :nshards = :shard"
    )
    sharded_body_sql = (
        f"FROM {from_sql} WHERE " + " AND ".join([*where, shard_predicate])
    )
    sharded_sql = (
        f"{TAG_SHARD_SELECT}{wcoj_tag} SELECT {', '.join(select_parts)} "
        f"{sharded_body_sql}"
    )

    variant_id = next(_variant_ids)
    stage_width = len(select_parts)
    stage_table = stage_table_name(stage_width)
    staged_columns = ", ".join(staged_column[expr] for expr in select_parts)
    staged_insert_sql = (
        f"{TAG_STAGE}{wcoj_tag} INSERT INTO {stage_table} "
        f"(variant_id, {staged_columns}) "
        f"SELECT :variant, {', '.join(select_parts)} {body_sql}"
    )
    staged_rows_sql = (
        f"{TAG_STAGE_ROWS} SELECT {staged_columns} FROM {stage_table} "
        "WHERE variant_id = :variant"
    )
    stage_delete_sql = (
        f"{TAG_STAGE_DELETE} DELETE FROM {stage_table} WHERE variant_id = :variant"
    )

    head_exprs: List[str] = []
    staged_head_exprs: List[str] = []
    head_sources: List[tuple[str, Any]] = []
    for term in rule.head.terms:
        if isinstance(term, Variable):
            if term.name not in variable_column:
                raise EvaluationError(
                    f"rule {rule.display_name()}: head variable {term.name!r} "
                    "is unbound",
                )
            column = variable_column[term.name]
            head_exprs.append(column)
            staged_head_exprs.append(staged_column[column])
            # ``sN`` aliases are allocated in select-list order, so the alias
            # suffix doubles as the row index of the projected column.
            head_sources.append(("col", int(staged_column[column][1:])))
        else:
            assert isinstance(term, Constant)
            placeholder = constant_param(term.value)
            head_exprs.append(placeholder)
            staged_head_exprs.append(placeholder)
            head_sources.append((HEAD_CONST, term.value))
    head_columns = ", ".join(
        [*(f"c{i}" for i in range(rule.head.arity)), "tid", "gen"],
    )
    install_into = (
        f"INSERT OR IGNORE INTO {frontier_table(rule.head.relation)} "
        f"({head_columns}) "
    )
    install_sql = (
        f"{TAG_INSTALL_DIRECT}{wcoj_tag} {install_into}"
        f"SELECT DISTINCT {', '.join(head_exprs)}, NULL, :gen {body_sql}"
    )
    staged_install_sql = (
        f"{TAG_INSTALL_STAGED} {install_into}"
        f"SELECT DISTINCT {', '.join(staged_head_exprs)}, NULL, :gen "
        f"FROM {stage_table} WHERE variant_id = :variant"
    )
    sharded_heads_sql = (
        f"{TAG_SHARD_SELECT}{wcoj_tag} SELECT DISTINCT {', '.join(head_exprs)} "
        f"{sharded_body_sql}"
    )
    sharded_install_sql = (
        f"{TAG_SHARD_INSTALL}{wcoj_tag} {install_into}"
        f"SELECT DISTINCT {', '.join(head_exprs)}, NULL, :gen {sharded_body_sql}"
    )
    head_insert_sql = (
        f"{TAG_SHARD_INSTALL} {install_into}VALUES ("
        + ", ".join(["?"] * rule.head.arity)
        + ", NULL, ?)"
    )

    seed_atom = rule.body[seed] if seed is not None else None
    return FrontierQuery(
        sql=sql,
        install_sql=install_sql,
        staged_insert_sql=staged_insert_sql,
        staged_rows_sql=staged_rows_sql,
        stage_delete_sql=stage_delete_sql,
        staged_install_sql=staged_install_sql,
        params=(*params, ("variant", variant_id)),
        atom_arities=tuple(arities),
        seed=seed,
        seed_relation=seed_atom.relation if seed_atom is not None else None,
        stage_table=stage_table,
        stage_width=stage_width,
        variant_id=variant_id,
        sharded_sql=sharded_sql,
        sharded_heads_sql=sharded_heads_sql,
        sharded_install_sql=sharded_install_sql,
        head_insert_sql=head_insert_sql,
        head_sources=tuple(head_sources),
        shard_alias=shard_alias,
        plan_kind=kind,
        wcoj_index_sql=wcoj_index_sql,
    )


def delta_copy_sql(relation: str, arity: int) -> str:
    """Statement promoting one generation of frontier rows into the delta table.

    Run after a round's installs with the same ``:gen`` so that ``d_R`` keeps
    mirroring ``f_R`` (the generic delta extent never lags the frontier).
    """
    columns = ", ".join([*(f"c{i}" for i in range(arity)), "tid"])
    return (
        f"INSERT OR IGNORE INTO {delta_table(relation)} ({columns}) "
        f"SELECT {columns} FROM {frontier_table(relation)} WHERE gen = :gen"
    )


# ---------------------------------------------------------------------------
# Row → Assignment reconstruction (shared by the naive and semi-naive paths)
# ---------------------------------------------------------------------------


def assignments_from_rows(
    rule: Rule, atom_arities: Tuple[int, ...], rows: Iterator[tuple],
) -> Iterator["Assignment"]:
    """Rebuild :class:`~repro.datalog.evaluation.Assignment` objects from rows.

    Each row holds, per body atom in body order, the atom's value columns
    followed by its ``tid``.  Repeated-variable consistency is re-checked in
    Python as a guard against SQLite's type-affinity coercions.
    """
    from repro.datalog.evaluation import Assignment, ground_head

    for row in rows:
        used = []
        bindings: Dict[str, Any] = {}
        offset = 0
        valid = True
        for atom, arity in zip(rule.body, atom_arities):
            values = tuple(row[offset : offset + arity])
            tid = row[offset + arity]
            offset += arity + 1
            item = Fact(atom.relation, values, tid=tid)
            used.append((atom, item))
            for term, value in zip(atom.terms, values):
                if isinstance(term, Variable):
                    if term.name in bindings and bindings[term.name] != value:
                        valid = False
                        break
                    bindings[term.name] = value
            if not valid:
                break
        if not valid:
            continue
        yield Assignment(
            rule=rule,
            bindings=tuple(sorted(bindings.items(), key=lambda kv: kv[0])),
            used=tuple(used),
            derived=ground_head(rule, bindings),
        )


def find_assignments_sql(
    db: SQLiteDatabase,
    rule: Rule,
    hypothetical_deltas: bool = False,
):
    """Evaluate ``rule`` over a SQLite-backed database via compiled SQL.

    Returns the same :class:`~repro.datalog.evaluation.Assignment` objects the
    in-memory evaluator produces (up to ordering), so the two backends are
    interchangeable for the semantics implementations.
    """
    assignments = []
    seen: set[tuple] = set()
    for compiled in compile_rule(rule, hypothetical_deltas=hypothetical_deltas):
        cursor = db.execute(compiled.sql, compiled.params)
        for assignment in assignments_from_rows(
            rule, compiled.atom_arities, cursor,
        ):
            signature = assignment.signature()
            if signature not in seen:
                seen.add(signature)
                assignments.append(assignment)
    return assignments
