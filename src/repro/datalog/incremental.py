"""Incremental maintenance of delta closures under base-fact insert/delete streams.

Everything else in the engine is batch: any change to the base instance means
re-running the fixpoint from scratch.  This module maintains the closure —
the delta extents, the set of satisfying assignments, and therefore the
end-semantics repair outcome — **incrementally** across small update batches,
the machinery behind :class:`repro.service.RepairService`:

* **insertions** reuse the existing delta/frontier discipline.  A batch of
  new base facts is absorbed in two phases: a *base-seeded* phase enumerates
  every assignment using at least one new base fact (stratified over the
  eligible body positions exactly like the semi-naive rank stratification, so
  each assignment is found once), then the facts those assignments derive are
  marked and the standard frontier propagation takes over — the in-memory
  token loop of :mod:`repro.datalog.seminaive` or the generation-window
  driver of :mod:`repro.datalog.sql_seminaive`, both untouched;
* **deletions** run DRed-style over-delete / re-derive
  (:func:`dred_delete`) against an :class:`AssignmentStore` that indexes
  every live assignment by the facts it uses: dropping a base fact kills the
  assignments using it, the facts they derived are over-deleted transitively,
  and a re-derivation fixpoint rescues every fact that still has a derivation
  avoiding the deleted facts.  Facts that stay dead are retracted from the
  delta extent (:meth:`~repro.storage.database.BaseDatabase.retract_delta`),
  including their frontier bookkeeping, so a later batch can re-derive them
  through a fresh frontier entry.

Delta programs are monotone (no negation), so deletions only ever shrink the
closure and insertions only ever grow it — DRed is exact here, not an
approximation.  After every batch the maintained state equals a from-scratch
fixpoint on the updated base instance; the differential suite
(``tests/test_incremental.py``) checks closures, tids, assignment signatures
and repair outcomes against exactly that oracle on both backends.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Iterable, List, Set, Tuple

from repro.datalog.ast import Rule
from repro.datalog.context import EvalContext
from repro.datalog.evaluation import Assignment, _match_atom, planned_search
from repro.datalog.planner import JoinPlanner
from repro.storage.database import BaseDatabase
from repro.storage.facts import Fact
from repro.storage.sqlite_backend import SQLiteDatabase

#: Signature of the recording callback the maintenance drivers feed: returns
#: True when the assignment was new (first sighting in the store), in which
#: case its derived fact joins the propagation frontier.
RecordFn = Callable[[Assignment], bool]


class AssignmentStore:
    """All live satisfying assignments, indexed by the facts they touch.

    The store is the maintenance layer's provenance structure: one entry per
    assignment signature, with three fact-level indexes —

    * :meth:`base_users` — assignments using a fact at a *base* (non-delta)
      body atom; invalidated permanently when the fact leaves the active
      extent;
    * :meth:`delta_users` — assignments using a fact at a *delta* body atom;
      invalidated when the fact is retracted from the delta extent;
    * :meth:`supports` — assignments *deriving* a fact; a delta fact stays
      derivable exactly as long as one support remains whose delta facts are
      all alive.

    Fact equality ignores tids (set semantics), so lookups work with or
    without a tuple identifier.
    """

    __slots__ = ("_by_signature", "_by_base", "_by_delta", "_support")

    def __init__(self) -> None:
        self._by_signature: Dict[tuple, Assignment] = {}
        self._by_base: Dict[Fact, Set[tuple]] = {}
        self._by_delta: Dict[Fact, Set[tuple]] = {}
        self._support: Dict[Fact, Set[tuple]] = {}

    def __len__(self) -> int:
        return len(self._by_signature)

    def __contains__(self, signature: tuple) -> bool:
        return signature in self._by_signature

    def get(self, signature: tuple) -> Assignment | None:
        """The stored assignment with this signature, or None."""
        return self._by_signature.get(signature)

    def assignments(self) -> Iterable[Assignment]:
        """Every live assignment (iteration order is insertion order)."""
        return self._by_signature.values()

    def add(self, assignment: Assignment) -> bool:
        """Index ``assignment``; returns False when its signature is known."""
        signature = assignment.signature()
        if signature in self._by_signature:
            return False
        self._by_signature[signature] = assignment
        for atom, item in assignment.used:
            index = self._by_delta if atom.is_delta else self._by_base
            index.setdefault(item, set()).add(signature)
        self._support.setdefault(assignment.derived, set()).add(signature)
        return True

    def remove(self, signature: tuple) -> Assignment | None:
        """Drop one assignment and unindex it; None when already absent."""
        assignment = self._by_signature.pop(signature, None)
        if assignment is None:
            return None
        for atom, item in assignment.used:
            index = self._by_delta if atom.is_delta else self._by_base
            bucket = index.get(item)
            if bucket is not None:
                bucket.discard(signature)
                if not bucket:
                    del index[item]
        bucket = self._support.get(assignment.derived)
        if bucket is not None:
            bucket.discard(signature)
            if not bucket:
                del self._support[assignment.derived]
        return assignment

    def base_users(self, item: Fact) -> Tuple[tuple, ...]:
        """Signatures of assignments using ``item`` at a base atom."""
        return tuple(self._by_base.get(item, ()))

    def delta_users(self, item: Fact) -> Tuple[tuple, ...]:
        """Signatures of assignments using ``item`` at a delta atom."""
        return tuple(self._by_delta.get(item, ()))

    def supports(self, item: Fact) -> Tuple[tuple, ...]:
        """Signatures of assignments deriving ``item``."""
        return tuple(self._support.get(item, ()))


# ---------------------------------------------------------------------------
# Insertions: base-seeded discovery + frontier propagation
# ---------------------------------------------------------------------------


def seeded_insert_assignments(
    db: BaseDatabase,
    rule: Rule,
    new_by_relation: Dict[str, Set[Fact]],
    planner: JoinPlanner,
) -> List[Assignment]:
    """Assignments of ``rule`` using at least one newly inserted base fact.

    The insert-side mirror of
    :func:`repro.datalog.seminaive.seeded_rank_assignments`, seeding *base*
    atoms from the batch of new active facts instead of delta atoms from the
    frontier.  Exactly-once comes from the same rank stratification: the
    enumeration is split by the first eligible body position matched to a new
    fact, with earlier eligible positions restricted to pre-batch facts.
    Delta atoms match the current delta extent — the closure *before* the
    batch — so assignments needing a freshly derived delta fact are left to
    the frontier propagation that follows.
    """
    body = rule.body
    eligible = [
        index
        for index, atom in enumerate(body)
        if not atom.is_delta and new_by_relation.get(atom.relation)
    ]
    results: List[Assignment] = []
    for rank, seed_index in enumerate(eligible):
        seed_atom = body[seed_index]
        pre_batch = set(eligible[:rank])
        plan = planner.plan(rule, seed=seed_index)

        def candidates_for(index, atom, fixed, pre_batch=pre_batch):
            facts = db.candidates(atom.relation, fixed, delta=atom.is_delta)
            if index in pre_batch:
                fresh = new_by_relation.get(atom.relation)
                if fresh:
                    return (item for item in facts if item not in fresh)
            return facts

        for item in new_by_relation[seed_atom.relation]:
            bindings = _match_atom(seed_atom, item, {})
            if bindings is None:
                continue
            planned_search(
                rule, plan.order, 1, bindings, [(seed_index, item)], set(),
                results, candidates_for,
            )
    return results


def propagate_marks(
    db: BaseDatabase,
    rules: Iterable[Rule],
    planner: JoinPlanner,
    context: EvalContext,
    record: RecordFn,
    seeds: Iterable[Fact],
) -> int:
    """Mark ``seeds`` as fresh delta facts and run frontier rounds to fixpoint.

    ``record`` receives every assignment the propagation enumerates and
    returns True for first sightings — only those contribute their derived
    fact to the next round's frontier.  ``context`` must be an observer-free
    query context (:meth:`EvalContext.query_context`): on SQLite the
    discovery path would otherwise deliver assignments to observers a second
    time, outside the caller's deduplication.  Returns the number of frontier
    rounds run.
    """
    delta_rules = [
        rule for rule in rules if any(atom.is_delta for atom in rule.body)
    ]
    if isinstance(db, SQLiteDatabase):
        return _propagate_sql(db, delta_rules, context, record, seeds)
    return _propagate_memory(db, delta_rules, planner, record, seeds)


def _propagate_memory(
    db: BaseDatabase,
    delta_rules: List[Rule],
    planner: JoinPlanner,
    record: RecordFn,
    seeds: Iterable[Fact],
) -> int:
    from repro.datalog.seminaive import Frontier, seeded_assignments

    relations = sorted(
        {atom.relation for rule in delta_rules for atom in rule.body if atom.is_delta}
    )
    tokens = {relation: db.delta_token(relation) for relation in relations}
    for item in seeds:
        db.mark_deleted(item)
    rounds = 0
    while True:
        frontier: Frontier = {}
        for relation in relations:
            added = db.delta_added_since(relation, tokens[relation])
            tokens[relation] = db.delta_token(relation)
            if added:
                frontier[relation] = set(added)
        if not frontier:
            return rounds
        rounds += 1
        planner.begin_round()
        derived: List[Fact] = []
        for rule in delta_rules:
            for assignment in seeded_assignments(db, rule, frontier, planner):
                if record(assignment):
                    derived.append(assignment.derived)
        for item in derived:
            db.mark_deleted(item)


def _propagate_sql(
    db: SQLiteDatabase,
    delta_rules: List[Rule],
    context: EvalContext,
    record: RecordFn,
    seeds: Iterable[Fact],
) -> int:
    from repro.datalog.sql_seminaive import seeded_assignments_sql

    lo = db.generation()
    for item in seeds:
        db.mark_deleted(item)
    hi = db.generation()
    rounds = 0
    while hi > lo:
        rounds += 1
        derived: List[Fact] = []
        for rule in delta_rules:
            # Materialise before marking: the streaming SELECT must not see
            # writes mid-cursor.
            batch = list(seeded_assignments_sql(db, rule, lo, hi, context))
            for assignment in batch:
                if record(assignment):
                    derived.append(assignment.derived)
        for item in derived:
            db.mark_deleted(item)
        lo, hi = hi, db.generation()
    return rounds


def maintain_insertions(
    db: BaseDatabase,
    rules: Iterable[Rule],
    planner: JoinPlanner,
    context: EvalContext,
    record: RecordFn,
    new_facts: Iterable[Fact],
) -> int:
    """Absorb a batch of already-inserted base facts into the closure.

    ``new_facts`` must already be in the active extent (as stored, with
    tids).  Returns the number of frontier propagation rounds the batch
    needed.
    """
    new_by_relation: Dict[str, Set[Fact]] = {}
    for item in new_facts:
        new_by_relation.setdefault(item.relation, set()).add(item)
    if not new_by_relation:
        return 0
    seeds: List[Fact] = []
    for rule in rules:
        for assignment in seeded_insert_assignments(
            db, rule, new_by_relation, planner
        ):
            if record(assignment) and not db.has_delta(assignment.derived):
                seeds.append(assignment.derived)
    return propagate_marks(db, rules, planner, context, record, seeds)


# ---------------------------------------------------------------------------
# Deletions: DRed over-delete / re-derive
# ---------------------------------------------------------------------------


def dred_delete(
    db: BaseDatabase,
    store: AssignmentStore,
    removed: Iterable[Fact],
    stats=None,
) -> Tuple[Set[Fact], Set[Fact], Set[Fact]]:
    """Propagate base-fact deletions through the closure, DRed-style.

    ``removed`` are base facts already dropped from the active extent.  Three
    passes:

    1. assignments using a removed fact at a base atom are invalid forever —
       they leave the store, and the facts they derived seed the over-delete;
    2. *over-delete*: every fact with a derivation transitively touching a
       seeded fact at a delta atom is a deletion candidate;
    3. *re-derive*: a candidate survives when some remaining support uses
       only alive delta facts (its base facts are still active — every
       base-invalidated assignment left the store in pass 1).  Facts that
       stay dead are retracted from the delta extent and every assignment
       using them at a delta atom leaves the store.

    Returns ``(overdeleted, rederived, retracted)``; delta programs are
    monotone, so the result is exact — retracted facts are precisely the
    closure difference.
    """
    work: deque[Fact] = deque()
    for item in removed:
        for signature in store.base_users(item):
            assignment = store.remove(signature)
            if assignment is not None:
                work.append(assignment.derived)

    overdeleted: Set[Fact] = set()
    while work:
        item = work.popleft()
        if item in overdeleted:
            continue
        overdeleted.add(item)
        for signature in store.delta_users(item):
            user = store.get(signature)
            if user is not None:
                work.append(user.derived)

    rederived: Set[Fact] = set()
    changed = True
    while changed:
        changed = False
        for item in overdeleted:
            if item in rederived:
                continue
            for signature in store.supports(item):
                assignment = store.get(signature)
                if assignment is None:
                    continue
                if all(
                    used not in overdeleted or used in rederived
                    for used in assignment.delta_facts()
                ):
                    rederived.add(item)
                    changed = True
                    break

    retracted = overdeleted - rederived
    for item in retracted:
        db.retract_delta(item)
        for signature in store.delta_users(item):
            store.remove(signature)
    if stats is not None:
        stats.overdeleted += len(overdeleted)
        stats.rederived += len(rederived)
    return overdeleted, rederived, retracted
