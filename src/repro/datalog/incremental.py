"""Incremental maintenance of delta closures under base-fact insert/delete streams.

Everything else in the engine is batch: any change to the base instance means
re-running the fixpoint from scratch.  This module maintains the closure —
the delta extents, the set of satisfying assignments, and therefore the
end-semantics repair outcome — **incrementally** across small update batches,
the machinery behind :class:`repro.service.RepairService`:

* **insertions** reuse the existing delta/frontier discipline.  A batch of
  new base facts is absorbed in two phases: a *base-seeded* phase enumerates
  every assignment using at least one new base fact (stratified over the
  eligible body positions exactly like the semi-naive rank stratification, so
  each assignment is found once), then the facts those assignments derive are
  marked and the standard frontier propagation takes over — the in-memory
  token loop of :mod:`repro.datalog.seminaive` or the generation-window
  driver of :mod:`repro.datalog.sql_seminaive`, both untouched;
* **deletions** run DRed-style over-delete / re-derive
  (:func:`dred_delete`) against an :class:`AssignmentStore` that indexes
  every live assignment by the facts it uses: dropping a base fact kills the
  assignments using it, the facts they derived are over-deleted transitively,
  and a re-derivation fixpoint rescues every fact that still has a derivation
  avoiding the deleted facts.  Facts that stay dead are retracted from the
  delta extent (:meth:`~repro.storage.database.BaseDatabase.retract_delta`),
  including their frontier bookkeeping, so a later batch can re-derive them
  through a fresh frontier entry.

Delta programs are monotone (no negation), so deletions only ever shrink the
closure and insertions only ever grow it — DRed is exact here, not an
approximation.  After every batch the maintained state equals a from-scratch
fixpoint on the updated base instance; the differential suite
(``tests/test_incremental.py``) checks closures, tids, assignment signatures
and repair outcomes against exactly that oracle on both backends.

Sharded maintenance
-------------------

When the evaluation context opts in
(:meth:`~repro.datalog.context.EvalContext.wants_shard_maintenance` — the
``shard_maintenance`` knob or the ``REPRO_SHARD_MAINTENANCE`` environment
variable), all three per-batch drivers hash-partition their work over the
same reference-counted worker-pool leases the sharded closure engine uses
(:mod:`repro.datalog.sharded`):

* insert discovery fans each (rule, eligible position)'s seed facts across
  :func:`~repro.datalog.sharded.fact_shard` partitions — on file-backed
  SQLite the per-shard joins probe read-only reader-connection views
  (:meth:`~repro.storage.sqlite_backend.SQLiteDatabase.reader_views`), in
  memory they read the shared indexes directly;
* frontier propagation reuses the sharded round machinery: in-memory frontier
  token partitions per (rule, rank), SQLite ``rowid % :nshards`` windows of
  the compiled seeded variants on reader connections, with every install
  (``mark_deleted``) serialised on the primary connection;
* the DRed over-delete BFS runs level-synchronously and the re-derive
  fixpoint sweep-synchronously, each wave scanning one fact partition of the
  (frozen, read-only) assignment store per job; the counting fast path never
  shards.

Workers only ever read; every mutation happens on the merge thread.  Both
the serial and the sharded drivers sort each (rule, round) batch into the
canonical :func:`~repro.datalog.sharded.assignment_replay_order` before
recording, so the record stream — and with it the observer stream, the
assignment-store aid order, the persisted ``_repro_assign*`` rows and the
SQLite generation stamps — is byte-identical at any shard/worker count,
including the serial drivers.  The differential suites assert exactly that.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from typing import Callable, Dict, Iterable, List, Sequence, Set, Tuple

from repro.datalog.ast import Rule
from repro.datalog.context import EvalContext
from repro.datalog.evaluation import (
    Assignment,
    _match_atom,
    ground_head,
    planned_search,
)
from repro.datalog.planner import JoinPlanner
from repro.datalog.sharded import (
    _run_wave,
    assignment_replay_order,
    partition_facts,
)
from repro.exceptions import EvaluationError, StorageError
from repro.storage.database import BaseDatabase
from repro.storage.facts import Fact
from repro.storage.sqlite_backend import TAG_ASSIGN, SQLiteDatabase


def _maintenance_fanout(context: EvalContext | None) -> Tuple[int, int] | None:
    """``(nshards, workers)`` when ``context`` opts into sharded maintenance.

    None — run the serial drivers — when no context is given, the context
    does not opt in, or a single shard would make partitioning pure overhead.
    """
    if context is None or not context.wants_shard_maintenance():
        return None
    nshards = context.shard_count()
    if nshards <= 1:
        return None
    return nshards, context.worker_count()

#: Signature of the recording callback the maintenance drivers feed: returns
#: True when the assignment was new (first sighting in the store), in which
#: case its derived fact joins the propagation frontier.
RecordFn = Callable[[Assignment], bool]


class AssignmentStore:
    """All live satisfying assignments, indexed by the facts they touch.

    The store is the maintenance layer's provenance structure: one entry per
    assignment signature, with three fact-level indexes —

    * :meth:`base_users` — assignments using a fact at a *base* (non-delta)
      body atom; invalidated permanently when the fact leaves the active
      extent;
    * :meth:`delta_users` — assignments using a fact at a *delta* body atom;
      invalidated when the fact is retracted from the delta extent;
    * :meth:`supports` — assignments *deriving* a fact; a delta fact stays
      derivable exactly as long as one support remains whose delta facts are
      all alive.

    Alongside the signature sets, the store maintains a per-fact **base-only
    support count** (:meth:`base_only_supports`): the number of supports whose
    rule body contains no delta atom.  Those derivations depend only on the
    active base instance, so after the DRed base-invalidation pass a positive
    count proves the fact alive without any over-delete/re-derive — the
    counting fast path of :func:`dred_delete`.  Counting *total* supports
    would be unsound under recursion (facts in a cycle support each other
    without being grounded in base facts); the base-only partition is the
    well-founded fragment.

    Fact equality ignores tids (set semantics), so lookups work with or
    without a tuple identifier.
    """

    __slots__ = ("_by_signature", "_by_base", "_by_delta", "_support", "_base_only")

    def __init__(self) -> None:
        self._by_signature: Dict[tuple, Assignment] = {}
        self._by_base: Dict[Fact, Set[tuple]] = {}
        self._by_delta: Dict[Fact, Set[tuple]] = {}
        self._support: Dict[Fact, Set[tuple]] = {}
        self._base_only: Dict[Fact, int] = {}

    def __len__(self) -> int:
        return len(self._by_signature)

    def __contains__(self, signature: tuple) -> bool:
        return signature in self._by_signature

    def get(self, signature: tuple) -> Assignment | None:
        """The stored assignment with this signature, or None."""
        return self._by_signature.get(signature)

    def assignments(self) -> Iterable[Assignment]:
        """Every live assignment (iteration order is insertion order)."""
        return self._by_signature.values()

    def add(self, assignment: Assignment) -> bool:
        """Index ``assignment``; returns False when its signature is known."""
        signature = assignment.signature()
        if signature in self._by_signature:
            return False
        self._by_signature[signature] = assignment
        base_only = True
        for atom, item in assignment.used:
            if atom.is_delta:
                base_only = False
            index = self._by_delta if atom.is_delta else self._by_base
            index.setdefault(item, set()).add(signature)
        self._support.setdefault(assignment.derived, set()).add(signature)
        if base_only:
            self._base_only[assignment.derived] = (
                self._base_only.get(assignment.derived, 0) + 1
            )
        return True

    def remove(self, signature: tuple) -> Assignment | None:
        """Drop one assignment and unindex it; None when already absent."""
        assignment = self._by_signature.pop(signature, None)
        if assignment is None:
            return None
        base_only = True
        for atom, item in assignment.used:
            if atom.is_delta:
                base_only = False
            index = self._by_delta if atom.is_delta else self._by_base
            bucket = index.get(item)
            if bucket is not None:
                bucket.discard(signature)
                if not bucket:
                    del index[item]
        bucket = self._support.get(assignment.derived)
        if bucket is not None:
            bucket.discard(signature)
            if not bucket:
                del self._support[assignment.derived]
        if base_only:
            count = self._base_only.get(assignment.derived, 0) - 1
            if count > 0:
                self._base_only[assignment.derived] = count
            else:
                self._base_only.pop(assignment.derived, None)
        return assignment

    def base_users(self, item: Fact) -> Tuple[tuple, ...]:
        """Signatures of assignments using ``item`` at a base atom."""
        return tuple(self._by_base.get(item, ()))

    def delta_users(self, item: Fact) -> Tuple[tuple, ...]:
        """Signatures of assignments using ``item`` at a delta atom."""
        return tuple(self._by_delta.get(item, ()))

    def supports(self, item: Fact) -> Tuple[tuple, ...]:
        """Signatures of assignments deriving ``item``."""
        return tuple(self._support.get(item, ()))

    def base_only_supports(self, item: Fact) -> int:
        """Live supports of ``item`` whose rule body uses no delta atom."""
        return self._base_only.get(item, 0)

    # -- persistence hooks (no-ops for the in-memory store) -----------------

    def load_persisted(self) -> "List[Assignment] | None":
        """Reload previously persisted assignments, in original record order.

        The in-memory store has no durable mirror, so this always returns
        None; :class:`PersistentAssignmentStore` overrides it.
        """
        return None

    def reset_persisted(self) -> None:
        """Drop any persisted state before a fresh closure load (no-op here)."""

    def begin_batch(self) -> None:
        """Mark the durable mirror dirty before a mutating batch (no-op here)."""

    def flush(self) -> None:
        """Persist buffered changes and clear the dirty mark (no-op here)."""


def program_fingerprint(rules: Iterable[Rule]) -> str:
    """A stable digest of a rule list, for warm-restart validation.

    Includes each rule's display identity (name + text), so a persisted
    assignment store is only reloaded under the exact program that wrote it —
    assignment signatures key on full rule identity.
    """
    payload = "\n".join(f"{rule.name!r}|{rule}" for rule in rules)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class PersistentAssignmentStore(AssignmentStore):
    """An :class:`AssignmentStore` with a durable SQLite mirror.

    The in-memory indexes stay the hot read path — every lookup the
    maintenance passes issue is unchanged — while adds and removes are also
    buffered and flushed to the ``_repro_assign*`` tables of the backing
    :class:`~repro.storage.sqlite_backend.SQLiteDatabase` (same connection,
    batched ``executemany`` inside one transaction per flush, riding the
    backend's autocommit discipline).  One row per assignment
    (``_repro_assign``: rule index + the used facts' values/tids in body
    order; atoms are implied by the rule body, so nothing structural is
    serialised) plus the three fact-level edge tables mirroring
    :meth:`~AssignmentStore.base_users` / :meth:`~AssignmentStore.delta_users`
    / :meth:`~AssignmentStore.supports` (fact keys exclude tids, matching
    :class:`~repro.storage.facts.Fact` equality).

    Durability protocol: ``_repro_assign_meta`` holds the program fingerprint
    and a **dirty flag**.  :meth:`begin_batch` sets the flag (one autocommit
    statement) before any batch mutation; :meth:`flush` applies the buffered
    writes and clears it in the same transaction.  A process killed
    mid-batch therefore leaves the flag set, and :meth:`load_persisted`
    refuses the warm restart instead of reloading torn state.
    """

    __slots__ = (
        "_db",
        "_rules",
        "_rule_ids",
        "_fingerprint",
        "_aids",
        "_next_aid",
        "_pending_add",
        "_pending_remove",
        "_loading",
        "_dirty",
    )

    #: Schema version of the ``_repro_assign*`` layout; bump on layout changes
    #: so stale stores are rebuilt instead of misread.
    VERSION = "1"

    def __init__(self, db: SQLiteDatabase, rules: Iterable[Rule]) -> None:
        super().__init__()
        self._db = db
        self._rules = list(rules)
        self._rule_ids = {rule: index for index, rule in enumerate(self._rules)}
        self._fingerprint = program_fingerprint(self._rules)
        self._aids: Dict[tuple, int] = {}
        self._next_aid = 1
        self._pending_add: Dict[int, Assignment] = {}
        self._pending_remove: Set[int] = set()
        self._loading = False
        self._dirty = False
        db.ensure_assignment_tables()

    # -- serialisation -------------------------------------------------------

    @staticmethod
    def _fact_key(item: Fact) -> str:
        """Canonical text key for a fact (tid excluded, like Fact equality)."""
        return json.dumps([item.relation, list(item.values)], separators=(",", ":"))

    @staticmethod
    def _used_payload(assignment: Assignment) -> str:
        """The used facts' values + tids, in body order (atoms are implied)."""
        return json.dumps(
            [[*item.values, item.tid] for _, item in assignment.used],
            separators=(",", ":"),
        )

    def _reconstruct(self, rule_index: int, used_rows: list) -> Assignment:
        """Rebuild an :class:`Assignment` from one persisted row."""
        if not 0 <= rule_index < len(self._rules):
            raise StorageError(
                f"persistent assignment store references unknown rule index "
                f"{rule_index} (program has {len(self._rules)} rules)",
            )
        rule = self._rules[rule_index]
        if len(used_rows) != len(rule.body):
            raise StorageError(
                f"persistent assignment store row for rule "
                f"{rule.display_name()} has {len(used_rows)} used facts, "
                f"expected {len(rule.body)}",
            )
        bindings: Dict = {}
        used = []
        for atom, row in zip(rule.body, used_rows):
            item = Fact(atom.relation, tuple(row[:-1]), tid=row[-1])
            extended = _match_atom(atom, item, bindings)
            if extended is None:
                raise StorageError(
                    "persistent assignment store row does not unify with "
                    f"rule {rule.display_name()} (corrupted store?)",
                )
            bindings = extended
            used.append((atom, item))
        return Assignment(
            rule=rule,
            bindings=tuple(sorted(bindings.items(), key=lambda kv: kv[0])),
            used=tuple(used),
            derived=ground_head(rule, bindings),
        )

    # -- store API (write-through) ------------------------------------------

    def add(self, assignment: Assignment) -> bool:
        if not super().add(assignment):
            return False
        aid = self._next_aid
        self._next_aid += 1
        self._aids[assignment.signature()] = aid
        if not self._loading:
            self._pending_add[aid] = assignment
        return True

    def remove(self, signature: tuple) -> Assignment | None:
        assignment = super().remove(signature)
        if assignment is None:
            return None
        aid = self._aids.pop(signature)
        if self._pending_add.pop(aid, None) is None:
            # Only persisted rows need a durable delete; an assignment added
            # and removed inside the same unflushed window never hits disk.
            self._pending_remove.add(aid)
        return assignment

    # -- durability protocol -------------------------------------------------

    def load_persisted(self) -> List[Assignment] | None:
        """Reload the persisted store, or None when it cannot be trusted.

        Refuses (returns None) when the meta table is missing or records a
        different layout version, a different program fingerprint, or a set
        dirty flag (torn batch).  On success the in-memory indexes are rebuilt
        and the assignments are returned in their original record order — the
        caller replays them to observers, preserving the exactly-once
        delivery contract across restarts.
        """
        if (
            self._db.assignment_meta("version") != self.VERSION
            or self._db.assignment_meta("fingerprint") != self._fingerprint
            or self._db.assignment_meta("dirty") != "0"
        ):
            return None
        rows = self._db.execute(
            f"{TAG_ASSIGN} SELECT aid, rule, used FROM _repro_assign ORDER BY aid",
        ).fetchall()
        restored: List[Assignment] = []
        self._loading = True
        try:
            for aid, rule_index, used_text in rows:
                assignment = self._reconstruct(rule_index, json.loads(used_text))
                if not AssignmentStore.add(self, assignment):
                    raise StorageError(
                        "persistent assignment store contains duplicate "
                        "assignment signatures (corrupted store?)",
                    )
                self._aids[assignment.signature()] = int(aid)
                restored.append(assignment)
        finally:
            self._loading = False
        self._next_aid = max(self._aids.values(), default=0) + 1
        return restored

    def reset_persisted(self) -> None:
        """Clear the durable mirror before a fresh closure load.

        Leaves the dirty flag **set**: the load that follows streams adds into
        the pending buffer, and only the post-load :meth:`flush` marks the
        store consistent.  A crash mid-load therefore reads as torn.
        """
        for table in (
            "_repro_assign",
            "_repro_assign_base",
            "_repro_assign_delta",
            "_repro_assign_support",
            "_repro_assign_meta",
        ):
            self._db.execute(f"{TAG_ASSIGN} DELETE FROM {table}")
        self._db.set_assignment_meta("version", self.VERSION)
        self._db.set_assignment_meta("fingerprint", self._fingerprint)
        self._db.set_assignment_meta("dirty", "1")
        self._dirty = True

    def begin_batch(self) -> None:
        if not self._dirty:
            self._db.set_assignment_meta("dirty", "1")
            self._dirty = True

    def flush(self) -> None:
        if not (self._pending_add or self._pending_remove or self._dirty):
            return
        self._db.execute(f"{TAG_ASSIGN} BEGIN IMMEDIATE")
        try:
            if self._pending_remove:
                removals = [(aid,) for aid in sorted(self._pending_remove)]
                for table in (
                    "_repro_assign",
                    "_repro_assign_base",
                    "_repro_assign_delta",
                    "_repro_assign_support",
                ):
                    self._db.executemany(
                        f"{TAG_ASSIGN} DELETE FROM {table} WHERE aid = ?", removals,
                    )
            if self._pending_add:
                assign_rows = []
                base_rows = []
                delta_rows = []
                support_rows = []
                for aid in sorted(self._pending_add):
                    assignment = self._pending_add[aid]
                    assign_rows.append(
                        (
                            aid,
                            self._rule_ids[assignment.rule],
                            self._used_payload(assignment),
                        ),
                    )
                    base_only = 1
                    for atom, item in assignment.used:
                        key = self._fact_key(item)
                        if atom.is_delta:
                            base_only = 0
                            delta_rows.append((aid, key))
                        else:
                            base_rows.append((aid, key))
                    support_rows.append(
                        (aid, self._fact_key(assignment.derived), base_only),
                    )
                self._db.executemany(
                    f"{TAG_ASSIGN} INSERT INTO _repro_assign VALUES (?, ?, ?)",
                    assign_rows,
                )
                self._db.executemany(
                    f"{TAG_ASSIGN} INSERT INTO _repro_assign_base VALUES (?, ?)",
                    base_rows,
                )
                self._db.executemany(
                    f"{TAG_ASSIGN} INSERT INTO _repro_assign_delta VALUES (?, ?)",
                    delta_rows,
                )
                self._db.executemany(
                    f"{TAG_ASSIGN} INSERT INTO _repro_assign_support VALUES (?, ?, ?)",
                    support_rows,
                )
            self._db.set_assignment_meta("dirty", "0")
        except BaseException:
            self._db.execute(f"{TAG_ASSIGN} ROLLBACK")
            raise
        self._db.execute(f"{TAG_ASSIGN} COMMIT")
        self._pending_add.clear()
        self._pending_remove.clear()
        self._dirty = False


def make_assignment_store(
    db: BaseDatabase, rules: Iterable[Rule],
) -> AssignmentStore:
    """The assignment store matching ``db``'s backend.

    SQLite databases (``:memory:`` or file-backed) get the durable
    :class:`PersistentAssignmentStore`; everything else gets the plain
    in-memory :class:`AssignmentStore`.  Only file-backed databases can
    actually warm-restart, but persisting on ``:memory:`` keeps the write
    path uniformly exercised and costs one batched transaction per flush.
    """
    if isinstance(db, SQLiteDatabase):
        return PersistentAssignmentStore(db, rules)
    return AssignmentStore()


# ---------------------------------------------------------------------------
# Insertions: base-seeded discovery + frontier propagation
# ---------------------------------------------------------------------------


def seeded_position_assignments(
    source,
    rule: Rule,
    new_by_relation: Dict[str, Set[Fact]],
    planner: JoinPlanner,
    rank: int,
    eligible: Sequence[int],
    seed_facts: Iterable[Fact],
) -> List[Assignment]:
    """One eligible position's slice of the insert-discovery enumeration.

    The insert-side mirror of
    :func:`repro.datalog.seminaive.seeded_rank_assignments`: the seed facts
    are passed explicitly so callers can restrict them to a subset — the
    sharded maintenance path hands each worker one hash partition of the
    position's new facts, and the union over a partition equals the
    position's full result.  ``source`` is the candidate window the join
    probes: the database itself, or a read-only
    :class:`~repro.storage.sqlite_backend.SQLiteReaderView` when the caller
    runs this on a worker thread.  ``rule``'s plan must already be cached
    (``planner.plan(rule, seed=eligible[rank])`` on the calling thread)
    before worker threads enter.
    """
    body = rule.body
    seed_index = eligible[rank]
    seed_atom = body[seed_index]
    pre_batch = set(eligible[:rank])
    plan = planner.plan(rule, seed=seed_index)

    def candidates_for(index, atom, fixed, pre_batch=pre_batch):
        facts = source.candidates(atom.relation, fixed, delta=atom.is_delta)
        if index in pre_batch:
            fresh = new_by_relation.get(atom.relation)
            if fresh:
                return (item for item in facts if item not in fresh)
        return facts

    results: List[Assignment] = []
    for item in seed_facts:
        bindings = _match_atom(seed_atom, item, {})
        if bindings is None:
            continue
        planned_search(
            rule, plan.order, 1, bindings, [(seed_index, item)], set(),
            results, candidates_for,
        )
    return results


def seeded_insert_assignments(
    db: BaseDatabase,
    rule: Rule,
    new_by_relation: Dict[str, Set[Fact]],
    planner: JoinPlanner,
    context: EvalContext | None = None,
) -> List[Assignment]:
    """Assignments of ``rule`` using at least one newly inserted base fact.

    The insert-side mirror of
    :func:`repro.datalog.seminaive.seeded_rank_assignments`, seeding *base*
    atoms from the batch of new active facts instead of delta atoms from the
    frontier.  Exactly-once comes from the same rank stratification: the
    enumeration is split by the first eligible body position matched to a new
    fact, with earlier eligible positions restricted to pre-batch facts.
    Delta atoms match the current delta extent — the closure *before* the
    batch — so assignments needing a freshly derived delta fact are left to
    the frontier propagation that follows.

    When ``context`` opts into sharded maintenance, each eligible position's
    seed facts are hash-partitioned and the per-partition joins fan out over
    the worker pool (read-only reader views on file-backed SQLite, the shared
    indexes in memory; in-memory SQLite has no sibling connections, so its
    partitions run inline).  Serial or sharded, the returned list is sorted
    into :func:`~repro.datalog.sharded.assignment_replay_order` — identical
    streams at any shard/worker count.
    """
    body = rule.body
    eligible = [
        index
        for index, atom in enumerate(body)
        if not atom.is_delta and new_by_relation.get(atom.relation)
    ]
    fanout = _maintenance_fanout(context)
    if fanout is None:
        results: List[Assignment] = []
        for rank in range(len(eligible)):
            results.extend(
                seeded_position_assignments(
                    db, rule, new_by_relation, planner, rank, eligible,
                    new_by_relation[body[eligible[rank]].relation],
                ),
            )
        return sorted(results, key=assignment_replay_order)

    nshards, workers = fanout
    views = db.reader_views(workers) if isinstance(db, SQLiteDatabase) else None
    if isinstance(db, SQLiteDatabase) and views is None:
        # In-memory SQLite: no sibling connections — the partitions still run
        # (same accounting, same merge order), inline on the primary.
        workers = 1

    def run_partition(slot: int, rank: int, seeds: List[Fact]):
        source = views[slot] if views is not None else db
        return seeded_position_assignments(
            source, rule, new_by_relation, planner, rank, eligible, seeds,
        )

    jobs = []
    for rank in range(len(eligible)):
        # Plans are built on the calling thread before the wave is submitted;
        # workers only ever hit the cache.
        planner.plan(rule, seed=eligible[rank])
        partitions = partition_facts(
            new_by_relation[body[eligible[rank]].relation], nshards,
        )
        for partition in partitions:
            if not partition:
                continue
            slot = len(jobs) % max(workers, 1)
            jobs.append(
                lambda s=slot, k=rank, seeds=partition: run_partition(s, k, seeds),
            )
    merged: List[Assignment] = []
    for results in _run_wave(jobs, workers):
        merged.extend(results)
    if context is not None:
        context.stats.maint_discovery_shards += len(jobs)
    return sorted(merged, key=assignment_replay_order)


def _check_round_cap(rounds: int, max_rounds: int | None) -> None:
    """Raise the closure engines' non-convergence error past the round cap."""
    if max_rounds is not None and rounds > max_rounds:
        raise EvaluationError(
            f"closure did not converge within {max_rounds} rounds",
        )


def propagate_marks(
    db: BaseDatabase,
    rules: Iterable[Rule],
    planner: JoinPlanner,
    context: EvalContext,
    record: RecordFn,
    seeds: Iterable[Fact],
    max_rounds: int | None = None,
) -> int:
    """Mark ``seeds`` as fresh delta facts and run frontier rounds to fixpoint.

    ``record`` receives every assignment the propagation enumerates and
    returns True for first sightings — only those contribute their derived
    fact to the next round's frontier.  ``context`` must be an observer-free
    query context (:meth:`EvalContext.query_context`): on SQLite the
    discovery path would otherwise deliver assignments to observers a second
    time, outside the caller's deduplication.  ``max_rounds`` caps the
    frontier rounds exactly like the closure engines, raising the same
    :class:`~repro.exceptions.EvaluationError`.  Returns the number of
    frontier rounds run.

    Each (rule, round) batch is recorded in
    :func:`~repro.datalog.sharded.assignment_replay_order`; when the context
    opts into sharded maintenance the rounds reuse the sharded closure
    machinery (frontier token partitions in memory, ``rowid % :nshards``
    variant windows on reader connections on SQLite) and merge into the same
    order, so the record stream never depends on the shard/worker count.
    """
    delta_rules = [rule for rule in rules if any(atom.is_delta for atom in rule.body)]
    fanout = _maintenance_fanout(context)
    if isinstance(db, SQLiteDatabase):
        return _propagate_sql(
            db, delta_rules, context, record, seeds, max_rounds, fanout,
        )
    return _propagate_memory(
        db, delta_rules, planner, context, record, seeds, max_rounds, fanout,
    )


def _propagate_memory(
    db: BaseDatabase,
    delta_rules: List[Rule],
    planner: JoinPlanner,
    context: EvalContext | None,
    record: RecordFn,
    seeds: Iterable[Fact],
    max_rounds: int | None,
    fanout: Tuple[int, int] | None,
) -> int:
    from repro.datalog.seminaive import (
        Frontier,
        delta_body_positions,
        seeded_assignments,
        seeded_rank_assignments,
    )

    relations = sorted(
        {atom.relation for rule in delta_rules for atom in rule.body if atom.is_delta},
    )
    tokens = {relation: db.delta_token(relation) for relation in relations}
    for item in seeds:
        db.mark_deleted(item)
    rounds = 0
    while True:
        frontier: Frontier = {}
        for relation in relations:
            added = db.delta_added_since(relation, tokens[relation])
            tokens[relation] = db.delta_token(relation)
            if added:
                frontier[relation] = set(added)
        if not frontier:
            return rounds
        rounds += 1
        _check_round_cap(rounds, max_rounds)
        planner.begin_round()
        derived: List[Fact] = []
        for rule in delta_rules:
            if fanout is None:
                batch = list(seeded_assignments(db, rule, frontier, planner))
            else:
                # The sharded closure's round machinery: partition each
                # rank's frontier seeds, one read-only join job per
                # non-empty partition, plans pre-built on the merge thread.
                nshards, workers = fanout
                jobs = []
                for rank, seed_index in enumerate(delta_body_positions(rule)):
                    seed_facts = frontier.get(rule.body[seed_index].relation)
                    if not seed_facts:
                        continue
                    planner.plan(rule, seed=seed_index)
                    for partition in partition_facts(seed_facts, nshards):
                        if not partition:
                            continue
                        jobs.append(
                            lambda r=rule, k=rank, i=seed_index, s=partition:
                            seeded_rank_assignments(
                                db, r, frontier, planner, k, i, s
                            ),
                        )
                batch = []
                for results in _run_wave(jobs, workers):
                    batch.extend(results)
                if context is not None:
                    context.stats.maint_propagate_shards += len(jobs)
            for assignment in sorted(batch, key=assignment_replay_order):
                if record(assignment):
                    derived.append(assignment.derived)
        for item in derived:
            db.mark_deleted(item)


def _sharded_seeded_sql(
    db: SQLiteDatabase,
    rule: Rule,
    lo: int,
    hi: int,
    context: EvalContext,
    nshards: int,
    workers: int,
    readers,
) -> List[Assignment]:
    """One rule's seeded-variant assignments for ``(lo, hi]``, shard-split.

    The maintenance mirror of the sharded closure's shard wave: every seeded
    variant's ``sharded_sql`` runs once per ``rowid % :nshards`` partition —
    concurrently on the leased worker pool when reader connections exist,
    inline on the primary otherwise — and the merge thread reconstructs the
    assignments in (variant, shard) order.  The union over shards equals the
    unsharded :func:`~repro.datalog.sql_seminaive.seeded_assignments_sql`
    result for the same window.
    """
    from repro.datalog.sql_compiler import assignments_from_rows

    _, seeded = context.frontier_variants(rule)
    if not seeded:
        return []
    window = {"lo": lo, "hi": hi}
    for variant in seeded:
        # wcoj covering indexes must be committed on the primary connection
        # before any reader runs the variant's partitioned join.
        if variant.wcoj_index_sql:
            db.ensure_wcoj_indexes(variant.wcoj_index_sql)

    def job(slot: int, items: List[Tuple[int, int]]):
        connection = readers[slot] if readers is not None else None
        results: Dict[Tuple[int, int], list] = {}
        for variant_index, shard in items:
            variant = seeded[variant_index]
            bind = variant.bind(nshards=nshards, shard=shard, **window)
            if connection is not None:
                cursor = connection.execute(variant.sharded_sql, bind)
                results[(variant_index, shard)] = cursor.fetchall()
            else:
                results[(variant_index, shard)] = db.execute(
                    variant.sharded_sql, bind,
                ).fetchall()
        return results

    items = [
        (variant_index, shard)
        for variant_index in range(len(seeded))
        for shard in range(nshards)
    ]
    if readers is not None:
        slices = [items[slot::workers] for slot in range(workers)]
        slices = [chunk for chunk in slices if chunk]
        waves = _run_wave(
            [
                (lambda s=slot, c=chunk: job(s, c))
                for slot, chunk in enumerate(slices)
            ],
            workers,
        )
        by_key: Dict[Tuple[int, int], list] = {}
        for result in waves:
            by_key.update(result)
        # Reader connections bypass ``db.execute``; replay the statements to
        # the hooks from the merge thread so counters stay coherent.
        for variant_index, _shard in items:
            db.notify_statement_hooks(seeded[variant_index].sharded_sql)
    else:
        by_key = job(0, items)
    context.stats.maint_propagate_shards += len(items)
    batch: List[Assignment] = []
    for variant_index, variant in enumerate(seeded):
        for shard in range(nshards):
            batch.extend(
                assignments_from_rows(
                    rule, variant.atom_arities, by_key[(variant_index, shard)]
                ),
            )
    return batch


def _propagate_sql(
    db: SQLiteDatabase,
    delta_rules: List[Rule],
    context: EvalContext,
    record: RecordFn,
    seeds: Iterable[Fact],
    max_rounds: int | None,
    fanout: Tuple[int, int] | None,
) -> int:
    from repro.datalog.sql_seminaive import seeded_assignments_sql

    readers = None
    if fanout is not None:
        nshards, workers = fanout
        readers = db.reader_connections(workers) if workers > 1 else None
    lo = db.generation()
    for item in seeds:
        db.mark_deleted(item)
    hi = db.generation()
    rounds = 0
    while hi > lo:
        rounds += 1
        _check_round_cap(rounds, max_rounds)
        derived: List[Fact] = []
        for rule in delta_rules:
            # Materialise before marking: the streaming SELECT must not see
            # writes mid-cursor (and the canonical sort needs the full batch).
            if fanout is None:
                batch = list(seeded_assignments_sql(db, rule, lo, hi, context))
            else:
                batch = _sharded_seeded_sql(
                    db, rule, lo, hi, context, nshards, workers, readers,
                )
            for assignment in sorted(batch, key=assignment_replay_order):
                if record(assignment):
                    derived.append(assignment.derived)
        for item in derived:
            db.mark_deleted(item)
        lo, hi = hi, db.generation()
    return rounds


def maintain_insertions(
    db: BaseDatabase,
    rules: Iterable[Rule],
    planner: JoinPlanner,
    context: EvalContext,
    record: RecordFn,
    new_facts: Iterable[Fact],
    max_rounds: int | None = None,
) -> int:
    """Absorb a batch of already-inserted base facts into the closure.

    ``new_facts`` must already be in the active extent (as stored, with
    tids).  ``max_rounds`` caps the frontier propagation like the closure
    engines.  Returns the number of frontier propagation rounds the batch
    needed.  When ``context`` opts into sharded maintenance, both the
    discovery joins and the propagation rounds fan out over the worker pool
    (see the module docstring) with an unchanged record stream.
    """
    new_by_relation: Dict[str, Set[Fact]] = {}
    for item in new_facts:
        new_by_relation.setdefault(item.relation, set()).add(item)
    if not new_by_relation:
        return 0
    seeds: List[Fact] = []
    for rule in rules:
        for assignment in seeded_insert_assignments(
            db, rule, new_by_relation, planner, context,
        ):
            if record(assignment) and not db.has_delta(assignment.derived):
                seeds.append(assignment.derived)
    return propagate_marks(
        db, rules, planner, context, record, seeds, max_rounds,
    )


# ---------------------------------------------------------------------------
# Deletions: DRed over-delete / re-derive
# ---------------------------------------------------------------------------


def _overdelete_scan(
    store: AssignmentStore, items: List[Fact], counting: bool,
) -> List[Tuple[Fact, List[Fact]]]:
    """One partition's read-only over-delete step: survivors and successors.

    For each fact of the partition not provably alive by counting, returns
    the fact together with the derived facts of its delta users — the next
    BFS level's candidates.  Pure store reads; safe on a worker thread while
    the store is frozen for the wave.
    """
    out: List[Tuple[Fact, List[Fact]]] = []
    for item in items:
        if counting and store.base_only_supports(item) > 0:
            # Provably alive: some support uses surviving base facts only, so
            # neither this fact nor (through it) its delta users can retract.
            continue
        successors: List[Fact] = []
        for signature in store.delta_users(item):
            user = store.get(signature)
            if user is not None:
                successors.append(user.derived)
        out.append((item, successors))
    return out


def _rederive_scan(
    store: AssignmentStore,
    items: List[Fact],
    overdeleted: Set[Fact],
    rederived: Set[Fact],
) -> List[Fact]:
    """One partition's read-only re-derive sweep against a frozen snapshot."""
    out: List[Fact] = []
    for item in items:
        for signature in store.supports(item):
            assignment = store.get(signature)
            if assignment is None:
                continue
            if all(
                used not in overdeleted or used in rederived
                for used in assignment.delta_facts()
            ):
                out.append(item)
                break
    return out


def _sharded_overdelete(
    store: AssignmentStore,
    killed: List[Fact],
    counting: bool,
    fanout: Tuple[int, int],
    stats,
) -> Set[Fact]:
    """Level-synchronous over-delete BFS, one fact partition per job.

    Each level partitions its unvisited candidates by
    :func:`~repro.datalog.sharded.fact_shard`; workers run the read-only
    :func:`_overdelete_scan` (nothing mutates the store during a wave) and
    the merge thread folds the survivors in.  The same skip conditions as
    the serial deque BFS — already visited, or provably alive by counting —
    give the same over-deleted set: support counts never change mid-BFS, so
    check timing is immaterial.
    """
    nshards, workers = fanout
    overdeleted: Set[Fact] = set()
    frontier: List[Fact] = list(killed)
    while frontier:
        level = [item for item in dict.fromkeys(frontier) if item not in overdeleted]
        if not level:
            break
        jobs = []
        for partition in partition_facts(level, nshards):
            if partition:
                jobs.append(
                    lambda items=partition: _overdelete_scan(
                        store, items, counting
                    ),
                )
        frontier = []
        for results in _run_wave(jobs, workers):
            for item, successors in results:
                overdeleted.add(item)
                frontier.extend(successors)
        if stats is not None:
            stats.maint_dred_shards += len(jobs)
    return overdeleted


def _sharded_rederive(
    store: AssignmentStore,
    overdeleted: Set[Fact],
    fanout: Tuple[int, int],
    stats,
) -> Set[Fact]:
    """Sweep-synchronous re-derive fixpoint over frozen snapshots.

    Each sweep partitions the not-yet-rescued candidates and checks them
    against the (overdeleted, rederived) state frozen at sweep start; newly
    rescued facts join ``rederived`` on the merge thread between sweeps.
    The serial loop applies the same monotone operator with finer-grained
    visibility, so both reach the identical least fixpoint.
    """
    nshards, workers = fanout
    rederived: Set[Fact] = set()
    changed = True
    while changed:
        changed = False
        candidates = [item for item in overdeleted if item not in rederived]
        jobs = []
        for partition in partition_facts(candidates, nshards):
            if partition:
                jobs.append(
                    lambda items=partition: _rederive_scan(
                        store, items, overdeleted, rederived
                    ),
                )
        for results in _run_wave(jobs, workers):
            for item in results:
                rederived.add(item)
                changed = True
        if stats is not None and jobs:
            stats.maint_dred_shards += len(jobs)
    return rederived


def dred_delete(
    db: BaseDatabase,
    store: AssignmentStore,
    removed: Iterable[Fact],
    stats=None,
    counting: bool = True,
    context: EvalContext | None = None,
) -> Tuple[Set[Fact], Set[Fact], Set[Fact]]:
    """Propagate base-fact deletions through the closure, DRed-style.

    ``removed`` are base facts already dropped from the active extent.  Three
    passes:

    1. assignments using a removed fact at a base atom are invalid forever —
       they leave the store, and the facts they derived seed the over-delete;
    2. *over-delete*: every fact with a derivation transitively touching a
       seeded fact at a delta atom is a deletion candidate;
    3. *re-derive*: a candidate survives when some remaining support uses
       only alive delta facts (its base facts are still active — every
       base-invalidated assignment left the store in pass 1).  Facts that
       stay dead are retracted from the delta extent and every assignment
       using them at a delta atom leaves the store.

    With ``counting`` enabled (the default), the **base-only support counts**
    of the store short-circuit passes 2–3 (the Berkholz/Keppeler/Schweikardt
    counting idea, restricted to the well-founded fragment): after pass 1
    every assignment touching a removed fact is gone, so a fact whose
    base-only count is still positive has a one-step derivation from
    surviving base facts and *cannot* leave the closure — nor can anything
    need over-deleting through it.  When every killed assignment's derived
    fact is covered this way the batch skips the over-delete/re-derive
    detour entirely (``stats.counted_deletes``); otherwise exact DRed runs,
    pruning provably alive facts from the over-delete BFS
    (``stats.dred_fallbacks``).  Counting *total* supports instead would be
    unsound under recursion — facts in a cycle support each other without
    being grounded in base facts.

    When ``context`` opts into sharded maintenance, the over-delete BFS runs
    level-synchronously and the re-derive fixpoint sweep-synchronously, each
    wave scanning one :func:`~repro.datalog.sharded.fact_shard` partition of
    the frozen store per worker-pool job (:func:`_sharded_overdelete` /
    :func:`_sharded_rederive`) — same sets, since both formulations compute
    the same monotone closures.  The counting fast path is untouched: batches
    it decides never reach the scans at all.

    Returns ``(overdeleted, rederived, retracted)``; delta programs are
    monotone, so the result is exact — retracted facts are precisely the
    closure difference.
    """
    if stats is None and context is not None:
        stats = context.stats
    killed: List[Fact] = []
    for item in removed:
        for signature in store.base_users(item):
            assignment = store.remove(signature)
            if assignment is not None:
                killed.append(assignment.derived)

    if not killed:
        return set(), set(), set()
    if counting:
        if all(store.base_only_supports(item) > 0 for item in set(killed)):
            if stats is not None:
                stats.counted_deletes += 1
            return set(), set(), set()
        if stats is not None:
            stats.dred_fallbacks += 1

    fanout = _maintenance_fanout(context)
    if fanout is not None:
        overdeleted = _sharded_overdelete(store, killed, counting, fanout, stats)
        rederived = _sharded_rederive(store, overdeleted, fanout, stats)
    else:
        work: deque[Fact] = deque(killed)
        overdeleted = set()
        while work:
            item = work.popleft()
            if item in overdeleted:
                continue
            if counting and store.base_only_supports(item) > 0:
                # Provably alive: some support uses surviving base facts
                # only, so neither this fact nor (through it) its delta
                # users can retract.
                continue
            overdeleted.add(item)
            for signature in store.delta_users(item):
                user = store.get(signature)
                if user is not None:
                    work.append(user.derived)

        rederived = set()
        changed = True
        while changed:
            changed = False
            for item in overdeleted:
                if item in rederived:
                    continue
                for signature in store.supports(item):
                    assignment = store.get(signature)
                    if assignment is None:
                        continue
                    if all(
                        used not in overdeleted or used in rederived
                        for used in assignment.delta_facts()
                    ):
                        rederived.add(item)
                        changed = True
                        break

    retracted = overdeleted - rederived
    # Canonical retraction order: set iteration depends on insertion history
    # (which differs between the serial BFS and the level-synchronous one),
    # and retraction order is what the persistent store's pending buffer and
    # the backend deletes observe.
    for item in sorted(retracted, key=Fact.sort_key):
        db.retract_delta(item)
        for signature in store.delta_users(item):
            store.remove(signature)
    if stats is not None:
        stats.overdeleted += len(overdeleted)
        stats.rederived += len(rederived)
    return overdeleted, rederived, retracted
