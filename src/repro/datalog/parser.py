"""Textual syntax for delta rules and programs.

The concrete syntax mirrors the paper's notation with ``delta`` spelled out:

.. code-block:: text

    % rule (1) of Figure 2
    delta Author(a, n) :- Author(a, n), AuthGrant(a, g), delta Grant(g, gn).

    % comparisons use =, !=, <, <=, >, >=
    delta Grant(g, n) :- Grant(g, n), n = 'ERC'.

Grammar
-------

* a program is a sequence of rules, each terminated by ``.``;
* ``%`` and ``#`` start a comment running to the end of the line;
* a delta atom is written ``delta R(...)``, ``Delta R(...)``, ``ΔR(...)`` or
  ``*R(...)`` — all equivalent;
* identifiers starting with a letter or underscore are variables inside atom
  argument lists; quoted strings and numeric literals are constants;
* an optional label ``[name]`` before a rule sets :attr:`Rule.name`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List

from repro.datalog.ast import (
    Atom,
    Comparison,
    Constant,
    Program,
    Rule,
    Term,
    Variable,
)
from repro.exceptions import ParseError

_TOKEN_SPEC = [
    ("COMMENT", r"[%#][^\n]*"),
    ("IMPLIES", r":-|<-"),
    ("NEQ", r"!=|<>"),
    ("LE", r"<="),
    ("GE", r">="),
    ("LT", r"<"),
    ("GT", r">"),
    ("EQ", r"="),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("LBRACKET", r"\["),
    ("RBRACKET", r"\]"),
    ("COMMA", r","),
    ("DOT", r"\."),
    ("STAR", r"\*"),
    ("STRING", r"'[^']*'|\"[^\"]*\""),
    ("NUMBER", r"-?\d+\.\d+|-?\d+"),
    ("DELTA", r"Δ|∆"),
    ("IDENT", r"[A-Za-z_][A-Za-z0-9_]*"),
    ("NEWLINE", r"\n"),
    ("SKIP", r"[ \t\r]+"),
    ("MISMATCH", r"."),
]

_TOKEN_RE = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))

_COMPARISON_TOKENS = {"EQ": "=", "NEQ": "!=", "LT": "<", "LE": "<=", "GT": ">", "GE": ">="}


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    line: int
    column: int


def _tokenize(source: str) -> Iterator[_Token]:
    line = 1
    line_start = 0
    for match in _TOKEN_RE.finditer(source):
        kind = match.lastgroup or "MISMATCH"
        text = match.group()
        column = match.start() - line_start + 1
        if kind == "NEWLINE":
            line += 1
            line_start = match.end()
            continue
        if kind in ("SKIP", "COMMENT"):
            continue
        if kind == "MISMATCH":
            raise ParseError(f"unexpected character {text!r}", line, column)
        yield _Token(kind, text, line, column)


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, source: str) -> None:
        self._tokens: List[_Token] = list(_tokenize(source))
        self._position = 0

    # -- token helpers ---------------------------------------------------------

    def _peek(self) -> _Token | None:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def _advance(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input")
        self._position += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError(f"expected {kind}, found end of input")
        if token.kind != kind:
            raise ParseError(
                f"expected {kind}, found {token.text!r}", token.line, token.column,
            )
        return self._advance()

    def _at(self, kind: str) -> bool:
        token = self._peek()
        return token is not None and token.kind == kind

    # -- grammar ------------------------------------------------------------------

    def parse_program(self) -> Program:
        rules = []
        while self._peek() is not None:
            rules.append(self.parse_rule())
        return Program(tuple(rules))

    def parse_rule(self) -> Rule:
        name = None
        if self._at("LBRACKET"):
            self._advance()
            name = self._expect("IDENT").text
            self._expect("RBRACKET")
        head = self._parse_atom()
        self._expect("IMPLIES")
        body_atoms: list[Atom] = []
        comparisons: list[Comparison] = []
        while True:
            item = self._parse_body_item()
            if isinstance(item, Atom):
                body_atoms.append(item)
            else:
                comparisons.append(item)
            if self._at("COMMA"):
                self._advance()
                continue
            break
        if self._at("DOT"):
            self._advance()
        return Rule(head, tuple(body_atoms), tuple(comparisons), name=name)

    def _parse_body_item(self) -> Atom | Comparison:
        # An atom starts with (delta marker)? IDENT LPAREN; otherwise it is a
        # comparison between two terms.
        saved = self._position
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input in rule body")
        if token.kind in ("DELTA", "STAR") or (
            token.kind == "IDENT" and self._looks_like_atom()
        ):
            try:
                return self._parse_atom()
            except ParseError:
                self._position = saved
        return self._parse_comparison()

    def _looks_like_atom(self) -> bool:
        token = self._peek()
        if token is None or token.kind != "IDENT":
            return False
        if token.text.lower() == "delta":
            return True
        following = (
            self._tokens[self._position + 1]
            if self._position + 1 < len(self._tokens)
            else None
        )
        return following is not None and following.kind == "LPAREN"

    def _parse_atom(self) -> Atom:
        is_delta = False
        token = self._peek()
        if token is None:
            raise ParseError("expected an atom, found end of input")
        if token.kind in ("DELTA", "STAR"):
            self._advance()
            is_delta = True
        elif token.kind == "IDENT" and token.text.lower() == "delta":
            self._advance()
            is_delta = True
        relation = self._expect("IDENT").text
        self._expect("LPAREN")
        terms: list[Term] = []
        if not self._at("RPAREN"):
            terms.append(self._parse_term())
            while self._at("COMMA"):
                self._advance()
                terms.append(self._parse_term())
        self._expect("RPAREN")
        return Atom(relation, tuple(terms), is_delta=is_delta)

    def _parse_comparison(self) -> Comparison:
        lhs = self._parse_term()
        token = self._peek()
        if token is None or token.kind not in _COMPARISON_TOKENS:
            found = token.text if token else "end of input"
            line = token.line if token else None
            column = token.column if token else None
            raise ParseError(f"expected a comparison operator, found {found!r}", line, column)
        op = _COMPARISON_TOKENS[self._advance().kind]
        rhs = self._parse_term()
        return Comparison(lhs, op, rhs)

    def _parse_term(self) -> Term:
        token = self._peek()
        if token is None:
            raise ParseError("expected a term, found end of input")
        if token.kind == "STRING":
            self._advance()
            return Constant(token.text[1:-1])
        if token.kind == "NUMBER":
            self._advance()
            text = token.text
            if "." in text:
                return Constant(float(text))
            return Constant(int(text))
        if token.kind == "IDENT":
            self._advance()
            return Variable(token.text)
        raise ParseError(f"expected a term, found {token.text!r}", token.line, token.column)


def parse_rule(source: str) -> Rule:
    """Parse a single rule from text.

    >>> rule = parse_rule("delta Grant(g, n) :- Grant(g, n), n = 'ERC'.")
    >>> rule.head.is_delta
    True
    """
    parser = _Parser(source)
    rule = parser.parse_rule()
    if parser._peek() is not None:
        token = parser._peek()
        assert token is not None
        raise ParseError(
            f"unexpected trailing input starting at {token.text!r}", token.line, token.column,
        )
    return rule


def parse_program(source: str) -> "Program":
    """Parse a whole program (a sequence of ``.``-terminated rules).

    Returns a plain :class:`~repro.datalog.ast.Program`; wrap it in
    :class:`~repro.datalog.delta.DeltaProgram` to validate and use it with the
    repair semantics.
    """
    return _Parser(source).parse_program()
