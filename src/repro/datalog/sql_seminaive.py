"""Semi-naive, frontier-window fixpoint evaluation inside SQLite.

SQL-level counterpart of :mod:`repro.datalog.seminaive`: the same stage-style,
delta-driven closure, but with the frontier kept *inside* the database.  Every
relation's delta extent is mirrored by a generation-stamped frontier table
(``f_R``, see :mod:`repro.storage.sqlite_backend`), and one round's frontier is
simply the half-open generation window ``(lo, hi]``:

* round 1 evaluates every rule once, all delta atoms bounded by the
  generations already recorded (``gen <= :hi``);
* every later round re-enters only the delta rules, through the
  delta-rewritten variants of :func:`~repro.datalog.sql_compiler.compile_frontier_rule`
  — one per delta atom, seeding that atom from the window and stratifying the
  other delta atoms by rank (pre-seed ranks read ``gen <= :lo``, later ranks
  ``gen <= :hi``), so each new assignment is enumerated exactly once;
* derived head facts are installed by ``INSERT OR IGNORE ... SELECT`` with the
  round's fresh generation stamp — deduplication and installation never leave
  SQLite, and the install statements' change counts double as the emptiness
  test for the next round's frontier.

Single-pass rounds and the observer API
---------------------------------------

Each variant's body join runs **exactly once per round**.  Which of the two
execution forms runs depends on whether anything observes the assignments:

* **fast path** — no ``on_assignment`` hook, ``collect_assignments=False``
  and no :class:`~repro.datalog.context.EvalContext` observer: the driver
  runs only the variant's :attr:`~repro.datalog.sql_compiler.FrontierQuery.install_sql`.
  One join, zero rows crossing into Python;
* **staged path** — somebody observes: the driver inserts the join's rows
  into the **persistent keyed stage table** of the variant's width
  (:func:`~repro.storage.sqlite_backend.stage_table_name`, created at most
  once per connection by ``SQLiteDatabase.ensure_stage_table``), keyed by the
  variant's ``variant_id``.  The per-round cycle is ``DELETE`` the variant's
  key, ``INSERT ... SELECT`` the join, replay the staged rows to every
  observer (assignment collection, the ``on_assignment`` hook, context
  observers such as provenance builders) in bounded
  :data:`STAGE_REPLAY_CHUNK`-row batches (:func:`staged_row_batches` — very
  large staged row sets never cross into Python as one round trip), and
  install the head facts from the *same* staged rows via
  ``staged_install_sql`` — the join is never re-run for the install and
  **steady-state rounds issue zero DDL** (no ``DROP TABLE``/``CREATE TEMP
  TABLE`` after the first staging of each width).

The stage-semantics discovery SELECTs (:func:`seeded_assignments_sql` /
:func:`full_assignments_sql`) route through the same keyed staging path under
the same gate as the driver: when the shared
:class:`~repro.datalog.context.EvalContext` carries assignment observers,
each discovery join is staged once and its rows feed both the
live-assignment index and the observers (delivered once per enumeration);
with no observers — or no context — a plain streaming SELECT is already
single-pass, so nothing is materialised (the plain joins are counted in
``stats.assignment_selects`` when a context is present).  On a file-backed
database with workers available, the staging join itself is hash-partitioned
over read-only reader connections (:func:`_discovery_stage_sharded`) —
gathered rows are installed into the stage table by the primary connection
and read back under a total ``ORDER BY`` over the staged columns, so the
enumeration (and therefore the observer stream) is byte-identical whether
the join ran serially or sharded, at any shard/worker count.

Observers are registered either per call (``on_assignment=``) or on a shared
:class:`~repro.datalog.context.EvalContext` (``context.add_observer``); the
context also supplies compiled variants cached across runs (one
``RepairEngine.compare()`` compiles each rule once for all four semantics) and
the :class:`~repro.datalog.context.QueryStats` counters the staging tests
assert on.  Only the *new* assignments of each round cross the boundary — the
naive SQL loop re-fetches every assignment ever derivable at every round.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List

from repro.datalog.ast import Program, Rule
from repro.datalog.context import EvalContext
from repro.datalog.evaluation import Assignment, ClosureResult, ENGINE_SEMI_NAIVE
from repro.datalog.sql_compiler import (
    TAG_STAGE,
    FrontierQuery,
    assignments_from_rows,
    compile_frontier_rule,
    delta_copy_sql,
)
from repro.exceptions import EvaluationError
from repro.storage.sqlite_backend import SQLiteDatabase


#: Staged rows are replayed to observers in bounded chunks of this many rows
#: (``cursor.fetchmany``) instead of one unbounded fetch: a very large staged
#: row set — a deep cascade can stage hundreds of thousands of rows in one
#: round — never materialises as a single Python list, and each chunk is
#: accounted in :attr:`~repro.datalog.context.QueryStats.replay_batches`.
STAGE_REPLAY_CHUNK = 10_000


def _variants(rule: Rule, context: EvalContext | None):
    """Compiled ``(full, seeded)`` variants, via the context cache when given."""
    if context is not None:
        return context.frontier_variants(rule)
    return compile_frontier_rule(rule)


def staged_row_batches(cursor, context: EvalContext | None = None):
    """Yield the cursor's rows in :data:`STAGE_REPLAY_CHUNK`-bounded batches.

    The batched observer replay of the staged paths: row order is exactly the
    cursor's order (each batch is a consecutive slice), so observer delivery
    order is unchanged — only the peak Python-side materialisation is bounded.
    Every non-empty batch bumps ``stats.replay_batches`` when a context is
    given.
    """
    while True:
        batch = cursor.fetchmany(STAGE_REPLAY_CHUNK)
        if not batch:
            return
        if context is not None:
            context.stats.replay_batches += 1
        yield batch


def _stage_variant_join(
    db: SQLiteDatabase,
    variant: FrontierQuery,
    window: Dict[str, int],
    context: EvalContext,
) -> None:
    """Run one variant's body join into its keyed stage slot (no read-back).

    The shared staging primitive of the driver and the stage-semantics
    discovery path: ensure the width's persistent stage table exists (DDL at
    most once per connection, counted in ``stats.stage_ddl``), clear the
    variant's key, and insert the join's rows under it.  Exactly one
    base-table join is executed (``stats.staged_selects``); everything else
    is a keyed scan of the stage table.  Callers delete the variant's key
    again once they are done with the rows, so a finished run leaves the
    stage tables empty (the pre-insert delete here only guards abandoned
    iterations).
    """
    if db.ensure_stage_table(variant.stage_width):
        context.stats.stage_ddl += 1
    if variant.wcoj_index_sql:
        db.ensure_wcoj_indexes(variant.wcoj_index_sql)
    db.execute(variant.stage_delete_sql, variant.bind())
    db.execute(variant.staged_insert_sql, variant.bind(**window))
    context.stats.staged_selects += 1


def stage_variant_rows(
    db: SQLiteDatabase,
    variant: FrontierQuery,
    window: Dict[str, int],
    context: EvalContext,
):
    """Run one variant's body join into its keyed stage slot; return the rows.

    :func:`_stage_variant_join` followed by the staged-row read-back cursor
    — the closure driver's form, where row order is the stage table's
    insertion (join output) order.
    """
    _stage_variant_join(db, variant, window, context)
    return db.execute(variant.staged_rows_sql, variant.bind())


def _staged_rows_ordered_sql(variant: FrontierQuery) -> str:
    """The staged-row read-back with a total order over the staged columns.

    Staged rows are unique (each carries its atoms' tids), so ``ORDER BY
    s0..sN`` is a *total* order computed by SQLite's own collation — the
    read-back order is independent of how the rows entered the stage table.
    Both discovery staging paths (serial join and sharded gather) read back
    through this statement, which is what makes the discovery observer
    stream byte-identical across shard/worker configurations and processes.
    """
    order = ", ".join(f"s{i}" for i in range(variant.stage_width))
    return f"{variant.staged_rows_sql} ORDER BY {order}"


def _discovery_stage_sharded(
    db: SQLiteDatabase,
    rule: Rule,
    variant: FrontierQuery,
    window: Dict[str, int],
    context: EvalContext,
) -> bool:
    """Try to stage one discovery variant's join shard-parallel; True if staged.

    The stage-semantics mirror of the sharded closure's shard wave: the
    variant's ``sharded_sql`` runs once per ``rowid % :nshards`` partition on
    read-only reader connections (concurrently on the leased worker pool),
    and the gathered rows are inserted into the variant's keyed stage slot
    by the primary connection in canonical shard order.  Installs never
    happen here — discovery only enumerates — so the primary does exactly
    one ``DELETE`` and one batched ``INSERT``.  Falls back (returns False)
    whenever sharding cannot help: no sharding requested, one worker, an
    in-memory database without reader connections, or a frontier/extent
    small enough that :meth:`~repro.datalog.context.EvalContext.effective_shards_for`
    collapses the variant to a single partition.
    """
    if not context.wants_sharding() or context.shard_count() <= 1:
        return False
    workers = context.worker_count()
    if workers <= 1 or not db.supports_readers():
        return False
    from repro.datalog.sharded import _axis_window_count, _run_wave

    effective = context.effective_shards_for(
        _axis_window_count(db, rule, variant, window),
    )
    if effective <= 1:
        return False
    slots = min(workers, effective)
    readers = db.reader_connections(slots)
    if not readers:
        return False
    if db.ensure_stage_table(variant.stage_width):
        context.stats.stage_ddl += 1
    if variant.wcoj_index_sql:
        db.ensure_wcoj_indexes(variant.wcoj_index_sql)
    db.execute(variant.stage_delete_sql, variant.bind())

    def shard_job(reader, shard_indices):
        rows_by_shard = {}
        for shard in shard_indices:
            bind = variant.bind(nshards=effective, shard=shard, **window)
            rows_by_shard[shard] = reader.execute(
                variant.sharded_sql, bind,
            ).fetchall()
        return rows_by_shard

    jobs = [
        lambda slot=slot: shard_job(
            readers[slot], range(slot, effective, slots),
        )
        for slot in range(slots)
    ]
    by_shard: Dict[int, list] = {}
    for part in _run_wave(jobs, slots):
        by_shard.update(part)
    # Replay the worker-thread SELECTs to the statement hooks from this
    # (merge) thread, once per shard, exactly like the closure driver.
    for _ in range(effective):
        db.notify_statement_hooks(variant.sharded_sql)
    context.stats.shard_selects += effective
    staged = [
        (variant.variant_id, *row)
        for shard in range(effective)
        for row in by_shard[shard]
    ]
    if staged:
        columns = ", ".join(f"s{i}" for i in range(variant.stage_width))
        holes = ", ".join("?" for _ in range(variant.stage_width))
        db.executemany(
            f"{TAG_STAGE} INSERT INTO {variant.stage_table} "
            f"(variant_id, {columns}) VALUES (?, {holes})",
            staged,
        )
    context.stats.staged_selects += 1
    return True


def _discovery_assignments(
    db: SQLiteDatabase,
    rule: Rule,
    variant: FrontierQuery,
    window: Dict[str, int],
    context: EvalContext | None,
) -> Iterator[Assignment]:
    """Enumerate one variant's discovery assignments, staged or plain.

    The shared enumeration core of :func:`seeded_assignments_sql` and
    :func:`full_assignments_sql`: when the context carries assignment
    observers — the same gate the closure driver applies — the join is staged
    through the keyed stage table (shard-parallel over reader connections
    when :func:`_discovery_stage_sharded` applies, serially otherwise) and
    each assignment is delivered to the observers before being yielded (and
    the variant's key is cleared once the rows are consumed).  Both staging
    forms read back through :func:`_staged_rows_ordered_sql`, so the
    enumeration order never depends on the shard/worker configuration.
    Without observers a plain streaming SELECT is already single-pass,
    counted in ``stats.assignment_selects`` under a context.
    """
    if context is not None and context.has_observers:
        if not _discovery_stage_sharded(db, rule, variant, window, context):
            _stage_variant_join(db, variant, window, context)
        rows = db.execute(_staged_rows_ordered_sql(variant), variant.bind())
        for batch in staged_row_batches(rows, context):
            for assignment in assignments_from_rows(
                rule, variant.atom_arities, batch,
            ):
                context.notify(assignment)
                yield assignment
        db.execute(variant.stage_delete_sql, variant.bind())
    else:
        if variant.wcoj_index_sql:
            db.ensure_wcoj_indexes(variant.wcoj_index_sql)
        rows = db.execute(variant.sql, variant.bind(**window))
        if context is not None:
            context.stats.assignment_selects += 1
        yield from assignments_from_rows(rule, variant.atom_arities, rows)


def seeded_assignments_sql(
    db: SQLiteDatabase,
    rule: Rule,
    lo: int,
    hi: int,
    context: EvalContext | None = None,
) -> Iterator[Assignment]:
    """Assignments of ``rule`` using at least one frontier fact of ``(lo, hi]``.

    Mirror of :func:`repro.datalog.seminaive.seeded_assignments` with the
    frontier expressed as a generation window; each qualifying assignment is
    produced exactly once (rank-stratified variants partition the space by the
    first delta atom falling inside the window).  This is the stage-semantics
    discovery path: it only enumerates (no install), staged or plain per
    :func:`_discovery_assignments`.
    """
    _, seeded = _variants(rule, context)
    window = {"lo": lo, "hi": hi}
    for variant in seeded:
        yield from _discovery_assignments(db, rule, variant, window, context)


def full_assignments_sql(
    db: SQLiteDatabase,
    rule: Rule,
    hi: int,
    context: EvalContext | None = None,
) -> Iterator[Assignment]:
    """All assignments of ``rule`` with delta atoms bounded by ``gen <= hi``.

    Staged or plain per :func:`_discovery_assignments`, exactly like
    :func:`seeded_assignments_sql`.
    """
    full, _ = _variants(rule, context)
    yield from _discovery_assignments(db, rule, full, {"hi": hi}, context)


def sql_semi_naive_closure(
    db: SQLiteDatabase,
    program: Program | Iterable[Rule],
    on_assignment=None,
    max_rounds: int | None = None,
    collect_assignments: bool = True,
    context: EvalContext | None = None,
) -> ClosureResult:
    """Derive all delta facts of ``db`` under ``program`` to fixpoint.

    Equivalent to the naive SQL closure (same delta facts; same assignments
    and exactly-once ``on_assignment`` calls whenever assignments are
    observed) and to the in-memory semi-naive engine (same stage-style round
    count), but incremental after round 1 and with every variant's join
    evaluated once per round (see module docstring).  With
    ``collect_assignments=False`` the returned
    :class:`~repro.datalog.evaluation.ClosureResult` carries an empty
    assignment list; combined with no observers this enables the install-only
    fast path.
    """
    ctx = context if context is not None else EvalContext()
    rules = list(program)
    delta_rules = [rule for rule in rules if any(atom.is_delta for atom in rule.body)]
    #: Relations whose frontier can re-enter some rule.
    watched = {
        atom.relation for rule in delta_rules for atom in rule.body if atom.is_delta
    }
    copy_statements = {
        rule.head.relation: delta_copy_sql(rule.head.relation, rule.head.arity)
        for rule in rules
    }
    observing = (collect_assignments or on_assignment is not None or ctx.has_observers)

    all_assignments: List[Assignment] = []
    seen_signatures: set[tuple] = set()

    def record(assignment: Assignment) -> None:
        signature = assignment.signature()
        if signature in seen_signatures:
            return
        seen_signatures.add(signature)
        if collect_assignments:
            all_assignments.append(assignment)
        if on_assignment is not None:
            on_assignment(assignment)
        ctx.notify(assignment)

    def run_variant(rule: Rule, variant, window: Dict[str, int], gen: int,
                    new_by_relation: Dict[str, int],) -> None:
        """Evaluate one variant's join once, feeding observers and the install."""
        if observing:
            rows = stage_variant_rows(db, variant, window, ctx)
            for batch in staged_row_batches(rows, ctx):
                for assignment in assignments_from_rows(
                    rule, variant.atom_arities, batch,
                ):
                    record(assignment)
            cursor = db.execute(variant.staged_install_sql, variant.bind(gen=gen))
            ctx.stats.staged_installs += 1
            # Drop the consumed rows so a finished closure leaves the keyed
            # stage tables empty (they persist for the connection's lifetime).
            db.execute(variant.stage_delete_sql, variant.bind())
        else:
            if variant.wcoj_index_sql:
                db.ensure_wcoj_indexes(variant.wcoj_index_sql)
            cursor = db.execute(variant.install_sql, variant.bind(gen=gen, **window))
            ctx.stats.direct_installs += 1
        if cursor.rowcount > 0:
            relation = rule.head.relation
            new_by_relation[relation] = (
                new_by_relation.get(relation, 0) + cursor.rowcount
            )

    rounds = 0

    def enter_round() -> None:
        nonlocal rounds
        rounds += 1
        if max_rounds is not None and rounds > max_rounds:
            raise EvaluationError(
                f"closure did not converge within {max_rounds} rounds",
            )

    # Round 1: one full evaluation of every rule, bounded by the generations
    # present when the closure starts (installs during the round are stamped
    # later and stay invisible, preserving stage-style rounds).
    enter_round()
    hi = db.generation()
    gen = db.next_generation()
    new_by_relation: Dict[str, int] = {}
    for rule in rules:
        full, _ = _variants(rule, ctx)
        run_variant(rule, full, {"hi": hi}, gen, new_by_relation)
    for relation in new_by_relation:
        db.execute(copy_statements[relation], {"gen": gen})

    # Rounds 2..: re-enter delta rules only through the previous round's
    # frontier window (lo, hi].
    while any(new_by_relation.get(relation) for relation in watched):
        enter_round()
        lo, hi = hi, gen
        gen = db.next_generation()
        frontier = new_by_relation
        new_by_relation = {}
        for rule in delta_rules:
            _, seeded = _variants(rule, ctx)
            for variant in seeded:
                if not frontier.get(variant.seed_relation):
                    continue
                run_variant(
                    rule, variant, {"lo": lo, "hi": hi}, gen, new_by_relation,
                )
        for relation in new_by_relation:
            db.execute(copy_statements[relation], {"gen": gen})

    return ClosureResult(all_assignments, rounds, ENGINE_SEMI_NAIVE)
