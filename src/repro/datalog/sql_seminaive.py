"""Semi-naive, frontier-window fixpoint evaluation inside SQLite.

SQL-level counterpart of :mod:`repro.datalog.seminaive`: the same stage-style,
delta-driven closure, but with the frontier kept *inside* the database.  Every
relation's delta extent is mirrored by a generation-stamped frontier table
(``f_R``, see :mod:`repro.storage.sqlite_backend`), and one round's frontier is
simply the half-open generation window ``(lo, hi]``:

* round 1 evaluates every rule once, all delta atoms bounded by the
  generations already recorded (``gen <= :hi``);
* every later round re-enters only the delta rules, through the
  delta-rewritten variants of :func:`~repro.datalog.sql_compiler.compile_frontier_rule`
  — one per delta atom, seeding that atom from the window and stratifying the
  other delta atoms by rank (pre-seed ranks read ``gen <= :lo``, later ranks
  ``gen <= :hi``), so each new assignment is enumerated exactly once;
* derived head facts are installed by ``INSERT OR IGNORE ... SELECT`` with the
  round's fresh generation stamp — deduplication and installation never leave
  SQLite, and the install statements' change counts double as the emptiness
  test for the next round's frontier.

Assignments are still materialised in Python (the provenance builders and the
differential tests consume them through ``on_assignment`` /
:class:`~repro.datalog.evaluation.ClosureResult`), but only the *new*
assignments of each round cross the boundary — the naive SQL loop re-fetches
every assignment ever derivable at every round.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List

from repro.datalog.ast import Program, Rule
from repro.datalog.evaluation import Assignment, ClosureResult, ENGINE_SEMI_NAIVE
from repro.datalog.sql_compiler import (
    assignments_from_rows,
    compile_frontier_rule,
    delta_copy_sql,
)
from repro.exceptions import EvaluationError
from repro.storage.sqlite_backend import SQLiteDatabase


def seeded_assignments_sql(
    db: SQLiteDatabase, rule: Rule, lo: int, hi: int
) -> Iterator[Assignment]:
    """Assignments of ``rule`` using at least one frontier fact of ``(lo, hi]``.

    Mirror of :func:`repro.datalog.seminaive.seeded_assignments` with the
    frontier expressed as a generation window; each qualifying assignment is
    produced exactly once (rank-stratified variants partition the space by the
    first delta atom falling inside the window).
    """
    _, seeded = compile_frontier_rule(rule)
    for variant in seeded:
        cursor = db.execute(variant.sql, variant.bind(lo=lo, hi=hi))
        yield from assignments_from_rows(rule, variant.atom_arities, cursor)


def full_assignments_sql(
    db: SQLiteDatabase, rule: Rule, hi: int
) -> Iterator[Assignment]:
    """All assignments of ``rule`` with delta atoms bounded by ``gen <= hi``."""
    full, _ = compile_frontier_rule(rule)
    cursor = db.execute(full.sql, full.bind(hi=hi))
    yield from assignments_from_rows(rule, full.atom_arities, cursor)


def _install(
    db: SQLiteDatabase,
    rule: Rule,
    variant,
    window: Dict[str, int],
    gen: int,
    new_by_relation: Dict[str, int],
) -> None:
    """Run one variant's install statement, tallying genuinely new facts."""
    cursor = db.execute(variant.install_sql, variant.bind(gen=gen, **window))
    if cursor.rowcount > 0:
        relation = rule.head.relation
        new_by_relation[relation] = new_by_relation.get(relation, 0) + cursor.rowcount


def sql_semi_naive_closure(
    db: SQLiteDatabase,
    program: Program | Iterable[Rule],
    on_assignment=None,
    max_rounds: int | None = None,
) -> ClosureResult:
    """Derive all delta facts of ``db`` under ``program`` to fixpoint.

    Equivalent to the naive SQL closure (same assignments, same delta facts,
    same exactly-once ``on_assignment`` calls) and to the in-memory semi-naive
    engine (same stage-style round count), but incremental after round 1 and
    with fact installation kept inside SQLite.
    """
    rules = list(program)
    delta_rules = [rule for rule in rules if any(atom.is_delta for atom in rule.body)]
    #: Relations whose frontier can re-enter some rule.
    watched = {
        atom.relation for rule in delta_rules for atom in rule.body if atom.is_delta
    }
    copy_statements = {
        rule.head.relation: delta_copy_sql(rule.head.relation, rule.head.arity)
        for rule in rules
    }

    all_assignments: List[Assignment] = []
    seen_signatures: set[tuple] = set()

    def record(assignment: Assignment) -> None:
        signature = assignment.signature()
        if signature in seen_signatures:
            return
        seen_signatures.add(signature)
        all_assignments.append(assignment)
        if on_assignment is not None:
            on_assignment(assignment)

    rounds = 0

    def enter_round() -> None:
        nonlocal rounds
        rounds += 1
        if max_rounds is not None and rounds > max_rounds:
            raise EvaluationError(
                f"closure did not converge within {max_rounds} rounds"
            )

    # Round 1: one full evaluation of every rule, bounded by the generations
    # present when the closure starts (installs during the round are stamped
    # later and stay invisible, preserving stage-style rounds).
    enter_round()
    hi = db.generation()
    gen = db.next_generation()
    new_by_relation: Dict[str, int] = {}
    for rule in rules:
        full, _ = compile_frontier_rule(rule)
        for assignment in full_assignments_sql(db, rule, hi):
            record(assignment)
        _install(db, rule, full, {"hi": hi}, gen, new_by_relation)
    for relation in new_by_relation:
        db.execute(copy_statements[relation], {"gen": gen})

    # Rounds 2..: re-enter delta rules only through the previous round's
    # frontier window (lo, hi].
    while any(new_by_relation.get(relation) for relation in watched):
        enter_round()
        lo, hi = hi, gen
        gen = db.next_generation()
        frontier = new_by_relation
        new_by_relation = {}
        for rule in delta_rules:
            _, seeded = compile_frontier_rule(rule)
            for variant in seeded:
                if not frontier.get(variant.seed_relation):
                    continue
                cursor = db.execute(variant.sql, variant.bind(lo=lo, hi=hi))
                for assignment in assignments_from_rows(
                    rule, variant.atom_arities, cursor
                ):
                    record(assignment)
                _install(
                    db, rule, variant, {"lo": lo, "hi": hi}, gen, new_by_relation
                )
        for relation in new_by_relation:
            db.execute(copy_statements[relation], {"gen": gen})

    return ClosureResult(all_assignments, rounds, ENGINE_SEMI_NAIVE)
