"""Abstract syntax of datalog / delta rules.

The grammar follows the paper's notation:

* a **term** is a variable (``a``, ``pid``) or a constant (``2``, ``'ERC'``);
* an **atom** is ``R(t1, ..., tn)`` over a base relation or ``ΔR(t1, ..., tn)``
  over a delta relation (``is_delta=True``);
* a **comparison** is ``t1 ◦ t2`` with ``◦ ∈ {=, !=, <, <=, >, >=}``;
* a **rule** is ``head :- body-atoms, comparisons`` where, for delta rules,
  the head is a delta atom and the body contains the matching base atom
  (Definition 3.1 — enforced by :mod:`repro.datalog.delta`);
* a **program** is a finite set of rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, Mapping

from repro.exceptions import RuleValidationError

#: Comparison operators supported in rule bodies.
COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")

_OP_FUNCTIONS: Dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class Term:
    """Base class for terms appearing in atoms and comparisons."""

    __slots__ = ()

    def is_variable(self) -> bool:
        """True for variables, False for constants."""
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class Variable(Term):
    """A logic variable, identified by name."""

    name: str

    def is_variable(self) -> bool:
        return True

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Constant(Term):
    """A constant value (int, float, or string)."""

    value: Any

    def is_variable(self) -> bool:
        return False

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


@dataclass(frozen=True, slots=True)
class Atom:
    """A relational atom ``R(t1, ..., tn)`` or delta atom ``ΔR(t1, ..., tn)``.

    ``relation`` is always the *base* relation name; ``is_delta`` marks the
    delta counterpart.  This mirrors the paper's convention of writing ``Δ_R``
    for the delta relation of ``R``.
    """

    relation: str
    terms: tuple[Term, ...]
    is_delta: bool = False

    @property
    def arity(self) -> int:
        """Number of terms."""
        return len(self.terms)

    def variables(self) -> tuple[Variable, ...]:
        """All variable occurrences, in positional order (with repetitions)."""
        return tuple(term for term in self.terms if isinstance(term, Variable))

    def variable_names(self) -> frozenset[str]:
        """The set of variable names used in this atom."""
        return frozenset(term.name for term in self.terms if isinstance(term, Variable))

    def constants(self) -> tuple[Constant, ...]:
        """All constant occurrences, in positional order."""
        return tuple(term for term in self.terms if isinstance(term, Constant))

    def as_delta(self) -> "Atom":
        """The delta counterpart of this atom (same relation and terms)."""
        return Atom(self.relation, self.terms, is_delta=True)

    def as_base(self) -> "Atom":
        """The base (non-delta) counterpart of this atom."""
        return Atom(self.relation, self.terms, is_delta=False)

    def substitute(self, bindings: Mapping[str, Any]) -> "Atom":
        """Replace bound variables by constants according to ``bindings``."""
        new_terms = []
        for term in self.terms:
            if isinstance(term, Variable) and term.name in bindings:
                new_terms.append(Constant(bindings[term.name]))
            else:
                new_terms.append(term)
        return Atom(self.relation, tuple(new_terms), self.is_delta)

    def __str__(self) -> str:
        prefix = "delta " if self.is_delta else ""
        rendered = ", ".join(str(term) for term in self.terms)
        return f"{prefix}{self.relation}({rendered})"


@dataclass(frozen=True, slots=True)
class Comparison:
    """A comparison ``lhs ◦ rhs`` between two terms."""

    lhs: Term
    op: str
    rhs: Term

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise RuleValidationError(f"unsupported comparison operator: {self.op!r}")

    def variable_names(self) -> frozenset[str]:
        """Variable names appearing on either side."""
        names = set()
        for term in (self.lhs, self.rhs):
            if isinstance(term, Variable):
                names.add(term.name)
        return frozenset(names)

    def is_ground(self, bindings: Mapping[str, Any]) -> bool:
        """True when both sides are constants or bound in ``bindings``."""
        for term in (self.lhs, self.rhs):
            if isinstance(term, Variable) and term.name not in bindings:
                return False
        return True

    def evaluate(self, bindings: Mapping[str, Any]) -> bool:
        """Evaluate the comparison under ``bindings`` (both sides must be bound)."""
        def resolve(term: Term) -> Any:
            if isinstance(term, Variable):
                return bindings[term.name]
            assert isinstance(term, Constant)
            return term.value

        try:
            return _OP_FUNCTIONS[self.op](resolve(self.lhs), resolve(self.rhs))
        except TypeError:
            # Mixed-type comparisons (e.g. int < str) are false rather than fatal:
            # synthetic data generators may mix key domains.
            return False

    def __str__(self) -> str:
        return f"{self.lhs} {self.op} {self.rhs}"


@dataclass(frozen=True)
class Rule:
    """A single (delta) rule ``head :- body, comparisons``."""

    head: Atom
    body: tuple[Atom, ...]
    comparisons: tuple[Comparison, ...] = ()
    name: str | None = None

    def __post_init__(self) -> None:
        if not self.body:
            raise RuleValidationError("a rule must have a non-empty body")

    # -- introspection -------------------------------------------------------

    def variables(self) -> frozenset[str]:
        """All variable names used anywhere in the rule."""
        names = set(self.head.variable_names())
        for atom in self.body:
            names |= atom.variable_names()
        for comparison in self.comparisons:
            names |= comparison.variable_names()
        return frozenset(names)

    def body_relations(self) -> frozenset[str]:
        """Base relation names referenced (positively) in the body."""
        return frozenset(atom.relation for atom in self.body if not atom.is_delta)

    def delta_body_relations(self) -> frozenset[str]:
        """Relation names referenced through delta atoms in the body."""
        return frozenset(atom.relation for atom in self.body if atom.is_delta)

    def relations(self) -> frozenset[str]:
        """All relation names mentioned by the rule (head and body)."""
        return frozenset({self.head.relation, *[atom.relation for atom in self.body]})

    def is_safe(self) -> bool:
        """True when every head variable also occurs in some body atom.

        Safety guarantees that ``α(head)`` is fully ground for any assignment
        ``α`` to the body (the standard datalog range-restriction condition).
        """
        body_vars: set[str] = set()
        for atom in self.body:
            body_vars |= atom.variable_names()
        return self.head.variable_names() <= body_vars

    def guard_atom(self) -> Atom | None:
        """The body atom ``R(X)`` matching the head ``ΔR(X)`` term-for-term.

        Definition 3.1 requires delta rules to contain this atom so that only
        existing facts are deleted.  Returns None when no such atom exists.
        """
        for atom in self.body:
            if (
                not atom.is_delta
                and atom.relation == self.head.relation
                and atom.terms == self.head.terms
            ):
                return atom
        return None

    def display_name(self) -> str:
        """The rule's explicit name, or a short auto-generated one."""
        if self.name:
            return self.name
        return f"rule[{self.head.relation}]"

    def rename(self, name: str) -> "Rule":
        """Return a copy of the rule with a different display name."""
        return Rule(self.head, self.body, self.comparisons, name=name)

    def __str__(self) -> str:
        parts = [str(atom) for atom in self.body]
        parts += [str(comparison) for comparison in self.comparisons]
        return f"{self.head} :- {', '.join(parts)}"


@dataclass(frozen=True)
class Program:
    """An ordered collection of rules.

    Order matters for the baselines that emulate trigger systems (MySQL fires
    triggers in creation order), but none of the four repair semantics depends
    on it.
    """

    rules: tuple[Rule, ...] = ()

    # -- collection behaviour -----------------------------------------------

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def __getitem__(self, index: int) -> Rule:
        return self.rules[index]

    # -- introspection ---------------------------------------------------------

    def head_relations(self) -> frozenset[str]:
        """Relations that appear in some rule head (the intensional relations)."""
        return frozenset(rule.head.relation for rule in self.rules)

    def relations(self) -> frozenset[str]:
        """All relation names mentioned anywhere in the program."""
        names: set[str] = set()
        for rule in self.rules:
            names |= rule.relations()
        return frozenset(names)

    def rules_for_head(self, relation: str) -> tuple[Rule, ...]:
        """All rules whose head is ``Δ(relation)``."""
        return tuple(rule for rule in self.rules if rule.head.relation == relation)

    # -- construction ------------------------------------------------------------

    def extended(self, extra_rules: Iterable[Rule]) -> "Program":
        """Return a new program with ``extra_rules`` appended."""
        return Program((*self.rules, *tuple(extra_rules)))

    @classmethod
    def of(cls, *rules: Rule) -> "Program":
        """Build a program from rules given as positional arguments."""
        return cls(tuple(rules))

    def __str__(self) -> str:
        return "\n".join(f"({i}) {rule}" for i, rule in enumerate(self.rules))


def make_atom(relation: str, *terms: Any, delta: bool = False) -> Atom:
    """Convenience atom constructor.

    Strings are treated as variable names; any other Python value becomes a
    constant.  To force a string constant, pass a :class:`Constant` explicitly.

    >>> str(make_atom("Author", "a", "n"))
    'Author(a, n)'
    >>> str(make_atom("Grant", "g", Constant("ERC"), delta=True))
    "delta Grant(g, 'ERC')"
    """
    converted: list[Term] = []
    for term in terms:
        if isinstance(term, Term):
            converted.append(term)
        elif isinstance(term, str):
            converted.append(Variable(term))
        else:
            converted.append(Constant(term))
    return Atom(relation, tuple(converted), is_delta=delta)
