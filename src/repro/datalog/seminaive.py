"""Semi-naive, delta-driven fixpoint evaluation.

The naive closure re-evaluates **every** rule against the **whole** database
each round, so round ``k`` redoes all the work of rounds ``1..k-1`` and throws
the repetitions away through a signature set.  The engine in this module
applies the textbook semi-naive discipline to delta programs: after the first
full round, an assignment is new only if it matches at least one delta fact
derived in the previous round (the *frontier*), so each rule is re-entered
through its delta atoms seeded from the frontier and joined outward along a
cached per-rule plan (:mod:`repro.datalog.planner`).

Double counting is avoided by the usual stratification: when a rule has delta
atoms at ranks ``1..m`` (in body order) and the seed is rank ``i``, delta
atoms of rank ``< i`` match only *pre-frontier* facts and ranks ``> i`` match
the full delta extent.  Every new assignment is therefore enumerated exactly
once — the property the provenance ``on_assignment`` hook relies on.

Rounds are stage-style: facts derived during a round are recorded at its end,
so the frontier of round ``k+1`` is exactly what round ``k`` produced and the
round count is deterministic and rule-order independent.

Observer API
------------

Assignment consumers attach in three interchangeable ways, mirroring the SQL
driver (:mod:`repro.datalog.sql_seminaive`): the per-call ``on_assignment``
hook, observers registered on a shared
:class:`~repro.datalog.context.EvalContext` (``context.add_observer``), and
the returned :class:`~repro.datalog.evaluation.ClosureResult` assignment list
(suppressed with ``collect_assignments=False``).  Every observer sees every
*new* assignment exactly once, in derivation-round order.  The in-memory
engine always enumerates assignments in Python (the derivation itself needs
them), so unlike the SQL driver there is no install-only fast path — the
flags only control retention and delivery.  A ``context`` additionally
supplies the planner, backed by the context's shared structural plan cache so
several runs (e.g. the four semantics of one ``compare()``) plan each rule
shape once.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Set

from repro.datalog.ast import Program, Rule
from repro.datalog.evaluation import (
    Assignment,
    ClosureResult,
    ENGINE_SEMI_NAIVE,
    _match_atom,
    find_assignments,
    planned_search,
)
from repro.datalog.planner import JoinPlanner
from repro.exceptions import EvaluationError
from repro.storage.database import BaseDatabase
from repro.storage.facts import Fact

#: ``relation -> frontier facts`` for one semi-naive round.
Frontier = Dict[str, Set[Fact]]


def delta_body_positions(rule: Rule) -> List[int]:
    """Body indices of the rule's delta atoms, in body order."""
    return [index for index, atom in enumerate(rule.body) if atom.is_delta]


def seeded_rank_assignments(
    db: BaseDatabase,
    rule: Rule,
    frontier: Frontier,
    planner: JoinPlanner,
    rank: int,
    seed_index: int,
    seed_facts: Iterable[Fact],
) -> List[Assignment]:
    """Assignments of ``rule`` seeded from ``seed_facts`` at delta rank ``rank``.

    One rank of the stratified enumeration of :func:`seeded_assignments`,
    with the seed facts passed explicitly so callers can restrict them to a
    subset — the sharded engine (:mod:`repro.datalog.sharded`) hands each
    worker one hash partition of the rank's frontier.  The union over a
    partition of the rank's frontier facts equals the rank's full result.
    """
    seed_atom = rule.body[seed_index]
    delta_positions = delta_body_positions(rule)
    plan = planner.plan(rule, seed=seed_index)
    # Delta atoms strictly before the seed (in body order) must match
    # pre-frontier facts only; later ones may match anything recorded.
    pre_frontier = set(delta_positions[:rank])

    if plan.kind != "binary":
        from repro.datalog.wcoj import wcoj_eligible, wcoj_seeded_assignments

        if wcoj_eligible(db, plan):
            excluded = {
                index: frontier[rule.body[index].relation]
                for index in pre_frontier
                if frontier.get(rule.body[index].relation)
            }
            return wcoj_seeded_assignments(
                db,
                rule,
                plan,
                seed_index,
                list(seed_facts),
                excluded=excluded or None,
                stats=planner.stats,
            )

    def candidates_for(index: int, atom, fixed):
        facts = db.candidates(atom.relation, fixed, delta=atom.is_delta)
        if index in pre_frontier:
            excluded = frontier.get(atom.relation)
            if excluded:
                return (item for item in facts if item not in excluded)
        return facts

    results: List[Assignment] = []
    for item in seed_facts:
        bindings = _match_atom(seed_atom, item, {})
        if bindings is None:
            continue
        planned_search(
            rule, plan.order, 1, bindings, [(seed_index, item)], set(),
            results, candidates_for,
        )
    return results


def seeded_assignments(
    db: BaseDatabase,
    rule: Rule,
    frontier: Frontier,
    planner: JoinPlanner,
) -> Iterator[Assignment]:
    """Assignments of ``rule`` that use at least one frontier delta fact.

    Each qualifying assignment is produced exactly once: the enumeration is
    split by the rank of the *first* delta atom matched to a frontier fact.
    Base atoms match the active extent and delta atoms the delta extent of
    ``db`` as usual.
    """
    delta_positions = delta_body_positions(rule)
    for rank, seed_index in enumerate(delta_positions):
        seed_facts = frontier.get(rule.body[seed_index].relation)
        if not seed_facts:
            continue
        yield from seeded_rank_assignments(
            db, rule, frontier, planner, rank, seed_index, seed_facts,
        )


def semi_naive_closure(
    db: BaseDatabase,
    program: Program | Iterable[Rule],
    on_assignment=None,
    max_rounds: int | None = None,
    planner: JoinPlanner | None = None,
    collect_assignments: bool = True,
    context=None,
) -> ClosureResult:
    """Derive all delta facts of ``db`` under ``program`` to fixpoint.

    Equivalent to the naive closure (same assignments, same delta facts, same
    exactly-once ``on_assignment`` calls) but incremental after round 1: only
    assignments reachable from the previous round's frontier are enumerated.
    The active extents are never touched (:meth:`BaseDatabase.mark_deleted`
    only records deletions), matching end-semantics style derivation.  See
    the module docstring for the observer knobs (``on_assignment``,
    ``context`` observers, ``collect_assignments``).
    """
    rules = list(program)
    if planner is None:
        planner = context.planner(db) if context is not None else JoinPlanner(db)
    delta_rules = [rule for rule in rules if any(atom.is_delta for atom in rule.body)]
    relations = sorted(
        {atom.relation for rule in delta_rules for atom in rule.body if atom.is_delta},
    )
    tokens = {relation: db.delta_token(relation) for relation in relations}
    # Context candidate observers attach to the storage layer's candidate
    # iterators for the duration of the run, so subscribers see every probed
    # fact mid-round (the SQL driver has no Python-side iteration to observe).
    watching_candidates = (
        context is not None
        and context.has_candidate_observers
        and hasattr(db, "add_candidate_observer")
    )
    if watching_candidates:
        db.add_candidate_observer(context.notify_candidate)

    all_assignments: List[Assignment] = []
    seen_signatures: set[tuple] = set()
    derived_now: List[Fact] = []

    def record(assignment: Assignment) -> None:
        signature = assignment.signature()
        if signature in seen_signatures:
            return
        seen_signatures.add(signature)
        if collect_assignments:
            all_assignments.append(assignment)
        if on_assignment is not None:
            on_assignment(assignment)
        if context is not None:
            context.notify(assignment)
        derived_now.append(assignment.derived)

    rounds = 0

    def enter_round() -> None:
        nonlocal rounds
        rounds += 1
        if max_rounds is not None and rounds > max_rounds:
            raise EvaluationError(
                f"closure did not converge within {max_rounds} rounds",
            )

    try:
        # Round 1: one full evaluation of every rule (planned joins, no
        # frontier).
        enter_round()
        for rule in rules:
            for assignment in find_assignments(db, rule, planner=planner):
                record(assignment)
        for item in derived_now:
            db.mark_deleted(item)

        # Rounds 2..: re-enter rules only through the previous round's
        # frontier.  Each round boundary refreshes the planner's cardinality
        # cache so plans whose extents drifted get re-costed before the
        # round's joins run.
        while True:
            frontier: Frontier = {}
            for relation in relations:
                added = db.delta_added_since(relation, tokens[relation])
                tokens[relation] = db.delta_token(relation)
                if added:
                    frontier[relation] = set(added)
            if not frontier:
                break
            enter_round()
            planner.begin_round()
            derived_now = []
            for rule in delta_rules:
                for assignment in seeded_assignments(db, rule, frontier, planner):
                    record(assignment)
            for item in derived_now:
                db.mark_deleted(item)
    finally:
        if watching_candidates:
            db.remove_candidate_observer(context.notify_candidate)

    return ClosureResult(all_assignments, rounds, ENGINE_SEMI_NAIVE)
