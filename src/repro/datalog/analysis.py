"""Static analysis of delta programs.

The paper restricts attention to *bounded* programs — programs that may
mention a delta relation both in heads and bodies but are equivalent to a
non-recursive program (Section 2).  Evaluation over the finite delta domain
always terminates regardless, but the provenance-based Algorithms 1 and 2
assume the provenance has polynomial size, which is what boundedness buys.

This module builds the delta-relation dependency graph of a program, detects
(syntactic) recursion, and computes the relation strata used to organise the
provenance graph into layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

import networkx as nx

from repro.datalog.ast import Program, Rule


def dependency_graph(program: Program | Iterable[Rule]) -> "nx.DiGraph":
    """The delta-dependency graph of a program.

    Nodes are relation names.  There is an edge ``S -> R`` when some rule with
    head ``ΔR`` mentions ``ΔS`` in its body — i.e. deleting an ``S`` tuple can
    trigger deleting an ``R`` tuple.  Base-atom dependencies are recorded as a
    ``base`` edge attribute set to True (they never create recursion since base
    relations only shrink).
    """
    graph = nx.DiGraph()
    for rule in program:
        head = rule.head.relation
        graph.add_node(head)
        for atom in rule.body:
            graph.add_node(atom.relation)
            if atom.is_delta:
                graph.add_edge(atom.relation, head, base=False)
            elif not graph.has_edge(atom.relation, head):
                graph.add_edge(atom.relation, head, base=True)
    return graph


def delta_dependency_graph(program: Program | Iterable[Rule]) -> "nx.DiGraph":
    """Like :func:`dependency_graph` but keeping only delta-to-delta edges."""
    graph = dependency_graph(program)
    removable = [
        (source, target)
        for source, target, data in graph.edges(data=True)
        if data.get("base", False)
    ]
    graph.remove_edges_from(removable)
    return graph


def is_syntactically_recursive(program: Program | Iterable[Rule]) -> bool:
    """True when the delta-dependency graph has a cycle (including self-loops)."""
    graph = delta_dependency_graph(program)
    try:
        nx.find_cycle(graph)
        return True
    except nx.NetworkXNoCycle:
        return False


def relation_strata(program: Program | Iterable[Rule]) -> Dict[str, int]:
    """Assign each head relation a stratum (longest delta-dependency depth).

    Relations never appearing in a head get stratum 0.  For recursive programs
    the strata of relations on a cycle collapse to the same value (the longest
    acyclic path into their strongly connected component).
    """
    rules = list(program)
    graph = delta_dependency_graph(rules)
    condensation = nx.condensation(graph)
    component_of: Dict[str, int] = {}
    for component_id, members in condensation.nodes(data="members"):
        for member in members:
            component_of[member] = component_id
    depth: Dict[int, int] = {}
    for component_id in nx.topological_sort(condensation):
        predecessors = list(condensation.predecessors(component_id))
        if predecessors:
            depth[component_id] = 1 + max(depth[p] for p in predecessors)
        else:
            depth[component_id] = 0
    heads = {rule.head.relation for rule in rules}
    strata: Dict[str, int] = {}
    for relation in graph.nodes:
        strata[relation] = depth[component_of[relation]] if relation in heads else 0
    for rule in rules:
        strata.setdefault(rule.head.relation, 0)
        for atom in rule.body:
            strata.setdefault(atom.relation, 0)
    return strata


@dataclass(frozen=True)
class ProgramReport:
    """A static summary of a delta program, for documentation and experiments."""

    rule_count: int
    relations: tuple[str, ...]
    head_relations: tuple[str, ...]
    max_body_atoms: int
    max_join_width: int
    recursive: bool
    strata: tuple[tuple[str, int], ...]

    def describe(self) -> str:
        """Human-readable multi-line description of the program's shape."""
        lines = [
            f"rules: {self.rule_count}",
            f"relations: {', '.join(self.relations)}",
            f"head (deletable) relations: {', '.join(self.head_relations)}",
            f"max body atoms: {self.max_body_atoms}",
            f"max join width: {self.max_join_width}",
            f"syntactically recursive: {'yes' if self.recursive else 'no'}",
            "strata: " + ", ".join(f"{rel}={level}" for rel, level in self.strata),
        ]
        return "\n".join(lines)


def analyze_program(program: Program | Iterable[Rule]) -> ProgramReport:
    """Compute a :class:`ProgramReport` for ``program``."""
    rules: List[Rule] = list(program)
    relations = sorted({relation for rule in rules for relation in rule.relations()})
    heads = sorted({rule.head.relation for rule in rules})
    max_body = max((len(rule.body) for rule in rules), default=0)
    max_join = max(
        (len(rule.body) + len(rule.comparisons) for rule in rules), default=0,
    )
    strata = relation_strata(rules) if rules else {}
    return ProgramReport(
        rule_count=len(rules),
        relations=tuple(relations),
        head_relations=tuple(heads),
        max_body_atoms=max_body,
        max_join_width=max_join,
        recursive=is_syntactically_recursive(rules) if rules else False,
        strata=tuple(sorted(strata.items())),
    )
